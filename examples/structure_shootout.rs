//! Head-to-head: hash-per-vertex vs Hornet-style blocks vs faimGraph-style
//! pages, on the same workload with the same transaction accounting — a
//! miniature of the paper's Tables II/III.
//!
//! Run with: `cargo run --release --example structure_shootout`

use dynamic_graphs_gpu::baselines::{FaimGraph, Hornet};
use dynamic_graphs_gpu::gpu_sim::CostModel;
use dynamic_graphs_gpu::prelude::*;

fn main() {
    let spec = catalog::dataset("soc-LiveJournal1").unwrap();
    let ds = spec.generate(16_384, 3);
    let batch = insert_batch(ds.n_vertices, 1 << 14, 99);
    let model = CostModel::titan_v();
    println!(
        "dataset: {} (scaled: {} vertices, {} edges); batch: {} random edges\n",
        spec.name,
        ds.n_vertices,
        ds.edges.len(),
        batch.len()
    );
    println!(
        "{:<22} {:>14} {:>14} {:>12}",
        "structure", "insert MEdge/s", "delete MEdge/s", "tx/edge"
    );

    // Ours.
    {
        let mut cfg = GraphConfig::directed_map(ds.n_vertices);
        cfg.device_words = ds.edges.len() * 12;
        let edges: Vec<Edge> = ds.edges.iter().map(|&p| Edge::from(p)).collect();
        let g = DynGraph::bulk_build(cfg, &edges);
        let batch_edges: Vec<Edge> = batch.iter().map(|&p| Edge::from(p)).collect();

        let before = g.device().counters().snapshot();
        g.insert_edges(&batch_edges);
        let ins = g.device().counters().snapshot().delta(&before);
        let before = g.device().counters().snapshot();
        g.delete_edges(&batch_edges);
        let del = g.device().counters().snapshot().delta(&before);
        println!(
            "{:<22} {:>14.0} {:>14.0} {:>12.1}",
            "slab-hash (ours)",
            batch.len() as f64 / model.seconds(&ins) / 1e6,
            batch.len() as f64 / model.seconds(&del) / 1e6,
            ins.transactions as f64 / batch.len() as f64
        );
    }

    // Hornet workalike.
    {
        let mut h = Hornet::bulk_build(ds.n_vertices, &ds.edges, ds.edges.len() * 8);
        let before = h.device().counters().snapshot();
        h.insert_batch(&batch);
        let ins = h.device().counters().snapshot().delta(&before);
        let before = h.device().counters().snapshot();
        h.delete_batch(&batch);
        let del = h.device().counters().snapshot().delta(&before);
        println!(
            "{:<22} {:>14.0} {:>14.0} {:>12.1}",
            "hornet (blocks)",
            batch.len() as f64 / model.seconds(&ins) / 1e6,
            batch.len() as f64 / model.seconds(&del) / 1e6,
            ins.transactions as f64 / batch.len() as f64
        );
    }

    // faimGraph workalike.
    {
        let f = FaimGraph::build(ds.n_vertices, &ds.edges, ds.edges.len() * 8);
        let before = f.device().counters().snapshot();
        f.insert_batch(&batch);
        let ins = f.device().counters().snapshot().delta(&before);
        let before = f.device().counters().snapshot();
        f.delete_batch(&batch);
        let del = f.device().counters().snapshot().delta(&before);
        println!(
            "{:<22} {:>14.0} {:>14.0} {:>12.1}",
            "faimgraph (pages)",
            batch.len() as f64 / model.seconds(&ins) / 1e6,
            batch.len() as f64 / model.seconds(&del) / 1e6,
            ins.transactions as f64 / batch.len() as f64
        );
    }

    println!("\n(modeled TITAN V throughput from transaction counters; see DESIGN.md §2)");
}
