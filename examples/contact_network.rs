//! A dynamic contact network — exercising vertex insertion and deletion.
//!
//! Models an evolving proximity graph (e.g. devices joining and leaving a
//! mesh): every tick, some nodes join with their contacts (vertex
//! insertion, §IV-D1), some leave entirely (Algorithm 2 vertex deletion),
//! and contacts churn (edge updates). BFS reachability from a monitor node
//! is recomputed on the live structure after each tick.
//!
//! Run with: `cargo run --release --example contact_network`

use dynamic_graphs_gpu::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let capacity = 4096u32;
    let g = DynGraph::new(GraphConfig::undirected_map(capacity));
    let mut rng = StdRng::seed_from_u64(7);
    let monitor = 0u32;

    // Seed population: nodes 0..256 with random contacts.
    let mut alive: Vec<u32> = (0..256).collect();
    let seed_edges: Vec<Edge> = (0..1024)
        .map(|_| {
            let a = alive[rng.random_range(0..alive.len())];
            let b = alive[rng.random_range(0..alive.len())];
            Edge::weighted(a, b, rng.random_range(1..100))
        })
        .collect();
    g.insert_edges(&seed_edges);
    let mut next_id = 256u32;

    println!(
        "{:>4} {:>7} {:>8} {:>9} {:>10}",
        "tick", "nodes", "edges", "reached", "max hops"
    );
    for tick in 1..=8 {
        // 1. A wave of new nodes joins, each with contacts to live nodes.
        let joiners: Vec<u32> = (0..32).map(|i| next_id + i).collect();
        next_id += 32;
        let mut join_edges = Vec::new();
        for &j in &joiners {
            for _ in 0..rng.random_range(1..6) {
                let peer = alive[rng.random_range(0..alive.len())];
                join_edges.push(Edge::weighted(j, peer, tick));
            }
        }
        g.insert_vertices(&joiners, &join_edges)
            .expect("joiner ids are fresh");
        alive.extend_from_slice(&joiners);

        // 2. Some nodes leave: Algorithm 2 removes them from every
        //    neighbour's table and reclaims their collision slabs.
        let mut leavers = Vec::new();
        for _ in 0..8 {
            let idx = rng.random_range(1..alive.len()); // keep the monitor
            leavers.push(alive.swap_remove(idx));
        }
        g.delete_vertices(&leavers);

        // 3. Contact churn: drop and add random edges.
        let churn: Vec<Edge> = (0..64)
            .map(|_| {
                let a = alive[rng.random_range(0..alive.len())];
                let b = alive[rng.random_range(0..alive.len())];
                Edge::weighted(a, b, tick)
            })
            .collect();
        g.insert_edges(&churn);

        // 4. Reachability from the monitor on the live structure.
        let levels = bfs_levels(&g, monitor);
        let reached = levels.iter().filter(|&&l| l != u32::MAX).count();
        let max_hops = levels
            .iter()
            .filter(|&&l| l != u32::MAX)
            .max()
            .copied()
            .unwrap_or(0);
        println!(
            "{:>4} {:>7} {:>8} {:>9} {:>10}",
            tick,
            alive.len(),
            g.num_edges() / 2,
            reached,
            max_hops
        );

        // The structure's invariants hold through arbitrary churn.
        g.check_invariants();
    }
    println!("\ninvariants verified after every tick (unique edges, exact counts, no self-loops)");
}
