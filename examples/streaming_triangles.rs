//! Streaming triangle counting — the paper's dynamic application (§VI-C2).
//!
//! A stream of edge batches arrives at a social-network-shaped graph; after
//! each batch we recount triangles. With hash-table adjacency lists no
//! sorting is ever needed: inserts are O(1) and the count uses `edgeExist`
//! probes. Run with:
//!
//! `cargo run --release --example streaming_triangles`

use dynamic_graphs_gpu::gpu_sim::CostModel;
use dynamic_graphs_gpu::prelude::*;

fn main() {
    let n_vertices = 1u32 << 12;
    let rounds = 5;
    let batch_size = 4096;

    // Set variant: triangle counting needs destinations only, doubling
    // per-slab capacity (30 keys vs 15 key-value pairs).
    let g = DynGraph::with_uniform_buckets(GraphConfig::undirected_set(n_vertices), n_vertices, 1);
    let model = CostModel::titan_v();

    println!("streaming {rounds} batches of {batch_size} edges into a {n_vertices}-vertex graph\n");
    println!(
        "{:>5} {:>10} {:>12} {:>14} {:>12}",
        "round", "edges", "triangles", "insert (ms)", "tc (ms)"
    );

    for round in 1..=rounds {
        // Scale-free-ish batch: a social stream is hub-heavy.
        let raw = graph_gen::rmat_edges(12, batch_size, graph_gen::RmatParams::graph500(), round);
        let batch: Vec<Edge> = raw.iter().map(|&p| Edge::from(p)).collect();

        let before = g.device().counters().snapshot();
        g.insert_edges(&batch);
        let insert_ms = model.seconds(&g.device().counters().snapshot().delta(&before)) * 1e3;

        let before = g.device().counters().snapshot();
        let triangles = tc(&g);
        let tc_ms = model.seconds(&g.device().counters().snapshot().delta(&before)) * 1e3;

        println!(
            "{:>5} {:>10} {:>12} {:>14.3} {:>12.3}",
            round,
            g.num_edges() / 2,
            triangles,
            insert_ms,
            tc_ms
        );
    }

    let stats = g.stats(&g.pin_read());
    println!(
        "\nfinal structure: {} slabs, avg chain {:.2}, utilization {:.2}, {:.1} MB device memory",
        stats.tables.slabs,
        stats.avg_chain(),
        stats.utilization(),
        stats.memory_bytes() as f64 / 1e6
    );
}
