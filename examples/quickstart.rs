//! Quickstart: build a weighted dynamic graph, update it, query it.
//!
//! Run with: `cargo run --release --example quickstart`

use dynamic_graphs_gpu::prelude::*;

fn main() {
    // A directed, weighted graph with room for 1024 vertices. Per-vertex
    // hash tables are created lazily (one bucket) on first touch.
    let g = DynGraph::new(GraphConfig::directed_map(1024));

    // Batched edge insertion (Algorithm 1): duplicates within the batch
    // and against the graph are allowed; the structure keeps unique
    // destinations with replace-on-duplicate semantics.
    let added = g.insert_edges(&[
        Edge::weighted(0, 1, 10),
        Edge::weighted(0, 2, 20),
        Edge::weighted(0, 2, 25), // duplicate: replaces the weight
        Edge::weighted(1, 2, 30),
        Edge::weighted(2, 0, 40),
    ]);
    println!("inserted {added} unique edges (one was a replacement)");
    assert_eq!(added, 4);

    // O(1) queries into the per-vertex hash tables.
    let pin = g.pin_read();
    println!("edge 0->2 exists: {}", g.edge_exists(&pin, 0, 2));
    println!("weight of 0->2:   {:?}", g.edge_weight(&pin, 0, 2));
    assert_eq!(g.edge_weight(&pin, 0, 2), Some(25));

    // Adjacency iteration.
    let mut n = g.neighbors(&pin, 0);
    n.sort_unstable();
    println!("neighbors of 0:   {n:?}");

    // Batched deletion (tombstones; exact counts maintained).
    g.delete_edges(&[Edge::new(0, 1)]);
    assert!(!g.edge_exists(&pin, 0, 1));
    println!("after delete, degree(0) = {}", g.degree(0));

    // Vertex insertion: new vertex 100 arrives with its edges. Duplicate
    // ids or sentinel-colliding ids come back as a typed error.
    g.insert_vertices(
        &[100],
        &[Edge::weighted(100, 0, 1), Edge::weighted(100, 2, 2)],
    )
    .expect("vertex 100 is new");
    println!("degree(100) = {}", g.degree(100));

    // Vertex deletion (Algorithm 2).
    g.delete_vertices(&[100]);
    assert_eq!(g.degree(100), 0);
    println!("vertex 100 deleted; total edges = {}", g.num_edges());

    // The simulated-GPU bill for everything above.
    let c = g.device().counters().snapshot();
    println!(
        "device counters: {} transactions, {} atomics, {} kernel launches",
        c.transactions, c.atomics, c.launches
    );

    bounded_memory_demo();
}

/// Failure model & recovery: run a batch against a deliberately tight
/// device-memory budget, watch it apply a prefix instead of panicking,
/// audit the structure, raise the budget, and finish the suffix.
fn bounded_memory_demo() {
    println!("\n-- bounded device memory & recovery --");
    // One super-block of slabs (the batch will need more) and a budget
    // that admits construction and staging but not the pool's growth.
    let g = DynGraph::new(
        GraphConfig::directed_map(4096)
            .with_device_words(1 << 16)
            .with_pool_slabs(1024)
            .with_device_capacity(120_000),
    );
    let batch: Vec<Edge> = (0..16u32)
        .flat_map(|u| (0..1000u32).map(move |i| Edge::weighted(u, 16 + (u * 1000 + i), i)))
        .collect();

    let mut outcome = g.try_insert_edges(&batch).expect("batch is valid");
    let mut rounds = 1;
    while !outcome.is_complete() {
        println!(
            "  round {rounds}: applied {}/{} edges, suffix of {} pending ({})",
            outcome.completed,
            outcome.attempted,
            outcome.pending.len(),
            outcome.error.expect("partial outcomes carry the cause"),
        );
        // The structure is still consistent mid-recovery...
        g.validate()
            .expect("graph stays consistent after a failed batch");
        // ...so grow the budget and resume exactly where the batch stopped.
        let budget = g.device().capacity_words();
        g.device().set_capacity_words(budget + (1 << 20));
        outcome = g.retry_suffix(&outcome).expect("suffix is valid");
        rounds += 1;
    }
    g.validate().expect("final graph is consistent");
    println!(
        "  complete after {rounds} round(s): {} edges, {} live slabs",
        g.num_edges(),
        g.allocator().live_slabs()
    );
    assert_eq!(g.num_edges(), 16_000);
}
