//! Shard fault-tolerance tests: failure injection at launch admission,
//! the router's health state machine and circuit breaker, degraded reads
//! from surviving replicas, and journal-based rebuild of a lost shard.
//!
//! The failure model under test: a shard whose device refuses launch
//! admission is retried per the router's [`RetryPolicy`]; a terminal
//! fault marks it Down and opens its circuit breaker (no device access
//! at all); its traffic stays in the write-ahead journal; reads degrade
//! to cut-edge replicas on surviving owners; and a rebuild (device
//! reset + journal replay + cross-shard audit) re-admits the shard with
//! a final state byte-identical to an unsharded replay.

use dynamic_graphs_gpu::gpu_sim::DeviceFault;
use dynamic_graphs_gpu::prelude::*;

const N: u32 = 256;

fn cfg() -> GraphConfig {
    GraphConfig::directed_map(N)
        .with_device_words(1 << 18)
        .with_pool_slabs(1 << 8)
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// Seeded rounds of mixed traffic: inserts are fresh random pairs,
/// deletes target previously-inserted edges.
fn rounds(seed: u64, n_rounds: usize, per_round: usize) -> Vec<Vec<Update>> {
    let mut rng = seed;
    let mut live: Vec<(u32, u32)> = Vec::new();
    (0..n_rounds)
        .map(|_| {
            let mut round = Vec::with_capacity(per_round);
            for i in 0..per_round {
                if i % 4 == 3 && !live.is_empty() {
                    let (u, v) = live[(splitmix64(&mut rng) % live.len() as u64) as usize];
                    round.push(Update::Delete(Edge::new(u, v)));
                } else {
                    let u = (splitmix64(&mut rng) % N as u64) as u32;
                    let mut v = (splitmix64(&mut rng) % N as u64) as u32;
                    if v == u {
                        v = (v + 1) % N;
                    }
                    let w = (splitmix64(&mut rng) % 97 + 1) as u32;
                    live.push((u, v));
                    round.push(Update::Insert(Edge::weighted(u, v, w)));
                }
            }
            round
        })
        .collect()
}

/// Apply one round to the unsharded reference exactly as the router
/// drains it: coalesced, inserts before deletes.
fn apply_reference(reference: &DynGraph, round: &[Update]) {
    let mut ins = Vec::new();
    let mut del = Vec::new();
    for &u in round {
        match u {
            Update::Insert(e) => ins.push(e),
            Update::Delete(e) => del.push(e),
        }
    }
    reference.insert_edges(&ins);
    reference.delete_edges(&del);
}

fn submit_round(router: &BatchRouter<'_>, round: &[Update], sessions: usize) {
    for (i, &u) in round.iter().enumerate() {
        router.submit(i % sessions, u);
    }
}

/// Full-state comparison: every vertex's sorted adjacency and weights.
fn assert_state_identical(g: &ShardedGraph, reference: &DynGraph) {
    assert_eq!(g.num_edges(), reference.num_edges(), "edge counts diverge");
    for u in 0..N {
        let mut got = g.neighbor_ids(u);
        got.sort_unstable();
        let mut want = reference.neighbor_ids(&reference.pin_read(), u);
        want.sort_unstable();
        assert_eq!(got, want, "vertex {u}: adjacency diverged");
        for &v in &got {
            assert_eq!(
                {
                    let shard = g.shard(g.owner_of(u));
                    shard.edge_weight(&shard.pin_read(), u, v)
                },
                reference.edge_weight(&reference.pin_read(), u, v),
                "edge {u}->{v}: weight diverged"
            );
        }
    }
}

/// The acceptance scenario: a shard dies mid-stream, traffic keeps
/// flowing (held for the dead shard, applied everywhere else), and after
/// journal rebuild + re-admission the final state is byte-identical to
/// an unsharded replay of the same stream.
#[test]
fn killed_shard_rebuilds_to_byte_identical_state() {
    let shards = 3;
    let g = ShardedGraph::new(shards, cfg());
    let router = BatchRouter::new(&g);
    let reference = DynGraph::new(cfg());
    let traffic = rounds(0xFEED, 6, 120);
    let victim = 1usize;

    for (r, round) in traffic.iter().enumerate() {
        if r == 2 {
            // Kill mid-stream: the next launch admission (and every one
            // after, until reset) fails terminally.
            g.group()
                .device(victim)
                .set_fault_plan(FaultPlan::device_lost_at(1));
        }
        submit_round(&router, round, 4);
        let report = router.flush();
        apply_reference(&reference, round);
        if r >= 2 {
            assert_eq!(router.health(victim), ShardHealth::Down, "round {r}");
            assert!(!report.is_complete(), "round {r}: victim work is held");
        }
        // Surviving shards apply their batches fully every round.
        for so in report.shards.iter().filter(|so| so.shard != victim) {
            assert!(so.is_complete(), "round {r} shard {}: {so:?}", so.shard);
        }
    }
    assert!(
        router.journal_depth(victim) > 0,
        "held writes are journaled"
    );

    // Rebuild: device reset, checkpoint + journal replay, audit, re-admit.
    let rebuilt = router.rebuild_downed().expect("rebuild passes the audit");
    assert_eq!(rebuilt, vec![victim]);
    assert_eq!(router.health(victim), ShardHealth::Healthy);
    assert_eq!(router.unhealthy_shards(), Vec::<usize>::new());
    assert_eq!(
        router.journal_depth(victim),
        0,
        "rebuild truncates the journal"
    );
    g.validate().expect("cross-shard audit after re-admission");
    assert_state_identical(&g, &reference);

    // The re-admitted shard serves normal traffic again.
    let extra = rounds(0xBEEF, 1, 60);
    submit_round(&router, &extra[0], 4);
    assert!(router.flush().is_complete());
    apply_reference(&reference, &extra[0]);
    assert_state_identical(&g, &reference);
}

/// Degraded reads are correct for *every* edge whose surviving replica
/// covers it: cut edges out of a Down owner answer from the
/// destination's owner; shard-internal edges report best-effort absence;
/// vertices owned by healthy shards stay Exact.
#[test]
fn degraded_reads_correct_for_every_replica_covered_edge() {
    let shards = 3;
    let g = ShardedGraph::new(shards, cfg());
    let router = BatchRouter::new(&g);
    let traffic = rounds(0xACE, 3, 150);
    let mut live: std::collections::HashMap<(u32, u32), bool> = std::collections::HashMap::new();
    for round in &traffic {
        submit_round(&router, round, 3);
        assert!(router.flush().is_complete());
        for &u in round {
            match u {
                Update::Insert(e) => {
                    live.insert((e.src, e.dst), true);
                }
                Update::Delete(e) => {
                    live.insert((e.src, e.dst), false);
                }
            }
        }
    }

    // Down shard 0 by faulting an edge it owns.
    let victim = 0usize;
    let internal = live
        .iter()
        .find(|(&(u, _), &alive)| alive && g.owner_of(u) == victim)
        .map(|(&k, _)| k)
        .expect("victim owns some live edge");
    g.group()
        .device(victim)
        .set_fault_plan(FaultPlan::device_lost_at(1));
    router.submit(0, Update::Insert(Edge::new(internal.0, internal.1)));
    router.flush();
    assert_eq!(router.health(victim), ShardHealth::Down);

    for (&(u, v), &alive) in &live {
        let (found, quality) = router.edge_exists_degraded(u, v);
        if g.owner_of(u) != victim {
            assert_eq!(quality, ReadQuality::Exact, "{u}->{v}");
            assert_eq!(found, alive, "{u}->{v}: exact read diverged");
        } else if g.owner_of(v) != victim {
            // Replica survives on the destination's owner: the degraded
            // answer must still be correct.
            assert_eq!(quality, ReadQuality::Degraded, "{u}->{v}");
            assert_eq!(found, alive, "{u}->{v}: replica-covered read diverged");
        } else {
            // Internal edge of the down shard: unanswerable, best-effort
            // absence.
            assert_eq!((found, quality), (false, ReadQuality::Degraded), "{u}->{v}");
        }
    }

    // Degraded degree of a victim-owned vertex counts exactly its
    // surviving cut out-edges.
    let u = internal.0;
    let expected: u32 = live
        .iter()
        .filter(|(&(a, b), &alive)| alive && a == u && g.owner_of(b) != victim)
        .count() as u32;
    assert_eq!(router.degree_degraded(u), (expected, ReadQuality::Degraded));
}

/// The circuit breaker provably stops dispatch: once a shard is Down,
/// repeated flushes charge *zero* launches (and zero transactions) to
/// its device, while the batches stay journaled for the rebuild.
#[test]
fn open_breaker_charges_zero_launches() {
    let shards = 2;
    let g = ShardedGraph::new(shards, cfg());
    let router = BatchRouter::new(&g);
    let victim = 0usize;
    g.group()
        .device(victim)
        .set_fault_plan(FaultPlan::device_lost_at(1));
    let traffic = rounds(0xD00D, 4, 80);

    // First flush trips the breaker (retries, then Down).
    submit_round(&router, &traffic[0], 2);
    let first = router.flush();
    assert_eq!(router.health(victim), ShardHealth::Down);
    match first.shards[victim].error {
        Some(RouterError::Fault {
            shard,
            source: DeviceFault::Lost { .. },
        }) => assert_eq!(shard, victim),
        ref other => panic!("expected a Lost fault, got {other:?}"),
    }

    // Every subsequent flush must leave the victim's counters untouched.
    let before = g.group().device(victim).counters().snapshot();
    let depth_before = router.journal_depth(victim);
    let mut last = first.clone();
    for round in &traffic[1..] {
        submit_round(&router, round, 2);
        last = router.flush();
        let so = &last.shards[victim];
        assert_eq!(so.health, ShardHealth::Down);
        assert!(so.error.is_none(), "held, not re-faulted");
        assert!(!so.is_complete(), "victim work is pending");
        assert_eq!(so.modeled_s, 0.0, "no modeled time while open");
    }
    let delta = g
        .group()
        .device(victim)
        .counters()
        .snapshot()
        .delta(&before);
    assert_eq!(delta.launches, 0, "zero launches while the breaker is open");
    assert_eq!(delta.transactions, 0, "zero memory traffic while open");
    assert_eq!(delta.atomics, 0);
    assert!(
        router.journal_depth(victim) > depth_before,
        "held batches keep accumulating in the journal"
    );

    // recover() must also respect the open breaker (no device access).
    let recovered = router.recover(&last);
    assert!(!recovered.shards[victim].is_complete());
    let still = g
        .group()
        .device(victim)
        .counters()
        .snapshot()
        .delta(&before);
    assert_eq!(
        still.launches, 0,
        "recover must not dispatch to a Down shard"
    );
}

/// A transient kernel fault heals within the retry budget: the flush
/// completes, backoff is charged on the modeled clock, and the shard
/// returns to Healthy without ever tripping the breaker.
#[test]
fn transient_fault_heals_within_retry_budget() {
    let shards = 2;
    let g = ShardedGraph::new(shards, cfg());
    let flaky = 1usize;
    g.group()
        .device(flaky)
        .set_fault_plan(FaultPlan::transient_kernel(1, 3));
    let router = BatchRouter::with_policy(
        &g,
        RetryPolicy {
            max_retries: 3,
            base_backoff_s: 1e-4,
            multiplier: 2.0,
        },
    );
    let traffic = rounds(0xF1A2, 2, 100);
    submit_round(&router, &traffic[0], 2);
    let report = router.flush();
    assert!(report.is_complete(), "{report:?}");
    assert_eq!(router.health(flaky), ShardHealth::Healthy);
    let rows = router.report().rows;
    assert_eq!(rows[flaky].retries, 3, "one per failed admission");
    // Exponential backoff: 1e-4 + 2e-4 + 4e-4.
    let want_backoff = 7e-4;
    assert!((rows[flaky].backoff_s - want_backoff).abs() < 1e-12);
    assert!(
        report.shards[flaky].modeled_s >= want_backoff,
        "backoff shows up in the shard's modeled time"
    );

    // Exhausting the budget instead trips the breaker.
    let g2 = ShardedGraph::new(shards, cfg());
    g2.group()
        .device(flaky)
        .set_fault_plan(FaultPlan::transient_kernel(1, 10));
    let strict = BatchRouter::with_policy(
        &g2,
        RetryPolicy {
            max_retries: 2,
            base_backoff_s: 1e-4,
            multiplier: 2.0,
        },
    );
    submit_round(&strict, &traffic[1], 2);
    let report = strict.flush();
    assert_eq!(strict.health(flaky), ShardHealth::Down);
    assert!(matches!(
        report.shards[flaky].error,
        Some(RouterError::Fault {
            source: DeviceFault::TransientKernel { .. },
            ..
        })
    ));
}
