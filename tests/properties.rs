//! Property-based tests: the dynamic graph against a host reference model
//! under arbitrary operation sequences, and slab-hash semantics under
//! arbitrary key streams.

use dynamic_graphs_gpu::prelude::*;
use proptest::prelude::*;
use std::collections::HashMap;

const N: u32 = 24;

/// An abstract operation on a small graph.
#[derive(Debug, Clone)]
enum Op {
    InsertEdges(Vec<(u32, u32, u32)>),
    DeleteEdges(Vec<(u32, u32)>),
    DeleteVertex(u32),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        proptest::collection::vec(((0..N), (0..N), (1..100u32)), 1..20)
            .prop_map(Op::InsertEdges),
        proptest::collection::vec(((0..N), (0..N)), 1..10).prop_map(Op::DeleteEdges),
        (0..N).prop_map(Op::DeleteVertex),
    ]
}

/// Host reference: directed weighted adjacency with replace semantics.
#[derive(Default)]
struct Reference {
    adj: HashMap<u32, HashMap<u32, u32>>,
}

impl Reference {
    fn insert(&mut self, u: u32, v: u32, w: u32) {
        if u != v {
            self.adj.entry(u).or_default().insert(v, w);
        }
    }
    fn delete(&mut self, u: u32, v: u32) {
        if let Some(m) = self.adj.get_mut(&u) {
            m.remove(&v);
        }
    }
    fn delete_vertex_undirected(&mut self, v: u32) {
        self.adj.remove(&v);
        for m in self.adj.values_mut() {
            m.remove(&v);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn directed_graph_matches_reference(ops in proptest::collection::vec(op_strategy(), 1..12)) {
        let mut cfg = GraphConfig::directed_map(N);
        cfg.device_words = 1 << 18;
        let g = DynGraph::with_uniform_buckets(cfg, N, 1);
        let mut reference = Reference::default();

        for op in &ops {
            match op {
                Op::InsertEdges(es) => {
                    g.insert_edges(&es.iter().map(|&t| Edge::from(t)).collect::<Vec<_>>());
                    for &(u, v, w) in es {
                        reference.insert(u, v, w);
                    }
                }
                Op::DeleteEdges(es) => {
                    g.delete_edges(&es.iter().map(|&p| Edge::from(p)).collect::<Vec<_>>());
                    for &(u, v) in es {
                        reference.delete(u, v);
                    }
                }
                // Directed vertex deletion frees the vertex's own list
                // only; incoming edges are purged explicitly.
                Op::DeleteVertex(v) => {
                    g.delete_vertices(&[*v]);
                    g.purge_deleted(&[*v]);
                    reference.adj.remove(v);
                    for m in reference.adj.values_mut() {
                        m.remove(v);
                    }
                }
            }
        }

        // Full-state comparison.
        for u in 0..N {
            let mut ours = g.neighbors(u);
            ours.sort_unstable();
            let mut want: Vec<(u32, u32)> = reference
                .adj
                .get(&u)
                .map(|m| m.iter().map(|(&d, &w)| (d, w)).collect())
                .unwrap_or_default();
            want.sort_unstable();
            prop_assert_eq!(&ours, &want, "vertex {} adjacency", u);
            prop_assert_eq!(g.degree(u) as usize, want.len(), "vertex {} count", u);
        }
        g.check_invariants();
    }

    #[test]
    fn undirected_graph_stays_symmetric(
        batches in proptest::collection::vec(
            proptest::collection::vec(((0..N), (0..N), (1..50u32)), 1..15), 1..6),
        victims in proptest::collection::vec(0..N, 0..3),
    ) {
        let mut cfg = GraphConfig::undirected_map(N);
        cfg.device_words = 1 << 18;
        let g = DynGraph::with_uniform_buckets(cfg, N, 1);
        for b in &batches {
            g.insert_edges(&b.iter().map(|&t| Edge::from(t)).collect::<Vec<_>>());
        }
        let mut dedup: Vec<u32> = victims.clone();
        dedup.sort_unstable();
        dedup.dedup();
        g.delete_vertices(&dedup);

        // Symmetry: u lists v  <=>  v lists u (with equal weight).
        for u in 0..N {
            for (v, w) in g.neighbors(u) {
                prop_assert_eq!(
                    g.edge_weight(v, u), Some(w),
                    "asymmetry at ({}, {})", u, v
                );
            }
        }
        // Deleted vertices are fully detached.
        for &v in &dedup {
            prop_assert_eq!(g.degree(v), 0);
            for u in 0..N {
                prop_assert!(!g.edge_exists(u, v));
            }
        }
        g.check_invariants();
    }

    #[test]
    fn edge_counts_are_exact_under_duplicates(
        raw in proptest::collection::vec(((0..8u32), (0..8u32)), 1..100)
    ) {
        // Heavy duplication within one batch: exact counting must match
        // the number of *unique* non-self-loop edges.
        let mut cfg = GraphConfig::directed_set(8);
        cfg.device_words = 1 << 16;
        let g = DynGraph::with_uniform_buckets(cfg, 8, 1);
        let added = g.insert_edges(&raw.iter().map(|&p| Edge::from(p)).collect::<Vec<_>>());
        let unique: std::collections::HashSet<(u32, u32)> =
            raw.iter().copied().filter(|&(u, v)| u != v).collect();
        prop_assert_eq!(added, unique.len() as u64);
        prop_assert_eq!(g.num_edges(), unique.len() as u64);
    }
}
