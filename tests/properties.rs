//! Property-style tests: the dynamic graph against a host reference model
//! under randomized operation sequences, and exact counting semantics under
//! duplicate-heavy batches. Each test runs many independently seeded cases;
//! seeds are fixed so failures reproduce.

use dynamic_graphs_gpu::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

const N: u32 = 24;
const CASES: u64 = 24;

/// An abstract operation on a small graph.
#[derive(Debug, Clone)]
enum Op {
    InsertEdges(Vec<(u32, u32, u32)>),
    DeleteEdges(Vec<(u32, u32)>),
    DeleteVertex(u32),
}

fn random_op(rng: &mut StdRng) -> Op {
    match rng.random_range(0..3u32) {
        0 => {
            let n = rng.random_range(1..20usize);
            Op::InsertEdges(
                (0..n)
                    .map(|_| {
                        (
                            rng.random_range(0..N),
                            rng.random_range(0..N),
                            rng.random_range(1..100u32),
                        )
                    })
                    .collect(),
            )
        }
        1 => {
            let n = rng.random_range(1..10usize);
            Op::DeleteEdges(
                (0..n)
                    .map(|_| (rng.random_range(0..N), rng.random_range(0..N)))
                    .collect(),
            )
        }
        _ => Op::DeleteVertex(rng.random_range(0..N)),
    }
}

/// Host reference: directed weighted adjacency with replace semantics.
#[derive(Default)]
struct Reference {
    adj: HashMap<u32, HashMap<u32, u32>>,
}

impl Reference {
    fn insert(&mut self, u: u32, v: u32, w: u32) {
        if u != v {
            self.adj.entry(u).or_default().insert(v, w);
        }
    }
    fn delete(&mut self, u: u32, v: u32) {
        if let Some(m) = self.adj.get_mut(&u) {
            m.remove(&v);
        }
    }
}

#[test]
fn directed_graph_matches_reference() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0xD1A + seed);
        let n_ops = rng.random_range(1..12usize);
        let ops: Vec<Op> = (0..n_ops).map(|_| random_op(&mut rng)).collect();

        let mut cfg = GraphConfig::directed_map(N);
        cfg.device_words = 1 << 18;
        let g = DynGraph::with_uniform_buckets(cfg, N, 1);
        let mut reference = Reference::default();

        for op in &ops {
            match op {
                Op::InsertEdges(es) => {
                    g.insert_edges(&es.iter().map(|&t| Edge::from(t)).collect::<Vec<_>>());
                    for &(u, v, w) in es {
                        reference.insert(u, v, w);
                    }
                }
                Op::DeleteEdges(es) => {
                    g.delete_edges(&es.iter().map(|&p| Edge::from(p)).collect::<Vec<_>>());
                    for &(u, v) in es {
                        reference.delete(u, v);
                    }
                }
                // Directed vertex deletion frees the vertex's own list
                // only; incoming edges are purged explicitly.
                Op::DeleteVertex(v) => {
                    g.delete_vertices(&[*v]);
                    g.purge_deleted(&[*v]);
                    reference.adj.remove(v);
                    for m in reference.adj.values_mut() {
                        m.remove(v);
                    }
                }
            }
        }

        // Full-state comparison.
        for u in 0..N {
            let mut ours = g.neighbors(&g.pin_read(), u);
            ours.sort_unstable();
            let mut want: Vec<(u32, u32)> = reference
                .adj
                .get(&u)
                .map(|m| m.iter().map(|(&d, &w)| (d, w)).collect())
                .unwrap_or_default();
            want.sort_unstable();
            assert_eq!(&ours, &want, "seed {seed}: vertex {u} adjacency");
            assert_eq!(
                g.degree(u) as usize,
                want.len(),
                "seed {seed}: vertex {u} count"
            );
        }
        g.check_invariants();
    }
}

#[test]
fn undirected_graph_stays_symmetric() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x5E3D + seed);
        let n_batches = rng.random_range(1..6usize);
        let batches: Vec<Vec<(u32, u32, u32)>> = (0..n_batches)
            .map(|_| {
                let n = rng.random_range(1..15usize);
                (0..n)
                    .map(|_| {
                        (
                            rng.random_range(0..N),
                            rng.random_range(0..N),
                            rng.random_range(1..50u32),
                        )
                    })
                    .collect()
            })
            .collect();
        let n_victims = rng.random_range(0..3usize);
        let victims: Vec<u32> = (0..n_victims).map(|_| rng.random_range(0..N)).collect();

        let mut cfg = GraphConfig::undirected_map(N);
        cfg.device_words = 1 << 18;
        let g = DynGraph::with_uniform_buckets(cfg, N, 1);
        for b in &batches {
            g.insert_edges(&b.iter().map(|&t| Edge::from(t)).collect::<Vec<_>>());
        }
        let mut dedup: Vec<u32> = victims.clone();
        dedup.sort_unstable();
        dedup.dedup();
        g.delete_vertices(&dedup);

        // Symmetry: u lists v  <=>  v lists u (with equal weight).
        for u in 0..N {
            for (v, w) in g.neighbors(&g.pin_read(), u) {
                assert_eq!(
                    g.edge_weight(&g.pin_read(), v, u),
                    Some(w),
                    "seed {seed}: asymmetry at ({u}, {v})"
                );
            }
        }
        // Deleted vertices are fully detached.
        for &v in &dedup {
            assert_eq!(g.degree(v), 0, "seed {seed}");
            for u in 0..N {
                assert!(
                    !g.edge_exists(&g.pin_read(), u, v),
                    "seed {seed}: edge ({u}, {v})"
                );
            }
        }
        g.check_invariants();
    }
}

#[test]
fn edge_counts_are_exact_under_duplicates() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0xD0B + seed);
        let n = rng.random_range(1..100usize);
        let raw: Vec<(u32, u32)> = (0..n)
            .map(|_| (rng.random_range(0..8u32), rng.random_range(0..8u32)))
            .collect();

        // Heavy duplication within one batch: exact counting must match
        // the number of *unique* non-self-loop edges.
        let mut cfg = GraphConfig::directed_set(8);
        cfg.device_words = 1 << 16;
        let g = DynGraph::with_uniform_buckets(cfg, 8, 1);
        let added = g.insert_edges(&raw.iter().map(|&p| Edge::from(p)).collect::<Vec<_>>());
        let unique: std::collections::HashSet<(u32, u32)> =
            raw.iter().copied().filter(|&(u, v)| u != v).collect();
        assert_eq!(added, unique.len() as u64, "seed {seed}");
        assert_eq!(g.num_edges(), unique.len() as u64, "seed {seed}");
    }
}
