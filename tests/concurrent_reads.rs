//! Concurrent readers vs writers over the epoch-pinned read path
//! (DESIGN.md §17): property tests that every snapshot a pinned reader
//! observes while mutation batches land is *prefix-consistent* — equal to
//! the graph state after some prefix of the writer's operation sequence —
//! plus negative fixtures proving the sanitizer catches a quarantined-slab
//! read that is not covered by a live [`ReadGuard`].
//!
//! The prefix argument rides on probe ordering: each writer batch is a
//! single operation, so operation visibility times are strictly ordered,
//! and a reader that probes the operation sequence in *reverse* order can
//! only observe downward-closed result sets. Any observed snapshot that is
//! not a prefix state is therefore a genuine snapshot violation, not an
//! artifact of non-atomic multi-probe reads.

use dynamic_graphs_gpu::gpu_sim::{Device, DeviceConfig, FindingKind, SanitizerConfig};
use dynamic_graphs_gpu::prelude::*;
use dynamic_graphs_gpu::slab_alloc::SlabAllocator;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

const READERS: usize = 3;
const EDGES: usize = 96;

fn graph(n: u32) -> DynGraph {
    let mut c = GraphConfig::directed_map(n);
    c.device_words = 1 << 20;
    c.pool_slabs = 1 << 12;
    DynGraph::new(c)
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// A seeded sequence of `EDGES` distinct directed edges.
fn edge_sequence(seed: u64) -> Vec<Edge> {
    let mut rng = seed;
    let mut seen = std::collections::HashSet::new();
    let mut edges = Vec::with_capacity(EDGES);
    while edges.len() < EDGES {
        let x = splitmix64(&mut rng);
        let (src, dst) = ((x % 251) as u32, ((x >> 32) % 251) as u32);
        if src != dst && seen.insert((src, dst)) {
            edges.push(Edge::weighted(src, dst, 1 + (x % 100) as u32));
        }
    }
    edges
}

/// Probe the operation sequence in reverse order under one pin and return
/// the results in sequence order. See the module doc for why reverse
/// probing makes prefix violations observable.
fn snapshot(g: &DynGraph, pin: &ReadGuard, edges: &[Edge]) -> Vec<bool> {
    let mut obs: Vec<bool> = edges
        .iter()
        .rev()
        .map(|e| g.edge_exists(pin, e.src, e.dst))
        .collect();
    obs.reverse();
    obs
}

/// Writer inserts one edge per batch, in sequence order; concurrent
/// pinned readers may only ever observe `{e_0 .. e_m}` for some `m` —
/// a `true` at index `j` forces `true` at every `i < j`.
#[test]
fn concurrent_inserts_observe_only_prefix_states() {
    for seed in [3u64, 17, 91] {
        let edges = edge_sequence(seed);
        let g = graph(256);
        let stop = AtomicBool::new(false);
        let ready = AtomicUsize::new(0);
        std::thread::scope(|s| {
            let (g, stop, ready, edges) = (&g, &stop, &ready, &edges);
            let handles: Vec<_> = (0..READERS)
                .map(|r| {
                    s.spawn(move || {
                        let mut snaps = 0u64;
                        loop {
                            let pin = g.pin_read();
                            let obs = snapshot(g, &pin, edges);
                            let head = obs.iter().position(|&b| !b).unwrap_or(obs.len());
                            assert!(
                                obs[head..].iter().all(|&b| !b),
                                "seed {seed} reader {r}: snapshot is not a prefix of the \
                                 insertion order: {obs:?}"
                            );
                            snaps += 1;
                            if snaps == 1 {
                                ready.fetch_add(1, Ordering::Release);
                            }
                            // Checked *after* the probe so every reader
                            // completes at least one snapshot however the
                            // threads are scheduled.
                            if stop.load(Ordering::Acquire) {
                                break;
                            }
                        }
                        snaps
                    })
                })
                .collect();
            // Gate the writer on every reader's first completed snapshot:
            // inserts then genuinely interleave with live readers instead
            // of racing them, and the snapshot count below cannot be zero.
            while ready.load(Ordering::Acquire) < READERS {
                std::thread::yield_now();
            }
            for e in edges {
                g.insert_edges(std::slice::from_ref(e));
            }
            stop.store(true, Ordering::Release);
            let total: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
            assert!(
                total >= READERS as u64,
                "every reader must observe at least one snapshot"
            );
        });
        // Quiescent end state: the full sequence, a valid structure, and a
        // clean sanitizer (escalating under `--features sanitize`).
        let pin = g.pin_read();
        assert!(edges.iter().all(|e| g.edge_exists(&pin, e.src, e.dst)));
        drop(pin);
        g.validate().unwrap();
        assert_eq!(g.device().sanitizer_findings(), vec![]);
    }
}

/// The mirror property for deletion: the writer deletes one edge per
/// batch in sequence order, so a reader may only observe `false` on a
/// prefix of the deletion order — reclamation (the part a stale snapshot
/// could trip over) is held back by the reader's pinned era.
#[test]
fn concurrent_deletes_observe_only_prefix_states() {
    for seed in [5u64, 23, 77] {
        let edges = edge_sequence(seed);
        let g = graph(256);
        g.insert_edges(&edges);
        let stop = AtomicBool::new(false);
        let ready = AtomicUsize::new(0);
        std::thread::scope(|s| {
            let (g, stop, ready, edges) = (&g, &stop, &ready, &edges);
            let handles: Vec<_> = (0..READERS)
                .map(|r| {
                    s.spawn(move || {
                        let mut snaps = 0u64;
                        loop {
                            let pin = g.pin_read();
                            let obs = snapshot(g, &pin, edges);
                            let head = obs.iter().position(|&b| b).unwrap_or(obs.len());
                            assert!(
                                obs[head..].iter().all(|&b| b),
                                "seed {seed} reader {r}: snapshot is not a prefix of the \
                                 deletion order: {obs:?}"
                            );
                            snaps += 1;
                            if snaps == 1 {
                                ready.fetch_add(1, Ordering::Release);
                            }
                            if stop.load(Ordering::Acquire) {
                                break;
                            }
                        }
                    })
                })
                .collect();
            // As in the insert test: wait for live readers before deleting
            // so reclamation runs under real concurrent pins.
            while ready.load(Ordering::Acquire) < READERS {
                std::thread::yield_now();
            }
            for e in edges {
                g.delete_edges(std::slice::from_ref(e));
            }
            stop.store(true, Ordering::Release);
            for h in handles {
                h.join().unwrap();
            }
        });
        let pin = g.pin_read();
        assert!(edges.iter().all(|e| !g.edge_exists(&pin, e.src, e.dst)));
        drop(pin);
        g.validate().unwrap();
        assert_eq!(g.device().sanitizer_findings(), vec![]);
    }
}

/// Full mixed churn under concurrent pinned readers running the whole
/// read surface (membership, neighbor walks, stats): must stay
/// sanitizer-clean and structurally valid. Deleting and reinserting the
/// same edges drives slabs through quarantine while reader pins are live,
/// which is exactly the window epoch-based reclamation protects.
#[test]
fn mixed_churn_with_pinned_readers_is_clean_and_valid() {
    let edges = edge_sequence(41);
    let g = graph(256);
    g.insert_edges(&edges);
    let stop = AtomicBool::new(false);
    let ready = AtomicUsize::new(0);
    std::thread::scope(|s| {
        let (g, stop, ready, edges) = (&g, &stop, &ready, &edges);
        let handles: Vec<_> = (0..READERS)
            .map(|r| {
                s.spawn(move || {
                    let mut rng = 1000 + r as u64;
                    let mut probes = 0u64;
                    loop {
                        let pin = g.pin_read();
                        let e = &edges[(splitmix64(&mut rng) as usize) % edges.len()];
                        let _ = g.edge_exists(&pin, e.src, e.dst);
                        let _ = g.neighbor_ids(&pin, e.src);
                        let _ = g.stats(&pin);
                        probes += 1;
                        if probes == 1 {
                            ready.fetch_add(1, Ordering::Release);
                        }
                        if stop.load(Ordering::Acquire) {
                            break;
                        }
                    }
                })
            })
            .collect();
        // Churn only once every reader is live, so slabs pass through
        // quarantine under genuinely concurrent pins.
        while ready.load(Ordering::Acquire) < READERS {
            std::thread::yield_now();
        }
        for round in 0..6 {
            let (a, b) = edges.split_at(edges.len() / 2);
            let (del, ins) = if round % 2 == 0 { (a, b) } else { (b, a) };
            g.delete_edges(del);
            g.insert_edges(del);
            g.delete_edges(ins);
            g.insert_edges(ins);
        }
        stop.store(true, Ordering::Release);
        for h in handles {
            h.join().unwrap();
        }
    });
    g.validate().unwrap();
    assert_eq!(g.device().sanitizer_findings(), vec![]);
}

fn sanitized_device(words: usize) -> Device {
    Device::with_config(DeviceConfig::new(words).with_sanitizer(SanitizerConfig::default()))
}

/// Negative fixture: a quarantined slab read with *no* live `ReadGuard`
/// must be flagged as an unpinned read, with the reader's kernel and the
/// allocation/free provenance attached. This is the runtime counterpart
/// of the lint-kernels R7 rule.
#[test]
fn unpinned_quarantined_read_is_flagged() {
    let dev = sanitized_device(1 << 16);
    let alloc = SlabAllocator::new(&dev, 64);
    let slab = Mutex::new(0u32);
    dev.launch_warps("alloc_kernel", 1, |warp| {
        *slab.lock().unwrap() = alloc.allocate(warp);
    });
    let a = *slab.lock().unwrap();
    dev.launch_warps("free_kernel", 1, |warp| {
        alloc.free(warp, a).unwrap();
    });
    assert_eq!(alloc.quarantined_slabs(), 1, "slab must sit in quarantine");
    // No pin is live: the quarantined slab has no covering era.
    dev.launch_warps("unpinned_reader", 1, |warp| {
        let _ = warp.read_slab(a);
    });
    let f = dev.sanitizer_findings();
    let uaf: Vec<_> = f
        .iter()
        .filter(|x| x.kind == FindingKind::UseAfterFree)
        .collect();
    assert!(!uaf.is_empty(), "unpinned read must be flagged: {f:?}");
    assert_eq!(uaf[0].kernel, "unpinned_reader");
    assert!(
        uaf[0].note.contains("unpinned read"),
        "finding must name the protocol violation: {}",
        uaf[0].note
    );
    assert!(uaf[0].note.contains("free_kernel"), "{}", uaf[0].note);
}

/// Positive contrast for the fixture above: the same quarantined read is
/// *certified* while a `ReadGuard` pinned before the free is live, and
/// flagged again the moment the guard drops (the epoch certificate is
/// withdrawn, and with it the reclamation guarantee).
#[test]
fn pinned_quarantined_read_is_certified_until_unpin() {
    let dev = sanitized_device(1 << 16);
    let alloc = SlabAllocator::new(&dev, 64);
    let slab = Mutex::new(0u32);
    dev.launch_warps("alloc_kernel", 1, |warp| {
        *slab.lock().unwrap() = alloc.allocate(warp);
    });
    let a = *slab.lock().unwrap();
    let pin = alloc.pin(&dev);
    dev.launch_warps("free_kernel", 1, |warp| {
        alloc.free(warp, a).unwrap();
    });
    dev.launch_warps("pinned_reader", 1, |warp| {
        let _ = warp.read_slab(a);
    });
    assert_eq!(
        dev.sanitizer_findings(),
        vec![],
        "a pin predating the free certifies the quarantined read"
    );
    drop(pin);
    dev.launch_warps("late_reader", 1, |warp| {
        let _ = warp.read_slab(a);
    });
    let f = dev.sanitizer_findings();
    assert!(
        f.iter()
            .any(|x| x.kind == FindingKind::UseAfterFree && x.note.contains("unpinned read")),
        "dropping the guard must withdraw the certificate: {f:?}"
    );
}
