//! Integration tests spanning the whole workspace: generators → dynamic
//! graph → baselines → algorithms, checking that every structure agrees.

use dynamic_graphs_gpu::algos;
use dynamic_graphs_gpu::baselines::{Csr, FaimGraph, Hornet};
use dynamic_graphs_gpu::graph_gen::mirror;
use dynamic_graphs_gpu::prelude::*;

#[test]
fn bulk_build_agrees_with_baselines_on_every_family() {
    for name in ["luxembourg_osm", "delaunay_n20", "coAuthorsDBLP"] {
        let spec = catalog::dataset(name).unwrap();
        let ds = spec.generate(2000, 5);

        let mut cfg = GraphConfig::directed_map(ds.n_vertices);
        cfg.device_words = (ds.edges.len() * 12).max(1 << 20);
        let edges: Vec<Edge> = ds.edges.iter().map(|&p| Edge::from(p)).collect();
        let g = DynGraph::bulk_build(cfg, &edges);

        let h = Hornet::bulk_build(ds.n_vertices, &ds.edges, 1 << 22);
        let c = Csr::build(ds.n_vertices, &ds.edges, 1 << 22);

        assert_eq!(g.num_edges(), h.num_edges(), "{name}: ours vs hornet");
        assert_eq!(g.num_edges(), c.num_edges(), "{name}: ours vs csr");

        // Spot-check per-vertex adjacency parity.
        for u in (0..ds.n_vertices).step_by((ds.n_vertices as usize / 50).max(1)) {
            let mut ours = g.neighbor_ids(&g.pin_read(), u);
            ours.sort_unstable();
            let mut hs = h.read_adjacency(u);
            hs.sort_unstable();
            assert_eq!(ours, hs, "{name}: adjacency of {u}");
        }
        g.check_invariants();
    }
}

#[test]
fn mixed_update_stream_keeps_all_structures_in_sync() {
    let n = 512u32;
    let g = DynGraph::with_uniform_buckets(GraphConfig::directed_map(n), n, 1);
    let mut h = Hornet::new(n, 1 << 22);
    let f = FaimGraph::new(n, 1 << 22);

    for round in 0..6u64 {
        let ins = insert_batch(n, 800, 100 + round);
        let edges: Vec<Edge> = ins.iter().map(|&p| Edge::from(p)).collect();
        g.insert_edges(&edges);
        h.insert_batch(&ins);
        f.insert_batch(&ins);

        let del = insert_batch(n, 300, 200 + round);
        let del_edges: Vec<Edge> = del.iter().map(|&p| Edge::from(p)).collect();
        g.delete_edges(&del_edges);
        h.delete_batch(&del);
        f.delete_batch(&del);

        assert_eq!(
            g.num_edges(),
            h.num_edges(),
            "round {round}: ours vs hornet"
        );
        assert_eq!(
            g.num_edges(),
            f.num_edges(),
            "round {round}: ours vs faimgraph"
        );
    }
    // Full adjacency parity at the end.
    for u in 0..n {
        let mut ours = g.neighbor_ids(&g.pin_read(), u);
        ours.sort_unstable();
        let mut hs = h.read_adjacency(u);
        hs.sort_unstable();
        let mut fs = f.read_adjacency(u);
        fs.sort_unstable();
        assert_eq!(ours, hs, "vertex {u} vs hornet");
        assert_eq!(ours, fs, "vertex {u} vs faimgraph");
    }
    g.check_invariants();
}

#[test]
fn triangle_counts_agree_across_structures_and_updates() {
    let spec = catalog::dataset("coAuthorsDBLP").unwrap();
    let ds = spec.generate(1024, 11);
    let n = ds.n_vertices;

    let g = DynGraph::with_uniform_buckets(GraphConfig::undirected_set(n), n, 1);
    g.insert_edges(&ds.edges.iter().map(|&p| Edge::from(p)).collect::<Vec<_>>());

    let sym = mirror(&ds.edges);
    let mut h = Hornet::bulk_build(n, &sym, 1 << 22);
    h.sort_adjacencies();
    let fg = FaimGraph::build(n, &sym, 1 << 22);
    fg.sort_adjacencies();
    let c = Csr::build(n, &sym, 1 << 22);

    let expect = algos::tc_reference(n, &ds.edges);
    assert_eq!(algos::tc(&g), expect, "ours");
    assert_eq!(algos::tc(&h), expect, "hornet");
    assert_eq!(algos::tc(&fg), expect, "faimgraph");
    assert_eq!(algos::tc(&c), expect, "csr");

    // Dynamic round: insert a batch everywhere, counts must stay equal.
    let batch = insert_batch(n, 2000, 77);
    g.insert_edges(&batch.iter().map(|&p| Edge::from(p)).collect::<Vec<_>>());
    h.insert_batch(&mirror(&batch));
    h.sort_adjacencies();
    let ours = algos::tc(&g);
    assert_eq!(ours, algos::tc(&h), "after dynamic batch");
    assert!(ours >= expect, "triangles cannot decrease on insertion");
}

#[test]
fn vertex_deletion_end_to_end() {
    let spec = catalog::dataset("rgg_n_2_20_s0").unwrap();
    let ds = spec.generate(1500, 13);
    let n = ds.n_vertices;
    let mut cfg = GraphConfig::undirected_map(n);
    cfg.device_words = (ds.edges.len() * 16).max(1 << 20);
    let g = DynGraph::bulk_build(
        cfg,
        &ds.edges.iter().map(|&p| Edge::from(p)).collect::<Vec<_>>(),
    );
    g.check_invariants();

    let victims = vertex_batch(n, 200, 3);
    g.delete_vertices(&victims);

    for &v in &victims {
        assert_eq!(g.degree(v), 0, "victim {v}");
        assert!(g.neighbors(&g.pin_read(), v).is_empty());
    }
    // No survivor may still point at a victim.
    let victim_set: std::collections::HashSet<u32> = victims.iter().copied().collect();
    for u in 0..n {
        for d in g.neighbor_ids(&g.pin_read(), u) {
            assert!(
                !victim_set.contains(&d),
                "vertex {u} still points at deleted {d}"
            );
        }
    }
    g.check_invariants();
}

#[test]
fn bfs_agrees_with_reference_on_generated_graph() {
    let spec = catalog::dataset("delaunay_n20").unwrap();
    let ds = spec.generate(900, 19);
    let n = ds.n_vertices;
    let g = DynGraph::with_uniform_buckets(GraphConfig::undirected_set(n), n, 1);
    g.insert_edges(&ds.edges.iter().map(|&p| Edge::from(p)).collect::<Vec<_>>());

    // Host-side reference BFS.
    let mut adj = vec![vec![]; n as usize];
    for &(u, v) in &ds.edges {
        if u != v {
            adj[u as usize].push(v);
            adj[v as usize].push(u);
        }
    }
    let mut expect = vec![u32::MAX; n as usize];
    expect[0] = 0;
    let mut q = std::collections::VecDeque::from([0u32]);
    while let Some(u) = q.pop_front() {
        for &v in &adj[u as usize] {
            if expect[v as usize] == u32::MAX {
                expect[v as usize] = expect[u as usize] + 1;
                q.push_back(v);
            }
        }
    }
    assert_eq!(algos::bfs_levels(&g, 0), expect);
}
