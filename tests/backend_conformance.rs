//! Conformance suite for the `GraphBackend` trait layer: the single
//! generic triangle count and BFS must produce reference-correct results
//! over **all four** backends, on fixtures and generated datasets, and
//! the shared read surface (degree / membership / adjacency) must agree
//! across structures for identical logical graphs.

use dynamic_graphs_gpu::algos;
use dynamic_graphs_gpu::baselines::{Csr, FaimGraph, Hornet};
use dynamic_graphs_gpu::graph_gen::{self, fixtures, mirror};
use dynamic_graphs_gpu::prelude::*;

/// Build every backend holding the same logical undirected graph —
/// including the hash-partitioned `ShardedGraph`, which must be
/// indistinguishable from the single-device structures through the trait.
fn all_backends(n: u32, undirected: &[(u32, u32)]) -> Vec<Box<dyn GraphBackend>> {
    let sym = mirror(undirected);
    let words = (sym.len() * 16).max(1 << 20);
    let g = DynGraph::with_uniform_buckets(GraphConfig::undirected_set(n), n, 1);
    g.insert_edges(
        &undirected
            .iter()
            .map(|&p| Edge::from(p))
            .collect::<Vec<_>>(),
    );
    let edges: Vec<Edge> = undirected.iter().map(|&p| Edge::from(p)).collect();
    let mut cfg = GraphConfig::undirected_set(n);
    cfg.device_words = words;
    vec![
        Box::new(g),
        Box::new(Hornet::bulk_build(n, &sym, words)),
        Box::new(FaimGraph::build(n, &sym, words)),
        Box::new(Csr::build(n, &sym, words)),
        Box::new(ShardedGraph::bulk_build(3, cfg, &edges)),
    ]
}

/// Host-side reference BFS levels over an undirected edge list.
fn bfs_reference(n: u32, edges: &[(u32, u32)], src: u32) -> Vec<u32> {
    let mut adj = vec![vec![]; n as usize];
    for &(u, v) in edges {
        if u != v {
            adj[u as usize].push(v);
            adj[v as usize].push(u);
        }
    }
    let mut levels = vec![u32::MAX; n as usize];
    levels[src as usize] = 0;
    let mut q = std::collections::VecDeque::from([src]);
    while let Some(u) = q.pop_front() {
        for &v in &adj[u as usize] {
            if levels[v as usize] == u32::MAX {
                levels[v as usize] = levels[u as usize] + 1;
                q.push_back(v);
            }
        }
    }
    levels
}

#[test]
fn generic_tc_matches_reference_on_fixture_for_every_backend() {
    let (n, e) = fixtures::fixture_edges();
    for mut b in all_backends(n, &e) {
        b.ensure_sorted();
        assert_eq!(
            algos::tc(b.as_ref()),
            fixtures::FIXTURE_TRIANGLES,
            "{}",
            b.name()
        );
    }
}

#[test]
fn generic_tc_matches_reference_on_generated_datasets() {
    for name in ["coAuthorsDBLP", "rgg_n_2_20_s0"] {
        let ds = catalog::dataset(name).unwrap().generate(700, 27);
        let expect = algos::tc_reference(ds.n_vertices, &ds.edges);
        for mut b in all_backends(ds.n_vertices, &ds.edges) {
            b.ensure_sorted();
            assert_eq!(
                algos::tc(b.as_ref()),
                expect,
                "{name}: backend {}",
                b.name()
            );
        }
    }
}

#[test]
fn generic_bfs_matches_reference_for_every_backend() {
    let ds = catalog::dataset("delaunay_n20").unwrap().generate(600, 33);
    let expect = bfs_reference(ds.n_vertices, &ds.edges, 0);
    for b in all_backends(ds.n_vertices, &ds.edges) {
        assert_eq!(
            algos::bfs_levels(b.as_ref(), 0),
            expect,
            "backend {}",
            b.name()
        );
    }
}

#[test]
fn read_surface_agrees_across_backends() {
    let edges = graph_gen::uniform_random(96, 700, 55);
    let n = 96u32;
    let backends = all_backends(n, &edges);
    let reference = &backends[0];
    let probes: Vec<(u32, u32)> = (0..n).map(|u| (u, (u * 7 + 3) % n)).collect();
    let expect_exist = reference.edges_exist(&probes);
    for b in &backends[1..] {
        let name = b.name();
        assert_eq!(b.num_vertices(), reference.num_vertices(), "{name}");
        assert_eq!(b.num_edges(), reference.num_edges(), "{name}");
        assert_eq!(b.edges_exist(&probes), expect_exist, "{name}");
        for u in (0..n).step_by(7) {
            assert_eq!(b.degree(u), reference.degree(u), "{name}: degree({u})");
            let mut got = b.read_neighbors(u);
            let mut want = reference.read_neighbors(u);
            got.sort_unstable();
            want.sort_unstable();
            assert_eq!(got, want, "{name}: adjacency of {u}");
            let mut iterated = Vec::new();
            b.for_each_neighbor(u, &mut |v| iterated.push(v));
            iterated.sort_unstable();
            assert_eq!(iterated, got, "{name}: for_each_neighbor({u})");
        }
    }
}

#[test]
fn mutable_backends_track_updates_identically() {
    let n = 128u32;
    let base = graph_gen::uniform_random(n, 400, 61);
    let words = 1usize << 21;
    let g = DynGraph::with_uniform_buckets(GraphConfig::directed_map(n), n, 1);
    g.insert_edges(&base.iter().map(|&p| Edge::from(p)).collect::<Vec<_>>());
    let mut sharded_cfg = GraphConfig::directed_map(n);
    sharded_cfg.device_words = words;
    let mut dynamic: Vec<Box<dyn GraphBackend>> = vec![
        Box::new(g),
        Box::new(Hornet::bulk_build(n, &base, words)),
        Box::new(FaimGraph::build(n, &base, words)),
        Box::new(ShardedGraph::bulk_build(
            2,
            sharded_cfg,
            &base.iter().map(|&p| Edge::from(p)).collect::<Vec<_>>(),
        )),
    ];
    for round in 0..3u64 {
        let ins = insert_batch(n, 150, 900 + round);
        let del = insert_batch(n, 60, 950 + round);
        let mut counts = vec![];
        for b in &mut dynamic {
            assert!(
                b.caps().insert_edges && b.caps().delete_edges,
                "{}",
                b.name()
            );
            b.insert_edges(&ins);
            b.delete_edges(&del);
            counts.push(b.num_edges());
        }
        assert!(
            counts.windows(2).all(|w| w[0] == w[1]),
            "round {round}: edge counts diverged: {counts:?}"
        );
    }
}
