//! Phase-concurrency validation: the paper's operations are batched and
//! phase-concurrent, so the final structure state must be identical (up to
//! slot placement) whether kernels run on the deterministic sequential
//! executor or on racing host threads.

use dynamic_graphs_gpu::gpu_sim::ExecPolicy;
use dynamic_graphs_gpu::prelude::*;

fn canonical_state(g: &DynGraph) -> Vec<(u32, Vec<(u32, u32)>)> {
    (0..g.vertex_capacity())
        .map(|v| {
            let mut n = g.neighbors(&g.pin_read(), v);
            n.sort_unstable();
            (g.degree(v), n)
        })
        .enumerate()
        .map(|(v, (d, n))| {
            assert_eq!(d as usize, n.len(), "vertex {v} count mismatch");
            (d, n)
        })
        .collect()
}

fn run_workload(policy: ExecPolicy, weights_matter: bool) -> Vec<(u32, Vec<(u32, u32)>)> {
    let n = 256u32;
    let mut cfg = if weights_matter {
        GraphConfig::directed_map(n)
    } else {
        GraphConfig::directed_set(n)
    };
    cfg.device_words = 1 << 20;
    let mut g = DynGraph::with_uniform_buckets(cfg, n, 1);
    g.device_mut().set_policy(policy);

    // Deterministic workload with duplicate-free weights so that even a
    // racy-but-correct executor must converge to the same state. (For the
    // map variant, each ⟨u,v⟩ appears with one weight only: replace races
    // are then value-neutral.)
    for round in 0..4u64 {
        let ins: Vec<Edge> = insert_batch(n, 2000, round)
            .into_iter()
            .map(|(u, v)| Edge::weighted(u, v, u ^ v))
            .collect();
        g.insert_edges(&ins);
        let del: Vec<Edge> = insert_batch(n, 700, 50 + round)
            .into_iter()
            .map(|(u, v)| Edge::new(u, v))
            .collect();
        g.delete_edges(&del);
    }
    g.check_invariants();
    canonical_state(&g)
}

#[test]
fn sequential_and_threaded_executors_agree_map() {
    let seq = run_workload(ExecPolicy::Sequential, true);
    for threads in [2, 4] {
        let thr = run_workload(ExecPolicy::Threaded(threads), true);
        assert_eq!(seq, thr, "threaded({threads}) diverged from sequential");
    }
}

#[test]
fn sequential_and_threaded_executors_agree_set() {
    let seq = run_workload(ExecPolicy::Sequential, false);
    let thr = run_workload(ExecPolicy::Threaded(4), false);
    assert_eq!(seq, thr);
}

#[test]
fn threaded_vertex_deletion_is_complete() {
    // Vertex deletion under the threaded executor must still remove every
    // victim from every survivor's table.
    let n = 200u32;
    let mut cfg = GraphConfig::undirected_map(n);
    cfg.device_words = 1 << 20;
    let mut g = DynGraph::with_uniform_buckets(cfg, n, 1);
    let mut edges = vec![];
    for u in 0..n {
        for k in 1..=5 {
            edges.push(Edge::weighted(u, (u + k) % n, u + k));
        }
    }
    g.insert_edges(&edges);
    g.device_mut().set_policy(ExecPolicy::Threaded(4));
    let victims: Vec<u32> = (0..n).step_by(3).collect();
    g.delete_vertices(&victims);

    let victim_set: std::collections::HashSet<u32> = victims.iter().copied().collect();
    for &v in &victims {
        assert_eq!(g.degree(v), 0);
    }
    for u in 0..n {
        for d in g.neighbor_ids(&g.pin_read(), u) {
            assert!(!victim_set.contains(&d), "{u} -> deleted {d} survived");
        }
    }
}

#[test]
fn concurrent_duplicate_heavy_batch_stays_unique() {
    // Stress the first-empty-CAS-retry uniqueness protocol: a batch where
    // every warp inserts the same few edges, on racing threads.
    let n = 8u32;
    let mut cfg = GraphConfig::directed_map(n);
    cfg.device_words = 1 << 18;
    let mut g = DynGraph::with_uniform_buckets(cfg, n, 1);
    g.device_mut().set_policy(ExecPolicy::Threaded(4));
    let batch: Vec<Edge> = (0..4096)
        .map(|i| Edge::weighted(i % 4, 4 + (i % 3), 1))
        .collect();
    g.insert_edges(&batch);
    g.check_invariants();
    for u in 0..4 {
        assert_eq!(g.degree(u), 3, "vertex {u} must store exactly 3 edges");
    }
}
