//! Causal request tracing acceptance tests (DESIGN.md §19): every charged
//! kernel span that ran on behalf of client traffic carries a causal
//! parent chain back to a client op, per-op latency attribution components
//! sum to the end-to-end modeled latency (and conserve the per-flush
//! modeled time they were apportioned from), flow events round-trip
//! through the Chrome-trace JSON across shard pids, and fault/rebuild
//! paths surface as backoff / `router.rebuild` components in the tail
//! exemplars.
//!
//! Tests that install the process-global default profiler serialize on
//! one mutex, same as tests/profiler.rs.

use dynamic_graphs_gpu::gpu_sim::profiler::set_default_profiler;
use dynamic_graphs_gpu::gpu_sim::{
    assemble_lifecycles, chrome_trace_json, op_flow_events, parse_chrome_trace, CostModel,
    ProfilerConfig, TraceCtx,
};
use dynamic_graphs_gpu::prelude::*;
use dynamic_graphs_gpu::router::OpTraceRecord;
use std::collections::BTreeSet;
use std::sync::Mutex;

const N: u32 = 256;

/// Serializes every test in this file (see module docs).
static GLOBAL_PROFILER_LOCK: Mutex<()> = Mutex::new(());

struct GlobalProfiler {
    _guard: std::sync::MutexGuard<'static, ()>,
}

impl GlobalProfiler {
    fn install(cfg: ProfilerConfig) -> Self {
        let guard = GLOBAL_PROFILER_LOCK
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        set_default_profiler(Some(cfg));
        GlobalProfiler { _guard: guard }
    }
}

impl Drop for GlobalProfiler {
    fn drop(&mut self) {
        set_default_profiler(None);
    }
}

fn cfg() -> GraphConfig {
    GraphConfig::directed_map(N)
        .with_device_words(1 << 18)
        .with_pool_slabs(1 << 8)
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// Seeded rounds of mixed traffic: inserts are fresh random pairs,
/// deletes target previously-inserted edges.
fn rounds(seed: u64, n_rounds: usize, per_round: usize) -> Vec<Vec<Update>> {
    let mut rng = seed;
    let mut live: Vec<(u32, u32)> = Vec::new();
    (0..n_rounds)
        .map(|_| {
            let mut round = Vec::with_capacity(per_round);
            for i in 0..per_round {
                if i % 4 == 3 && !live.is_empty() {
                    let (u, v) = live[(splitmix64(&mut rng) % live.len() as u64) as usize];
                    round.push(Update::Delete(Edge::new(u, v)));
                } else {
                    let u = (splitmix64(&mut rng) % N as u64) as u32;
                    let mut v = (splitmix64(&mut rng) % N as u64) as u32;
                    if v == u {
                        v = (v + 1) % N;
                    }
                    let w = (splitmix64(&mut rng) % 97 + 1) as u32;
                    live.push((u, v));
                    round.push(Update::Insert(Edge::weighted(u, v, w)));
                }
            }
            round
        })
        .collect()
}

fn component_sum(r: &OpTraceRecord) -> u64 {
    r.queue_ns + r.coalesce_ns + r.backoff_ns + r.kernel_ns + r.degraded_ns
}

/// The seeded mixed-churn acceptance scenario (4 shards, 8 writer
/// sessions, 2 reader sessions): every ctx-stamped charged span resolves
/// to a real client op, parent chains are acyclic all the way to the
/// root, attribution components sum to the end-to-end modeled latency,
/// and the kernel+backoff nanoseconds handed to ops conserve the
/// per-flush modeled time they were split from.
#[test]
fn churn_spans_resolve_to_client_ops_and_attribution_conserves() {
    let _prof = GlobalProfiler::install(ProfilerConfig::default());
    let shards = 4;
    let sessions = 8;
    let readers = 2;
    let g = ShardedGraph::new(shards, cfg());
    let router = BatchRouter::new(&g);

    let traffic = rounds(0x7A7A, 4, 160);
    let mut submitted: BTreeSet<u64> = BTreeSet::new();
    let mut flush_modeled_ns = 0.0f64;
    let mut rng = 0x51u64;
    for round in &traffic {
        for (i, &u) in round.iter().enumerate() {
            submitted.insert(router.submit(i % sessions, u));
        }
        // Traced reads between submit and flush: they advance the modeled
        // clock, so the flushed updates accrue nonzero queue latency.
        for i in 0..4usize {
            let u = (splitmix64(&mut rng) % N as u64) as u32;
            let v = (splitmix64(&mut rng) % N as u64) as u32;
            let (_, q) = router.edge_exists_traced(sessions + (i % readers), u, v);
            assert_eq!(q, ReadQuality::Exact);
        }
        let report = router.flush();
        assert!(report.is_complete(), "healthy replay must fully apply");
        for so in &report.shards {
            flush_modeled_ns += so.modeled_s * 1e9;
        }
    }

    // Every submitted update completed and landed in the op log.
    let records = router.op_records();
    let done: BTreeSet<u64> = records.iter().filter(|r| r.done).map(|r| r.op).collect();
    for op in &submitted {
        assert!(done.contains(op), "op {op} never completed");
    }

    // Attribution: components sum to the op's end-to-end modeled latency,
    // and at least one flushed update observed nonzero queue time.
    for r in &records {
        assert_eq!(
            component_sum(r),
            r.total_ns(),
            "op {}: {{queue, coalesce, backoff, kernel, degraded}} must sum \
             to the end-to-end total",
            r.op
        );
        assert!(!r.spans.is_empty(), "op {}: empty span chain", r.op);
    }
    assert!(
        records.iter().any(|r| r.queue_ns > 0),
        "reads between submit and flush advance the modeled clock, so \
         some update must accrue queue latency"
    );
    assert!(records.iter().any(|r| r.kind == "query"));

    // Conservation: the kernel+backoff nanoseconds distributed across
    // update ops equal the summed per-flush modeled time, up to 1 ns of
    // rounding per (op, shard) share handed out (an op waits on at most
    // two shards).
    let attributed: u64 = records
        .iter()
        .filter(|r| r.kind != "query")
        .map(|r| r.kernel_ns + r.backoff_ns)
        .sum();
    let slack = 2.0 * records.len() as f64;
    assert!(
        (attributed as f64 - flush_modeled_ns).abs() <= slack,
        "attributed {attributed} ns vs flushed {flush_modeled_ns:.1} ns \
         (slack {slack} ns)"
    );

    // Causality: every charged span stamped with a client session resolves
    // to an op from the log, and parent chains assemble without cycles.
    let all_ops: BTreeSet<u64> = records.iter().map(|r| r.op).collect();
    let events = g.group().chrome_events(0);
    let mut traced_spans = 0usize;
    for e in events.iter().filter(|e| e.ph == "X") {
        let Some(op) = e.trace_arg("trace_op") else {
            continue;
        };
        if e.trace_arg("trace_session") == Some(TraceCtx::NO_SESSION) {
            continue; // router-internal direct dispatch (validate, counts)
        }
        traced_spans += 1;
        assert!(
            all_ops.contains(&op),
            "span {:?} claims op {op}, which no client submitted",
            e.name
        );
    }
    assert!(traced_spans > 0, "no ctx-stamped spans were charged");
    let lifecycles = assemble_lifecycles(&events).expect("parent chains are acyclic");
    assert!(!lifecycles.is_empty());
}

/// Flow events synthesized from a real router run connect one op's spans
/// across shard pids, and the whole event stream (spans + flows)
/// round-trips exactly through the Chrome-trace JSON.
#[test]
fn flow_events_cross_shard_pids_and_round_trip() {
    let _prof = GlobalProfiler::install(ProfilerConfig::default());
    let g = ShardedGraph::new(3, cfg());
    let router = BatchRouter::new(&g);
    let traffic = rounds(0xF10, 2, 90);
    for round in &traffic {
        for (i, &u) in round.iter().enumerate() {
            router.submit(i % 4, u);
        }
        assert!(router.flush().is_complete());
    }
    // A fan-out read dispatches under one ctx on every shard: the flow for
    // that op must therefore hop across pids.
    let _ = g.num_edges();

    let mut events = g.group().chrome_events(0);
    let flows = op_flow_events(&events);
    assert!(!flows.is_empty(), "router traffic must produce flows");
    let mut cross_pid = false;
    for f in &flows {
        assert!(matches!(f.ph.as_str(), "s" | "t" | "f"));
        let op = f.flow_id.expect("flow events carry their op as flow id");
        let pids: BTreeSet<u64> = flows
            .iter()
            .filter(|g| g.flow_id == Some(op))
            .map(|g| g.pid)
            .collect();
        cross_pid |= pids.len() >= 2;
    }
    assert!(
        cross_pid,
        "at least one op's flow spans multiple shard pids"
    );

    events.extend(flows);
    let json = chrome_trace_json(&events);
    let parsed = parse_chrome_trace(&json).expect("trace JSON parses");
    assert_eq!(parsed, events, "Chrome-trace round-trip must be exact");
}

/// A transient kernel fault heals under the retry policy; the backoff the
/// router sat through is charged to the ops that were waiting, and the
/// slowest of them surfaces in the tail exemplars with a nonzero backoff
/// component.
#[test]
fn transient_fault_backoff_lands_in_tail_exemplars() {
    let _prof = GlobalProfiler::install(ProfilerConfig::default());
    let g = ShardedGraph::new(2, cfg());
    g.group()
        .device(1)
        .set_fault_plan(FaultPlan::transient_kernel(1, 3));
    let router = BatchRouter::with_policy(
        &g,
        RetryPolicy {
            max_retries: 3,
            base_backoff_s: 1e-4,
            multiplier: 2.0,
        },
    );
    let traffic = rounds(0xBAC0, 1, 80);
    for (i, &u) in traffic[0].iter().enumerate() {
        router.submit(i % 4, u);
    }
    let report = router.flush();
    assert!(report.is_complete(), "transient fault heals within budget");

    let exemplars = router.tail_exemplars();
    assert!(!exemplars.is_empty());
    let with_backoff = exemplars.iter().find(|r| r.backoff_ns > 0);
    let victim = with_backoff.expect("a tail exemplar shows the backoff component");
    assert_eq!(component_sum(victim), victim.total_ns());
    assert!(
        victim.spans.iter().any(|s| s.contains("backoff")),
        "the exemplar's span chain names the backoff: {:?}",
        victim.spans
    );

    // The attribution table and exemplars render in the merged report.
    let rendered = router.trace_report(&CostModel::titan_v()).render();
    assert!(rendered.contains("op attribution"));
    assert!(rendered.contains("tail exemplars"));
}

/// A lost shard's held ops stay open across the outage and settle at
/// journal rebuild: the rebuild duration is charged to them and their
/// lifecycle records a `router.rebuild` span.
#[test]
fn rebuild_settles_held_ops_with_a_rebuild_span() {
    let _prof = GlobalProfiler::install(ProfilerConfig::default());
    let shards = 3;
    let victim = 1usize;
    let g = ShardedGraph::new(shards, cfg());
    let router = BatchRouter::new(&g);
    let traffic = rounds(0xDEAD, 3, 100);
    let mut submitted: BTreeSet<u64> = BTreeSet::new();
    for (r, round) in traffic.iter().enumerate() {
        if r == 1 {
            g.group()
                .device(victim)
                .set_fault_plan(FaultPlan::device_lost_at(1));
        }
        for (i, &u) in round.iter().enumerate() {
            submitted.insert(router.submit(i % 4, u));
        }
        let report = router.flush();
        if r >= 1 {
            assert!(!report.is_complete(), "victim work is held");
        }
    }
    let held_before: Vec<u64> = {
        let done: BTreeSet<u64> = router
            .op_records()
            .iter()
            .filter(|r| r.done)
            .map(|r| r.op)
            .collect();
        submitted
            .iter()
            .copied()
            .filter(|o| !done.contains(o))
            .collect()
    };
    assert!(!held_before.is_empty(), "the outage must strand some ops");

    let rebuilt = router.rebuild_downed().expect("rebuild passes the audit");
    assert_eq!(rebuilt, vec![victim]);

    let records = router.op_records();
    let done: BTreeSet<u64> = records.iter().filter(|r| r.done).map(|r| r.op).collect();
    for op in &held_before {
        assert!(done.contains(op), "op {op} still open after rebuild");
    }
    let rebuilt_ops: Vec<&OpTraceRecord> = records
        .iter()
        .filter(|r| r.spans.iter().any(|s| s.contains("router.rebuild")))
        .collect();
    assert!(
        !rebuilt_ops.is_empty(),
        "settled ops record the rebuild span that completed them"
    );
    for r in &rebuilt_ops {
        assert_eq!(component_sum(r), r.total_ns());
    }
    assert!(
        router.tail_exemplars().iter().any(|r| r
            .spans
            .iter()
            .any(|s| s.contains("router.rebuild"))
            || r.backoff_ns > 0),
        "a tail exemplar shows a backoff or rebuild component"
    );
}
