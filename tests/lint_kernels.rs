//! Integration tests for the kernel-lint static-analysis engine.
//!
//! The engine (`tools/lint/`) is mounted directly, the same way the
//! `lint-kernels` binary mounts it, so these tests exercise the real
//! lexer → parser → effects → rules → report pipeline:
//!
//! - every seeded fixture under `tests/fixtures/lint/` must produce
//!   *exactly* the findings its `//@ expect: RULE@LINE` directives
//!   declare (negative fixtures), or none at all (`//@ expect-clean`
//!   compliant twins);
//! - the workspace report must stay within the `lint-allow.txt` ratchet
//!   and its JSON export must round-trip byte-identically;
//! - deleting the pin argument from the DynGraph query path must make
//!   the R8 guard-liveness check fail (the protocol the lint guards).

#[path = "../tools/lint/mod.rs"]
mod lint;

use lint::report::Allowlist;
use lint::rules::ScannedFile;
use std::collections::BTreeSet;
use std::path::Path;

/// One parsed fixture: the virtual workspace path it claims (rule scopes
/// key off the path), the findings it declares, and its source.
struct Fixture {
    file: String,
    path: String,
    expects: BTreeSet<(String, u32)>,
    expect_clean: bool,
    src: String,
}

fn load_fixtures() -> Vec<Fixture> {
    let dir = Path::new("tests/fixtures/lint");
    let mut paths: Vec<_> = std::fs::read_dir(dir)
        .expect("tests/fixtures/lint must exist")
        .map(|e| e.expect("readable fixture entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "rs"))
        .collect();
    paths.sort();
    assert!(!paths.is_empty(), "no lint fixtures found");
    let mut fixtures = Vec::new();
    for p in paths {
        let src = std::fs::read_to_string(&p).expect("readable fixture");
        let mut path = String::new();
        let mut expects = BTreeSet::new();
        let mut expect_clean = false;
        for line in src.lines() {
            let Some(rest) = line.strip_prefix("//@") else {
                continue;
            };
            let rest = rest.trim();
            if let Some(v) = rest.strip_prefix("path:") {
                path = v.trim().to_string();
            } else if let Some(v) = rest.strip_prefix("expect:") {
                let (rule, at) = v
                    .trim()
                    .split_once('@')
                    .expect("directive form is `//@ expect: RULE@LINE`");
                expects.insert((rule.to_string(), at.parse().expect("line number")));
            } else if rest == "expect-clean" {
                expect_clean = true;
            } else {
                panic!("{}: unknown directive `//@ {rest}`", p.display());
            }
        }
        let file = p.file_name().unwrap().to_string_lossy().to_string();
        assert!(!path.is_empty(), "{file}: missing `//@ path:` directive");
        assert!(
            expect_clean == expects.is_empty(),
            "{file}: declare either `//@ expect:` findings or `//@ expect-clean`"
        );
        fixtures.push(Fixture {
            file,
            path,
            expects,
            expect_clean,
            src,
        });
    }
    fixtures
}

/// Analyze one fixture in isolation (its own effect index) and return the
/// (rule, line) set of findings.
fn findings_of(fx: &Fixture) -> BTreeSet<(String, u32)> {
    let sf = ScannedFile::new(&fx.path, &fx.src);
    let report = lint::analyze(&[sf]);
    for f in &report.findings {
        assert_eq!(
            f.path, fx.path,
            "{}: finding attributed to the wrong path",
            fx.file
        );
    }
    report
        .findings
        .iter()
        .map(|f| (f.rule.clone(), f.line))
        .collect()
}

/// Every rule R1–R10 has a negative fixture, every negative fixture is
/// flagged with exactly the declared rule ids at exactly the declared
/// lines — no misses, no extras.
#[test]
fn violating_fixtures_are_flagged_exactly() {
    let fixtures = load_fixtures();
    let mut rules_covered = BTreeSet::new();
    for fx in fixtures.iter().filter(|f| !f.expect_clean) {
        let got = findings_of(fx);
        assert_eq!(
            got, fx.expects,
            "{}: findings diverge from the fixture's directives",
            fx.file
        );
        rules_covered.extend(fx.expects.iter().map(|(r, _)| r.clone()));
    }
    for rule in lint::rules::RULES.iter() {
        assert!(
            rules_covered.contains(rule.id),
            "no negative fixture covers {}",
            rule.id
        );
    }
}

/// Every compliant twin passes completely clean: the new rules must not
/// flag protocol-respecting code.
#[test]
fn compliant_twins_pass_clean() {
    let fixtures = load_fixtures();
    let twins: Vec<_> = fixtures.iter().filter(|f| f.expect_clean).collect();
    assert!(twins.len() >= 3, "expect compliant twins for R8/R9/R10");
    for fx in twins {
        let got = findings_of(fx);
        assert!(
            got.is_empty(),
            "{}: compliant twin produced findings {got:?}",
            fx.file
        );
    }
}

/// The workspace itself stays within the ratcheted budget, and the
/// report's JSON export survives parse → rebuild → re-render with
/// byte-identical output (the `TraceReport` discipline).
#[test]
fn workspace_is_within_budget_and_report_round_trips() {
    let files = lint::scan_workspace(Path::new(".")).expect("workspace scan");
    assert!(files.len() > 50, "scan saw only {} files", files.len());
    let mut report = lint::analyze(&files);
    let allow_text = std::fs::read_to_string("lint-allow.txt").expect("lint-allow.txt");
    let allow = Allowlist::parse(&allow_text).expect("allowlist parses");
    report.apply_allowlist(&allow);
    assert!(
        report.ok(),
        "workspace lint outside the budget:\n{}",
        report.render()
    );

    let rendered = report.to_json().render_pretty();
    let parsed = gpu_sim::Json::parse(&rendered).expect("report JSON parses back");
    let rebuilt = lint::report::LintReport::from_json(&parsed).expect("report JSON rebuilds");
    assert_eq!(
        rebuilt.to_json().render_pretty(),
        rendered,
        "report JSON round-trip is not byte-identical"
    );
}

/// The acceptance criterion for R8: take the real query path, delete the
/// pin argument (and the `check_pin` calls that would not compile without
/// it), and the guard-liveness rule must fire on the chain-walking
/// launches. The unmodified file must stay clean.
#[test]
fn deleting_the_pin_argument_trips_r8() {
    let src = std::fs::read_to_string("crates/core/src/query.rs").expect("query.rs");
    let pristine = ScannedFile::new("crates/core/src/query.rs", &src);
    let report = lint::analyze(&[pristine]);
    assert!(
        !report
            .findings
            .iter()
            .any(|f| f.rule == "R7" || f.rule == "R8"),
        "pristine query path must be pin-clean"
    );

    let stripped: String = src
        .lines()
        .filter(|l| !l.contains("check_pin"))
        .map(|l| {
            l.replace(", pin: &ReadGuard", "")
                .replace("pin: &ReadGuard", "")
        })
        .collect::<Vec<_>>()
        .join("\n");
    assert_ne!(src, stripped, "the strip must actually remove pin plumbing");
    let broken = ScannedFile::new("crates/core/src/query.rs", &stripped);
    let report = lint::analyze(&[broken]);
    let r8: Vec<_> = report.findings.iter().filter(|f| f.rule == "R8").collect();
    assert!(
        !r8.is_empty(),
        "R8 must flag query launches once the pin argument is gone"
    );
}
