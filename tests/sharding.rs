//! Cross-layer sharding conformance: a seeded churn stream replayed at
//! 1/2/4 shards must be indistinguishable — byte-identical query results —
//! from the same stream on an unsharded `DynGraph`, the batch router must
//! commute with direct application, and a single shard hitting its memory
//! ceiling must recover via `retry_suffix` while the other shards proceed.

use router::{shard_of, BatchRouter, ShardedGraph, ShardedValidationError, Update};
use slabgraph::{DynGraph, Edge, FaultPlan, GraphConfig};

const N_VERTICES: u32 = 512;

fn config() -> GraphConfig {
    GraphConfig::directed_map(N_VERTICES)
        .with_device_words(1 << 20)
        .with_pool_slabs(1 << 10)
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

fn random_pair(rng: &mut u64) -> (u32, u32) {
    let u = (splitmix64(rng) % N_VERTICES as u64) as u32;
    let mut v = (splitmix64(rng) % N_VERTICES as u64) as u32;
    if v == u {
        v = (v + 1) % N_VERTICES;
    }
    (u, v)
}

struct Round {
    ins: Vec<Edge>,
    del: Vec<Edge>,
    qry: Vec<(u32, u32)>,
}

/// A deterministic mixed stream: inserts are random, deletes and half the
/// queries sample previously-inserted edges.
fn stream(seed: u64, rounds: usize, ops: usize) -> Vec<Round> {
    let mut rng = seed;
    let mut live: Vec<(u32, u32)> = Vec::new();
    let mut out = Vec::new();
    for _ in 0..rounds {
        let ins: Vec<Edge> = (0..ops / 2)
            .map(|_| Edge::from(random_pair(&mut rng)))
            .collect();
        live.extend(ins.iter().map(|e| (e.src, e.dst)));
        let del: Vec<Edge> = (0..ops / 4)
            .map(|_| Edge::from(live[(splitmix64(&mut rng) % live.len() as u64) as usize]))
            .collect();
        let qry: Vec<(u32, u32)> = (0..ops / 4)
            .map(|i| {
                if i % 2 == 0 {
                    live[(splitmix64(&mut rng) % live.len() as u64) as usize]
                } else {
                    random_pair(&mut rng)
                }
            })
            .collect();
        out.push(Round { ins, del, qry });
    }
    out
}

#[test]
fn churn_replay_is_byte_identical_across_shard_counts() {
    let rounds = stream(0xB10C, 3, 400);
    // Reference: the same stream on one unsharded graph, collecting every
    // query result round by round.
    let reference = DynGraph::new(config());
    let mut expected: Vec<Vec<bool>> = Vec::new();
    for r in &rounds {
        reference.insert_edges(&r.ins);
        reference.delete_edges(&r.del);
        expected.push(reference.edges_exist(&reference.pin_read(), &r.qry));
    }

    for shards in [1usize, 2, 4] {
        let g = ShardedGraph::new(shards, config());
        for (r, want) in rounds.iter().zip(&expected) {
            g.insert_edges(&r.ins);
            g.delete_edges(&r.del);
            assert_eq!(
                &g.edges_exist(&r.qry),
                want,
                "{shards}-shard query results diverged from unsharded replay"
            );
        }
        assert_eq!(g.num_edges(), reference.num_edges(), "{shards} shards");
        for v in 0..N_VERTICES {
            assert_eq!(
                g.degree(v),
                reference.degree(v),
                "degree({v}), {shards} shards"
            );
            let mut a = g.neighbor_ids(v);
            let mut b = reference.neighbor_ids(&reference.pin_read(), v);
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "neighbors({v}), {shards} shards");
        }
        g.validate()
            .expect("cross-shard audit must pass after the replay");
    }
}

#[test]
fn routed_stream_matches_direct_application() {
    let rounds = stream(0x5EED, 2, 300);
    let reference = DynGraph::new(config());
    let g = ShardedGraph::new(3, config());
    let router = BatchRouter::new(&g);
    for r in &rounds {
        reference.insert_edges(&r.ins);
        reference.delete_edges(&r.del);
        // Spread the same updates over 4 sessions; within a flush all
        // inserts apply before all deletes, matching the direct order.
        for (i, &e) in r.ins.iter().enumerate() {
            router.submit(i % 4, Update::Insert(e));
        }
        for (i, &e) in r.del.iter().enumerate() {
            router.submit(i % 4, Update::Delete(e));
        }
        let report = router.flush();
        assert!(report.is_complete(), "no memory pressure in this test");
        assert_eq!(report.updates, r.ins.len() + r.del.len());
        assert_eq!(
            g.edges_exist(&r.qry),
            reference.edges_exist(&reference.pin_read(), &r.qry)
        );
    }
    assert_eq!(g.num_edges(), reference.num_edges());
    g.validate().expect("audit after routed stream");
}

#[test]
fn single_shard_oom_recovers_while_others_proceed() {
    let rounds = stream(0xFA17, 1, 600);
    let round = &rounds[0];
    let reference = DynGraph::new(config());
    reference.insert_edges(&round.ins);

    let g = ShardedGraph::new(4, config());
    // Inject an allocation fault on shard 2 only: its first refill attempt
    // fails, leaving a pending suffix; shards 0/1/3 are untouched.
    let faulty = 2usize;
    g.group()
        .device(faulty)
        .set_fault_plan(FaultPlan::fail_nth(1));
    let router = BatchRouter::new(&g);
    for (i, &e) in round.ins.iter().enumerate() {
        router.submit(i % 3, Update::Insert(e));
    }
    let report = router.flush();
    assert!(!report.is_complete());
    assert_eq!(report.incomplete_shards(), vec![faulty]);
    for outcome in &report.shards {
        if outcome.shard != faulty {
            assert!(
                outcome.is_complete(),
                "shard {} must proceed despite shard {faulty}'s fault",
                outcome.shard
            );
        } else {
            let insert = outcome.insert.as_ref().expect("insert batch routed");
            assert!(insert.error.is_some(), "fault surfaces as an alloc error");
            assert!(!insert.pending.is_empty(), "unapplied suffix reported");
            assert_eq!(
                insert.completed + insert.pending.len(),
                insert.attempted,
                "outcome partitions the batch"
            );
        }
    }

    // Clear the fault and resume exactly the pending suffix.
    g.group().device(faulty).clear_fault_plan();
    let recovered = router.recover(&report);
    assert!(recovered.is_complete(), "{recovered:?}");

    assert_eq!(g.num_edges(), reference.num_edges());
    let qry: Vec<(u32, u32)> = round.ins.iter().map(|e| (e.src, e.dst)).collect();
    assert_eq!(
        g.edges_exist(&qry),
        reference.edges_exist(&reference.pin_read(), &qry)
    );
    g.validate().expect("audit after recovery");
}

#[test]
fn audit_detects_orphan_replicas() {
    let g = ShardedGraph::new(4, config());
    g.insert_edges(&[Edge::new(1, 2), Edge::new(3, 4)]);
    g.validate().expect("clean after normal inserts");

    // Bypass the router and write a stray edge directly into a shard that
    // owns neither endpoint — the audit must catch it.
    let src = 5u32;
    let dst = 6u32;
    let stranger = (0..4)
        .find(|&s| s != shard_of(src, 4) && s != shard_of(dst, 4))
        .expect("some shard owns neither endpoint");
    g.shard(stranger).insert_edges(&[Edge::new(src, dst)]);
    match g.validate() {
        Err(ShardedValidationError::OrphanReplica {
            src: s,
            dst: d,
            shard,
        }) => {
            assert_eq!((s, d, shard), (src, dst, stranger));
        }
        other => panic!("audit should flag the stray replica, got {other:?}"),
    }
}
