//! Attribution invariants for the named-kernel trace registry: per-kernel
//! counters must always partition the global counters exactly, and the
//! per-kernel profile of a batched workload must not depend on the
//! executor (sequential vs. racing host threads).

use dynamic_graphs_gpu::gpu_sim::{CostModel, ExecPolicy, KernelStats, TraceReport};
use dynamic_graphs_gpu::prelude::*;

fn workload(policy: ExecPolicy) -> Vec<KernelStats> {
    let n = 128u32;
    let mut cfg = GraphConfig::directed_map(n);
    cfg.device_words = 1 << 20;
    let mut g = DynGraph::with_uniform_buckets(cfg, n, 1);
    g.device_mut().set_policy(policy);

    for round in 0..3u64 {
        let ins: Vec<Edge> = insert_batch(n, 800, round)
            .into_iter()
            .map(|(u, v)| Edge::weighted(u, v, u ^ v))
            .collect();
        g.insert_edges(&ins);
        let del: Vec<Edge> = insert_batch(n, 300, 90 + round)
            .into_iter()
            .map(|(u, v)| Edge::new(u, v))
            .collect();
        g.delete_edges(&del);
    }
    g.delete_vertices(&[1, 5, 9]);
    let _ = g.neighbors(&g.pin_read(), 3);
    let _ = g.edge_exists(&g.pin_read(), 2, 7);
    g.device().trace().kernels
}

#[test]
fn kernel_counters_partition_the_global_counters() {
    let n = 64u32;
    let mut cfg = GraphConfig::undirected_map(n);
    cfg.device_words = 1 << 20;
    let g = DynGraph::with_uniform_buckets(cfg, n, 1);
    let edges: Vec<Edge> = insert_batch(n, 500, 7)
        .into_iter()
        .map(|(u, v)| Edge::weighted(u, v, 1))
        .collect();
    g.insert_edges(&edges);
    g.delete_edges(&edges[..100]);
    g.delete_vertices(&[2, 4]);
    g.check_invariants();

    let trace = g.device().trace();
    assert_eq!(
        trace.kernel_sum(),
        trace.global,
        "per-kernel counters must sum to the global counters"
    );

    // And the derived report preserves the partition through rendering,
    // JSON, and back.
    let report = TraceReport::new(&trace, &CostModel::titan_v());
    assert_eq!(report.kernel_sum(), trace.global);
    let round = TraceReport::from_json(&report.to_json()).unwrap();
    assert_eq!(round, report);
    assert!(report.render().contains("edge_insert"));
}

#[test]
fn per_kernel_profile_is_executor_independent() {
    // Contention retries are charged per *logical* probe step (lost CAS
    // races abort their speculative charges and the re-probe charges what
    // a sequential loser would), so launches, warps, shuffles, and
    // allocation are exactly executor-independent. What remains is state
    // divergence, not retry charging: when racing warps claim slots in a
    // different order than the sequential executor, a key can settle one
    // slab earlier/later in its chain, shifting later walks to it by a
    // slab (±1 transaction, ±2 ballots each), and a cross-warp duplicate
    // race can move a group's two count-update atomics to a different
    // group (±2 atomics each). Both are bounded by the handful of
    // cross-warp duplicate keys per batch; we spec |Δ| ≤ max(16, 0.2 %)
    // per kernel for those three counters and require exact equality for
    // everything else.
    let bound = |seq: u64| 16u64.max(seq / 512);
    let within = |s: u64, t: u64| s.abs_diff(t) <= bound(s);
    let seq = workload(ExecPolicy::Sequential);
    for threads in [2, 4] {
        let thr = workload(ExecPolicy::Threaded(threads));
        assert_eq!(
            seq.len(),
            thr.len(),
            "threaded({threads}) registered a different kernel set"
        );
        for (s, t) in seq.iter().zip(&thr) {
            assert_eq!(s.name, t.name, "kernel registration order diverged");
            assert_eq!(
                (
                    s.counters.launches,
                    s.counters.warps,
                    s.counters.shuffles,
                    s.counters.words_allocated
                ),
                (
                    t.counters.launches,
                    t.counters.warps,
                    t.counters.shuffles,
                    t.counters.words_allocated
                ),
                "threaded({threads}) kernel {:?} launch-shape counters diverged",
                s.name
            );
            assert!(
                within(s.counters.transactions, t.counters.transactions)
                    && within(s.counters.atomics, t.counters.atomics)
                    && within(s.counters.ballots, t.counters.ballots),
                "threaded({threads}) kernel {:?} counters diverged beyond the \
                 placement-drift bound: seq {:?} vs threaded {:?}",
                s.name,
                s.counters,
                t.counters
            );
        }
    }
}

#[test]
fn every_launch_is_attributed_to_a_named_kernel() {
    // After a full workload, no counters may remain unattributed: the sum
    // of named-kernel launches equals the global launch count, and host
    // allocations are attributed to the designated host pseudo-kernel.
    let kernels = workload(ExecPolicy::Sequential);
    let names: Vec<&str> = kernels.iter().map(|k| k.name).collect();
    for expected in ["graph_init", "edge_insert", "edge_delete", "vertex_delete"] {
        assert!(
            names.contains(&expected),
            "expected kernel {expected:?} in {names:?}"
        );
    }
    assert!(
        names.contains(&dynamic_graphs_gpu::gpu_sim::HOST_KERNEL),
        "host-side allocations must be attributed to {:?}",
        dynamic_graphs_gpu::gpu_sim::HOST_KERNEL
    );
}

#[test]
fn report_json_round_trips_sanitizer_findings_exactly() {
    // Findings from a real sanitized run (not hand-built structs) must
    // survive render → JSON → parse with every provenance field intact.
    use dynamic_graphs_gpu::gpu_sim::{Device, DeviceConfig, SanitizerConfig};
    let dev =
        Device::with_config(DeviceConfig::new(1 << 12).with_sanitizer(SanitizerConfig::default()));
    let c = dev.alloc_words(1, 1);
    dev.arena().fill(c, 1, 0);
    dev.launch_tasks("torn", 64, |warp| {
        let v = warp.read_word(c);
        warp.write_word(c, v + 1);
    });
    let findings = dev.sanitizer_findings();
    assert!(!findings.is_empty());

    let report =
        TraceReport::new(&dev.trace(), &CostModel::titan_v()).with_findings(findings.clone());
    let json = report.to_json();
    assert!(json.contains("\"sanitizer_findings\""));
    let round = TraceReport::from_json(&json).unwrap();
    assert_eq!(round, report, "exact round-trip including findings");
    assert_eq!(round.findings, findings);
    assert!(report
        .render()
        .contains(&format!("sanitizer findings ({})", findings.len())));
}
