//! Integration fixtures for the shadow-memory sanitizer (DESIGN.md §13):
//! negative kernels that **must** be flagged with full provenance, clean
//! runs over all four backends that must not be, and proof that an
//! attached sanitizer never perturbs performance counters.
//!
//! These fixtures attach their own non-escalating sanitizer at runtime,
//! so they pass with and without the `sanitize` feature. The clean-run
//! tests get their teeth from the sanitized CI stage, where every device
//! in the workspace carries an escalating sanitizer.

use dynamic_graphs_gpu::algos;
use dynamic_graphs_gpu::baselines::{Csr, FaimGraph, Hornet};
use dynamic_graphs_gpu::gpu_sim::{Addr, Device, DeviceConfig, FindingKind, SanitizerConfig};
use dynamic_graphs_gpu::graph_gen::{fixtures, mirror};
use dynamic_graphs_gpu::prelude::*;
use dynamic_graphs_gpu::slab_alloc::SlabAllocator;

fn sanitized_device(words: usize) -> Device {
    Device::with_config(DeviceConfig::new(words).with_sanitizer(SanitizerConfig::default()))
}

/// Negative fixture 1: a torn read-modify-write counter. Every warp does
/// a plain read followed by a plain write of the same word; the model
/// must flag the conflict even under the sequential executor, with both
/// sides' provenance.
#[test]
fn torn_counter_fixture_is_flagged_with_provenance() {
    let dev = sanitized_device(1 << 12);
    let c = dev.alloc_words(1, 1);
    dev.arena().fill(c, 1, 0);
    dev.launch_tasks("torn_counter", 96, |warp| {
        let v = warp.read_word(c);
        warp.write_word(c, v + 1);
    });
    let f = dev.sanitizer_findings();
    assert!(!f.is_empty(), "torn counter must be detected");
    for x in &f {
        assert_eq!(x.addr, c, "{x}");
        assert_eq!(x.kernel, "torn_counter", "{x}");
        assert_eq!(x.other_kernel, "torn_counter", "{x}");
        assert_ne!(x.warp, x.other_warp, "races are cross-warp: {x}");
        assert!(
            matches!(
                x.kind,
                FindingKind::RaceReadWrite | FindingKind::RaceWriteWrite
            ),
            "{x}"
        );
    }
}

/// Negative fixture 2: reading a dynamic slab after it was freed. The
/// slab sits in quarantine (bit still claimed), so only the shadow state
/// can catch the access — with the allocating and freeing kernels named.
#[test]
fn freed_slab_read_is_flagged_as_use_after_free() {
    let dev = sanitized_device(1 << 16);
    let alloc = SlabAllocator::new(&dev, 64);
    let slab = std::sync::Mutex::new(0u32);
    dev.launch_warps("writer_kernel", 1, |warp| {
        *slab.lock().unwrap() = alloc.allocate(warp);
    });
    let a = *slab.lock().unwrap();
    dev.launch_warps("free_kernel", 1, |warp| {
        alloc.free(warp, a).unwrap();
    });
    dev.launch_warps("reader_kernel", 1, |warp| {
        let _ = warp.read_slab(a);
    });
    let f = dev.sanitizer_findings();
    let uaf: Vec<_> = f
        .iter()
        .filter(|x| x.kind == FindingKind::UseAfterFree)
        .collect();
    assert!(!uaf.is_empty(), "freed-slab read must be detected: {f:?}");
    let x = uaf[0];
    assert_eq!(x.addr, a);
    assert_eq!(x.kernel, "reader_kernel");
    assert_eq!(x.other_kernel, "writer_kernel", "allocation provenance");
    assert!(
        x.note.contains("free_kernel"),
        "free provenance: {}",
        x.note
    );
}

/// A double free is reported through the allocator's typed error *and*
/// recorded as a finding with both free sites' kernels.
#[test]
fn double_free_is_flagged_with_both_kernels() {
    let dev = sanitized_device(1 << 16);
    let alloc = SlabAllocator::new(&dev, 64);
    dev.launch_warps("df_kernel", 1, |warp| {
        let a = alloc.allocate(warp);
        alloc.free(warp, a).unwrap();
        assert!(matches!(
            alloc.free(warp, a),
            Err(AllocError::DoubleFree { addr }) if addr == a
        ));
    });
    let f = dev.sanitizer_findings();
    let df: Vec<_> = f
        .iter()
        .filter(|x| x.kind == FindingKind::DoubleFree)
        .collect();
    assert_eq!(df.len(), 1, "{f:?}");
    assert_eq!(df[0].kernel, "df_kernel");
    assert!(df[0].note.contains("df_kernel"), "{}", df[0].note);
}

/// Clean runs: the full read/compute surface of all four backends over
/// the shared fixture graph must produce zero findings. Under the
/// `sanitize` feature every backend's device escalates, so a violation
/// would also abort the run outright.
#[test]
fn clean_runs_of_all_four_backends_report_zero_findings() {
    let (n, e) = fixtures::fixture_edges();
    let sym = mirror(&e);
    let words = 1 << 20;
    let g = DynGraph::with_uniform_buckets(GraphConfig::undirected_set(n), n, 1);
    g.insert_edges(&e.iter().map(|&p| Edge::from(p)).collect::<Vec<_>>());
    let backends: Vec<Box<dyn GraphBackend>> = vec![
        Box::new(g),
        Box::new(Hornet::bulk_build(n, &sym, words)),
        Box::new(FaimGraph::build(n, &sym, words)),
        Box::new(Csr::build(n, &sym, words)),
    ];
    for mut b in backends {
        b.ensure_sorted();
        let _ = algos::tc(b.as_ref());
        let _ = algos::bfs_levels(b.as_ref(), 0);
        assert_eq!(
            b.device().sanitizer_findings(),
            vec![],
            "backend {}",
            b.name()
        );
    }
}

/// Clean run under churn: repeated insert/delete cycles over the dynamic
/// graph (exercising lazy table install, slab recycling through
/// quarantine, and rehashing) stay sanitizer-clean.
#[test]
fn dyn_graph_update_churn_is_sanitizer_clean() {
    let g = DynGraph::new(GraphConfig::directed_map(128));
    let edges: Vec<Edge> = (0..512u32)
        .map(|i| Edge::weighted(i % 97, (i * 31 + 7) % 97, i % 13))
        .collect();
    g.insert_edges(&edges);
    g.delete_edges(&edges[..256]);
    g.insert_edges(&edges[..128]);
    g.delete_vertices(&[3, 17, 41]);
    g.validate().expect("churned graph validates");
    assert_eq!(g.device().sanitizer_findings(), vec![]);
}

/// The sanitizer charges nothing: an identical allocator-heavy workload
/// run with and without an attached sanitizer produces byte-identical
/// global and per-kernel counters.
#[test]
fn attached_sanitizer_never_perturbs_counters() {
    let run = |sanitize: bool| {
        let mut cfg = DeviceConfig::new(1 << 16);
        if sanitize {
            cfg = cfg.with_sanitizer(SanitizerConfig::default());
        }
        let dev = Device::with_config(cfg);
        let alloc = SlabAllocator::new(&dev, 256);
        let slabs = std::sync::Mutex::new(Vec::new());
        dev.launch_tasks("mix", 64, |warp| {
            let a = alloc.allocate(warp);
            let lanes = warp.read_slab(a);
            warp.write_slab(a, &lanes);
            warp.atomic_add(a, 1);
            slabs.lock().unwrap().push(a);
        });
        let frees: Vec<Addr> = slabs.into_inner().unwrap();
        dev.launch_warps("reclaim", 1, |warp| {
            for &a in &frees {
                alloc.free(warp, a).unwrap();
            }
        });
        dev.trace()
    };
    let (on, off) = (run(true), run(false));
    assert_eq!(on.global, off.global);
    assert_eq!(on.kernels.len(), off.kernels.len());
    for (a, b) in on.kernels.iter().zip(off.kernels.iter()) {
        assert_eq!(a.name, b.name);
        assert_eq!(a.counters, b.counters);
    }
}
