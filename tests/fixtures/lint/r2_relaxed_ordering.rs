//@ path: crates/core/src/fixture_r2.rs
//@ expect: R2@5

fn bump(counter: &AtomicU32) {
    counter.fetch_add(1, Ordering::Relaxed);
}
