//@ path: crates/router/src/fanout.rs
//@ expect-clean

fn fanout(group: &DeviceGroup, updates: &[Update], ctx: TraceCtx) -> Vec<ShardOutcome> {
    let outcomes = group.dispatch(|_s, dev| {
        let _trace = dev.trace_scope(ctx);
        dev.launch_tasks("edge_insert", updates.len(), |warp| {
            let _ = warp.read_word(0);
        });
    });
    outcomes
}
