//@ path: crates/core/src/stats.rs
//@ expect: R8@7

fn audit(g: &DynGraph) {
    let pin = g.pin_read();
    drop(pin);
    g.dev.launch_warps("audit", 1, |warp| {
        let _ = warp.read_word(8);
    });
}
