//@ path: crates/core/src/fixture_r10.rs
//@ expect: R10@5
//@ expect: R10@17

pub fn insert_edges(dev: &Device, edges: &[Edge]) -> u32 {
    dev.launch_tasks("edge_insert", edges.len(), |warp| {
        let _ = warp.read_word(0);
    });
    edges.len() as u32
}

pub fn delete_edges(dev: &Device, n: u32) -> Option<u32> {
    dev.launch_tasks("edge_delete", 4, |warp| {
        let _ = warp.read_word(0);
    });
    if n == 0 {
        return Some(0);
    }
    dev.advance_era();
    Some(n)
}
