//@ path: crates/core/src/fixture_r4.rs
//@ expect: R4@6
//@ expect: R4@7

fn run(dev: &Device) {
    dev.phase("bulk_build");
    dev.counters().add_atomics(3);
}
