//@ path: crates/core/src/stats.rs
//@ expect-clean

fn audit(g: &DynGraph) {
    let pin = g.pin_read();
    g.check_pin(&pin);
    g.dev.launch_warps("audit", 1, |warp| {
        let _ = warp.read_word(8);
    });
    drop(pin);
}
