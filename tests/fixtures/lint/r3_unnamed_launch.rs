//@ path: crates/core/src/fixture_r3.rs
//@ expect: R3@5

fn go(dev: &Device, name: &str) {
    dev.launch_tasks(name, 4, |warp| {
        let _ = warp.read_word(0);
    });
}
