//@ path: crates/router/src/fanout.rs
//@ expect: R11@5

fn fanout(group: &DeviceGroup, updates: &[Update]) -> Vec<ShardOutcome> {
    let outcomes = group.dispatch(|_s, dev| {
        dev.launch_tasks("edge_insert", updates.len(), |warp| {
            let _ = warp.read_word(0);
        });
    });
    outcomes
}
