//@ path: crates/router/src/fixture_r5.rs
//@ expect: R5@5

fn build_shard() -> Device {
    Device::new(1 << 20)
}
