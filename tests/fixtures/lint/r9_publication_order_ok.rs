//@ path: crates/core/src/fixture_r9.rs
//@ expect-clean

fn publish(dev: &Device, slab: u32) {
    dev.launch_warps("chain_link", 1, |warp| {
        warp.atomic_cas(slab + NEXT_LANE, NULL_ADDR, fresh_slab(warp));
    });
}

fn walk(g: &DynGraph, pin: &ReadGuard, head: u32) {
    g.dev.launch_warps("chain_walk", 1, |warp| {
        let _ = warp.read_word(head + NEXT_LANE);
    });
}
