//@ path: crates/core/src/fixture_r1.rs
//@ expect: R1@5

fn stage(dev: &Device, base: u32) {
    dev.arena().store(base, 7);
}
