//@ path: crates/core/src/query.rs
//@ expect: R7@6
//@ expect: R8@6

fn degree_scan(dev: &Device) -> u32 {
    dev.launch_warps("degree_scan", 1, |warp| {
        let _ = warp.read_word(4);
    });
    0
}
