//@ path: crates/router/src/fixture_r6.rs
//@ expect: R6@5

fn apply(shard: &DynGraph, edges: &[Edge]) {
    shard.try_insert_edges(edges).unwrap();
}
