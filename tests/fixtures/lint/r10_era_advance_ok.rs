//@ path: crates/core/src/fixture_r10.rs
//@ expect-clean

pub fn insert_edges(dev: &Device, edges: &[Edge]) -> u32 {
    dev.launch_tasks("edge_insert", edges.len(), |warp| {
        let _ = warp.read_word(0);
    });
    dev.advance_era();
    edges.len() as u32
}
