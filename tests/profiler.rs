//! Integration fixtures for the device timeline profiler (DESIGN.md §14):
//! proof that an attached profiler never perturbs performance counters or
//! trace reports, span-per-launch accounting over a real graph workload,
//! exact Chrome-trace round-trips, and host-phase range recording.
//!
//! Tests that rely on the process-global default-profiler hook serialize
//! on one mutex: `DeviceConfig::default()` consults the global at
//! construction time, so concurrent tests would otherwise observe each
//! other's profilers.

use dynamic_graphs_gpu::backend::GraphBackend;
use dynamic_graphs_gpu::baselines::Hornet;
use dynamic_graphs_gpu::gpu_sim::profiler::set_default_profiler;
use dynamic_graphs_gpu::gpu_sim::{
    chrome_trace_json, parse_chrome_trace, Addr, CostModel, Device, DeviceConfig, ProfilerConfig,
    TraceReport,
};
use dynamic_graphs_gpu::graph_gen;
use dynamic_graphs_gpu::prelude::*;
use dynamic_graphs_gpu::slab_alloc::SlabAllocator;
use std::sync::Mutex;

/// Serializes every test in this file (see module docs).
static GLOBAL_PROFILER_LOCK: Mutex<()> = Mutex::new(());

/// Sets the global default profiler for a scope; always clears it on drop
/// so a failing test cannot leak a profiler into later constructions.
struct GlobalProfiler {
    _guard: std::sync::MutexGuard<'static, ()>,
}

impl GlobalProfiler {
    fn install(cfg: ProfilerConfig) -> Self {
        let guard = GLOBAL_PROFILER_LOCK
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        set_default_profiler(Some(cfg));
        GlobalProfiler { _guard: guard }
    }
}

impl Drop for GlobalProfiler {
    fn drop(&mut self) {
        set_default_profiler(None);
    }
}

/// A mixed slab workload touching every counter class, identical to the
/// sanitizer parity fixture's shape.
fn mixed_workload(dev: &Device) {
    let alloc = SlabAllocator::new(dev, 256);
    let slabs = Mutex::new(Vec::new());
    let _phase = dev.phase("mix_phase");
    dev.launch_tasks("mix", 64, |warp| {
        let a = alloc.allocate(warp);
        let lanes = warp.read_slab(a);
        warp.write_slab(a, &lanes);
        warp.atomic_add(a, 1);
        slabs.lock().unwrap().push(a);
    });
    let frees: Vec<Addr> = slabs.into_inner().unwrap();
    dev.launch_warps("reclaim", 1, |warp| {
        for &a in &frees {
            alloc.free(warp, a).unwrap();
        }
    });
}

/// The profiler obeys the same discipline as the sanitizer: attaching it
/// must leave the global counters, every kernel's counters, and the
/// rendered trace-report JSON byte-identical.
#[test]
fn attached_profiler_never_perturbs_counters() {
    let _lock = GLOBAL_PROFILER_LOCK
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner());
    let run = |profile: bool| {
        let mut cfg = DeviceConfig::new(1 << 16);
        if profile {
            cfg = cfg.with_profiler(ProfilerConfig::default());
        }
        let dev = Device::with_config(cfg);
        mixed_workload(&dev);
        dev.trace()
    };
    let (on, off) = (run(true), run(false));
    assert_eq!(on.global, off.global);
    assert_eq!(on.kernels.len(), off.kernels.len());
    for (a, b) in on.kernels.iter().zip(off.kernels.iter()) {
        assert_eq!(a.name, b.name);
        assert_eq!(a.counters, b.counters);
    }
    let model = CostModel::titan_v();
    assert_eq!(
        TraceReport::new(&on, &model).to_json(),
        TraceReport::new(&off, &model).to_json(),
        "bench-facing report JSON must be byte-identical"
    );
}

/// Span-per-launch accounting over a real dynamic-graph workload: the
/// slab structure and a baseline, both picking the profiler up from the
/// process-global default exactly as the `profile` bin attaches it.
#[test]
fn graph_workload_spans_partition_modeled_time() {
    let _global = GlobalProfiler::install(ProfilerConfig::default());
    let ds = graph_gen::catalog::dataset("luxembourg_osm")
        .unwrap()
        .generate(512, 7);
    let batch: Vec<(u32, u32)> = (0..64).map(|i| (i as u32 % 500, 500 + i as u32)).collect();

    let check = |mut g: Box<dyn GraphBackend>| {
        let name = g.name();
        g.insert_edges(&batch);
        g.delete_edges(&batch[..32]);
        let _ = g.edges_exist(&batch);
        let prof = g.device().profiler().expect("global default attached");
        let t = prof.timeline();
        let launches = g.device().counters().snapshot().launches;
        assert_eq!(
            t.stats.spans_recorded, launches,
            "{name}: one kernel span per launch"
        );
        assert_eq!(
            t.stats.spans_dropped + t.stats.host_spans_dropped,
            0,
            "{name}: nothing dropped at this scale"
        );
        let span_total: f64 = t.spans.iter().chain(&t.host_spans).map(|s| s.dur_s).sum();
        let modeled = CostModel::titan_v().seconds(&g.device().counters().snapshot());
        assert!(
            (span_total - modeled).abs() <= 5e-6,
            "{name}: spans sum to {span_total}s, model says {modeled}s"
        );
        assert!(
            (prof.now_s() - span_total).abs() <= 1e-12,
            "{name}: the modeled clock is exactly the span total"
        );
    };

    let cfg = slabgraph::GraphConfig::directed_map(ds.n_vertices);
    let edges: Vec<slabgraph::Edge> = graph_gen::weighted(&ds.edges, 3)
        .into_iter()
        .map(slabgraph::Edge::from)
        .collect();
    let slab = DynGraph::bulk_build(cfg, &edges);
    // The slab structure's phases arrive through the same profiler.
    let prof = slab.device().profiler().unwrap().clone();
    check(Box::new(slab));
    let phases: Vec<&str> = prof.timeline().phases.iter().map(|p| p.name).collect();
    for expected in ["bulk_build", "bulk_build.insert", "edge_insert_batch"] {
        assert!(
            phases.contains(&expected),
            "missing phase {expected}: {phases:?}"
        );
    }
    assert!(
        prof.metric_summaries()
            .iter()
            .any(|m| m.name == "slab_hash.probe_depth" && m.count > 0),
        "probe-depth histogram populated by queries"
    );

    check(Box::new(Hornet::bulk_build(
        ds.n_vertices,
        &ds.edges,
        1 << 20,
    )));
}

/// The Chrome Trace Event export round-trips exactly: every span, host
/// span, phase, and instant survives serialize → parse unchanged.
#[test]
fn chrome_trace_round_trips_exactly() {
    let _lock = GLOBAL_PROFILER_LOCK
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner());
    let dev =
        Device::with_config(DeviceConfig::new(1 << 16).with_profiler(ProfilerConfig::default()));
    mixed_workload(&dev); // spans + a phase + allocator instants
    let prof = dev.profiler().unwrap();
    let t = prof.timeline();
    assert!(!t.spans.is_empty() && !t.phases.is_empty() && !t.instants.is_empty());

    let events = prof.chrome_events(3);
    assert_eq!(
        events.len(),
        t.spans.len() + t.host_spans.len() + t.phases.len() + t.instants.len()
    );
    let json = chrome_trace_json(&events);
    let parsed = parse_chrome_trace(&json).expect("own export must parse");
    assert_eq!(parsed, events, "exact round-trip");
    assert!(parsed.iter().all(|e| e.pid == 3));

    // Malformed documents fail with named fields, never panic.
    assert!(parse_chrome_trace("{}").is_err());
    assert!(parse_chrome_trace("{\"traceEvents\": [{\"ph\": \"X\"}]}")
        .unwrap_err()
        .contains("dur"));
    assert!(parse_chrome_trace("{\"traceEvents\": [{\"ph\": \"i\"}]}")
        .unwrap_err()
        .contains("name"));
}

/// Host-phase guards: nested ranges land on the timeline with their
/// durations folded into per-phase `phase.<name>` histograms, and the
/// metric summaries surface p50/p95/max through the trace report.
#[test]
fn phase_guards_record_ranges_and_histograms() {
    let _lock = GLOBAL_PROFILER_LOCK
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner());
    let dev =
        Device::with_config(DeviceConfig::new(1 << 14).with_profiler(ProfilerConfig::default()));
    let p = dev.alloc_words(64, 32);
    {
        let _outer = dev.phase("outer");
        for _ in 0..3 {
            let _inner = dev.phase("inner");
            dev.memset("fill", p, 64, 0);
        }
    }
    let prof = dev.profiler().unwrap();
    let t = prof.timeline();
    let inner: Vec<_> = t.phases.iter().filter(|p| p.name == "inner").collect();
    let outer: Vec<_> = t.phases.iter().filter(|p| p.name == "outer").collect();
    assert_eq!(inner.len(), 3);
    assert_eq!(outer.len(), 1);
    let inner_total: f64 = inner.iter().map(|p| p.dur_s).sum();
    assert!(
        outer[0].dur_s >= inner_total - 1e-12,
        "outer range covers its nested ranges"
    );

    let summaries = prof.metric_summaries();
    let hist = summaries
        .iter()
        .find(|m| m.name == "phase.inner")
        .expect("per-phase histogram");
    assert_eq!(hist.count, 3);
    assert!(hist.max >= hist.p50);

    // The report renders the phase statistics for the summary table.
    let report = TraceReport::new(&dev.trace(), &CostModel::titan_v()).with_metrics(summaries);
    let rendered = report.render();
    assert!(rendered.contains("phase.inner"), "{rendered}");
    assert!(rendered.contains("p95"), "{rendered}");
}
