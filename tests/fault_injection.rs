//! Fault-injection and bounded-memory recovery tests.
//!
//! The failure model under test: with a device-memory budget or a
//! [`FaultPlan`] installed, batched mutations return partial
//! [`BatchOutcome`]s instead of panicking; the structure passes a full
//! [`DynGraph::validate`] audit immediately after every failure; and
//! retrying the reported suffix (after raising the budget / clearing the
//! plan) converges to exactly the state an unconstrained run produces.

use dynamic_graphs_gpu::gpu_sim::ExecPolicy;
use dynamic_graphs_gpu::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

const N: u32 = 24;

/// Host reference: directed weighted adjacency with replace semantics.
#[derive(Default)]
struct Reference {
    adj: HashMap<u32, HashMap<u32, u32>>,
}

impl Reference {
    fn insert(&mut self, u: u32, v: u32, w: u32) {
        if u != v {
            self.adj.entry(u).or_default().insert(v, w);
        }
    }
    fn delete(&mut self, u: u32, v: u32) {
        if let Some(m) = self.adj.get_mut(&u) {
            m.remove(&v);
        }
    }
}

/// Drive `outcome` to completion, auditing the graph after every partial
/// round. Returns the total `changed` accumulated across all rounds.
fn retry_to_completion(g: &DynGraph, mut outcome: BatchOutcome) -> u64 {
    let mut changed = outcome.changed;
    let mut rounds = 0u32;
    while !outcome.is_complete() {
        rounds += 1;
        assert!(rounds < 200, "retry did not converge: {outcome:?}");
        assert!(
            outcome.error.is_some(),
            "partial outcomes must carry their cause"
        );
        assert_eq!(
            outcome.completed + outcome.pending.len() + outcome.pending_vertices.len(),
            outcome.attempted,
            "outcome accounting"
        );
        g.validate()
            .expect("graph must stay consistent after a failed batch");
        outcome = g.retry_suffix(&outcome).expect("suffix must stay valid");
        changed += outcome.changed;
    }
    changed
}

fn sorted_neighbors(g: &DynGraph, v: u32) -> Vec<(u32, u32)> {
    let mut n = g.neighbors(&g.pin_read(), v);
    n.sort_unstable();
    n
}

/// Random insert/delete batches against a CPU oracle with OOM injected
/// every Nth slab allocation: every partial outcome must validate, and
/// retry-to-completion must land on the oracle's state.
#[test]
fn property_suite_every_nth_allocation_fails() {
    for every in [2u64, 3, 5] {
        let mut injected_total = 0;
        for seed in 0..6u64 {
            let mut rng = StdRng::seed_from_u64(seed * 31 + every);
            let g = DynGraph::new(GraphConfig::directed_map(N));
            let mut oracle = Reference::default();
            g.device().set_fault_plan(FaultPlan::fail_every_nth(every));

            for _ in 0..12 {
                if rng.random_range(0..10u32) < 7 {
                    let n = rng.random_range(1..24usize);
                    let mut batch: Vec<Edge> = (0..n)
                        .map(|_| {
                            // Bias sources onto a few vertices so chains
                            // exceed one slab and growth actually happens.
                            let u = rng.random_range(0..4u32);
                            let v = rng.random_range(0..N);
                            Edge::weighted(u, v, rng.random_range(1..100u32))
                        })
                        .collect();
                    // Intra-batch duplicates are order-ambiguous under
                    // partial retry (a pending early copy re-applies after
                    // a later copy already landed), so keep the last.
                    let mut keys = std::collections::HashSet::new();
                    batch.reverse();
                    batch.retain(|e| keys.insert((e.src, e.dst)));
                    batch.reverse();
                    let outcome = g.try_insert_edges(&batch).unwrap();
                    retry_to_completion(&g, outcome);
                    for e in &batch {
                        oracle.insert(e.src, e.dst, e.weight);
                    }
                } else {
                    let n = rng.random_range(1..10usize);
                    let batch: Vec<Edge> = (0..n)
                        .map(|_| Edge::new(rng.random_range(0..4u32), rng.random_range(0..N)))
                        .collect();
                    let outcome = g.try_delete_edges(&batch).unwrap();
                    retry_to_completion(&g, outcome);
                    for e in &batch {
                        oracle.delete(e.src, e.dst);
                    }
                }
            }

            g.device().clear_fault_plan();
            g.validate().expect("final audit");
            for v in 0..N {
                let mut want: Vec<(u32, u32)> = oracle
                    .adj
                    .get(&v)
                    .map(|m| m.iter().map(|(&d, &w)| (d, w)).collect())
                    .unwrap_or_default();
                want.sort_unstable();
                assert_eq!(
                    sorted_neighbors(&g, v),
                    want,
                    "every={every} seed={seed} vertex {v} diverged from oracle"
                );
            }
            injected_total += g.device().injected_faults();
        }
        assert!(injected_total > 0, "every={every}: the plan never fired");
    }
}

/// A probabilistic plan (p = 0.5) still converges under retry because each
/// allocation draws an independent (seeded, deterministic) coin.
#[test]
fn probability_plan_converges_under_retry() {
    let g = DynGraph::new(GraphConfig::directed_map(N));
    g.device()
        .set_fault_plan(FaultPlan::fail_with_probability(0.5, 0xDECAF));
    let batch: Vec<Edge> = (0..4u32)
        .flat_map(|u| (0..20u32).map(move |i| Edge::weighted(u, i, u + i)))
        .collect();
    let outcome = g.try_insert_edges(&batch).unwrap();
    let changed = retry_to_completion(&g, outcome);
    // 4 sources × 19 non-self-loop unique dsts (u == i once per source).
    assert_eq!(changed, 4 * 19);
    g.validate().expect("final audit");
}

/// `fail_nth` injects exactly one failure; the batch reports a suffix and
/// a single retry (no budget change needed) completes it.
#[test]
fn fail_nth_reports_suffix_then_single_retry_completes() {
    let g = DynGraph::new(GraphConfig::directed_map(16));
    g.device().set_fault_plan(FaultPlan::fail_nth(3));
    let batch: Vec<Edge> = (0..8u32)
        .flat_map(|u| [Edge::new(u, 15), Edge::new(u, 14)])
        .collect();
    let outcome = g.try_insert_edges(&batch).unwrap();
    assert!(!outcome.is_complete(), "third lazy table creation failed");
    assert_eq!(outcome.pending.len(), 2, "one source's group unapplied");
    assert_eq!(g.device().injected_faults(), 1);
    match outcome.error {
        Some(AllocError::Oom(OomError::Injected {
            alloc_index,
            kernel,
        })) => {
            assert_eq!(alloc_index, 3);
            assert_eq!(kernel, Some("edge_insert"));
        }
        other => panic!("expected an injected fault, got {other:?}"),
    }
    g.validate().expect("audit after the injected fault");

    let second = g.retry_suffix(&outcome).unwrap();
    assert!(second.is_complete());
    assert_eq!(outcome.changed + second.changed, 16);
    g.validate().expect("final audit");
}

/// `fail_in_kernel` only fails allocations made *inside* the named
/// kernel: allocation-free work under the same plan is untouched, and
/// clearing the plan makes the suffix retryable.
#[test]
fn fail_in_kernel_scopes_injection_to_named_kernel() {
    let g = DynGraph::with_uniform_buckets(GraphConfig::directed_map(16), 8, 1);
    g.device()
        .set_fault_plan(FaultPlan::fail_in_kernel("edge_insert"));

    // Pre-installed tables, few keys: no allocation, so nothing to inject.
    assert_eq!(g.insert_edges(&[Edge::new(0, 1), Edge::new(1, 2)]), 2);

    // A lazy table for vertex 12 needs a pool slab → injected failure.
    let outcome = g.try_insert_edges(&[Edge::new(12, 1)]).unwrap();
    assert_eq!(outcome.completed, 0);
    assert!(matches!(
        outcome.error,
        Some(AllocError::Oom(OomError::Injected {
            kernel: Some("edge_insert"),
            ..
        }))
    ));
    g.validate().expect("audit after the injected fault");

    g.device().clear_fault_plan();
    let second = g.retry_suffix(&outcome).unwrap();
    assert!(second.is_complete());
    assert!(g.edge_exists(&g.pin_read(), 12, 1));
    g.validate().expect("final audit");
}

/// The acceptance scenario: a batch insert that exhausts a bounded device
/// budget mid-kernel returns a partial outcome (no panic), validates
/// immediately afterwards, and — after raising the budget — retrying the
/// suffix yields a graph identical to an unconstrained run. Checked for
/// both executors.
#[test]
fn bounded_budget_recovers_identically_sequential_and_threaded() {
    // 16 sources × 1100 unique destinations: needs ~1184 pool slabs, so
    // the 1024-slab pool must grow; the budget admits construction and
    // batch staging but not the pool's second super-block.
    let batch: Vec<Edge> = (0..16u32)
        .flat_map(|u| (0..1100u32).map(move |i| Edge::weighted(u, 16 + u * 1100 + i, i + 1)))
        .collect();
    let config = || {
        GraphConfig::directed_map(2048)
            .with_device_words(1 << 16)
            .with_pool_slabs(1024)
    };

    // Reference: the same batch against an unconstrained graph.
    let reference = DynGraph::new(config());
    let want_changed = reference.insert_edges(&batch);
    assert_eq!(want_changed, batch.len() as u64);
    reference.validate().expect("reference audit");

    for policy in [ExecPolicy::Sequential, ExecPolicy::Threaded(4)] {
        let mut g = DynGraph::new(config().with_device_capacity(130_000));
        g.device_mut().set_policy(policy);

        let outcome = g.try_insert_edges(&batch).unwrap();
        assert!(
            !outcome.is_complete(),
            "{policy:?}: the budget was supposed to exhaust mid-batch"
        );
        assert!(outcome.completed < outcome.attempted);
        assert!(matches!(
            outcome.error,
            Some(AllocError::Oom(OomError::Capacity { .. }))
        ));
        g.validate()
            .unwrap_or_else(|e| panic!("{policy:?}: audit after partial batch: {e}"));

        // Raise the budget and resume where the batch stopped.
        g.device().set_capacity_words(1 << 22);
        let total_changed = retry_to_completion(&g, outcome);
        assert_eq!(
            total_changed, want_changed,
            "{policy:?}: changed-counts must match the unconstrained run"
        );

        g.validate()
            .unwrap_or_else(|e| panic!("{policy:?}: final audit: {e}"));
        assert_eq!(g.num_edges(), reference.num_edges(), "{policy:?}");
        for v in 0..16 {
            assert_eq!(
                sorted_neighbors(&g, v),
                sorted_neighbors(&reference, v),
                "{policy:?}: vertex {v} diverged from the unconstrained run"
            );
        }
    }
}

/// Vertex batches recover too: a budget-bounded `insert_vertices` installs
/// a prefix of the new vertices, reports the rest, and completes after the
/// budget is raised — matching an unconstrained run.
#[test]
fn vertex_batch_recovers_after_budget_raise() {
    let ids: Vec<u32> = (0..256u32).collect();
    let edges: Vec<Edge> = ids
        .iter()
        .flat_map(|&u| (0..40u32).map(move |i| Edge::weighted(u, 1000 + u * 40 + i, i + 1)))
        .collect();
    let config = || {
        GraphConfig::directed_map(16)
            .with_device_words(1 << 16)
            .with_pool_slabs(1024)
    };

    let reference = DynGraph::new(config());
    let want_changed = reference.insert_vertices(&ids, &edges).unwrap();
    assert_eq!(want_changed, edges.len() as u64);

    let g = DynGraph::new(config().with_device_capacity(50_000));
    let outcome = g.try_insert_vertices(&ids, &edges).unwrap();
    assert!(!outcome.is_complete());
    assert!(
        !outcome.pending_vertices.is_empty(),
        "table installation must be what ran out of budget"
    );
    assert_eq!(
        outcome.completed + outcome.pending.len() + outcome.pending_vertices.len(),
        outcome.attempted
    );
    g.validate().expect("audit after partial vertex batch");

    g.device().set_capacity_words(1 << 22);
    let total_changed = retry_to_completion(&g, outcome);
    assert_eq!(total_changed, want_changed);
    g.validate().expect("final audit");
    assert_eq!(g.num_edges(), reference.num_edges());
    for &v in &ids {
        assert_eq!(
            sorted_neighbors(&g, v),
            sorted_neighbors(&reference, v),
            "vertex {v} diverged from the unconstrained run"
        );
    }
}

/// The two fault families compose without perturbing each other: an
/// every-Nth OOM plan (allocation-level) layered with a transient kernel
/// fault (device-level, launch-admission) on the same device keeps both
/// retry schedules deterministic. Each family holds its own 1-based
/// index, so the OOM schedule — which allocations fail, how many retry
/// rounds, what lands where — is bit-identical with and without the
/// device-level plan in place.
#[test]
fn alloc_and_device_fault_plans_compose_deterministically() {
    use dynamic_graphs_gpu::gpu_sim::DeviceFault;

    // One run of the every-3rd-allocation OOM workload; optionally with a
    // transient kernel fault layered on the same device, drained through
    // launch-admission retries exactly like the router's retry loop.
    let run = |with_device_fault: bool| {
        let g = DynGraph::new(GraphConfig::directed_map(N));
        g.device().set_fault_plan(FaultPlan::fail_every_nth(3));
        if with_device_fault {
            // Routed to the launch-plan slot: must NOT reset or replace
            // the allocation plan already installed.
            g.device().set_fault_plan(FaultPlan::transient_kernel(1, 2));
            assert!(matches!(
                g.device().launch_check(),
                Err(DeviceFault::TransientKernel { remaining: 1, .. })
            ));
            assert!(matches!(
                g.device().launch_check(),
                Err(DeviceFault::TransientKernel { remaining: 0, .. })
            ));
            assert!(g.device().launch_check().is_ok(), "healed after its run");
        }
        // Deterministic biased batches (chains long enough to allocate).
        let mut rng = StdRng::seed_from_u64(0x5EED);
        let mut schedule: Vec<(usize, usize)> = Vec::new();
        for _ in 0..6 {
            let batch: Vec<Edge> = (0..16)
                .map(|_| {
                    let u = rng.random_range(0..3u32);
                    let v = rng.random_range(0..N);
                    Edge::weighted(u, v, rng.random_range(1..50u32))
                })
                .collect();
            let mut outcome = g.try_insert_edges(&batch).unwrap();
            let mut retries = 0usize;
            while !outcome.is_complete() {
                retries += 1;
                assert!(retries < 100, "did not converge");
                outcome = g.retry_suffix(&outcome).unwrap();
            }
            schedule.push((retries, outcome.pending.len()));
        }
        g.validate().expect("audit");
        let mut state: Vec<Vec<(u32, u32)>> = (0..N).map(|v| sorted_neighbors(&g, v)).collect();
        state.sort();
        (schedule, g.device().injected_faults(), state)
    };

    let baseline = run(false);
    let layered = run(true);
    assert_eq!(
        baseline.0, layered.0,
        "OOM retry schedule must ignore the device-level plan"
    );
    assert_eq!(
        baseline.1, layered.1,
        "same allocations injected in both runs"
    );
    assert_eq!(baseline.2, layered.2, "final states identical");
    assert!(baseline.1 > 0, "the allocation plan never fired");
}

/// Budget exhaustion during *staging* (before the kernel runs) applies
/// nothing: the whole batch is the suffix and deletes report all vertices
/// pending.
#[test]
fn staging_failure_applies_nothing() {
    let g = DynGraph::new(
        GraphConfig::directed_map(64)
            .with_device_words(1 << 16)
            .with_pool_slabs(1024),
    );
    g.insert_edges(&[Edge::new(0, 1)]);
    // Tighten the budget below what is already allocated: any staging
    // allocation fails before the kernel gets to run.
    g.device().set_capacity_words(0);
    let batch: Vec<Edge> = (0..64u32).map(|i| Edge::new(1, 100 + i)).collect();
    let outcome = g.try_insert_edges(&batch).unwrap();
    assert_eq!(outcome.completed, 0);
    assert_eq!(outcome.pending, batch);
    g.validate().expect("untouched graph still validates");
    // Queries stage scratch buffers too, so give them room again.
    g.device().set_capacity_words(1 << 20);
    assert!(g.edge_exists(&g.pin_read(), 0, 1), "previous state intact");
}
