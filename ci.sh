#!/usr/bin/env bash
# Local CI: the exact checks the GitHub workflow runs.
#   ./ci.sh          # fmt + clippy + build + test
#   ./ci.sh quick    # skip the release build, test in debug only
set -euo pipefail
cd "$(dirname "$0")"

mode="${1:-full}"

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo doc (deny warnings) =="
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps -q

echo "== lint-kernels (static effect/protocol checks, lint-allow.txt ratchet) =="
cargo run -q --bin lint-kernels -- .
test -s target/lint/report.json
# The allowlist may only shrink relative to the committed baseline.
if git cat-file -e HEAD:lint-allow.txt 2>/dev/null; then
    baseline=$(git show HEAD:lint-allow.txt | grep -cv -E '^[[:space:]]*(#|$)' || true)
    current=$(grep -cv -E '^[[:space:]]*(#|$)' lint-allow.txt || true)
    if [ "$current" -gt "$baseline" ]; then
        echo "lint-allow.txt grew: $current entries vs $baseline at HEAD" >&2
        exit 1
    fi
fi

if [ "$mode" = "quick" ]; then
    echo "== cargo test (debug) =="
    cargo test --workspace -q
    echo "== fault-injection suite (debug) =="
    cargo test -q --test fault_injection
    echo "== sanitizer fixture suite (debug, shadow-memory checks on) =="
    cargo test -q --features sanitize --test sanitizer
    echo "== churn workload smoke run (debug, incl. mixed readers-vs-writers) =="
    cargo run -q -p bench --bin churn -- --rounds 2 --ops 512 --readers 2
    test -s BENCH_churn.json
    echo "== chaos churn smoke run (debug, seeded kill/revive) =="
    cargo run -q -p bench --bin churn -- --scale 4096 --rounds 5 --ops 256 --shards 4 --sessions 4 --seed 41 --chaos
    test -s BENCH_chaos.json
    echo "== bench regression gate (fresh artifacts vs benchmarks/baselines, incl. perturbation self-test) =="
    cargo run -q --bin bench-gate -- --selftest BENCH_churn.json BENCH_chaos.json
    echo "== profiled churn replay (debug) =="
    cargo run -q -p bench --bin profile -- --scale 4096 --rounds 2 --ops 512 | tee /tmp/profile.out
    grep -q "trace OK:" /tmp/profile.out   # span count == launch count, trace parsed back
    test -s target/profile/churn.trace.json
else
    echo "== cargo build --release =="
    cargo build --workspace --release
    echo "== cargo test (release) =="
    cargo test --workspace --release -q
    echo "== fault-injection suite (release) =="
    cargo test --release -q --test fault_injection
    echo "== bounded-memory quickstart smoke run =="
    cargo run --release -q --example quickstart
    echo "== churn workload smoke run =="
    cargo run --release -q -p bench --bin churn -- --rounds 2 --ops 512
    test -s BENCH_churn.json
    echo "== profiled churn replay (trace export + span/launch accounting) =="
    cargo run --release -q -p bench --bin profile -- --scale 4096 | tee /tmp/profile.out
    grep -q "trace OK:" /tmp/profile.out   # span count == launch count, trace parsed back
    test -s target/profile/churn.trace.json
    echo "== sanitized test suite (racecheck/memcheck/initcheck on every device) =="
    cargo test --workspace --release -q --features dynamic-graphs-gpu/sanitize
    echo "== sanitized churn smoke run (small scale: shadow tracking is ~50x; mixed readers-vs-writers with oracle byte-equality asserted in-run) =="
    cargo run --release -q -p bench --features sanitize --bin churn -- --scale 4096 --rounds 2 --ops 512 --readers 4
    echo "== sanitized sharded churn smoke runs (1 and 4 shards; cross-backend hit parity asserted in-run) =="
    cargo run --release -q -p bench --features sanitize --bin churn -- --scale 4096 --rounds 2 --ops 512 --shards 1 --sessions 2
    cargo run --release -q -p bench --features sanitize --bin churn -- --scale 4096 --rounds 2 --ops 512 --shards 4 --sessions 4
    echo "== sanitized chaos churn smoke run (4 shards, seeded kill/revive; zero findings + clean post-rebuild validate asserted in-run) =="
    cargo run --release -q -p bench --features sanitize --bin churn -- --scale 4096 --rounds 5 --ops 256 --shards 4 --sessions 4 --seed 41 --chaos
    test -s BENCH_chaos.json
    echo "== bench regression gate (fresh artifacts vs benchmarks/baselines, incl. perturbation self-test) =="
    cargo run --release -q --bin bench-gate -- --selftest BENCH_churn.json BENCH_chaos.json
    echo "== sharding conformance suite (1/2/4-shard parity + OOM recovery) =="
    cargo test --release -q --test sharding
    echo "== shard fault-tolerance suite (health machine, breaker, journal rebuild, degraded reads) =="
    cargo test --release -q --test fault_tolerance
fi

# Best-effort native ThreadSanitizer pass over the simulator's own
# synchronization (needs a nightly toolchain and network-fetched std
# sources; skipped — never failed — when either is unavailable).
echo "== native thread-sanitizer job (best effort) =="
if command -v rustup >/dev/null 2>&1 && rustup toolchain list 2>/dev/null | grep -q '^nightly'; then
    if RUSTFLAGS="-Zsanitizer=thread" cargo +nightly test -q -p gpu-sim --lib 2>/dev/null; then
        echo "TSan: ok"
    else
        echo "TSan: nightly toolchain cannot run the job here (offline or unsupported target); skipping"
    fi
else
    echo "TSan: no nightly toolchain installed; skipping"
fi

echo "CI OK"
