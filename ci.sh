#!/usr/bin/env bash
# Local CI: the exact checks the GitHub workflow runs.
#   ./ci.sh          # fmt + clippy + build + test
#   ./ci.sh quick    # skip the release build, test in debug only
set -euo pipefail
cd "$(dirname "$0")"

mode="${1:-full}"

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo doc (deny warnings) =="
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps -q

if [ "$mode" = "quick" ]; then
    echo "== cargo test (debug) =="
    cargo test --workspace -q
    echo "== fault-injection suite (debug) =="
    cargo test -q --test fault_injection
    echo "== churn workload smoke run (debug) =="
    cargo run -q -p bench --bin churn -- --rounds 2 --ops 512
else
    echo "== cargo build --release =="
    cargo build --workspace --release
    echo "== cargo test (release) =="
    cargo test --workspace --release -q
    echo "== fault-injection suite (release) =="
    cargo test --release -q --test fault_injection
    echo "== bounded-memory quickstart smoke run =="
    cargo run --release -q --example quickstart
    echo "== churn workload smoke run =="
    cargo run --release -q -p bench --bin churn -- --rounds 2 --ops 512
fi

echo "CI OK"
