//! # bench-gate — modeled-performance regression gate for bench artifacts
//!
//! Compares fresh `BENCH_*.json` artifacts (the `bench-trajectory-v1`
//! schema written by `bench::harness::write_bench_artifact`) against
//! committed baselines in `benchmarks/baselines/`, and fails CI when a
//! modeled-throughput figure drops — or a modeled-latency figure rises —
//! beyond the per-metric noise tolerance. Self-contained on purpose: the
//! only dependency is the workspace's own [`gpu_sim::Json`], so the gate
//! builds offline and cannot drift out of sync with the artifact schema.
//!
//! ## Metric model
//!
//! Every numeric cell of every table becomes a metric keyed
//! `table-id/row-key/column-header` (the row key is the row's first
//! cell, suffixed `#n` on repeats). Column headers classify the cell:
//!
//! - **throughput** (higher is better): header contains `/s`, `MUps`, or
//!   `speedup` — a drop below `baseline * (1 - tolerance)` fails.
//! - **latency** (lower is better): header contains `ms`, `us`, `ns`, or
//!   `latency` — a rise above `baseline * (1 + tolerance)` fails.
//! - anything else (row counts, hit counts, journal depths) is recorded
//!   for context but never gated.
//!
//! Wall-clock columns (header contains `wall`) and the
//! `readers_vs_writers` table are skipped entirely: they measure real
//! thread interleaving, which is not deterministic run to run. Everything
//! else in the artifacts runs on the modeled clock and reproduces
//! exactly, so the default 10% tolerance is pure headroom.
//!
//! ## Usage
//!
//! ```text
//! bench-gate [--baseline-dir DIR] [--tolerance FRAC] FILES...
//! bench-gate --write-baseline [--allow-regression] FILES...
//! bench-gate --selftest FILES...
//! ```
//!
//! `--write-baseline` regenerates `DIR/<workload>.json` from the given
//! artifacts, but **refuses to loosen**: if the fresh figures regress
//! beyond tolerance relative to the committed baseline it exits nonzero
//! (same ratchet discipline as `lint-allow.txt`), unless
//! `--allow-regression` records the regression deliberately.
//!
//! `--selftest` proves the gate has teeth: it first gates the artifacts
//! normally (must pass), then perturbs the first gated throughput
//! baseline beyond tolerance in memory and asserts the gate now fails.

use gpu_sim::Json;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Tables whose figures depend on real thread interleaving, not the
/// modeled clock; gating them would flake.
const SKIP_TABLES: [&str; 1] = ["readers_vs_writers"];

const DEFAULT_TOLERANCE: f64 = 0.10;
const BASELINE_SCHEMA: &str = "bench-gate-baseline-v1";

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Class {
    Throughput,
    Latency,
    Info,
}

impl Class {
    fn of(header: &str) -> Class {
        let h = header.to_ascii_lowercase();
        if h.contains("/s") || h.contains("mups") || h.contains("speedup") {
            Class::Throughput
        } else if h.contains("ms") || h.contains("us") || h.contains("ns") || h.contains("latency")
        {
            Class::Latency
        } else {
            Class::Info
        }
    }

    fn as_str(self) -> &'static str {
        match self {
            Class::Throughput => "throughput",
            Class::Latency => "latency",
            Class::Info => "info",
        }
    }

    fn parse(s: &str) -> Option<Class> {
        match s {
            "throughput" => Some(Class::Throughput),
            "latency" => Some(Class::Latency),
            "info" => Some(Class::Info),
            _ => None,
        }
    }
}

#[derive(Debug, Clone)]
struct Metric {
    key: String,
    class: Class,
    value: f64,
}

/// Flatten a `bench-trajectory-v1` artifact into keyed metrics.
/// Returns `(workload, metrics)`.
fn extract(artifact: &Json, path: &Path) -> Result<(String, Vec<Metric>), String> {
    let schema = artifact.get("schema").and_then(Json::as_str).unwrap_or("");
    if schema != "bench-trajectory-v1" {
        return Err(format!(
            "{}: unsupported schema {schema:?} (want bench-trajectory-v1)",
            path.display()
        ));
    }
    let workload = artifact
        .get("workload")
        .and_then(Json::as_str)
        .ok_or_else(|| format!("{}: missing workload", path.display()))?
        .to_string();
    let tables = artifact
        .get("tables")
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("{}: missing tables", path.display()))?;
    let mut out = Vec::new();
    for table in tables {
        let id = table.get("id").and_then(Json::as_str).unwrap_or("?");
        if SKIP_TABLES.contains(&id) {
            continue;
        }
        let headers: Vec<&str> = table
            .get("headers")
            .and_then(Json::as_arr)
            .map(|a| a.iter().filter_map(Json::as_str).collect())
            .unwrap_or_default();
        let rows = table.get("rows").and_then(Json::as_arr).unwrap_or(&[]);
        let mut seen_keys: Vec<String> = Vec::new();
        for row in rows {
            let cells: Vec<&str> = row
                .as_arr()
                .map(|a| a.iter().filter_map(Json::as_str).collect())
                .unwrap_or_default();
            let first = cells.first().copied().unwrap_or("?");
            let repeats = seen_keys.iter().filter(|k| *k == first).count();
            seen_keys.push(first.to_string());
            let row_key = if repeats == 0 {
                first.to_string()
            } else {
                format!("{first}#{repeats}")
            };
            for (j, cell) in cells.iter().enumerate().skip(1) {
                let header = headers.get(j).copied().unwrap_or("?");
                if header.to_ascii_lowercase().contains("wall") {
                    continue;
                }
                let Ok(value) = cell.parse::<f64>() else {
                    continue;
                };
                out.push(Metric {
                    key: format!("{id}/{row_key}/{header}"),
                    class: Class::of(header),
                    value,
                });
            }
        }
    }
    Ok((workload, out))
}

fn baseline_to_json(workload: &str, source: &Path, metrics: &[Metric]) -> Json {
    Json::Obj(vec![
        ("schema".into(), Json::str(BASELINE_SCHEMA)),
        ("workload".into(), Json::str(workload)),
        ("source".into(), Json::str(source.display().to_string())),
        (
            "metrics".into(),
            Json::Arr(
                metrics
                    .iter()
                    .map(|m| {
                        Json::Obj(vec![
                            ("key".into(), Json::str(m.key.clone())),
                            ("class".into(), Json::str(m.class.as_str())),
                            ("value".into(), Json::f64(m.value)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

fn baseline_from_json(v: &Json, path: &Path) -> Result<Vec<Metric>, String> {
    let schema = v.get("schema").and_then(Json::as_str).unwrap_or("");
    if schema != BASELINE_SCHEMA {
        return Err(format!(
            "{}: unsupported baseline schema {schema:?}",
            path.display()
        ));
    }
    let arr = v
        .get("metrics")
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("{}: missing metrics", path.display()))?;
    arr.iter()
        .map(|m| {
            let key = m
                .get("key")
                .and_then(Json::as_str)
                .ok_or("baseline metric missing key")?
                .to_string();
            let class = m
                .get("class")
                .and_then(Json::as_str)
                .and_then(Class::parse)
                .ok_or_else(|| format!("baseline metric {key}: bad class"))?;
            let value = m
                .get("value")
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("baseline metric {key}: bad value"))?;
            Ok(Metric { key, class, value })
        })
        .collect::<Result<Vec<_>, String>>()
        .map_err(|e| format!("{}: {e}", path.display()))
}

/// One gated metric that moved the wrong way beyond tolerance.
#[derive(Debug)]
struct Regression {
    key: String,
    class: Class,
    baseline: f64,
    fresh: f64,
}

/// Compare fresh metrics against a baseline. Returns `(gated, missing,
/// regressions)`: how many metrics were actually held to the tolerance,
/// baseline metrics absent from the fresh artifact (reported, not fatal —
/// table shapes legitimately vary with bench flags), and the failures.
fn compare(
    baseline: &[Metric],
    fresh: &[Metric],
    tolerance: f64,
) -> (usize, Vec<String>, Vec<Regression>) {
    let lookup: std::collections::BTreeMap<&str, &Metric> =
        fresh.iter().map(|m| (m.key.as_str(), m)).collect();
    let mut gated = 0usize;
    let mut missing = Vec::new();
    let mut regressions = Vec::new();
    for b in baseline {
        if b.class == Class::Info {
            continue;
        }
        let Some(f) = lookup.get(b.key.as_str()) else {
            missing.push(b.key.clone());
            continue;
        };
        if b.value == 0.0 {
            continue; // no meaningful relative bound
        }
        gated += 1;
        let fails = match b.class {
            Class::Throughput => f.value < b.value * (1.0 - tolerance),
            Class::Latency => f.value > b.value * (1.0 + tolerance),
            Class::Info => false,
        };
        if fails {
            regressions.push(Regression {
                key: b.key.clone(),
                class: b.class,
                baseline: b.value,
                fresh: f.value,
            });
        }
    }
    (gated, missing, regressions)
}

fn report_regressions(regressions: &[Regression], tolerance: f64) {
    for r in regressions {
        let delta = (r.fresh - r.baseline) / r.baseline * 100.0;
        eprintln!(
            "REGRESSION [{}] {}: {} -> {} ({:+.1}%, tolerance {:.0}%)",
            r.class.as_str(),
            r.key,
            r.baseline,
            r.fresh,
            delta,
            tolerance * 100.0
        );
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: bench-gate [--baseline-dir DIR] [--tolerance FRAC] \
         [--write-baseline] [--allow-regression] [--selftest] FILES..."
    );
    std::process::exit(2);
}

fn main() -> ExitCode {
    let mut baseline_dir = PathBuf::from("benchmarks/baselines");
    let mut tolerance = DEFAULT_TOLERANCE;
    let mut write_baseline = false;
    let mut allow_regression = false;
    let mut selftest = false;
    let mut files: Vec<PathBuf> = Vec::new();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--baseline-dir" => baseline_dir = PathBuf::from(it.next().unwrap_or_else(|| usage())),
            "--tolerance" => {
                tolerance = it
                    .next()
                    .unwrap_or_else(|| usage())
                    .parse()
                    .unwrap_or_else(|_| usage())
            }
            "--write-baseline" => write_baseline = true,
            "--allow-regression" => allow_regression = true,
            "--selftest" => selftest = true,
            "--help" | "-h" => usage(),
            flag if flag.starts_with("--") => usage(),
            file => files.push(PathBuf::from(file)),
        }
    }
    if files.is_empty() {
        usage();
    }

    let mut failed = false;
    for file in &files {
        let text = match std::fs::read_to_string(file) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("bench-gate: cannot read {}: {e}", file.display());
                failed = true;
                continue;
            }
        };
        let artifact = match Json::parse(&text) {
            Ok(v) => v,
            Err(e) => {
                eprintln!("bench-gate: {}: {e}", file.display());
                failed = true;
                continue;
            }
        };
        let (workload, fresh) = match extract(&artifact, file) {
            Ok(x) => x,
            Err(e) => {
                eprintln!("bench-gate: {e}");
                failed = true;
                continue;
            }
        };
        let baseline_path = baseline_dir.join(format!("{workload}.json"));

        if write_baseline {
            // Ratchet: a new baseline must not silently record a
            // regression against the committed one.
            if !allow_regression {
                if let Ok(old_text) = std::fs::read_to_string(&baseline_path) {
                    let old = Json::parse(&old_text)
                        .map_err(|e| format!("{}: {e}", baseline_path.display()))
                        .and_then(|v| baseline_from_json(&v, &baseline_path));
                    match old {
                        Ok(old) => {
                            let (_, _, regressions) = compare(&old, &fresh, tolerance);
                            if !regressions.is_empty() {
                                report_regressions(&regressions, tolerance);
                                eprintln!(
                                    "bench-gate: refusing to loosen {} ({} regressed \
                                     metric(s)); rerun with --allow-regression to \
                                     record this deliberately",
                                    baseline_path.display(),
                                    regressions.len()
                                );
                                failed = true;
                                continue;
                            }
                        }
                        Err(e) => eprintln!("bench-gate: ignoring unreadable baseline: {e}"),
                    }
                }
            }
            if let Some(parent) = baseline_path.parent() {
                let _ = std::fs::create_dir_all(parent);
            }
            let json = baseline_to_json(&workload, file, &fresh).render_pretty();
            if let Err(e) = std::fs::write(&baseline_path, json + "\n") {
                eprintln!("bench-gate: cannot write {}: {e}", baseline_path.display());
                failed = true;
                continue;
            }
            println!(
                "bench-gate: wrote {} ({} metrics from {})",
                baseline_path.display(),
                fresh.len(),
                file.display()
            );
            continue;
        }

        let baseline_text = match std::fs::read_to_string(&baseline_path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!(
                    "bench-gate: no baseline for workload {workload:?} at {}: {e} \
                     (generate one with --write-baseline)",
                    baseline_path.display()
                );
                failed = true;
                continue;
            }
        };
        let baseline = match Json::parse(&baseline_text)
            .map_err(|e| format!("{}: {e}", baseline_path.display()))
            .and_then(|v| baseline_from_json(&v, &baseline_path))
        {
            Ok(b) => b,
            Err(e) => {
                eprintln!("bench-gate: {e}");
                failed = true;
                continue;
            }
        };

        let (gated, missing, regressions) = compare(&baseline, &fresh, tolerance);
        for key in &missing {
            eprintln!("bench-gate: note: baseline metric {key} absent from fresh artifact");
        }
        if !regressions.is_empty() {
            report_regressions(&regressions, tolerance);
            eprintln!(
                "bench-gate: {}: {} regression(s) across {gated} gated metric(s)",
                file.display(),
                regressions.len()
            );
            failed = true;
            continue;
        }
        println!(
            "bench-gate: {}: OK ({gated} gated metric(s), {} informational, \
             tolerance {:.0}%)",
            file.display(),
            fresh.len() - gated,
            tolerance * 100.0
        );

        if selftest {
            // Teeth check: shift the first gated baseline figure
            // (throughput preferred, latency otherwise) so the fresh
            // value reads as a regression beyond tolerance — the
            // comparison must now fail.
            let mut perturbed = baseline.clone();
            let Some(victim) = perturbed
                .iter_mut()
                .filter(|m| m.value > 0.0)
                .min_by_key(|m| match m.class {
                    Class::Throughput => 0,
                    Class::Latency => 1,
                    Class::Info => 2,
                })
                .filter(|m| m.class != Class::Info)
            else {
                eprintln!(
                    "bench-gate: selftest: {} has no gated metric",
                    baseline_path.display()
                );
                failed = true;
                continue;
            };
            let key = victim.key.clone();
            match victim.class {
                // Raise the throughput bar / lower the latency bar far
                // enough that the unchanged fresh figure violates it.
                Class::Throughput => victim.value *= 1.0 / (1.0 - tolerance) + 1.0,
                Class::Latency => victim.value *= (1.0 - tolerance) / (1.0 + tolerance) / 2.0,
                Class::Info => unreachable!(),
            }
            let (_, _, regressions) = compare(&perturbed, &fresh, tolerance);
            if regressions.iter().any(|r| r.key == key) {
                println!("bench-gate: selftest OK (perturbing {key} beyond tolerance fails)");
            } else {
                eprintln!("bench-gate: selftest FAILED: perturbed {key} was not caught");
                failed = true;
            }
        }
    }

    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
