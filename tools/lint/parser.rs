//! Token trees and item extraction for the kernel lint.
//!
//! The flat token stream from [`crate::lint::lexer`] is grouped into
//! bracket-matched *token trees*, and the trees are walked to extract the
//! model the rules run on:
//!
//! - every function item (name, impl-context, params with type text,
//!   return-type text, body), with `#[cfg(test)]` provenance so rules can
//!   exempt test scaffolding;
//! - every kernel: a closure passed to `launch_tasks` / `launch_warps`
//!   (plus `memset`, which is a launch with an implicit fill body), with
//!   its literal name when one is given;
//! - statement boundaries inside bodies, for the flow-sensitive rules.

use super::lexer::{lex, Tok, TokKind};

/// A token tree: a leaf token or a bracket-delimited group.
#[derive(Debug, Clone)]
pub enum Tree {
    Leaf(Tok),
    Group {
        /// `(`, `[`, or `{`.
        delim: char,
        open_line: u32,
        trees: Vec<Tree>,
    },
}

impl Tree {
    pub fn line(&self) -> u32 {
        match self {
            Tree::Leaf(t) => t.line,
            Tree::Group { open_line, .. } => *open_line,
        }
    }

    pub fn as_leaf(&self) -> Option<&Tok> {
        match self {
            Tree::Leaf(t) => Some(t),
            _ => None,
        }
    }

    pub fn is_group(&self, delim: char) -> bool {
        matches!(self, Tree::Group { delim: d, .. } if *d == delim)
    }

    pub fn group_trees(&self) -> Option<&[Tree]> {
        match self {
            Tree::Group { trees, .. } => Some(trees),
            _ => None,
        }
    }

    /// Concatenated source-ish text (single spaces between tokens) — used
    /// for excerpts and type comparisons, never re-parsed.
    pub fn flat_text(&self) -> String {
        let mut out = String::new();
        self.write_text(&mut out);
        out
    }

    fn write_text(&self, out: &mut String) {
        match self {
            Tree::Leaf(t) => {
                if !out.is_empty() && !matches!(t.text.as_str(), "." | "," | ";" | "::" | "(") {
                    out.push(' ');
                }
                out.push_str(&t.text);
            }
            Tree::Group { delim, trees, .. } => {
                out.push(*delim);
                for t in trees {
                    t.write_text(out);
                }
                out.push(match delim {
                    '(' => ')',
                    '[' => ']',
                    _ => '}',
                });
            }
        }
    }
}

/// Group a token stream into trees. Tolerant: a stray close delimiter is
/// dropped, EOF closes every open group.
pub fn build_trees(toks: &[Tok]) -> Vec<Tree> {
    let mut stack: Vec<(char, u32, Vec<Tree>)> = Vec::new();
    let mut top: Vec<Tree> = Vec::new();
    for tok in toks {
        match tok.kind {
            TokKind::Open => {
                stack.push((tok.text.chars().next().unwrap(), tok.line, Vec::new()));
            }
            TokKind::Close => {
                if let Some((delim, open_line, trees)) = stack.pop() {
                    let group = Tree::Group {
                        delim,
                        open_line,
                        trees,
                    };
                    match stack.last_mut() {
                        Some((_, _, parent)) => parent.push(group),
                        None => top.push(group),
                    }
                }
            }
            _ => {
                let leaf = Tree::Leaf(tok.clone());
                match stack.last_mut() {
                    Some((_, _, trees)) => trees.push(leaf),
                    None => top.push(leaf),
                }
            }
        }
    }
    while let Some((delim, open_line, trees)) = stack.pop() {
        let group = Tree::Group {
            delim,
            open_line,
            trees,
        };
        match stack.last_mut() {
            Some((_, _, parent)) => parent.push(group),
            None => top.push(group),
        }
    }
    top
}

/// One function parameter: binding name (first ident of the pattern) and
/// the flattened type text after `:` (empty for bare `self`).
#[derive(Debug, Clone)]
pub struct Param {
    pub name: String,
    pub ty: String,
}

/// An extracted function item.
#[derive(Debug)]
pub struct Func {
    /// Simple name (`edges_exist`).
    pub name: String,
    /// `Type::name` when inside an `impl` block.
    pub qualified: String,
    pub line: u32,
    pub params: Vec<Param>,
    /// Flattened return-type text; empty for `()`.
    pub ret: String,
    /// Body token trees (the `{…}` group's contents).
    pub body: Vec<Tree>,
    /// Whether the function sits under a `#[cfg(test)]` module (or is
    /// itself `#[test]`) — rules exempt test scaffolding.
    pub cfg_test: bool,
}

/// A kernel: the closure argument of a `launch_tasks` / `launch_warps` /
/// `memset` call site.
#[derive(Debug)]
pub struct Kernel {
    /// The literal kernel name, or `None` when the name argument is not a
    /// string literal (an R3 finding).
    pub name: Option<String>,
    /// `launch_tasks` / `launch_warps` / `memset`.
    pub launcher: String,
    pub line: u32,
    /// Simple name of the enclosing function (empty at module scope).
    pub in_func: String,
    /// Closure body trees (empty for `memset`).
    pub body: Vec<Tree>,
    pub cfg_test: bool,
}

/// The per-file parse: functions and kernels in source order.
#[derive(Debug, Default)]
pub struct FileModel {
    pub funcs: Vec<Func>,
    pub kernels: Vec<Kernel>,
}

/// Parse one file's source into its model.
pub fn parse_file(src: &str) -> FileModel {
    model_of(&build_trees(&lex(src)))
}

/// Build the model from already-grouped token trees (callers that also
/// need the raw trees — the token-level rules — avoid re-lexing).
pub fn model_of(trees: &[Tree]) -> FileModel {
    let mut model = FileModel::default();
    walk_items(trees, "", false, &mut model);
    // Kernels are found inside function bodies (and rarely at module
    // scope, e.g. in doc-test-less examples).
    let mut kernels = Vec::new();
    for f in &model.funcs {
        find_kernels(&f.body, &f.name, f.cfg_test, &mut kernels);
    }
    find_kernels(trees, "", false, &mut kernels);
    // Module-scope pass re-visits function bodies; keep the first sighting
    // of each call site (function-attributed ones are pushed first).
    kernels.sort_by_key(|k| k.line);
    kernels.dedup_by_key(|k| k.line);
    model.kernels = kernels;
    model
}

/// Recursively collect `fn` items, tracking impl context and
/// `#[cfg(test)]` scope.
fn walk_items(trees: &[Tree], impl_ctx: &str, in_test: bool, model: &mut FileModel) {
    let mut i = 0;
    while i < trees.len() {
        // `#[cfg(test)]` / `#[test]` attribute ahead of the next item.
        let mut test_here = in_test;
        if trees[i].as_leaf().is_some_and(|t| t.is_punct("#")) {
            if let Some(attr) = trees.get(i + 1) {
                if attr.is_group('[') {
                    let text = attr.flat_text().replace(' ', "");
                    if text.contains("cfg(test") || text == "[test]" {
                        test_here = true;
                    }
                    // Attach to the item that follows.
                    if let Some(consumed) = item_at(trees, i + 2, impl_ctx, test_here, model) {
                        i = consumed;
                        continue;
                    }
                    i += 2;
                    continue;
                }
            }
        }
        match item_at(trees, i, impl_ctx, test_here, model) {
            Some(next) => i = next,
            None => i += 1,
        }
    }
}

/// Try to parse an item (fn / impl / mod) starting at `trees[i]`.
/// Returns the index just past the item when one was consumed.
fn item_at(
    trees: &[Tree],
    i: usize,
    impl_ctx: &str,
    in_test: bool,
    model: &mut FileModel,
) -> Option<usize> {
    let head = trees.get(i)?.as_leaf()?;
    match head.text.as_str() {
        "fn" => {
            let name = trees.get(i + 1)?.as_leaf()?.text.clone();
            // Skip generics: scan forward to the parameter group.
            let mut j = i + 2;
            while j < trees.len() && !trees[j].is_group('(') {
                // Body-less signatures (traits) end at `;`.
                if trees[j].as_leaf().is_some_and(|t| t.is_punct(";")) {
                    return Some(j + 1);
                }
                j += 1;
            }
            let params = parse_params(trees.get(j)?);
            // Return type: tokens between `->` and the body/where clause.
            let mut ret = String::new();
            let mut k = j + 1;
            let mut in_ret = false;
            while k < trees.len() {
                match &trees[k] {
                    Tree::Group { delim: '{', .. } => break,
                    Tree::Leaf(t) if t.is_punct(";") => return Some(k + 1),
                    Tree::Leaf(t) if t.is_punct("->") => in_ret = true,
                    Tree::Leaf(t) if t.is_ident("where") => in_ret = false,
                    tree if in_ret => {
                        if !ret.is_empty() {
                            ret.push(' ');
                        }
                        ret.push_str(&tree.flat_text());
                    }
                    _ => {}
                }
                k += 1;
            }
            let body = trees.get(k)?.group_trees()?.to_vec();
            let qualified = if impl_ctx.is_empty() {
                name.clone()
            } else {
                format!("{impl_ctx}::{name}")
            };
            model.funcs.push(Func {
                name,
                qualified,
                line: head.line,
                params,
                ret,
                body: body.clone(),
                cfg_test: in_test,
            });
            // Nested fns (rare) and test-mod fns live inside bodies too.
            walk_items(&body, impl_ctx, in_test, model);
            Some(k + 1)
        }
        "impl" => {
            // Find the body; the self type is the last path segment before
            // the brace (after `for` when present).
            let mut j = i + 1;
            let mut ty = String::new();
            while j < trees.len() {
                match &trees[j] {
                    Tree::Group {
                        delim: '{',
                        trees: body,
                        ..
                    } => {
                        walk_items(body, &ty, in_test, model);
                        return Some(j + 1);
                    }
                    Tree::Leaf(t) if t.kind == TokKind::Ident => match t.text.as_str() {
                        "for" => ty.clear(),
                        "where" => {}
                        _ => ty = t.text.clone(),
                    },
                    _ => {}
                }
                j += 1;
            }
            Some(j)
        }
        "mod" => {
            let mut j = i + 1;
            while j < trees.len() {
                if let Tree::Group {
                    delim: '{',
                    trees: body,
                    ..
                } = &trees[j]
                {
                    walk_items(body, impl_ctx, in_test, model);
                    return Some(j + 1);
                }
                if trees[j].as_leaf().is_some_and(|t| t.is_punct(";")) {
                    return Some(j + 1);
                }
                j += 1;
            }
            Some(j)
        }
        _ => None,
    }
}

/// Split a `(…)` parameter group on top-level commas.
fn parse_params(group: &Tree) -> Vec<Param> {
    let Some(trees) = group.group_trees() else {
        return Vec::new();
    };
    let mut params = Vec::new();
    for part in split_on(trees, ",") {
        if part.is_empty() {
            continue;
        }
        let mut name = String::new();
        let mut ty = String::new();
        let mut after_colon = false;
        for t in part {
            match t {
                Tree::Leaf(tok) if tok.is_punct(":") && !after_colon => after_colon = true,
                Tree::Leaf(tok)
                    if !after_colon
                        && name.is_empty()
                        && tok.kind == TokKind::Ident
                        && !matches!(tok.text.as_str(), "mut" | "ref") =>
                {
                    name = tok.text.clone();
                }
                tree if after_colon => {
                    if !ty.is_empty() {
                        ty.push(' ');
                    }
                    ty.push_str(&tree.flat_text());
                }
                _ => {}
            }
        }
        params.push(Param { name, ty });
    }
    params
}

/// Split a tree slice on a top-level punct (`,` or `;`).
pub fn split_on<'t>(trees: &'t [Tree], punct: &str) -> Vec<&'t [Tree]> {
    let mut parts = Vec::new();
    let mut start = 0;
    for (i, t) in trees.iter().enumerate() {
        if t.as_leaf().is_some_and(|tok| tok.is_punct(punct)) {
            parts.push(&trees[start..i]);
            start = i + 1;
        }
    }
    parts.push(&trees[start..]);
    parts
}

/// The launcher method names that define a kernel call site.
pub const LAUNCHERS: [&str; 3] = ["launch_tasks", "launch_warps", "memset"];

/// Find kernel call sites (recursively) in `trees`. A call site is
/// `. launcher (args)` — the leading `.` excludes declarations.
fn find_kernels(trees: &[Tree], in_func: &str, cfg_test: bool, out: &mut Vec<Kernel>) {
    for (i, t) in trees.iter().enumerate() {
        if let Tree::Group { trees: inner, .. } = t {
            find_kernels(inner, in_func, cfg_test, out);
            continue;
        }
        let Some(tok) = t.as_leaf() else { continue };
        if !LAUNCHERS.contains(&tok.text.as_str()) {
            continue;
        }
        let dotted = i > 0 && trees[i - 1].as_leaf().is_some_and(|p| p.is_punct("."));
        let Some(args) = trees.get(i + 1).filter(|a| a.is_group('(')) else {
            continue;
        };
        if !dotted {
            continue;
        }
        let arg_trees = args.group_trees().unwrap_or(&[]);
        let parts = split_on(arg_trees, ",");
        let name = parts.first().and_then(|p| match p {
            [Tree::Leaf(t)] if t.kind == TokKind::Str => Some(t.text.trim_matches('"').to_string()),
            _ => None,
        });
        // The closure is the last argument starting with `|`, `||`, or
        // `move`; its body is everything after the parameter bar.
        let body = parts.last().map(|p| closure_body(p)).unwrap_or_default();
        out.push(Kernel {
            name,
            launcher: tok.text.clone(),
            line: tok.line,
            in_func: in_func.to_string(),
            body,
            cfg_test,
        });
    }
}

/// Extract the body trees of a closure argument (`move |warp| { … }`,
/// `|warp| expr`, `|| …`). Empty when the argument is not a closure.
fn closure_body(part: &[Tree]) -> Vec<Tree> {
    let mut i = 0;
    if part
        .first()
        .and_then(|t| t.as_leaf())
        .is_some_and(|t| t.is_ident("move"))
    {
        i += 1;
    }
    match part.get(i).and_then(|t| t.as_leaf()) {
        Some(t) if t.is_punct("||") => {}
        Some(t) if t.is_punct("|") => {
            // Skip to the closing bar.
            i += 1;
            while i < part.len() && !part[i].as_leaf().is_some_and(|t| t.is_punct("|")) {
                i += 1;
            }
        }
        _ => return Vec::new(),
    }
    part[i + 1..].to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn functions_with_impl_context_and_params() {
        let m = parse_file(
            "impl DynGraph {\n  pub fn edges_exist(&self, pin: &ReadGuard, pairs: &[(u32,u32)]) -> Vec<bool> {\n    let x = 1;\n  }\n}\n",
        );
        assert_eq!(m.funcs.len(), 1);
        let f = &m.funcs[0];
        assert_eq!(f.qualified, "DynGraph::edges_exist");
        assert_eq!(f.line, 2);
        assert_eq!(f.params[1].name, "pin");
        assert!(f.params[1].ty.contains("ReadGuard"));
        assert!(f.ret.contains("Vec"));
    }

    #[test]
    fn trait_impl_takes_type_after_for() {
        let m =
            parse_file("impl GraphBackend for DynGraph { fn degree(&self, v: u32) -> u32 { 0 } }");
        assert_eq!(m.funcs[0].qualified, "DynGraph::degree");
    }

    #[test]
    fn kernels_are_extracted_with_names_and_bodies() {
        let m = parse_file(
            "fn go(dev: &Device) {\n  dev.launch_tasks(\"edge_insert\", n, |warp| {\n    warp.read_word(a);\n  });\n  dev.launch_warps(name, 1, |warp| warp.write_word(a, 1));\n}\n",
        );
        assert_eq!(m.kernels.len(), 2);
        assert_eq!(m.kernels[0].name.as_deref(), Some("edge_insert"));
        assert_eq!(m.kernels[0].line, 2);
        assert_eq!(m.kernels[0].in_func, "go");
        assert!(!m.kernels[0].body.is_empty());
        assert_eq!(m.kernels[1].name, None); // dynamic name → R3 later
        assert!(!m.kernels[1].body.is_empty());
    }

    #[test]
    fn declarations_are_not_call_sites() {
        let m = parse_file("pub fn launch_tasks(&self, name: &str, n: usize) { body() }");
        assert!(m.kernels.is_empty());
        assert_eq!(m.funcs[0].name, "launch_tasks");
    }

    #[test]
    fn cfg_test_marks_test_functions() {
        let m = parse_file(
            "#[cfg(test)]\nmod tests {\n  fn helper(dev: &Device) { dev.launch_tasks(\"t\", 1, |w| {}); }\n}\nfn real() {}\n",
        );
        let helper = m.funcs.iter().find(|f| f.name == "helper").unwrap();
        assert!(helper.cfg_test);
        assert!(!m.funcs.iter().find(|f| f.name == "real").unwrap().cfg_test);
        assert!(m.kernels[0].cfg_test);
    }
}
