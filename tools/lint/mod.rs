//! The kernel-lint static-analysis engine.
//!
//! Pipeline: [`lexer`] (token stream with line provenance) → [`parser`]
//! (token trees; function and kernel extraction) → [`effects`] (per-kernel
//! effect summaries and the name-keyed call graph) → [`rules`] (R1–R10)
//! → [`report`] (rendering, round-trip JSON, allowlist ratchet).
//!
//! This module is mounted both by the `lint-kernels` binary and by the
//! analyzer's own integration test (`tests/lint_kernels.rs`), so each
//! target only uses a slice of the public surface.
#![allow(dead_code)]

pub mod effects;
pub mod lexer;
pub mod parser;
pub mod report;
pub mod rules;

use effects::{effects_of, EffectIndex};
use report::{KernelSummary, LintReport};
use rules::ScannedFile;
use std::path::Path;

/// Collect the workspace's `.rs` sources under `root`, skipping build
/// output, VCS state, the lint's own sources, and the seeded lint fixtures
/// (which violate the rules on purpose).
pub fn scan_workspace(root: &Path) -> std::io::Result<Vec<ScannedFile>> {
    let mut files = Vec::new();
    collect_rs(root, root, &mut files)?;
    files.sort_by(|a, b| a.path.cmp(&b.path));
    Ok(files)
}

fn collect_rs(root: &Path, dir: &Path, out: &mut Vec<ScannedFile>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name().to_string_lossy().to_string();
        if path.is_dir() {
            if matches!(name.as_str(), "target" | ".git" | "tools") {
                continue;
            }
            let rel = path.strip_prefix(root).unwrap_or(&path);
            if rel == Path::new("tests/fixtures") {
                continue;
            }
            collect_rs(root, &path, out)?;
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            let src = std::fs::read_to_string(&path)?;
            out.push(ScannedFile::new(&rel, &src));
        }
    }
    Ok(())
}

/// Run the analysis over a set of scanned files: build the effect index,
/// evaluate every rule, and summarize each kernel.
pub fn analyze(files: &[ScannedFile]) -> LintReport {
    let models: Vec<(String, parser::FileModel)> = files
        .iter()
        .map(|f| (f.path.clone(), parser::model_of(&f.trees)))
        .collect();
    let index = EffectIndex::build(&models);
    let findings = rules::run_rules(files, &index);
    let mut kernels = Vec::new();
    for file in files {
        for k in &file.model.kernels {
            if k.cfg_test {
                continue;
            }
            let fx = effects_of(&k.body);
            kernels.push(KernelSummary::new(
                k.name.as_deref().unwrap_or("<dynamic>"),
                &file.path,
                k.line,
                &k.in_func,
                &k.launcher,
                &fx,
            ));
        }
    }
    let allowed = vec![false; findings.len()];
    LintReport {
        files_scanned: files.len() as u32,
        kernels,
        findings,
        allowed,
        ..Default::default()
    }
}
