//! A self-contained Rust lexer for the kernel lint.
//!
//! Produces a flat token stream with line provenance; comments (line and
//! nested block) are stripped here, so no downstream pass ever has to
//! reason about commented-out code. The lexer understands just enough of
//! Rust's lexical grammar to never mis-tokenize real workspace sources:
//! string/char/byte literals with escapes, raw strings with `#` fences,
//! lifetimes vs char literals, numeric literals (including `0..n` range
//! splits), and the multi-char punctuation the parser cares about
//! (`::`, `->`, `=>`, `||`, `&&`, `..`).

/// What a token is. `text` on [`Tok`] always carries the exact source
/// spelling (string literals keep their quotes so the parser can tell a
/// literal kernel name from an expression).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`fn`, `let`, `warp`, …).
    Ident,
    /// Lifetime (`'a`, `'walk`).
    Lifetime,
    /// Integer or float literal.
    Num,
    /// String / raw-string / byte-string literal, quotes included.
    Str,
    /// Char or byte-char literal.
    Char,
    /// Punctuation — single char or one of the fused pairs
    /// (`::`, `->`, `=>`, `||`, `&&`, `..`).
    Punct,
    /// `(`, `[`, `{`.
    Open,
    /// `)`, `]`, `}`.
    Close,
}

/// One lexed token with 1-based line provenance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tok {
    pub kind: TokKind,
    pub text: String,
    pub line: u32,
}

impl Tok {
    pub fn is(&self, kind: TokKind, text: &str) -> bool {
        self.kind == kind && self.text == text
    }

    pub fn is_ident(&self, text: &str) -> bool {
        self.is(TokKind::Ident, text)
    }

    pub fn is_punct(&self, text: &str) -> bool {
        self.is(TokKind::Punct, text)
    }
}

/// Lex `src` into tokens. Unterminated constructs are tolerated (the rest
/// of the file becomes one token): the lint must never panic on a source
/// tree it is asked to scan.
pub fn lex(src: &str) -> Vec<Tok> {
    let b: Vec<char> = src.chars().collect();
    let mut toks = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;
    while i < b.len() {
        let c = b[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            // Line comment (also swallows doc comments).
            '/' if b.get(i + 1) == Some(&'/') => {
                while i < b.len() && b[i] != '\n' {
                    i += 1;
                }
            }
            // Nested block comment.
            '/' if b.get(i + 1) == Some(&'*') => {
                let mut depth = 1;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == '/' && b.get(i + 1) == Some(&'*') {
                        depth += 1;
                        i += 2;
                    } else if b[i] == '*' && b.get(i + 1) == Some(&'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        if b[i] == '\n' {
                            line += 1;
                        }
                        i += 1;
                    }
                }
            }
            // Raw / byte / raw-byte strings: r"…", r#"…"#, b"…", br#"…"#.
            'r' | 'b' if starts_string_prefix(&b, i) => {
                let start_line = line;
                let (text, consumed, newlines) = lex_prefixed_string(&b, i);
                line += newlines;
                i += consumed;
                toks.push(Tok {
                    kind: TokKind::Str,
                    text,
                    line: start_line,
                });
            }
            '"' => {
                let start_line = line;
                let (text, consumed, newlines) = lex_quoted(&b, i, '"');
                line += newlines;
                i += consumed;
                toks.push(Tok {
                    kind: TokKind::Str,
                    text,
                    line: start_line,
                });
            }
            // `'` starts either a char literal or a lifetime.
            '\'' => {
                if is_lifetime(&b, i) {
                    let start = i;
                    i += 1;
                    while i < b.len() && (b[i].is_alphanumeric() || b[i] == '_') {
                        i += 1;
                    }
                    toks.push(Tok {
                        kind: TokKind::Lifetime,
                        text: b[start..i].iter().collect(),
                        line,
                    });
                } else {
                    let start_line = line;
                    let (text, consumed, newlines) = lex_quoted(&b, i, '\'');
                    line += newlines;
                    i += consumed;
                    toks.push(Tok {
                        kind: TokKind::Char,
                        text,
                        line: start_line,
                    });
                }
            }
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                while i < b.len() && (b[i].is_alphanumeric() || b[i] == '_') {
                    i += 1;
                }
                toks.push(Tok {
                    kind: TokKind::Ident,
                    text: b[start..i].iter().collect(),
                    line,
                });
            }
            c if c.is_ascii_digit() => {
                let start = i;
                i += 1;
                while i < b.len() {
                    let d = b[i];
                    if d.is_alphanumeric() || d == '_' {
                        i += 1;
                    } else if d == '.' {
                        // `0..n` is a range, not a float; `1.5` is a float.
                        if b.get(i + 1).is_some_and(|n| n.is_ascii_digit())
                            && !b[start..i].contains(&'.')
                        {
                            i += 1;
                        } else {
                            break;
                        }
                    } else {
                        break;
                    }
                }
                toks.push(Tok {
                    kind: TokKind::Num,
                    text: b[start..i].iter().collect(),
                    line,
                });
            }
            '(' | '[' | '{' => {
                toks.push(Tok {
                    kind: TokKind::Open,
                    text: c.to_string(),
                    line,
                });
                i += 1;
            }
            ')' | ']' | '}' => {
                toks.push(Tok {
                    kind: TokKind::Close,
                    text: c.to_string(),
                    line,
                });
                i += 1;
            }
            _ => {
                // Fuse the pairs the parser pattern-matches on; everything
                // else is a single-char punct.
                let pair: String = b[i..(i + 2).min(b.len())].iter().collect();
                let fused = matches!(pair.as_str(), "::" | "->" | "=>" | "||" | "&&" | "..");
                let text = if fused { pair } else { c.to_string() };
                i += text.chars().count();
                toks.push(Tok {
                    kind: TokKind::Punct,
                    text,
                    line,
                });
            }
        }
    }
    toks
}

/// Does position `i` (at `r` or `b`) begin a raw/byte string literal
/// rather than a plain identifier?
fn starts_string_prefix(b: &[char], i: usize) -> bool {
    // Only when the previous char can't extend an identifier into this one
    // (`warp` vs `r"…"`).
    if i > 0 && (b[i - 1].is_alphanumeric() || b[i - 1] == '_') {
        return false;
    }
    let mut j = i;
    if b[j] == 'b' {
        j += 1;
    }
    if b.get(j) == Some(&'r') {
        j += 1;
        while b.get(j) == Some(&'#') {
            j += 1;
        }
        return b.get(j) == Some(&'"');
    }
    b.get(j) == Some(&'"') && b[i] == 'b'
}

/// Lex a raw or byte string starting at `i`; returns (text, chars
/// consumed, newlines crossed).
fn lex_prefixed_string(b: &[char], i: usize) -> (String, usize, u32) {
    let mut j = i;
    if b[j] == 'b' {
        j += 1;
    }
    let raw = b.get(j) == Some(&'r');
    if raw {
        j += 1;
        let mut fence = 0usize;
        while b.get(j) == Some(&'#') {
            fence += 1;
            j += 1;
        }
        j += 1; // opening quote
        let mut newlines = 0u32;
        while j < b.len() {
            if b[j] == '\n' {
                newlines += 1;
            }
            if b[j] == '"' && b[j + 1..].iter().take(fence).filter(|c| **c == '#').count() == fence
            {
                j += 1 + fence;
                return (b[i..j].iter().collect(), j - i, newlines);
            }
            j += 1;
        }
        (b[i..].iter().collect(), b.len() - i, newlines)
    } else {
        // b"…" — plain escapes.
        let (text, consumed, newlines) = lex_quoted(b, j, '"');
        let total = (j - i) + consumed;
        (
            format!("{}{}", b[i..j].iter().collect::<String>(), text),
            total,
            newlines,
        )
    }
}

/// Lex a `"…"` or `'…'` literal with backslash escapes starting at `i`.
fn lex_quoted(b: &[char], i: usize, quote: char) -> (String, usize, u32) {
    let mut j = i + 1;
    let mut newlines = 0u32;
    while j < b.len() {
        match b[j] {
            '\\' => j += 2,
            '\n' => {
                newlines += 1;
                j += 1;
            }
            c if c == quote => {
                j += 1;
                return (b[i..j].iter().collect(), j - i, newlines);
            }
            _ => j += 1,
        }
    }
    (b[i..].iter().collect(), b.len() - i, newlines)
}

/// Distinguish `'a` (lifetime) from `'a'` (char). A lifetime is `'` +
/// ident-start not followed by a closing `'` right after one char.
fn is_lifetime(b: &[char], i: usize) -> bool {
    match b.get(i + 1) {
        Some(c) if c.is_alphabetic() || *c == '_' => {
            // `'a'` is a char; `'a` / `'ab…` is a lifetime. Multi-char
            // ident runs are always lifetimes (`'walk`).
            b.get(i + 2) != Some(&'\'')
        }
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(src: &str) -> Vec<String> {
        lex(src).into_iter().map(|t| t.text).collect()
    }

    #[test]
    fn comments_are_stripped() {
        assert_eq!(texts("a // Ordering::Relaxed\nb"), vec!["a", "b"]);
        assert_eq!(texts("a /* x /* y */ z */ b"), vec!["a", "b"]);
    }

    #[test]
    fn strings_and_chars_and_lifetimes() {
        let toks = lex("warp.launch(\"edge_insert\", 'x', '\\n', 'walk: loop {})");
        assert_eq!(toks[4].kind, TokKind::Str);
        assert_eq!(toks[4].text, "\"edge_insert\"");
        assert_eq!(toks[6].kind, TokKind::Char);
        assert_eq!(toks[8].kind, TokKind::Char);
        assert!(toks
            .iter()
            .any(|t| t.kind == TokKind::Lifetime && t.text == "'walk"));
    }

    #[test]
    fn raw_strings_do_not_confuse_idents() {
        let toks = lex("let r = r#\"a \"quoted\" b\"#; restarts");
        assert!(toks
            .iter()
            .any(|t| t.kind == TokKind::Str && t.text.starts_with("r#")));
        assert!(toks.iter().any(|t| t.is_ident("restarts")));
    }

    #[test]
    fn ranges_are_not_floats() {
        let toks = lex("for i in 0..n { x(1.5, 2..=3) }");
        assert!(toks.iter().any(|t| t.is_punct("..")));
        assert!(toks
            .iter()
            .any(|t| t.kind == TokKind::Num && t.text == "1.5"));
    }

    #[test]
    fn fused_puncts_and_lines() {
        let toks = lex("a::b -> c\n=> || && ..");
        for p in ["::", "->", "=>", "||", "&&", ".."] {
            assert!(toks.iter().any(|t| t.is_punct(p)), "{p}");
        }
        assert_eq!(toks.iter().find(|t| t.is_punct("=>")).unwrap().line, 2);
    }
}
