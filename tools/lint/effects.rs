//! Per-kernel effect summaries.
//!
//! For every extracted kernel (and every host function, so effects can be
//! folded through helper calls) this pass computes what the code *does* to
//! the device: arena words read and written through the `Warp` accessors,
//! atomic RMWs, raw `.arena().…` accesses, allocator calls, pin/guard
//! uses, and `std::sync::atomic` orderings.
//!
//! ## Address keys
//!
//! Static analysis cannot resolve device addresses, so accesses are keyed
//! by the *shape* of their address expression:
//!
//! - **Const class** — the set of SCREAMING_CASE constants appearing in
//!   the expression (`slab_addr + NEXT_LANE as u32` → `{NEXT_LANE}`).
//!   These name protocol words (next pointers, sentinels) and are
//!   comparable across kernels — the publication-order rule (R9) pairs
//!   writers and readers on them.
//! - **Base class** — otherwise, the first identifier (`src_buf + base` →
//!   `src_buf`), comparable only within one function.
//!
//! The abstraction is deliberately coarse: it cannot alias two differently
//! named buffers, and it treats every occurrence of a protocol constant as
//! the same word class. Both coarsenings are *conservative for R9* (more
//! pairings checked, not fewer).

use super::parser::{split_on, FileModel, Func, Tree};
use std::collections::{BTreeMap, BTreeSet};

/// How an access touches its word.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum AccessKind {
    /// `read_word` / `read_slab` / `read_lanes`.
    Read,
    /// `write_word` / `write_slab` / `write_lanes` (plus `memset`).
    Write,
    /// `atomic_add` / `atomic_sub` / `atomic_or` / `atomic_and`.
    AtomicRmw,
    /// `atomic_cas` — a release publication when it installs a pointer.
    Cas,
    /// `atomic_exchange` — an unconditional release store.
    Exchange,
}

impl AccessKind {
    pub fn as_str(self) -> &'static str {
        match self {
            AccessKind::Read => "read",
            AccessKind::Write => "write",
            AccessKind::AtomicRmw => "rmw",
            AccessKind::Cas => "cas",
            AccessKind::Exchange => "exchange",
        }
    }

    pub fn from_str(s: &str) -> Option<AccessKind> {
        Some(match s {
            "read" => AccessKind::Read,
            "write" => AccessKind::Write,
            "rmw" => AccessKind::AtomicRmw,
            "cas" => AccessKind::Cas,
            "exchange" => AccessKind::Exchange,
            _ => return None,
        })
    }

    /// Atomic accesses synchronize (the simulator models them as
    /// release+acquire); plain reads/writes do not.
    pub fn is_atomic(self) -> bool {
        !matches!(self, AccessKind::Read | AccessKind::Write)
    }
}

/// One memory access in a kernel body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemAccess {
    pub kind: AccessKind,
    /// `const:NEXT_LANE` or `base:src_buf` (see module docs).
    pub key: String,
    pub line: u32,
    /// The accessor method (`read_word`, `atomic_cas`, …).
    pub method: String,
}

/// The effect summary of one kernel or host function.
#[derive(Debug, Clone, Default)]
pub struct Effects {
    pub accesses: Vec<MemAccess>,
    /// Raw `.arena().method(…)` calls (method, line) — R1's domain.
    pub arena_raw: Vec<(String, u32)>,
    /// Slab-allocator calls (`allocate` / `try_allocate` / `free`), with
    /// lines.
    pub alloc_calls: Vec<(String, u32)>,
    /// Pin-protocol calls (`pin` / `pin_read` / `check_pin`), with lines.
    pub pin_calls: Vec<(String, u32)>,
    /// `advance_era` call lines.
    pub era_advances: Vec<u32>,
    /// `Ordering::X` mentions (ordering name, line) — R2's domain.
    pub orderings: Vec<(String, u32)>,
    /// Names called with `(…)` — the call-graph edges used to fold helper
    /// effects into kernels and to resolve R10 reachability.
    pub calls: BTreeSet<String>,
}

const READERS: [&str; 3] = ["read_word", "read_slab", "read_lanes"];
const WRITERS: [&str; 3] = ["write_word", "write_slab", "write_lanes"];
const RMWS: [&str; 4] = ["atomic_add", "atomic_sub", "atomic_or", "atomic_and"];
const ARENA_METHODS: [&str; 11] = [
    "store",
    "load",
    "fill",
    "fetch_add",
    "fetch_sub",
    "fetch_or",
    "fetch_and",
    "cas",
    "exchange",
    "store_slab",
    "load_slab",
];
const ALLOC_CALLS: [&str; 3] = ["allocate", "try_allocate", "free"];
const PIN_CALLS: [&str; 3] = ["pin", "pin_read", "check_pin"];

/// Compute the effect summary of a tree slice (a kernel body or a function
/// body).
pub fn effects_of(trees: &[Tree]) -> Effects {
    let mut fx = Effects::default();
    collect(trees, &mut fx);
    fx
}

fn collect(trees: &[Tree], fx: &mut Effects) {
    for (i, t) in trees.iter().enumerate() {
        if let Tree::Group { trees: inner, .. } = t {
            collect(inner, fx);
            continue;
        }
        let Some(tok) = t.as_leaf() else { continue };
        let name = tok.text.as_str();
        let dotted = i > 0 && trees[i - 1].as_leaf().is_some_and(|p| p.is_punct("."));
        let pathed = i > 0 && trees[i - 1].as_leaf().is_some_and(|p| p.is_punct("::"));
        let called = trees.get(i + 1).is_some_and(|n| n.is_group('('));
        let declared = i > 0 && trees[i - 1].as_leaf().is_some_and(|p| p.is_ident("fn"));

        // `Ordering::X` — R2's token pattern, wherever it appears.
        if name == "Ordering" {
            if let (Some(sep), Some(which)) = (trees.get(i + 1), trees.get(i + 2)) {
                if sep.as_leaf().is_some_and(|s| s.is_punct("::")) {
                    if let Some(ord) = which.as_leaf() {
                        fx.orderings.push((ord.text.clone(), ord.line));
                    }
                }
            }
        }

        if !called || declared {
            continue;
        }
        let args = trees[i + 1].group_trees().unwrap_or(&[]);

        // `.arena().method(…)` — look back for `arena ( )` then `.`.
        if dotted && ARENA_METHODS.contains(&name) && is_arena_chain(trees, i) {
            fx.arena_raw.push((name.to_string(), tok.line));
            continue;
        }

        if dotted && READERS.contains(&name) {
            fx.accesses.push(access(AccessKind::Read, name, tok, args));
        } else if dotted && WRITERS.contains(&name) {
            fx.accesses.push(access(AccessKind::Write, name, tok, args));
        } else if dotted && RMWS.contains(&name) {
            fx.accesses
                .push(access(AccessKind::AtomicRmw, name, tok, args));
        } else if dotted && name == "atomic_cas" {
            fx.accesses.push(access(AccessKind::Cas, name, tok, args));
        } else if dotted && name == "atomic_exchange" {
            fx.accesses
                .push(access(AccessKind::Exchange, name, tok, args));
        } else if ALLOC_CALLS.contains(&name) && (dotted || pathed) {
            fx.alloc_calls.push((name.to_string(), tok.line));
        } else if PIN_CALLS.contains(&name) {
            fx.pin_calls.push((name.to_string(), tok.line));
        } else if name == "advance_era" {
            fx.era_advances.push(tok.line);
        }

        // Record the call edge for helper-effect folding / R10, skipping
        // obvious non-functions (macro bangs are lexed as `!` before `(`,
        // so `vec!(…)` never lands here; `name!(…)` has `!` between).
        fx.calls.insert(name.to_string());
    }
}

fn is_arena_chain(trees: &[Tree], i: usize) -> bool {
    // … `.` `arena` `(` `)` `.` method — method is at i, so check i-2/-3/-4.
    i >= 4
        && trees[i - 2].is_group('(')
        && trees[i - 2].group_trees().is_some_and(|g| g.is_empty())
        && trees[i - 3].as_leaf().is_some_and(|t| t.is_ident("arena"))
        && trees[i - 4].as_leaf().is_some_and(|t| t.is_punct("."))
}

fn access(kind: AccessKind, method: &str, tok: &super::lexer::Tok, args: &[Tree]) -> MemAccess {
    let addr = split_on(args, ",").first().copied().unwrap_or(&[]).to_vec();
    MemAccess {
        kind,
        key: addr_key(&addr),
        line: tok.line,
        method: method.to_string(),
    }
}

/// Derive the address key of an address expression (see module docs).
pub fn addr_key(trees: &[Tree]) -> String {
    let mut consts = BTreeSet::new();
    let mut base = String::new();
    collect_idents(trees, &mut consts, &mut base);
    if !consts.is_empty() {
        format!("const:{}", consts.into_iter().collect::<Vec<_>>().join("+"))
    } else if base.is_empty() {
        "opaque".to_string()
    } else {
        format!("base:{base}")
    }
}

fn collect_idents(trees: &[Tree], consts: &mut BTreeSet<String>, base: &mut String) {
    for t in trees {
        match t {
            Tree::Group { trees: inner, .. } => collect_idents(inner, consts, base),
            Tree::Leaf(tok) if tok.kind == super::lexer::TokKind::Ident => {
                let text = &tok.text;
                let screaming = text.len() > 1
                    && text
                        .chars()
                        .all(|c| c.is_ascii_uppercase() || c == '_' || c.is_ascii_digit())
                    && text.chars().any(|c| c.is_ascii_uppercase());
                if screaming {
                    consts.insert(text.clone());
                } else if base.is_empty() && text != "as" && text != "usize" && text != "u32" {
                    *base = text.clone();
                }
            }
            _ => {}
        }
    }
}

/// Fold helper-call effects into each kernel: the kernel's transitive
/// summary is its direct effects plus the effects of every function it
/// (transitively) calls, resolved by simple name. Name collisions merge
/// conservatively — a union over same-named functions.
pub struct EffectIndex {
    /// Direct effects per function simple name (merged across collisions).
    pub by_func: BTreeMap<String, Effects>,
}

impl EffectIndex {
    pub fn build(models: &[(String, FileModel)]) -> EffectIndex {
        let mut by_func: BTreeMap<String, Effects> = BTreeMap::new();
        for (_, model) in models {
            for f in &model.funcs {
                if f.cfg_test {
                    continue;
                }
                let fx = effects_of(&f.body);
                merge(by_func.entry(f.name.clone()).or_default(), &fx);
            }
        }
        EffectIndex { by_func }
    }

    /// Transitive effects of `direct`, following call edges up to `depth`
    /// hops (cycle-safe: the visited set is threaded through).
    pub fn transitive(&self, direct: &Effects, depth: usize) -> Effects {
        let mut out = direct.clone();
        let mut visited = BTreeSet::new();
        self.fold(&mut out, &direct.calls.clone(), depth, &mut visited);
        out
    }

    fn fold(
        &self,
        out: &mut Effects,
        calls: &BTreeSet<String>,
        depth: usize,
        visited: &mut BTreeSet<String>,
    ) {
        if depth == 0 {
            return;
        }
        for callee in calls {
            if !visited.insert(callee.clone()) {
                continue;
            }
            if let Some(fx) = self.by_func.get(callee) {
                merge(out, fx);
                self.fold(out, &fx.calls.clone(), depth - 1, visited);
            }
        }
    }

    /// Does `func` transitively reach a call to `target`?
    pub fn reaches(&self, func: &Func, target: &str, depth: usize) -> bool {
        let direct = effects_of(&func.body);
        if direct.era_advances.is_empty() && target == "advance_era" {
            // fall through to the call graph
        } else if target == "advance_era" {
            return true;
        }
        let mut visited = BTreeSet::new();
        self.reaches_from(&direct.calls, target, depth, &mut visited)
    }

    fn reaches_from(
        &self,
        calls: &BTreeSet<String>,
        target: &str,
        depth: usize,
        visited: &mut BTreeSet<String>,
    ) -> bool {
        if calls.contains(target) {
            return true;
        }
        if depth == 0 {
            return false;
        }
        for callee in calls {
            if !visited.insert(callee.clone()) {
                continue;
            }
            if let Some(fx) = self.by_func.get(callee) {
                if !fx.era_advances.is_empty() && target == "advance_era" {
                    return true;
                }
                if self.reaches_from(&fx.calls, target, depth - 1, visited) {
                    return true;
                }
            }
        }
        false
    }
}

fn merge(into: &mut Effects, from: &Effects) {
    into.accesses.extend(from.accesses.iter().cloned());
    into.arena_raw.extend(from.arena_raw.iter().cloned());
    into.alloc_calls.extend(from.alloc_calls.iter().cloned());
    into.pin_calls.extend(from.pin_calls.iter().cloned());
    into.era_advances.extend(from.era_advances.iter().copied());
    into.orderings.extend(from.orderings.iter().cloned());
    into.calls.extend(from.calls.iter().cloned());
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lint::parser::parse_file;

    #[test]
    fn kernel_accesses_are_classified_and_keyed() {
        let m = parse_file(
            "fn go(dev: &Device) {\n  dev.launch_warps(\"k\", 1, |warp| {\n    let w = warp.read_word(p + NEXT_LANE as u32);\n    warp.write_word(out_buf + base, 1);\n    warp.atomic_cas(slab_addr + NEXT_LANE as u32, NULL_ADDR, fresh);\n    warp.atomic_add(count_addr, n);\n  });\n}\n",
        );
        let fx = effects_of(&m.kernels[0].body);
        assert_eq!(fx.accesses.len(), 4);
        assert_eq!(fx.accesses[0].kind, AccessKind::Read);
        assert_eq!(fx.accesses[0].key, "const:NEXT_LANE");
        assert_eq!(fx.accesses[1].kind, AccessKind::Write);
        assert_eq!(fx.accesses[1].key, "base:out_buf");
        assert_eq!(fx.accesses[2].kind, AccessKind::Cas);
        // The key derives from the *address* argument only (the CAS
        // expected/new values don't name the word being published).
        assert_eq!(fx.accesses[2].key, "const:NEXT_LANE");
        assert_eq!(fx.accesses[3].kind, AccessKind::AtomicRmw);
        assert_eq!(fx.accesses[3].line, 6);
    }

    #[test]
    fn arena_raw_and_orderings_and_calls() {
        let m = parse_file(
            "fn stage(&self) {\n  self.dev.arena().store(a, 0);\n  self.allocated.fetch_add(1, Ordering::Relaxed);\n  self.dict.desc(warp, v);\n}\n",
        );
        let fx = effects_of(&m.funcs[0].body);
        assert_eq!(fx.arena_raw, vec![("store".to_string(), 2)]);
        assert_eq!(fx.orderings, vec![("Relaxed".to_string(), 3)]);
        assert!(fx.calls.contains("desc"));
        // `fetch_add` on a std atomic is NOT an arena access.
        assert!(fx.accesses.is_empty());
    }

    #[test]
    fn transitive_effects_fold_helper_calls() {
        let models = vec![(
            "f.rs".to_string(),
            parse_file(
                "fn helper(warp: &Warp) { warp.read_word(p + NEXT_LANE as u32); }\nfn outer(dev: &Device) { dev.launch_warps(\"k\", 1, |warp| { helper(warp); }); }\n",
            ),
        )];
        let idx = EffectIndex::build(&models);
        let direct = effects_of(&models[0].1.kernels[0].body);
        assert!(direct.accesses.is_empty());
        let trans = idx.transitive(&direct, 8);
        assert_eq!(trans.accesses.len(), 1);
        assert_eq!(trans.accesses[0].key, "const:NEXT_LANE");
    }

    #[test]
    fn reachability_follows_the_call_graph() {
        let models = vec![(
            "f.rs".to_string(),
            parse_file(
                "fn inner(dev: &Device) { dev.advance_era(); }\nfn mid(dev: &Device) { inner(dev); }\nfn entry(dev: &Device) { mid(dev); }\nfn stray(dev: &Device) { noop(); }\n",
            ),
        )];
        let idx = EffectIndex::build(&models);
        let entry = models[0]
            .1
            .funcs
            .iter()
            .find(|f| f.name == "entry")
            .unwrap();
        let stray = models[0]
            .1
            .funcs
            .iter()
            .find(|f| f.name == "stray")
            .unwrap();
        assert!(idx.reaches(entry, "advance_era", 8));
        assert!(!idx.reaches(stray, "advance_era", 8));
    }
}
