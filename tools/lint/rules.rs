//! The lint rules, R1–R11, evaluated over the parsed file models and
//! effect summaries.
//!
//! R1–R7 are the historical rules re-expressed over the token stream
//! (they used to be per-line regexes); R8–R10 are the flow-sensitive
//! checks that guard the pin/epoch and publication protocols; R11 guards
//! the causal-tracing contract:
//!
//! - **R8 `pin-escape`** — guard liveness. `ReadGuard`/`ReadPin` values
//!   are tracked from `pin()`/`pin_read()` through bindings, moves and
//!   drops; every query-path kernel launch must be dominated by a live
//!   guard (a guard parameter or a still-live local), a guard must not be
//!   discarded at birth (`let _ = g.pin_read()`), must not be live across
//!   an `advance_era()`, and must not escape a function whose return type
//!   doesn't carry it. This retires R7's ten-line text window.
//! - **R9 `publication-order`** — cross-kernel word classes (keyed by the
//!   named constants in their address expressions, e.g. `NEXT_LANE`)
//!   written in one kernel and read in a concurrently-running pinned
//!   reader kernel must be published atomically (`atomic_cas` /
//!   `atomic_exchange` / RMW — the simulator models atomics as
//!   release+acquire); a plain `write_word`-family store to such a word
//!   is exactly the class of publication race the sanitizer caught
//!   dynamically in PR 4.
//! - **R10 `era-advance`** — every mutation batch entry point in
//!   `crates/core` and `crates/router` must reach `advance_era()` (the
//!   release edge of the epoch protocol) on its success paths: the entry
//!   point must transitively reach an advance through the call graph, and
//!   no batch-boundary function may early-return success between its
//!   kernel launch and its era advance.
//! - **R11 `untraced-dispatch`** — every `.dispatch(…)` fan-out in the
//!   router crate must stamp its device work with a `TraceCtx` (a
//!   `trace_scope` inside the dispatch closure): an untraced dispatch
//!   produces charged kernel spans with no causal parent, so the op
//!   lifecycles `trace-query` reconstructs silently lose that work.

use super::effects::{effects_of, AccessKind, EffectIndex, Effects};
use super::parser::{Func, Kernel, Tree, LAUNCHERS};
use std::collections::BTreeSet;

/// Rule metadata.
pub struct RuleMeta {
    pub id: &'static str,
    pub name: &'static str,
    pub desc: &'static str,
}

pub const RULES: [RuleMeta; 11] = [
    RuleMeta {
        id: "R1",
        name: "raw-arena-access",
        desc: "raw arena access bypasses Warp accessors (uncounted, unsanitized)",
    },
    RuleMeta {
        id: "R2",
        name: "relaxed-ordering",
        desc: "Ordering::Relaxed outside gpu-sim defeats acquire/release publication",
    },
    RuleMeta {
        id: "R3",
        name: "unnamed-launch",
        desc: "kernel launch without a literal name breaks attribution/provenance",
    },
    RuleMeta {
        id: "R4",
        name: "counter-bypass",
        desc: "PerfCounters mutated outside Charge, or PhaseGuard discarded at the call site",
    },
    RuleMeta {
        id: "R5",
        name: "rogue-device",
        desc: "direct Device construction in sharded code; shard devices must come from a DeviceGroup",
    },
    RuleMeta {
        id: "R6",
        name: "unretried-dispatch",
        desc: "dispatch outcome unwrapped or discarded in sharded code; route it through the retry policy or journal",
    },
    RuleMeta {
        id: "R7",
        name: "unpinned-read",
        desc: "query-path kernel launched from a function with no pin evidence at all",
    },
    RuleMeta {
        id: "R8",
        name: "pin-escape",
        desc: "guard liveness violation: launch not dominated by a live ReadGuard, guard discarded, escaping, or crossing advance_era",
    },
    RuleMeta {
        id: "R9",
        name: "publication-order",
        desc: "word class written non-atomically in one kernel but read by a pinned reader kernel; publish with atomic_cas/atomic_exchange",
    },
    RuleMeta {
        id: "R10",
        name: "era-advance",
        desc: "mutation batch entry point does not reach advance_era() on its success paths",
    },
    RuleMeta {
        id: "R11",
        name: "untraced-dispatch",
        desc: "router dispatch without a TraceCtx; wrap the closure's device work in trace_scope so spans carry a causal parent",
    },
];

pub fn rule_meta(id: &str) -> &'static RuleMeta {
    RULES.iter().find(|r| r.id == id).unwrap_or(&RULES[0])
}

/// One lint finding with full provenance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    pub rule: String,
    pub path: String,
    pub line: u32,
    /// Kernel name, when the finding is attributed to a kernel.
    pub kernel: String,
    /// Enclosing function, when known.
    pub func: String,
    pub message: String,
    pub excerpt: String,
}

/// A scanned file ready for rule evaluation.
pub struct ScannedFile {
    pub path: String,
    pub lines: Vec<String>,
    pub trees: Vec<Tree>,
    pub model: super::parser::FileModel,
}

impl ScannedFile {
    pub fn new(path: &str, src: &str) -> ScannedFile {
        let trees = super::parser::build_trees(&super::lexer::lex(src));
        let model = super::parser::model_of(&trees);
        ScannedFile {
            path: path.to_string(),
            lines: src.lines().map(|l| l.to_string()).collect(),
            trees,
            model,
        }
    }

    fn excerpt(&self, line: u32) -> String {
        self.lines
            .get(line as usize - 1)
            .map(|l| l.trim().to_string())
            .unwrap_or_default()
    }
}

// ---- scopes ---------------------------------------------------------------

fn in_gpu_sim(path: &str) -> bool {
    path.starts_with("crates/gpu-sim/")
}

/// Sharded code paths, where R5/R6 apply: the router crate and any
/// `sharded.rs` module orchestrate device groups.
fn in_sharded_scope(path: &str) -> bool {
    path.starts_with("crates/router/") || path.ends_with("/sharded.rs")
}

/// Causal-tracing scope, where R11 applies: the router crate mints
/// `TraceCtx`s and every shard fan-out it issues must carry one.
fn in_router_scope(path: &str) -> bool {
    path.starts_with("crates/router/")
}

/// The pinned query path, where R7/R8 guard-domination applies: these
/// files launch chain-walking read kernels whose slabs only a live
/// `ReadGuard` holds back from reclamation.
fn in_query_scope(path: &str) -> bool {
    path == "crates/core/src/query.rs" || path == "crates/core/src/stats.rs"
}

/// Era-protocol scope, where R10 applies: the core graph and the router
/// acknowledge mutation batches.
fn in_era_scope(path: &str) -> bool {
    path.starts_with("crates/core/src/") || path.starts_with("crates/router/src/")
}

/// Function names that acknowledge a mutation batch — R10 entry points.
fn is_mutation_entry(name: &str) -> bool {
    name.starts_with("insert_")
        || name.starts_with("delete_")
        || name.starts_with("try_insert_")
        || name.starts_with("try_delete_")
        || matches!(
            name,
            "flush"
                | "flush_tombstones"
                | "rehash_overloaded"
                | "purge_deleted"
                | "try_purge_deleted"
                | "retry_suffix"
                | "rebuild_downed"
        )
}

/// Guard-carrying types for R7/R8.
fn is_guard_type(ty: &str) -> bool {
    ty.contains("ReadGuard") || ty.contains("ReadPin")
}

// ---- shared tree helpers --------------------------------------------------

/// Recursively test whether `trees` contains a dotted call to any name in
/// `names` (`x.name(…)`).
fn contains_dotted_call(trees: &[Tree], names: &[&str]) -> Option<u32> {
    for (i, t) in trees.iter().enumerate() {
        if let Tree::Group { trees: inner, .. } = t {
            if let Some(line) = contains_dotted_call(inner, names) {
                return Some(line);
            }
            continue;
        }
        let Some(tok) = t.as_leaf() else { continue };
        if names.contains(&tok.text.as_str())
            && i > 0
            && trees[i - 1].as_leaf().is_some_and(|p| p.is_punct("."))
            && trees.get(i + 1).is_some_and(|a| a.is_group('('))
        {
            return Some(tok.line);
        }
    }
    None
}

/// Recursively test whether `trees` contains a call to `name` in any form
/// (`name(…)` or `x.name(…)`), excluding declarations.
fn contains_call(trees: &[Tree], name: &str) -> Option<u32> {
    for (i, t) in trees.iter().enumerate() {
        if let Tree::Group { trees: inner, .. } = t {
            if let Some(line) = contains_call(inner, name) {
                return Some(line);
            }
            continue;
        }
        let Some(tok) = t.as_leaf() else { continue };
        if tok.text == name
            && trees.get(i + 1).is_some_and(|a| a.is_group('('))
            && !(i > 0 && trees[i - 1].as_leaf().is_some_and(|p| p.is_ident("fn")))
        {
            return Some(tok.line);
        }
    }
    None
}

/// Does this tree slice mention `ident` as a standalone leaf?
fn mentions_ident(trees: &[Tree], ident: &str) -> bool {
    trees.iter().any(|t| match t {
        Tree::Group { trees: inner, .. } => mentions_ident(inner, ident),
        Tree::Leaf(tok) => tok.is_ident(ident),
    })
}

/// Body statements: top-level chunks split at `;`, and after a
/// `{…}`-terminated statement (`if`/`for`/`while`/`match`/`loop`/block)
/// when what follows starts a new statement. A `{}` group followed by
/// `else`, an operator, or `;` stays inside its chunk (it is part of an
/// expression). The trailing expression is the final statement.
fn statements(body: &[Tree]) -> Vec<&[Tree]> {
    let mut parts = Vec::new();
    let mut start = 0;
    for (i, t) in body.iter().enumerate() {
        if t.as_leaf().is_some_and(|tok| tok.is_punct(";")) {
            parts.push(&body[start..i]);
            start = i + 1;
        } else if t.is_group('{') && i >= start {
            let next_starts_stmt = body.get(i + 1).is_some_and(|n| {
                n.as_leaf().is_some_and(|l| {
                    (l.kind == super::lexer::TokKind::Ident && !l.is_ident("else"))
                        || l.is_punct("#")
                })
            });
            if next_starts_stmt {
                parts.push(&body[start..=i]);
                start = i + 1;
            }
        }
    }
    parts.push(&body[start..]);
    parts.into_iter().filter(|s| !s.is_empty()).collect()
}

/// Every block level in `trees`: the slice itself plus the contents of
/// every `{}` group at any depth (closure bodies inside call arguments
/// included).
fn blocks_of<'t>(trees: &'t [Tree], out: &mut Vec<&'t [Tree]>) {
    out.push(trees);
    fn descend<'t>(trees: &'t [Tree], out: &mut Vec<&'t [Tree]>) {
        for t in trees {
            if let Tree::Group {
                delim,
                trees: inner,
                ..
            } = t
            {
                if *delim == '{' {
                    out.push(inner);
                }
                descend(inner, out);
            }
        }
    }
    descend(trees, out);
}

/// A pin-producing call (`pin_read()` / `.pin(…)`) whose argument group is
/// the *last* tree of this slice — i.e. the guard value is the expression's
/// own result, not a temporary nested inside some other call's arguments.
fn top_level_pin_call(trees: &[Tree]) -> Option<u32> {
    if trees.len() < 2 || !trees[trees.len() - 1].is_group('(') {
        return None;
    }
    let callee = trees[trees.len() - 2].as_leaf()?;
    if callee.text == "pin_read" || callee.text == "pin" {
        Some(callee.line)
    } else {
        None
    }
}

// ---- the pass -------------------------------------------------------------

/// Run every rule over the scanned files. `index` carries the
/// workspace-wide effect summaries for cross-kernel (R9) and
/// reachability (R10) analysis.
pub fn run_rules(files: &[ScannedFile], index: &EffectIndex) -> Vec<Finding> {
    let mut findings = Vec::new();
    for file in files {
        token_rules(file, &mut findings);
        statement_rules(file, &mut findings);
        guard_rules(file, &mut findings);
        era_rules(file, index, &mut findings);
    }
    publication_rules(files, index, &mut findings);
    findings.sort_by(|a, b| {
        let ra = rule_ord(&a.rule);
        let rb = rule_ord(&b.rule);
        ra.cmp(&rb)
            .then(a.path.cmp(&b.path))
            .then(a.line.cmp(&b.line))
            .then(a.message.cmp(&b.message))
    });
    findings.dedup();
    findings
}

fn rule_ord(id: &str) -> u32 {
    id.trim_start_matches('R').parse().unwrap_or(99)
}

fn push(
    findings: &mut Vec<Finding>,
    file: &ScannedFile,
    rule: &str,
    line: u32,
    kernel: &str,
    func: &str,
    message: String,
) {
    findings.push(Finding {
        rule: rule.to_string(),
        path: file.path.clone(),
        line,
        kernel: kernel.to_string(),
        func: func.to_string(),
        message,
        excerpt: file.excerpt(line),
    });
}

/// R1 / R2 / R5: whole-file token-sequence rules.
fn token_rules(file: &ScannedFile, findings: &mut Vec<Finding>) {
    let gpu_sim = in_gpu_sim(&file.path);
    let sharded = in_sharded_scope(&file.path);
    token_walk(&file.trees, &mut |trees, i| {
        let Some(tok) = trees[i].as_leaf() else {
            return;
        };
        // R1: `.arena().method(…)` outside gpu-sim.
        if !gpu_sim {
            const ARENA_METHODS: [&str; 11] = [
                "store",
                "load",
                "fill",
                "fetch_add",
                "fetch_sub",
                "fetch_or",
                "fetch_and",
                "cas",
                "exchange",
                "store_slab",
                "load_slab",
            ];
            if ARENA_METHODS.contains(&tok.text.as_str())
                && trees.get(i + 1).is_some_and(|a| a.is_group('('))
                && i >= 4
                && trees[i - 1].as_leaf().is_some_and(|t| t.is_punct("."))
                && trees[i - 2].is_group('(')
                && trees[i - 2].group_trees().is_some_and(|g| g.is_empty())
                && trees[i - 3].as_leaf().is_some_and(|t| t.is_ident("arena"))
                && trees[i - 4].as_leaf().is_some_and(|t| t.is_punct("."))
            {
                push(
                    findings,
                    file,
                    "R1",
                    tok.line,
                    "",
                    "",
                    format!("raw arena access `.arena().{}(…)`", tok.text),
                );
            }
        }
        // R2: `Ordering::Relaxed` outside gpu-sim.
        if !gpu_sim
            && tok.is_ident("Ordering")
            && trees
                .get(i + 1)
                .is_some_and(|t| t.as_leaf().is_some_and(|s| s.is_punct("::")))
            && trees
                .get(i + 2)
                .is_some_and(|t| t.as_leaf().is_some_and(|s| s.is_ident("Relaxed")))
        {
            let line = trees[i + 2].line();
            push(
                findings,
                file,
                "R2",
                line,
                "",
                "",
                "Ordering::Relaxed outside gpu-sim".to_string(),
            );
        }
        // R5: `Device::new/with_policy/with_config(…)` in sharded scope.
        if sharded
            && tok.is_ident("Device")
            && trees
                .get(i + 1)
                .is_some_and(|t| t.as_leaf().is_some_and(|s| s.is_punct("::")))
        {
            if let Some(ctor) = trees.get(i + 2).and_then(|t| t.as_leaf()) {
                if matches!(ctor.text.as_str(), "new" | "with_policy" | "with_config")
                    && trees.get(i + 3).is_some_and(|a| a.is_group('('))
                {
                    push(
                        findings,
                        file,
                        "R5",
                        ctor.line,
                        "",
                        "",
                        format!("direct `Device::{}` in sharded code", ctor.text),
                    );
                }
            }
        }
    });
    // R3: kernels whose name argument is not a string literal.
    for k in &file.model.kernels {
        if k.name.is_none() {
            push(
                findings,
                file,
                "R3",
                k.line,
                "",
                &k.in_func,
                format!("`{}` call site without a literal kernel name", k.launcher),
            );
        }
    }
}

/// Depth-first walk invoking `f` at every position of every tree level.
fn token_walk(trees: &[Tree], f: &mut impl FnMut(&[Tree], usize)) {
    for (i, t) in trees.iter().enumerate() {
        f(trees, i);
        if let Tree::Group { trees: inner, .. } = t {
            token_walk(inner, f);
        }
    }
}

/// R4 / R6 / R11: statement-level rules over function bodies.
fn statement_rules(file: &ScannedFile, findings: &mut Vec<Finding>) {
    let gpu_sim = in_gpu_sim(&file.path);
    let sharded = in_sharded_scope(&file.path);
    let router = in_router_scope(&file.path);
    for func in &file.model.funcs {
        // R4: evaluated per *block level* — a `.phase("…")` call is fine
        // when its own statement binds the guard, wherever the block sits.
        if !gpu_sim {
            let mut blocks = Vec::new();
            blocks_of(&func.body, &mut blocks);
            for block in blocks {
                for stmt in statements(block) {
                    let has_let = stmt
                        .first()
                        .is_some_and(|t| t.as_leaf().is_some_and(|l| l.is_ident("let")));
                    if !has_let {
                        if let Some(line) = phase_call_at_level(stmt) {
                            push(
                                findings,
                                file,
                                "R4",
                                line,
                                "",
                                &func.name,
                                "PhaseGuard discarded at the call site; bind it (`let _phase = …`)"
                                    .to_string(),
                            );
                        }
                    }
                }
            }
        }
        for stmt in statements(&func.body) {
            // R4a: direct PerfCounters mutation.
            if !gpu_sim {
                if let Some(line) = counters_add_call(stmt) {
                    push(
                        findings,
                        file,
                        "R4",
                        line,
                        "",
                        &func.name,
                        "PerfCounters mutated directly; go through the Charge API".to_string(),
                    );
                }
            }
            // R6: dispatch outcome unwrapped or discarded in sharded code.
            if sharded && !func.cfg_test {
                const DISPATCH: [&str; 5] = [
                    "try_insert_edges",
                    "try_delete_edges",
                    "try_insert_vertices",
                    "retry_suffix",
                    "launch_check",
                ];
                if let Some(line) = contains_dotted_call(stmt, &DISPATCH) {
                    let unwrapped = contains_dotted_call(stmt, &["unwrap", "expect"]).is_some();
                    let discarded = stmt.len() >= 2
                        && stmt[0].as_leaf().is_some_and(|t| t.is_ident("let"))
                        && stmt[1].as_leaf().is_some_and(|t| t.is_ident("_"))
                        && stmt
                            .get(2)
                            .is_some_and(|t| t.as_leaf().is_some_and(|l| l.is_punct("=")));
                    if unwrapped || discarded {
                        push(
                            findings,
                            file,
                            "R6",
                            line,
                            "",
                            &func.name,
                            "dispatch outcome unwrapped/discarded; route through retry policy or journal".to_string(),
                        );
                    }
                }
            }
            // R11: a shard fan-out must stamp its device work with a
            // TraceCtx. The `trace_scope` call lives inside the dispatch
            // closure, so it is always within the dispatch statement.
            if router && !func.cfg_test {
                if let Some(line) = contains_dotted_call(stmt, &["dispatch"]) {
                    if !mentions_ident(stmt, "trace_scope") {
                        push(
                            findings,
                            file,
                            "R11",
                            line,
                            "",
                            &func.name,
                            "dispatch without a TraceCtx: wrap the closure's device work in `dev.trace_scope(ctx)` so its spans carry a causal parent".to_string(),
                        );
                    }
                }
            }
        }
    }
}

fn counters_add_call(trees: &[Tree]) -> Option<u32> {
    let mut found = None;
    token_walk(trees, &mut |ts, i| {
        if found.is_some() {
            return;
        }
        let Some(tok) = ts[i].as_leaf() else { return };
        if tok.text.starts_with("add_")
            && ts.get(i + 1).is_some_and(|a| a.is_group('('))
            && i >= 4
            && ts[i - 1].as_leaf().is_some_and(|t| t.is_punct("."))
            && ts[i - 2].is_group('(')
            && ts[i - 3].as_leaf().is_some_and(|t| t.is_ident("counters"))
            && ts[i - 4].as_leaf().is_some_and(|t| t.is_punct("."))
        {
            found = Some(tok.line);
        }
    });
    found
}

/// A `.phase("…")` call at *this* statement level (no descent into nested
/// groups — those are other blocks' statements or call arguments).
fn phase_call_at_level(trees: &[Tree]) -> Option<u32> {
    for (i, t) in trees.iter().enumerate() {
        let Some(tok) = t.as_leaf() else { continue };
        if tok.is_ident("phase") && i > 0 && trees[i - 1].as_leaf().is_some_and(|p| p.is_punct("."))
        {
            if let Some(args) = trees.get(i + 1).and_then(|a| a.group_trees()) {
                let literal_name = args
                    .first()
                    .and_then(|a| a.as_leaf())
                    .is_some_and(|a| a.kind == super::lexer::TokKind::Str);
                if literal_name {
                    return Some(tok.line);
                }
            }
        }
    }
    None
}

/// R7 / R8: guard liveness over the pinned query path.
fn guard_rules(file: &ScannedFile, findings: &mut Vec<Finding>) {
    if in_gpu_sim(&file.path) {
        return;
    }
    let query_scope = in_query_scope(&file.path);
    for func in &file.model.funcs {
        if func.cfg_test {
            continue;
        }
        // Guard parameters are live for the whole function body.
        let guard_params: BTreeSet<String> = func
            .params
            .iter()
            .filter(|p| is_guard_type(&p.ty))
            .map(|p| p.name.clone())
            .collect();
        let fx = effects_of(&func.body);
        let has_pin_evidence = !guard_params.is_empty() || !fx.pin_calls.is_empty();

        let mut live: BTreeSet<String> = BTreeSet::new();
        // The trailing expression (a body not ending in `;`) is the return
        // value — a pin call there hands the guard to the caller.
        let has_trailing_expr = func
            .body
            .last()
            .is_some_and(|t| !t.as_leaf().is_some_and(|l| l.is_punct(";")));
        let stmts = statements(&func.body);
        for (idx, stmt) in stmts.iter().enumerate() {
            let stmt: &[Tree] = stmt;
            let is_trailing = has_trailing_expr && idx == stmts.len() - 1;
            // Guard births: `let g = x.pin_read()` / `let g = a.pin(…)` /
            // `let g: ReadGuard = …` / `let g2 = g1` (move). The pin call
            // must be the init's own top-level call — a guard temporary
            // nested in another call's arguments (`g.neighbors(&g.pin_read(),
            // v)`) lives exactly as long as its statement and binds nothing.
            if let Some((name, init)) = binding_of(stmt) {
                let pins = top_level_pin_call(init).is_some();
                let ascribed = binding_type(stmt).is_some_and(|ty| is_guard_type(&ty));
                let moved_from = init
                    .iter()
                    .filter_map(|t| t.as_leaf())
                    .find(|t| live.contains(&t.text))
                    .map(|t| t.text.clone());
                if pins || ascribed || moved_from.is_some() {
                    if name == "_" {
                        // A guard bound to `_` drops immediately: it pins
                        // nothing by the time any kernel runs.
                        push(
                            findings,
                            file,
                            "R8",
                            stmt.first().map_or(func.line, |t| t.line()),
                            "",
                            &func.name,
                            "ReadGuard discarded at birth (`let _ = …pin…`); bind it for the walk's duration".to_string(),
                        );
                    } else {
                        live.insert(name);
                        if let (Some(src), true) = (&moved_from, init.len() == 1) {
                            // A plain move (`let g2 = g1;`) ends g1.
                            live.remove(src);
                        }
                    }
                }
            } else if !is_trailing
                && stmt
                    .first()
                    .is_some_and(|t| t.as_leaf().is_none_or(|l| !l.is_ident("return")))
            {
                // A bare `x.pin_read();` statement: guard dropped at the
                // end of the statement, pinning nothing.
                if let Some(line) = top_level_pin_call(stmt) {
                    push(
                        findings,
                        file,
                        "R8",
                        line,
                        "",
                        &func.name,
                        "ReadGuard dropped in the same statement that pinned it".to_string(),
                    );
                }
            }

            // Guard deaths: `drop(g)`.
            if let Some(dropped) = dropped_ident(stmt) {
                live.remove(&dropped);
            }

            // Era advancement with a live local guard: the guard's era can
            // never be drained while it lives, and a mutator advancing
            // under its own pin deadlocks reclamation.
            if !live.is_empty() {
                if let Some(line) = contains_call(stmt, "advance_era") {
                    push(
                        findings,
                        file,
                        "R8",
                        line,
                        "",
                        &func.name,
                        format!(
                            "advance_era() while guard{} {:?} still live",
                            if live.len() == 1 { "" } else { "s" },
                            live.iter().cloned().collect::<Vec<_>>()
                        ),
                    );
                }
            }

            // Query-path launches must be dominated by a live guard.
            if query_scope {
                if let Some(line) = contains_dotted_call(stmt, &["launch_tasks", "launch_warps"]) {
                    if guard_params.is_empty() && live.is_empty() {
                        push(
                            findings,
                            file,
                            "R8",
                            line,
                            "",
                            &func.name,
                            "chain-walking launch not dominated by a live ReadGuard".to_string(),
                        );
                    }
                    if !has_pin_evidence {
                        push(
                            findings,
                            file,
                            "R7",
                            line,
                            "",
                            &func.name,
                            "query-path launch in a function with no pin evidence".to_string(),
                        );
                    }
                }
            }

            // Guard escape: returning a live guard from a function whose
            // signature doesn't say so.
            if !live.is_empty()
                && stmt
                    .first()
                    .is_some_and(|t| t.as_leaf().is_some_and(|l| l.is_ident("return")))
                && !is_guard_type(&func.ret)
            {
                for g in &live {
                    if mentions_ident(&stmt[1..], g) {
                        push(
                            findings,
                            file,
                            "R8",
                            stmt[0].line(),
                            "",
                            &func.name,
                            format!(
                                "guard `{g}` escapes through a return type that does not carry it"
                            ),
                        );
                    }
                }
            }
        }
        // Final-expression escape: the trailing statement returns the
        // guard by value.
        if !is_guard_type(&func.ret) {
            if let Some(last) = statements(&func.body).last() {
                if last.len() == 1 {
                    if let Some(tok) = last[0].as_leaf() {
                        if live.contains(&tok.text) {
                            push(
                                findings,
                                file,
                                "R8",
                                tok.line,
                                "",
                                &func.name,
                                format!(
                                    "guard `{}` escapes through a return type that does not carry it",
                                    tok.text
                                ),
                            );
                        }
                    }
                }
            }
        }
    }
}

/// `let [mut] name … = init` → (name, init trees).
fn binding_of(stmt: &[Tree]) -> Option<(String, &[Tree])> {
    if !stmt.first()?.as_leaf()?.is_ident("let") {
        return None;
    }
    let mut name = None;
    for (i, t) in stmt.iter().enumerate().skip(1) {
        if let Some(tok) = t.as_leaf() {
            if tok.is_punct("=") {
                return Some((name?, &stmt[i + 1..]));
            }
            if tok.kind == super::lexer::TokKind::Ident
                && !matches!(tok.text.as_str(), "mut" | "ref")
                && name.is_none()
            {
                name = Some(tok.text.clone());
            }
        }
    }
    None
}

/// The ascribed type text of a `let name: Ty = …` statement.
fn binding_type(stmt: &[Tree]) -> Option<String> {
    if !stmt.first()?.as_leaf()?.is_ident("let") {
        return None;
    }
    let colon = stmt
        .iter()
        .position(|t| t.as_leaf().is_some_and(|l| l.is_punct(":")))?;
    let eq = stmt
        .iter()
        .position(|t| t.as_leaf().is_some_and(|l| l.is_punct("=")))?;
    if colon >= eq {
        return None;
    }
    Some(
        stmt[colon + 1..eq]
            .iter()
            .map(|t| t.flat_text())
            .collect::<Vec<_>>()
            .join(" "),
    )
}

/// `drop(g)` → `g`.
fn dropped_ident(stmt: &[Tree]) -> Option<String> {
    for (i, t) in stmt.iter().enumerate() {
        if t.as_leaf().is_some_and(|l| l.is_ident("drop")) {
            if let Some([Tree::Leaf(tok)]) = stmt.get(i + 1).and_then(|a| a.group_trees()) {
                return Some(tok.text.clone());
            }
        }
    }
    None
}

/// R10: era-advance reachability and batch-boundary ordering.
fn era_rules(file: &ScannedFile, index: &EffectIndex, findings: &mut Vec<Finding>) {
    if !in_era_scope(&file.path) {
        return;
    }
    for func in &file.model.funcs {
        if func.cfg_test {
            continue;
        }
        let fx = effects_of(&func.body);
        // (a) Reachability: a mutation batch entry point must reach
        // advance_era through the call graph.
        if is_mutation_entry(&func.name) && !index.reaches(func, "advance_era", 8) {
            push(
                findings,
                file,
                "R10",
                func.line,
                "",
                &func.name,
                format!(
                    "mutation entry point `{}` never reaches advance_era(); the epoch release edge is missing",
                    func.name
                ),
            );
        }
        // (b) Ordering at the batch boundary: in a function that both
        // launches and advances, no top-level success return may sit
        // between the launch and the advance.
        if fx.era_advances.is_empty() {
            continue;
        }
        let mut launched = false;
        let mut advanced = false;
        for stmt in statements(&func.body) {
            if contains_dotted_call(stmt, &LAUNCHERS).is_some() {
                launched = true;
            }
            if contains_call(stmt, "advance_era").is_some() {
                advanced = true;
            }
            if launched && !advanced {
                if let Some(line) = success_return(stmt) {
                    push(
                        findings,
                        file,
                        "R10",
                        line,
                        "",
                        &func.name,
                        "success return between kernel launch and advance_era(): the batch acknowledges before publishing its frees".to_string(),
                    );
                }
            }
        }
    }
}

/// A `return Ok(…)` / `return Some(…)` success exit inside this statement.
fn success_return(trees: &[Tree]) -> Option<u32> {
    let mut found = None;
    token_walk(trees, &mut |ts, i| {
        if found.is_some() {
            return;
        }
        let Some(tok) = ts[i].as_leaf() else { return };
        if tok.is_ident("return")
            && ts.get(i + 1).is_some_and(|t| {
                t.as_leaf()
                    .is_some_and(|l| l.is_ident("Ok") || l.is_ident("Some"))
            })
        {
            found = Some(tok.line);
        }
    });
    found
}

/// R9: cross-kernel publication-order analysis over effect summaries.
fn publication_rules(files: &[ScannedFile], index: &EffectIndex, findings: &mut Vec<Finding>) {
    struct KernelFx<'k> {
        file_idx: usize,
        kernel: &'k Kernel,
        fx: Effects,
        reader_side: bool,
    }
    let mut kernels: Vec<KernelFx> = Vec::new();
    for (file_idx, file) in files.iter().enumerate() {
        if in_gpu_sim(&file.path) {
            continue;
        }
        for kernel in &file.model.kernels {
            if kernel.cfg_test {
                continue;
            }
            let fx = index.transitive(&effects_of(&kernel.body), 8);
            let reader_side = files[file_idx]
                .model
                .funcs
                .iter()
                .find(|f| f.name == kernel.in_func)
                .is_some_and(is_pinned_reader);
            kernels.push(KernelFx {
                file_idx,
                kernel,
                fx,
                reader_side,
            });
        }
    }
    for writer in &kernels {
        for access in &writer.fx.accesses {
            if access.kind != AccessKind::Write || !access.key.starts_with("const:") {
                continue;
            }
            // Find a pinned reader of the same word class in a different
            // kernel. Kernel identity is the literal name; two launch
            // sites of the same kernel name are the same kernel.
            let reader = kernels.iter().find(|r| {
                r.reader_side
                    && r.kernel.name != writer.kernel.name
                    && r.fx
                        .accesses
                        .iter()
                        .any(|a| a.key == access.key && matches!(a.kind, AccessKind::Read))
            });
            if let Some(reader) = reader {
                let file = &files[writer.file_idx];
                let wname = writer.kernel.name.as_deref().unwrap_or("<dynamic>");
                let rname = reader.kernel.name.as_deref().unwrap_or("<dynamic>");
                push(
                    findings,
                    file,
                    "R9",
                    writer.kernel.line,
                    wname,
                    &writer.kernel.in_func,
                    format!(
                        "kernel `{wname}` stores word class `{}` with plain `{}` (line {}), but pinned reader kernel `{rname}` loads it concurrently; publish with atomic_cas/atomic_exchange",
                        access.key, access.method, access.line
                    ),
                );
            }
        }
    }
}

/// Is `func` part of the pinned read path — does it take a guard
/// parameter or pin locally?
fn is_pinned_reader(func: &Func) -> bool {
    func.params.iter().any(|p| is_guard_type(&p.ty))
        || contains_call(&func.body, "pin_read").is_some()
}
