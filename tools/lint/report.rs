//! Lint report: rendering, JSON export (exact round-trip, matching the
//! `TraceReport` discipline), and the allowlist ratchet.
//!
//! ## Allowlist format
//!
//! `lint-allow.txt` carries one entry per *budgeted* finding, with a
//! precise span:
//!
//! ```text
//! # ratchet: 42
//! R1:crates/core/src/csr.rs:118  # staging writes land before first launch
//! ```
//!
//! The check is three-sided:
//! - a finding with no matching entry is **new** → fail;
//! - an entry with no matching finding is **stale** → fail (the debt was
//!   paid; the entry must be deleted so the budget shrinks);
//! - more entries than the `# ratchet:` header admits → fail.
//!
//! `--write-allow` regenerates the file from the current findings with the
//! ratchet set to exactly that count, so the budget can only be lowered
//! deliberately.

use super::effects::Effects;
use super::rules::{rule_meta, Finding, RULES};
use gpu_sim::Json;

/// One kernel's effect summary, as exported in the report.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelSummary {
    /// Literal kernel name, or `<dynamic>` when the name argument is not a
    /// string literal.
    pub name: String,
    pub path: String,
    pub line: u32,
    pub func: String,
    pub launcher: String,
    /// Direct accesses: (kind, key, method, line).
    pub accesses: Vec<(String, String, String, u32)>,
    /// Allocator calls (name, line).
    pub allocs: Vec<(String, u32)>,
    /// Pin-protocol calls (name, line).
    pub pins: Vec<(String, u32)>,
    /// `advance_era` call lines.
    pub era_advances: Vec<u32>,
}

impl KernelSummary {
    pub fn new(
        name: &str,
        path: &str,
        line: u32,
        func: &str,
        launcher: &str,
        fx: &Effects,
    ) -> Self {
        KernelSummary {
            name: name.to_string(),
            path: path.to_string(),
            line,
            func: func.to_string(),
            launcher: launcher.to_string(),
            accesses: fx
                .accesses
                .iter()
                .map(|a| {
                    (
                        a.kind.as_str().to_string(),
                        a.key.clone(),
                        a.method.clone(),
                        a.line,
                    )
                })
                .collect(),
            allocs: fx.alloc_calls.clone(),
            pins: fx.pin_calls.clone(),
            era_advances: fx.era_advances.clone(),
        }
    }
}

/// One allowlist entry: an exact finding span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowEntry {
    pub rule: String,
    pub path: String,
    pub line: u32,
    pub note: String,
}

impl AllowEntry {
    pub fn spelling(&self) -> String {
        if self.note.is_empty() {
            format!("{}:{}:{}", self.rule, self.path, self.line)
        } else {
            format!("{}:{}:{}  # {}", self.rule, self.path, self.line, self.note)
        }
    }
}

/// The parsed allowlist.
#[derive(Debug, Default)]
pub struct Allowlist {
    pub ratchet: usize,
    pub entries: Vec<AllowEntry>,
}

impl Allowlist {
    /// Parse `lint-allow.txt` text. Unparseable lines are reported as
    /// errors, not ignored: a typo must not silently widen the budget.
    pub fn parse(text: &str) -> Result<Allowlist, String> {
        let mut list = Allowlist::default();
        for (n, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() {
                continue;
            }
            if let Some(rest) = line.strip_prefix('#') {
                if let Some(v) = rest.trim().strip_prefix("ratchet:") {
                    list.ratchet = v
                        .trim()
                        .parse()
                        .map_err(|_| format!("lint-allow.txt:{}: bad ratchet", n + 1))?;
                }
                continue;
            }
            let (span, note) = match line.split_once('#') {
                Some((s, c)) => (s.trim(), c.trim().to_string()),
                None => (line, String::new()),
            };
            let mut parts = span.splitn(3, ':');
            let (rule, path, lineno) = (parts.next(), parts.next(), parts.next());
            let entry = match (rule, path, lineno) {
                (Some(r), Some(p), Some(l)) if RULES.iter().any(|m| m.id == r) => AllowEntry {
                    rule: r.to_string(),
                    path: p.to_string(),
                    line: l
                        .trim()
                        .parse()
                        .map_err(|_| format!("lint-allow.txt:{}: bad line number", n + 1))?,
                    note,
                },
                _ => {
                    return Err(format!(
                        "lint-allow.txt:{}: expected `RULE:path:line[  # note]`, got `{line}`",
                        n + 1
                    ))
                }
            };
            list.entries.push(entry);
        }
        Ok(list)
    }

    /// Regenerate the allowlist text from the current findings.
    pub fn write(findings: &[Finding]) -> String {
        let mut out = String::new();
        out.push_str(
            "# Kernel-lint budget: every entry is one known finding, pinned to an exact\n",
        );
        out.push_str(
            "# `RULE:path:line` span. The ratchet is the budget ceiling — CI fails if the\n",
        );
        out.push_str(
            "# entry count grows past it, if a finding has no entry, or if an entry goes\n",
        );
        out.push_str("# stale (pay down debt by deleting the entry AND lowering the ratchet).\n");
        out.push_str("# Regenerate with `cargo run --bin lint-kernels -- --write-allow`.\n");
        out.push_str(&format!("# ratchet: {}\n", findings.len()));
        for f in findings {
            out.push_str(&format!("{}:{}:{}\n", f.rule, f.path, f.line));
        }
        out
    }
}

/// The full lint report.
#[derive(Debug, Default)]
pub struct LintReport {
    pub files_scanned: u32,
    pub kernels: Vec<KernelSummary>,
    pub findings: Vec<Finding>,
    /// `findings[i]` is budgeted by an allowlist entry.
    pub allowed: Vec<bool>,
    pub ratchet: u32,
    pub allow_entries: u32,
    /// Allowlist entries that matched no finding (their spelling).
    pub stale: Vec<String>,
}

impl LintReport {
    /// Match findings against the allowlist and record the verdict inputs.
    pub fn apply_allowlist(&mut self, allow: &Allowlist) {
        let mut used = vec![false; allow.entries.len()];
        self.allowed = self
            .findings
            .iter()
            .map(|f| {
                match allow.entries.iter().enumerate().find(|(i, e)| {
                    !used[*i] && e.rule == f.rule && e.path == f.path && e.line == f.line
                }) {
                    Some((i, _)) => {
                        used[i] = true;
                        true
                    }
                    None => false,
                }
            })
            .collect();
        self.stale = allow
            .entries
            .iter()
            .zip(&used)
            .filter(|(_, u)| !**u)
            .map(|(e, _)| e.spelling())
            .collect();
        self.ratchet = allow.ratchet as u32;
        self.allow_entries = allow.entries.len() as u32;
    }

    pub fn new_findings(&self) -> usize {
        self.allowed.iter().filter(|a| !**a).count()
    }

    /// The overall verdict: clean, or within the ratcheted budget.
    pub fn ok(&self) -> bool {
        self.new_findings() == 0 && self.stale.is_empty() && self.allow_entries <= self.ratchet
    }

    /// Human rendering, `TraceReport`-style: an aligned findings table
    /// followed by the budget line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "lint-kernels: {} files, {} kernels, {} findings ({} budgeted, {} new)\n",
            self.files_scanned,
            self.kernels.len(),
            self.findings.len(),
            self.findings.len() - self.new_findings(),
            self.new_findings(),
        ));
        if !self.findings.is_empty() {
            const HEADERS: [&str; 4] = ["rule", "where", "kernel/fn", "finding"];
            let rows: Vec<[String; 4]> = self
                .findings
                .iter()
                .zip(&self.allowed)
                .map(|(f, allowed)| {
                    let meta = rule_meta(&f.rule);
                    [
                        format!(
                            "{} {}{}",
                            f.rule,
                            meta.name,
                            if *allowed { " (budgeted)" } else { "" }
                        ),
                        format!("{}:{}", f.path, f.line),
                        if f.kernel.is_empty() {
                            f.func.clone()
                        } else {
                            format!("`{}`", f.kernel)
                        },
                        f.message.clone(),
                    ]
                })
                .collect();
            let mut widths: Vec<usize> = HEADERS.iter().map(|h| h.len()).collect();
            for row in &rows {
                for (w, cell) in widths.iter_mut().zip(row.iter()) {
                    *w = (*w).max(cell.len());
                }
            }
            let fmt_row = |cells: &[String]| {
                let mut line = String::new();
                for (i, (cell, w)) in cells.iter().zip(&widths).enumerate() {
                    if i > 0 {
                        line.push_str("  ");
                    }
                    line.push_str(&format!("{cell:<w$}"));
                }
                line.truncate(line.trim_end().len());
                line.push('\n');
                line
            };
            let header: Vec<String> = HEADERS.iter().map(|h| h.to_string()).collect();
            out.push_str(&fmt_row(&header));
            out.push_str(&fmt_row(
                &widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>(),
            ));
            for row in &rows {
                out.push_str(&fmt_row(row));
            }
            for (f, allowed) in self.findings.iter().zip(&self.allowed) {
                if !*allowed && !f.excerpt.is_empty() {
                    out.push_str(&format!("  {}:{}  >  {}\n", f.path, f.line, f.excerpt));
                }
            }
        }
        if !self.stale.is_empty() {
            out.push_str(
                "stale allowlist entries (finding fixed; delete the entry, lower the ratchet):\n",
            );
            for s in &self.stale {
                out.push_str(&format!("  {s}\n"));
            }
        }
        out.push_str(&format!(
            "budget: {} entries / ratchet {} — {}\n",
            self.allow_entries,
            self.ratchet,
            if self.ok() { "OK" } else { "FAIL" }
        ));
        out
    }

    /// Export as a JSON value. `from_json(to_json(r)) == r` field-for-field
    /// and renders byte-identically.
    pub fn to_json(&self) -> Json {
        let findings = self
            .findings
            .iter()
            .zip(&self.allowed)
            .map(|(f, allowed)| {
                Json::Obj(vec![
                    ("rule".into(), Json::str(&f.rule)),
                    ("name".into(), Json::str(rule_meta(&f.rule).name)),
                    ("path".into(), Json::str(&f.path)),
                    ("line".into(), Json::u64(f.line as u64)),
                    ("kernel".into(), Json::str(&f.kernel)),
                    ("func".into(), Json::str(&f.func)),
                    ("message".into(), Json::str(&f.message)),
                    ("excerpt".into(), Json::str(&f.excerpt)),
                    ("allowed".into(), Json::Bool(*allowed)),
                ])
            })
            .collect();
        let kernels = self
            .kernels
            .iter()
            .map(|k| {
                Json::Obj(vec![
                    ("name".into(), Json::str(&k.name)),
                    ("path".into(), Json::str(&k.path)),
                    ("line".into(), Json::u64(k.line as u64)),
                    ("func".into(), Json::str(&k.func)),
                    ("launcher".into(), Json::str(&k.launcher)),
                    (
                        "accesses".into(),
                        Json::Arr(
                            k.accesses
                                .iter()
                                .map(|(kind, key, method, line)| {
                                    Json::Obj(vec![
                                        ("kind".into(), Json::str(kind)),
                                        ("key".into(), Json::str(key)),
                                        ("method".into(), Json::str(method)),
                                        ("line".into(), Json::u64(*line as u64)),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                    ("allocs".into(), named_lines(&k.allocs)),
                    ("pins".into(), named_lines(&k.pins)),
                    (
                        "era_advances".into(),
                        Json::Arr(
                            k.era_advances
                                .iter()
                                .map(|l| Json::u64(*l as u64))
                                .collect(),
                        ),
                    ),
                ])
            })
            .collect();
        Json::Obj(vec![
            ("tool".into(), Json::str("lint-kernels")),
            ("schema".into(), Json::u64(1)),
            ("files_scanned".into(), Json::u64(self.files_scanned as u64)),
            ("kernels".into(), Json::Arr(kernels)),
            ("findings".into(), Json::Arr(findings)),
            (
                "allow".into(),
                Json::Obj(vec![
                    ("ratchet".into(), Json::u64(self.ratchet as u64)),
                    ("entries".into(), Json::u64(self.allow_entries as u64)),
                    (
                        "stale".into(),
                        Json::Arr(self.stale.iter().map(Json::str).collect()),
                    ),
                ]),
            ),
            (
                "summary".into(),
                Json::Obj(vec![
                    ("findings".into(), Json::u64(self.findings.len() as u64)),
                    ("new".into(), Json::u64(self.new_findings() as u64)),
                    ("ok".into(), Json::Bool(self.ok())),
                ]),
            ),
        ])
    }

    /// Rebuild a report from its JSON export (the round-trip proof).
    pub fn from_json(v: &Json) -> Result<LintReport, String> {
        let need = |o: &Json, k: &str| -> Result<Json, String> {
            o.get(k).cloned().ok_or_else(|| format!("missing `{k}`"))
        };
        let as_str = |v: &Json, k: &str| -> Result<String, String> {
            v.as_str()
                .map(|s| s.to_string())
                .ok_or_else(|| format!("`{k}` not a string"))
        };
        let as_u32 = |v: &Json, k: &str| -> Result<u32, String> {
            v.as_u64()
                .map(|n| n as u32)
                .ok_or_else(|| format!("`{k}` not a number"))
        };
        if need(v, "tool")?.as_str() != Some("lint-kernels") {
            return Err("not a lint-kernels report".into());
        }
        let mut report = LintReport {
            files_scanned: as_u32(&need(v, "files_scanned")?, "files_scanned")?,
            ..Default::default()
        };
        for f in need(v, "findings")?
            .as_arr()
            .ok_or("findings not an array")?
        {
            report.findings.push(Finding {
                rule: as_str(&need(f, "rule")?, "rule")?,
                path: as_str(&need(f, "path")?, "path")?,
                line: as_u32(&need(f, "line")?, "line")?,
                kernel: as_str(&need(f, "kernel")?, "kernel")?,
                func: as_str(&need(f, "func")?, "func")?,
                message: as_str(&need(f, "message")?, "message")?,
                excerpt: as_str(&need(f, "excerpt")?, "excerpt")?,
            });
            report
                .allowed
                .push(matches!(need(f, "allowed")?, Json::Bool(true)));
        }
        for k in need(v, "kernels")?.as_arr().ok_or("kernels not an array")? {
            let mut summary = KernelSummary {
                name: as_str(&need(k, "name")?, "name")?,
                path: as_str(&need(k, "path")?, "path")?,
                line: as_u32(&need(k, "line")?, "line")?,
                func: as_str(&need(k, "func")?, "func")?,
                launcher: as_str(&need(k, "launcher")?, "launcher")?,
                accesses: Vec::new(),
                allocs: Vec::new(),
                pins: Vec::new(),
                era_advances: Vec::new(),
            };
            for a in need(k, "accesses")?
                .as_arr()
                .ok_or("accesses not an array")?
            {
                summary.accesses.push((
                    as_str(&need(a, "kind")?, "kind")?,
                    as_str(&need(a, "key")?, "key")?,
                    as_str(&need(a, "method")?, "method")?,
                    as_u32(&need(a, "line")?, "line")?,
                ));
            }
            summary.allocs = parse_named_lines(&need(k, "allocs")?)?;
            summary.pins = parse_named_lines(&need(k, "pins")?)?;
            for l in need(k, "era_advances")?
                .as_arr()
                .ok_or("era_advances not an array")?
            {
                summary.era_advances.push(as_u32(l, "era_advances")?);
            }
            report.kernels.push(summary);
        }
        let allow = need(v, "allow")?;
        report.ratchet = as_u32(&need(&allow, "ratchet")?, "ratchet")?;
        report.allow_entries = as_u32(&need(&allow, "entries")?, "entries")?;
        for s in need(&allow, "stale")?
            .as_arr()
            .ok_or("stale not an array")?
        {
            report.stale.push(as_str(s, "stale")?);
        }
        Ok(report)
    }
}

fn named_lines(pairs: &[(String, u32)]) -> Json {
    Json::Arr(
        pairs
            .iter()
            .map(|(name, line)| {
                Json::Obj(vec![
                    ("call".into(), Json::str(name)),
                    ("line".into(), Json::u64(*line as u64)),
                ])
            })
            .collect(),
    )
}

fn parse_named_lines(v: &Json) -> Result<Vec<(String, u32)>, String> {
    let mut out = Vec::new();
    for p in v.as_arr().ok_or("not an array")? {
        out.push((
            p.get("call")
                .and_then(|c| c.as_str())
                .ok_or("missing `call`")?
                .to_string(),
            p.get("line")
                .and_then(|l| l.as_u64())
                .ok_or("missing `line`")? as u32,
        ));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> LintReport {
        let mut r = LintReport {
            files_scanned: 3,
            kernels: vec![KernelSummary {
                name: "edge_insert".into(),
                path: "crates/core/src/edge_ops.rs".into(),
                line: 150,
                func: "run_edge_kernel".into(),
                launcher: "launch_warps".into(),
                accesses: vec![(
                    "cas".into(),
                    "const:NEXT_LANE".into(),
                    "atomic_cas".into(),
                    795,
                )],
                allocs: vec![("try_allocate".into(), 700)],
                pins: vec![],
                era_advances: vec![256],
            }],
            findings: vec![Finding {
                rule: "R2".into(),
                path: "crates/bench/benches/structures.rs".into(),
                line: 47,
                kernel: String::new(),
                func: "bench_insert".into(),
                message: "Ordering::Relaxed outside gpu-sim".into(),
                excerpt: "x.fetch_add(1, Ordering::Relaxed);".into(),
            }],
            ..Default::default()
        };
        r.apply_allowlist(
            &Allowlist::parse("# ratchet: 1\nR2:crates/bench/benches/structures.rs:47\n").unwrap(),
        );
        r
    }

    #[test]
    fn json_round_trips_byte_identically() {
        let report = sample();
        let text = report.to_json().render_pretty();
        let parsed = Json::parse(&text).unwrap();
        let rebuilt = LintReport::from_json(&parsed).unwrap();
        assert_eq!(rebuilt.to_json().render_pretty(), text);
        assert_eq!(rebuilt.findings, report.findings);
        assert!(report.ok());
    }

    #[test]
    fn allowlist_matches_spans_and_flags_stale() {
        let allow =
            Allowlist::parse("# ratchet: 2\nR2:a.rs:10\nR1:b.rs:20  # staged writes\n").unwrap();
        assert_eq!(allow.ratchet, 2);
        assert_eq!(allow.entries[1].note, "staged writes");
        let mut report = LintReport {
            findings: vec![Finding {
                rule: "R2".into(),
                path: "a.rs".into(),
                line: 10,
                kernel: String::new(),
                func: String::new(),
                message: String::new(),
                excerpt: String::new(),
            }],
            ..Default::default()
        };
        report.apply_allowlist(&allow);
        assert_eq!(report.new_findings(), 0);
        assert_eq!(
            report.stale,
            vec!["R1:b.rs:20  # staged writes".to_string()]
        );
        assert!(!report.ok());
    }

    #[test]
    fn allowlist_rejects_typos() {
        assert!(Allowlist::parse("R99:a.rs:1\n").is_err());
        assert!(Allowlist::parse("R2:a.rs:notaline\n").is_err());
        assert!(Allowlist::parse("just some words\n").is_err());
    }

    #[test]
    fn write_allow_pins_the_ratchet_to_the_finding_count() {
        let report = sample();
        let text = Allowlist::write(&report.findings);
        let parsed = Allowlist::parse(&text).unwrap();
        assert_eq!(parsed.ratchet, 1);
        assert_eq!(parsed.entries.len(), 1);
        assert_eq!(parsed.entries[0].rule, "R2");
        assert_eq!(parsed.entries[0].line, 47);
    }
}
