//! # lint-kernels — in-repo kernel antipattern lint
//!
//! Scans the workspace's Rust sources for device-code antipatterns that the
//! type system cannot catch but the sanitizer (and the perf-attribution
//! invariants) care about:
//!
//! - **R1 `raw-arena-access`** — calling `.arena().store/load/fill/fetch_*/
//!   cas/exchange/store_slab/load_slab` outside `crates/gpu-sim`. Raw arena
//!   accesses bypass the `Warp` accessors, so they charge no counters and
//!   are invisible to racecheck. Legitimate host-side staging is budgeted
//!   in the allowlist.
//! - **R2 `relaxed-ordering`** — `Ordering::Relaxed` outside
//!   `crates/gpu-sim`. Relaxed RMWs on published device pointers defeat the
//!   acquire/release discipline the slab structures rely on; host-side
//!   statistics counters are budgeted in the allowlist.
//! - **R3 `unnamed-launch`** — a `launch_tasks(` / `launch_warps(` /
//!   `memset(` call site whose kernel-name argument is not a string
//!   literal. Dynamic names break per-kernel attribution stability and the
//!   sanitizer's kernel provenance.
//! - **R4 `counter-bypass`** — outside `crates/gpu-sim`, either mutating
//!   `PerfCounters` directly (`.counters().add_*`) instead of going through
//!   the `Charge` API, or calling `.phase("…")` without binding the
//!   returned guard. Direct mutation skips the profiler's span tally
//!   (modeled time silently diverges from the counters); a discarded
//!   `PhaseGuard` closes its phase immediately, so the launches it was
//!   meant to cover run outside any phase range.
//! - **R5 `rogue-device`** — direct `Device` construction
//!   (`Device::new` / `Device::with_policy` / `Device::with_config`) in
//!   sharded code paths (`crates/router/`, `*/sharded.rs`). Shard devices
//!   must come from a `DeviceGroup`: a free-standing device has its own
//!   clock and profiler outside the group's merged trace, so its work
//!   silently vanishes from makespans and Chrome exports.
//! - **R6 `unretried-dispatch`** — in the same sharded code paths, a
//!   dispatch call (`try_insert_edges` / `try_delete_edges` /
//!   `try_insert_vertices` / `retry_suffix` / `launch_check`) whose
//!   `BatchOutcome`/`DeviceFault` is consumed by `.unwrap()` / `.expect(`
//!   or discarded with `let _ =` instead of routing through the retry
//!   policy or the write-ahead journal. Panicking on a dispatch outcome
//!   turns a recoverable per-shard fault into a fleet-wide abort, and a
//!   discarded outcome silently drops the pending suffix the journal
//!   would have preserved.
//! - **R7 `unpinned-read`** — in the pinned query path
//!   (`crates/core/src/query.rs`, `crates/core/src/stats.rs`), a kernel
//!   launch with no `pin`/`ReadGuard` mention in the preceding ten code
//!   lines. Query kernels walk slab chains that the allocator may recycle;
//!   only a live `ReadGuard` (the epoch pin) holds its era's quarantined
//!   slabs back, so an unpinned walk is a use-after-free the sanitizer
//!   would flag as `unpinned read` at runtime. The lint catches it at
//!   review time.
//!
//! ## Allowlist
//!
//! `lint-allow.txt` at the repo root budgets known-good hits, one entry per
//! line:
//!
//! ```text
//! # rule:path:count
//! R1:crates/slab-alloc/src/lib.rs:2
//! ```
//!
//! A file may contain at most `count` hits of `rule`; any *new* hit fails
//! the lint (exit 1). Entries whose budget exceeds the actual hit count are
//! reported so the budget can be tightened. Lines starting with `#` and
//! blank lines are ignored.
//!
//! ## Usage
//!
//! ```text
//! cargo run -q --bin lint-kernels            # scan the workspace
//! cargo run -q --bin lint-kernels -- <root>  # scan another tree
//! ```

use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// One lint rule: identifier, human description, and the matcher.
struct Rule {
    id: &'static str,
    name: &'static str,
    desc: &'static str,
    /// Whether the rule applies to sources under `crates/gpu-sim`.
    applies_to_gpu_sim: bool,
}

const RULES: [Rule; 7] = [
    Rule {
        id: "R1",
        name: "raw-arena-access",
        desc: "raw arena access bypasses Warp accessors (uncounted, unsanitized)",
        applies_to_gpu_sim: false,
    },
    Rule {
        id: "R2",
        name: "relaxed-ordering",
        desc: "Ordering::Relaxed outside gpu-sim defeats acquire/release publication",
        applies_to_gpu_sim: false,
    },
    Rule {
        id: "R3",
        name: "unnamed-launch",
        desc: "kernel launch without a literal name breaks attribution/provenance",
        applies_to_gpu_sim: true,
    },
    Rule {
        id: "R4",
        name: "counter-bypass",
        desc: "PerfCounters mutated outside Charge, or PhaseGuard discarded at the call site",
        applies_to_gpu_sim: false,
    },
    Rule {
        id: "R5",
        name: "rogue-device",
        desc:
            "direct Device construction in sharded code; shard devices must come from a DeviceGroup",
        applies_to_gpu_sim: false,
    },
    Rule {
        id: "R6",
        name: "unretried-dispatch",
        desc:
            "dispatch outcome unwrapped or discarded in sharded code; route it through the retry policy or journal",
        applies_to_gpu_sim: false,
    },
    Rule {
        id: "R7",
        name: "unpinned-read",
        desc:
            "query-path kernel launched with no live ReadGuard in scope; pin an era before walking slabs",
        applies_to_gpu_sim: false,
    },
];

/// Is this file part of a sharded code path (where R5 and R6 apply)? The
/// router crate and any `sharded.rs` module orchestrate device groups;
/// everything else may build standalone devices freely and consume its
/// own dispatch outcomes directly.
fn in_sharded_scope(path: &str) -> bool {
    path.starts_with("crates/router/") || path.ends_with("/sharded.rs")
}

/// Is this file part of the pinned query path (where R7 applies)? The core
/// read kernels walk slab chains whose reclamation is held back only by a
/// live `ReadGuard`; update and maintenance kernels *publish* eras rather
/// than pinning them, so they launch freely.
fn in_query_scope(path: &str) -> bool {
    path == "crates/core/src/query.rs" || path == "crates/core/src/stats.rs"
}

/// How many comment-stripped lines above a query-path launch may hold the
/// pin evidence (`check_pin(…)`, a bound guard, a `ReadGuard` parameter)
/// before R7 considers the launch unpinned.
const R7_WINDOW: usize = 10;

/// A `launch_tasks(` / `launch_warps(` call site (declarations excluded).
fn is_launch_site(line: &str) -> bool {
    ["launch_tasks(", "launch_warps("]
        .iter()
        .any(|l| match line.find(l) {
            Some(pos) => !line[..pos].trim_end().ends_with("fn"),
            None => false,
        })
}

/// A single lint hit.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Hit {
    rule: &'static str,
    path: String,
    line: usize,
    excerpt: String,
}

fn main() -> ExitCode {
    let root = std::env::args()
        .nth(1)
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("."));
    let hits = scan_tree(&root);
    let allow = read_allowlist(&root.join("lint-allow.txt"));
    report(&hits, &allow)
}

/// Compare hits against the allowlist budget; render the verdict.
fn report(hits: &[Hit], allow: &BTreeMap<(String, String), usize>) -> ExitCode {
    // Tally hits per (rule, file).
    let mut tally: BTreeMap<(String, String), Vec<&Hit>> = BTreeMap::new();
    for h in hits {
        tally
            .entry((h.rule.to_string(), h.path.clone()))
            .or_default()
            .push(h);
    }
    let mut failed = false;
    for (key, file_hits) in &tally {
        let budget = allow.get(key).copied().unwrap_or(0);
        if file_hits.len() > budget {
            failed = true;
            let rule = RULES.iter().find(|r| r.id == key.0).unwrap();
            eprintln!(
                "lint-kernels: {} ({}) in {}: {} hit(s), {} allowed — {}",
                rule.id,
                rule.name,
                key.1,
                file_hits.len(),
                budget,
                rule.desc
            );
            for h in file_hits.iter() {
                eprintln!("  {}:{}: {}", h.path, h.line, h.excerpt);
            }
        }
    }
    // Surface over-generous budgets so they get tightened, not hoarded.
    for (key, budget) in allow {
        let used = tally.get(key).map_or(0, |v| v.len());
        if used < *budget {
            eprintln!(
                "lint-kernels: note: allowlist {}:{}:{} exceeds actual hits ({used}) — tighten it",
                key.0, key.1, budget
            );
        }
    }
    if failed {
        eprintln!("lint-kernels: FAILED — fix the hits or budget them in lint-allow.txt");
        ExitCode::FAILURE
    } else {
        println!("lint-kernels: ok ({} budgeted hit(s))", hits.len());
        ExitCode::SUCCESS
    }
}

/// Recursively scan every `.rs` file under `root`, skipping build output,
/// VCS metadata, and this tool's own source.
fn scan_tree(root: &Path) -> Vec<Hit> {
    let mut files = Vec::new();
    collect_rs_files(root, root, &mut files);
    files.sort();
    let mut hits = Vec::new();
    for rel in files {
        if let Ok(text) = fs::read_to_string(root.join(&rel)) {
            scan_file(&rel.to_string_lossy().replace('\\', "/"), &text, &mut hits);
        }
    }
    hits
}

fn collect_rs_files(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if matches!(name.as_ref(), "target" | ".git" | "tools") {
                continue;
            }
            collect_rs_files(root, &path, out);
        } else if name.ends_with(".rs") {
            if let Ok(rel) = path.strip_prefix(root) {
                out.push(rel.to_path_buf());
            }
        }
    }
}

/// Scan one file's text; `path` is repo-relative with forward slashes.
fn scan_file(path: &str, text: &str, hits: &mut Vec<Hit>) {
    let in_gpu_sim = path.starts_with("crates/gpu-sim/");
    // Strip line comments so doc examples and commentary don't match.
    let strip = |raw: &str| match raw.find("//") {
        Some(pos) => raw[..pos].to_string(),
        None => raw.to_string(),
    };
    let lines: Vec<String> = text.lines().map(strip).collect();
    for (idx, raw_line) in text.lines().enumerate() {
        let line = &lines[idx];
        for rule in &RULES {
            if in_gpu_sim && !rule.applies_to_gpu_sim {
                continue;
            }
            if matches!(rule.id, "R5" | "R6") && !in_sharded_scope(path) {
                continue;
            }
            // R7 needs lookbehind, not a line matcher: a query-path launch
            // is unpinned when none of the preceding R7_WINDOW code lines
            // (nor the launch line itself) carries the pin evidence.
            if rule.id == "R7" {
                if in_query_scope(path) && is_launch_site(line) {
                    let start = idx.saturating_sub(R7_WINDOW);
                    let pinned = lines[start..=idx]
                        .iter()
                        .any(|l| l.contains("pin") || l.contains("ReadGuard"));
                    if !pinned {
                        hits.push(Hit {
                            rule: rule.id,
                            path: path.to_string(),
                            line: idx + 1,
                            excerpt: raw_line.trim().to_string(),
                        });
                    }
                }
                continue;
            }
            // R3's name argument may sit on the next line when rustfmt
            // wraps the call — if this line ends at the open paren, give
            // the matcher one line of lookahead.
            let joined;
            let candidate: &str = if rule.id == "R3" && line.trim_end().ends_with('(') {
                joined = match lines.get(idx + 1) {
                    Some(next) => format!("{} {}", line.trim_end(), next.trim_start()),
                    None => line.clone(),
                };
                &joined
            } else {
                line
            };
            if matches_rule(rule.id, candidate) {
                hits.push(Hit {
                    rule: rule.id,
                    path: path.to_string(),
                    line: idx + 1,
                    excerpt: raw_line.trim().to_string(),
                });
            }
        }
    }
}

/// Does `line` (comment-stripped) trip `rule`?
fn matches_rule(rule: &str, line: &str) -> bool {
    match rule {
        "R1" => {
            const METHODS: [&str; 11] = [
                "store(",
                "load(",
                "fill(",
                "fetch_add(",
                "fetch_sub(",
                "fetch_or(",
                "fetch_and(",
                "cas(",
                "exchange(",
                "store_slab(",
                "load_slab(",
            ];
            match line.find(".arena().") {
                Some(pos) => {
                    let rest = &line[pos + ".arena().".len()..];
                    METHODS.iter().any(|m| rest.starts_with(m))
                }
                None => false,
            }
        }
        "R2" => line.contains("Ordering::Relaxed"),
        "R3" => {
            const LAUNCHERS: [&str; 3] = ["launch_tasks(", "launch_warps(", "memset("];
            LAUNCHERS.iter().any(|l| {
                let mut search = line;
                while let Some(pos) = search.find(l) {
                    // Skip declarations (`fn launch_tasks(`) — only call
                    // sites reached through `.` or a bare call count.
                    let before = &search[..pos];
                    let is_decl = before.trim_end().ends_with("fn");
                    let arg = search[pos + l.len()..].trim_start();
                    if !is_decl && !arg.starts_with('"') {
                        return true;
                    }
                    search = &search[pos + l.len()..];
                }
                false
            })
        }
        "R4" => {
            // Direct counter mutation bypasses the Charge tally the
            // profiler records spans from.
            if line.contains(".counters().add_") {
                return true;
            }
            // `.phase("…")` whose guard is never bound: the phase closes
            // immediately. Bound guards (`let _phase = dev.phase(…)`) and
            // declarations (`fn phase(`) are fine.
            line.contains(".phase(\"") && !line.contains("let ")
        }
        "R5" => [
            "Device::new(",
            "Device::with_policy(",
            "Device::with_config(",
        ]
        .iter()
        .any(|c| line.contains(c)),
        "R6" => {
            const DISPATCH: [&str; 5] = [
                "try_insert_edges(",
                "try_delete_edges(",
                "try_insert_vertices(",
                "retry_suffix(",
                "launch_check(",
            ];
            // Declarations (`fn try_insert_edges(`) are not dispatch sites.
            let dispatches = DISPATCH.iter().any(|d| match line.find(d) {
                Some(pos) => !line[..pos].trim_end().ends_with("fn"),
                None => false,
            });
            dispatches
                && (line.contains(".unwrap()")
                    || line.contains(".expect(")
                    || line.trim_start().starts_with("let _ ="))
        }
        _ => false,
    }
}

/// Parse `rule:path:count` lines; missing file means an empty allowlist.
fn read_allowlist(path: &Path) -> BTreeMap<(String, String), usize> {
    let mut allow = BTreeMap::new();
    let Ok(text) = fs::read_to_string(path) else {
        return allow;
    };
    for (idx, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let parts: Vec<&str> = line.splitn(3, ':').collect();
        let parsed = match parts.as_slice() {
            [rule, file, count] => count
                .trim()
                .parse::<usize>()
                .ok()
                .map(|n| ((rule.trim().to_string(), file.trim().to_string()), n)),
            _ => None,
        };
        match parsed {
            Some((key, n)) => {
                allow.insert(key, n);
            }
            None => eprintln!(
                "lint-kernels: warning: malformed allowlist line {} ignored: {line}",
                idx + 1
            ),
        }
    }
    allow
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hits_in(path: &str, text: &str) -> Vec<Hit> {
        let mut hits = Vec::new();
        scan_file(path, text, &mut hits);
        hits
    }

    #[test]
    fn raw_arena_access_is_flagged_outside_gpu_sim() {
        let bad = "let v = dev.arena().load(addr);\n";
        let hits = hits_in("crates/core/src/x.rs", bad);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].rule, "R1");
        assert_eq!(hits[0].line, 1);
        // Same text inside gpu-sim is the substrate itself: allowed.
        assert!(hits_in("crates/gpu-sim/src/x.rs", bad).is_empty());
        // Warp accessors never match.
        assert!(hits_in("crates/core/src/x.rs", "warp.read_word(a);\n").is_empty());
        for m in [
            "store(a, 1)",
            "fill(a, 4, 0)",
            "fetch_and(a, m)",
            "store_slab(a, &ls)",
            "cas(a, 0, 1)",
        ] {
            let text = format!("dev.arena().{m};\n");
            assert_eq!(hits_in("src/lib.rs", &text).len(), 1, "{m}");
        }
    }

    #[test]
    fn relaxed_ordering_is_flagged_outside_gpu_sim() {
        let bad = "self.allocated.fetch_add(1, Ordering::Relaxed);\n";
        let hits = hits_in("crates/slab-alloc/src/lib.rs", bad);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].rule, "R2");
        assert!(hits_in("crates/gpu-sim/src/memory.rs", bad).is_empty());
        // Comments don't count.
        assert!(hits_in("src/lib.rs", "// uses Ordering::Relaxed\n").is_empty());
    }

    #[test]
    fn unnamed_launch_is_flagged_everywhere() {
        assert_eq!(
            hits_in("crates/core/src/x.rs", "dev.launch_tasks(name, n, k);\n")[0].rule,
            "R3"
        );
        assert_eq!(
            hits_in(
                "crates/gpu-sim/src/x.rs",
                "self.launch_warps(spec, n, k);\n"
            )
            .len(),
            1
        );
        assert!(hits_in("src/x.rs", "dev.launch_tasks(\"edge_insert\", n, k);\n").is_empty());
        // Declarations are not call sites.
        assert!(hits_in(
            "crates/gpu-sim/src/device.rs",
            "pub fn launch_tasks(&self, name: &str) {\n"
        )
        .is_empty());
    }

    #[test]
    fn counter_bypass_is_flagged_outside_gpu_sim() {
        // Direct PerfCounters mutation skips the Charge span tally.
        let bad = "dev.counters().add_transactions(4);\n";
        let hits = hits_in("crates/core/src/x.rs", bad);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].rule, "R4");
        assert!(hits_in("crates/gpu-sim/src/device.rs", bad).is_empty());
        // Reading counters is fine.
        assert!(hits_in("src/x.rs", "let s = dev.counters().snapshot();\n").is_empty());

        // A discarded PhaseGuard closes the phase immediately.
        let discarded = "self.dev.phase(\"bulk_build\");\n";
        assert_eq!(hits_in("crates/core/src/x.rs", discarded)[0].rule, "R4");
        // A bound guard keeps the phase open for its scope.
        assert!(hits_in(
            "crates/core/src/x.rs",
            "let _phase = self.dev.phase(\"bulk_build\");\n"
        )
        .is_empty());
        // Comments don't count.
        assert!(hits_in("src/x.rs", "// dev.phase(\"x\") closes on drop\n").is_empty());
    }

    #[test]
    fn rogue_device_is_flagged_in_sharded_scope_only() {
        for bad in [
            "let dev = Device::new(1 << 20);\n",
            "let dev = Device::with_policy(n, ExecPolicy::Sequential);\n",
            "let dev = gpu_sim::Device::with_config(cfg);\n",
        ] {
            let hits = hits_in("crates/router/src/lib.rs", bad);
            assert_eq!(hits.len(), 1, "{bad}");
            assert_eq!(hits[0].rule, "R5");
            assert_eq!(hits_in("crates/bench/src/sharded.rs", bad).len(), 1);
            // Outside sharded code paths, standalone devices are fine.
            assert!(hits_in("crates/core/src/graph.rs", bad).is_empty());
        }
        // Group-mediated construction and config types never match.
        for good in [
            "let group = DeviceGroup::new(4, config);\n",
            "let cfg = DeviceConfig::new(1 << 20);\n",
            "// Device::new is forbidden here\n",
        ] {
            assert!(
                hits_in("crates/router/src/lib.rs", good).is_empty(),
                "{good}"
            );
        }
    }

    #[test]
    fn unretried_dispatch_is_flagged_in_sharded_scope_only() {
        for bad in [
            "let o = g.try_insert_edges(&batch).expect(\"valid edge ids\");\n",
            "let o = g.try_delete_edges(&batch).unwrap();\n",
            "let next = g.retry_suffix(&o).expect(\"valid edge ids\");\n",
            "let _ = dev.launch_check();\n",
        ] {
            let hits = hits_in("crates/router/src/lib.rs", bad);
            assert_eq!(hits.len(), 1, "{bad}");
            assert_eq!(hits[0].rule, "R6");
            assert_eq!(hits_in("crates/bench/src/sharded.rs", bad).len(), 1);
            // Outside sharded scope a caller may consume its own outcome.
            assert!(hits_in("crates/core/src/batch.rs", bad).is_empty(), "{bad}");
        }
        // Routed outcomes — matched, propagated, or retried — are fine.
        for good in [
            "let insert = match g.try_insert_edges(ins).transpose() {\n",
            "let mut next = g.retry_suffix(o)?;\n",
            "match dev.launch_check() {\n",
            "pub fn try_insert_edges(&self, edges: &[Edge]) {\n",
            "// g.try_insert_edges(&batch).unwrap() would abort the fleet\n",
        ] {
            assert!(
                hits_in("crates/router/src/lib.rs", good).is_empty(),
                "{good}"
            );
        }
    }

    #[test]
    fn unpinned_read_is_flagged_in_query_scope_only() {
        let bad = "self.dev.launch_warps(\"edge_weight\", 1, |warp| {\n";
        let hits = hits_in("crates/core/src/query.rs", bad);
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert_eq!(hits[0].rule, "R7");
        assert_eq!(hits_in("crates/core/src/stats.rs", bad).len(), 1);
        // Update/maintenance kernels publish eras instead of pinning them:
        // the same launch is fine outside the query path.
        assert!(hits_in("crates/core/src/edge_ops.rs", bad).is_empty());

        // Pin evidence within the lookbehind window satisfies the rule,
        // whether it is a check_pin call or a bound guard.
        for evidence in [
            "self.check_pin(pin);\n",
            "let _pin = self.pin_read();\n",
            "pub fn stats(&self, pin: &ReadGuard) -> GraphStats {\n",
        ] {
            let good = format!("{evidence}let n = pairs.len();\n{bad}");
            assert!(
                hits_in("crates/core/src/query.rs", &good).is_empty(),
                "{evidence}"
            );
        }
        // Evidence only in comments does not count.
        let commented = format!("// pinned by the caller\n{bad}");
        assert_eq!(hits_in("crates/core/src/query.rs", &commented).len(), 1);
        // Evidence outside the window does not count.
        let distant = format!("self.check_pin(pin);\n{}{bad}", "let x = 0;\n".repeat(11));
        assert_eq!(hits_in("crates/core/src/query.rs", &distant).len(), 1);
        // Declarations are not launch sites.
        assert!(hits_in(
            "crates/core/src/query.rs",
            "pub fn launch_warps(&self, name: &str) {\n"
        )
        .is_empty());
    }

    #[test]
    fn allowlist_budgets_hits_and_fails_on_new_ones() {
        let hit = |n: usize| Hit {
            rule: "R1",
            path: "crates/core/src/x.rs".into(),
            line: n,
            excerpt: "dev.arena().load(a)".into(),
        };
        let mut allow = BTreeMap::new();
        allow.insert(("R1".to_string(), "crates/core/src/x.rs".to_string()), 1);
        assert_eq!(report(&[hit(1)], &allow), ExitCode::SUCCESS);
        assert_eq!(report(&[hit(1), hit(2)], &allow), ExitCode::FAILURE);
        assert_eq!(report(&[hit(1)], &BTreeMap::new()), ExitCode::FAILURE);
    }

    #[test]
    fn seeded_violation_in_a_real_tree_fails_the_scan() {
        // Build a throwaway tree with one seeded violation and prove the
        // full scan path (walk + parse + report) catches it.
        let dir =
            std::env::temp_dir().join(format!("lint-kernels-selftest-{}", std::process::id()));
        let src = dir.join("crates/seeded/src");
        fs::create_dir_all(&src).unwrap();
        fs::write(
            src.join("lib.rs"),
            "pub fn bad(dev: &Device, a: Addr) -> u32 {\n    dev.arena().load(a)\n}\n",
        )
        .unwrap();
        let hits = scan_tree(&dir);
        fs::remove_dir_all(&dir).unwrap();
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert_eq!(hits[0].rule, "R1");
        assert_eq!(hits[0].path, "crates/seeded/src/lib.rs");
        assert_eq!(hits[0].line, 2);
        assert_eq!(report(&hits, &BTreeMap::new()), ExitCode::FAILURE);
    }

    #[test]
    fn allowlist_parses_and_ignores_junk() {
        let dir = std::env::temp_dir().join(format!("lint-allow-selftest-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("lint-allow.txt");
        fs::write(
            &path,
            "# comment\n\nR1:crates/core/src/x.rs:2\nmalformed line\nR2:src/lib.rs:0\n",
        )
        .unwrap();
        let allow = read_allowlist(&path);
        fs::remove_dir_all(&dir).unwrap();
        assert_eq!(allow.len(), 2);
        assert_eq!(
            allow[&("R1".to_string(), "crates/core/src/x.rs".to_string())],
            2
        );
    }
}
