//! # lint-kernels — parse-based dataflow lint for the kernel protocols
//!
//! A small static-analysis engine (self-contained lexer + parser, no
//! external deps — the workspace builds offline) that extracts every
//! kernel closure passed to `launch_tasks` / `launch_warps` / `memset`,
//! computes a per-kernel **effect summary** (arena words read/written,
//! atomic ops, allocator calls, pin/guard uses), and checks eleven rules over
//! the summaries and the enclosing host code:
//!
//! - **R1 `raw-arena-access`** — `.arena().store/load/…` outside
//!   `crates/gpu-sim` bypasses the `Warp` accessors: no counters, no
//!   sanitizer shadow. Host-side staging is budgeted in the allowlist.
//! - **R2 `relaxed-ordering`** — `Ordering::Relaxed` outside gpu-sim
//!   defeats the acquire/release discipline published device pointers rely
//!   on. Monotonic statistics counters are budgeted.
//! - **R3 `unnamed-launch`** — a launch whose kernel-name argument is not
//!   a string literal breaks per-kernel attribution and sanitizer
//!   provenance.
//! - **R4 `counter-bypass`** — mutating `PerfCounters` directly
//!   (`.counters().add_*`) instead of going through `Charge`, or
//!   discarding the `PhaseGuard` returned by `.phase("…")`.
//! - **R5 `rogue-device`** — direct `Device` construction in sharded code
//!   (`crates/router/`, `*/sharded.rs`); shard devices must come from a
//!   `DeviceGroup` or their work vanishes from merged traces.
//! - **R6 `unretried-dispatch`** — a dispatch outcome consumed by
//!   `.unwrap()` / `.expect(…)` or discarded with `let _ =` in sharded
//!   code, instead of routing through the retry policy or the journal.
//! - **R7 `unpinned-read`** — a query-path kernel launch inside a function
//!   with *no* pin evidence at all (no `ReadGuard` parameter, no
//!   `pin`/`pin_read`/`check_pin` call). Subsumed by R8's flow analysis
//!   but kept as the cheap screaming-level rule.
//! - **R8 `pin-escape`** — flow-sensitive guard liveness: every
//!   chain-walking launch in the query path must be dominated by a live
//!   `ReadGuard`; a guard must not be discarded at birth, cross an
//!   `advance_era()`, or escape a function whose return type doesn't
//!   carry it. This retires R7's old ten-line text window.
//! - **R9 `publication-order`** — an arena word class (keyed by the named
//!   constants in its address expression, e.g. `NEXT_LANE`) written with a
//!   plain store in one kernel but read by a concurrently-running pinned
//!   reader kernel must be published atomically (`atomic_cas` /
//!   `atomic_exchange` / RMW) — statically catching the class of race PR
//!   4's sanitizer found dynamically.
//! - **R10 `era-advance`** — every mutation batch entry point in
//!   `crates/core` and `crates/router` must reach `advance_era()` on its
//!   success paths before acknowledging the batch, and no batch-boundary
//!   function may early-return success between its launch and its
//!   advance.
//! - **R11 `untraced-dispatch`** — every `.dispatch(…)` fan-out in
//!   `crates/router` must stamp its device work with a `TraceCtx` via
//!   `trace_scope`; untraced dispatches produce charged spans with no
//!   causal parent, invisible to `trace-query` lifecycles.
//!
//! ## Usage
//!
//! ```text
//! cargo run --bin lint-kernels              # scan ., human report
//! cargo run --bin lint-kernels -- --json    # machine report on stdout
//! cargo run --bin lint-kernels -- --write-allow   # regenerate lint-allow.txt
//! ```
//!
//! Every run also writes `target/lint/report.json` (pretty-printed,
//! exact-round-trip JSON — the same discipline as `TraceReport`). Exit
//! status: 0 clean/budgeted, 1 findings outside the budget (new findings,
//! stale allowlist entries, or a budget above the ratchet), 2 usage/IO
//! error.
//!
//! ## Allowlist ratchet
//!
//! `lint-allow.txt` budgets known findings with exact `RULE:path:line`
//! spans and a `# ratchet: N` ceiling; see `tools/lint/report.rs`. CI
//! fails when the budget grows — debt can only be paid down.

#[path = "lint/mod.rs"]
mod lint;

use lint::report::{Allowlist, LintReport};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut json = false;
    let mut write_allow = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--json" => json = true,
            "--write-allow" => write_allow = true,
            "--help" | "-h" => {
                eprintln!("usage: lint-kernels [ROOT] [--json] [--write-allow]");
                return ExitCode::SUCCESS;
            }
            other if !other.starts_with('-') => root = PathBuf::from(other),
            other => {
                eprintln!("lint-kernels: unknown flag `{other}`");
                return ExitCode::from(2);
            }
        }
    }

    let files = match lint::scan_workspace(&root) {
        Ok(files) => files,
        Err(e) => {
            eprintln!("lint-kernels: scan failed: {e}");
            return ExitCode::from(2);
        }
    };
    let mut report = lint::analyze(&files);

    if write_allow {
        let text = Allowlist::write(&report.findings);
        let path = root.join("lint-allow.txt");
        if let Err(e) = std::fs::write(&path, &text) {
            eprintln!("lint-kernels: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
        println!(
            "lint-kernels: wrote {} ({} entries)",
            path.display(),
            report.findings.len()
        );
        return ExitCode::SUCCESS;
    }

    let allow = match std::fs::read_to_string(root.join("lint-allow.txt")) {
        Ok(text) => match Allowlist::parse(&text) {
            Ok(allow) => allow,
            Err(e) => {
                eprintln!("lint-kernels: {e}");
                return ExitCode::from(2);
            }
        },
        Err(_) => Allowlist::default(),
    };
    report.apply_allowlist(&allow);

    if let Err(e) = export_json(&report, &root) {
        eprintln!("lint-kernels: {e}");
        return ExitCode::from(2);
    }

    if json {
        println!("{}", report.to_json().render_pretty());
    } else {
        print!("{}", report.render());
    }
    if report.ok() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Write `target/lint/report.json` and prove the export round-trips
/// exactly (parse → rebuild → re-render must be byte-identical).
fn export_json(report: &LintReport, root: &Path) -> Result<(), String> {
    let rendered = report.to_json().render_pretty();
    let parsed = gpu_sim::Json::parse(&rendered)
        .map_err(|e| format!("report JSON does not parse back: {e}"))?;
    let rebuilt =
        LintReport::from_json(&parsed).map_err(|e| format!("report JSON does not rebuild: {e}"))?;
    let re_rendered = rebuilt.to_json().render_pretty();
    if re_rendered != rendered {
        return Err("report JSON round-trip is not byte-identical".to_string());
    }
    let dir = root.join("target/lint");
    std::fs::create_dir_all(&dir).map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
    let path = dir.join("report.json");
    std::fs::write(&path, rendered).map_err(|e| format!("cannot write {}: {e}", path.display()))
}
