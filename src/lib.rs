//! # dynamic-graphs-gpu
//!
//! Umbrella crate for the reproduction of **"Dynamic Graphs on the GPU"**
//! (Awad, Ashkiani, Porumbescu, Owens; 2020). It re-exports the workspace
//! crates so examples and downstream users need a single dependency:
//!
//! - [`slabgraph`] — the paper's contribution: a dynamic graph with one
//!   slab hash table per vertex adjacency list.
//! - [`gpu_sim`] — the simulated SIMT substrate (warps, device memory,
//!   transaction counters, TITAN V cost model).
//! - [`slab_alloc`] / [`slab_hash`] — the allocator and hash tables.
//! - [`baselines`] — Hornet / faimGraph / CSR / sort workalikes.
//! - [`backend`] — the [`backend::GraphBackend`] trait unifying all four
//!   structures behind one generic algorithm/benchmark surface.
//! - [`router`] — [`router::ShardedGraph`] hash-partitioning one logical
//!   graph across N shards on a [`gpu_sim::DeviceGroup`], plus the
//!   [`router::BatchRouter`] coalescing concurrent client sessions into
//!   per-shard batches.
//! - [`graph_gen`] — Table I dataset catalog and workload generators.
//! - [`algos`] — generic triangle counting (static + dynamic) and BFS
//!   over any [`backend::GraphBackend`].
//!
//! See README.md for a tour, DESIGN.md for the system inventory, and
//! EXPERIMENTS.md for paper-vs-measured results.
//!
//! ```
//! use dynamic_graphs_gpu::prelude::*;
//!
//! let g = DynGraph::new(GraphConfig::undirected_map(128));
//! g.insert_edges(&[Edge::weighted(0, 1, 7), Edge::weighted(1, 2, 9)]);
//! assert_eq!(g.num_edges(), 4); // undirected: both half-edges counted
//! assert!(g.edge_exists(&g.pin_read(), 2, 1));
//! ```

pub use algos;
pub use backend;
pub use baselines;
pub use gpu_sim;
pub use graph_gen;
pub use router;
pub use slab_alloc;
pub use slab_hash;
pub use slabgraph;

/// The names most programs need.
pub mod prelude {
    pub use algos::{bfs_levels, tc};
    pub use backend::{Capabilities, GraphBackend, IntersectionKind};
    pub use graph_gen::{catalog, insert_batch, vertex_batch};
    pub use router::{
        shard_of, BatchRouter, FlushReport, ReadQuality, RetryPolicy, RouterError, RouterReport,
        ShardHealth, ShardedGraph, Update,
    };
    pub use slabgraph::{
        AllocError, BatchOp, BatchOutcome, Direction, DynGraph, Edge, FaultPlan, GraphConfig,
        GraphError, GraphStats, OomError, ReadGuard, TableKind, ValidationError,
        DEFAULT_LOAD_FACTOR,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn prelude_roundtrip() {
        let g = DynGraph::new(GraphConfig::directed_map(8));
        g.insert_edges(&[Edge::weighted(1, 2, 3)]);
        assert_eq!(g.edge_weight(&g.pin_read(), 1, 2), Some(3));
    }
}
