//! R-MAT recursive-matrix graph generator (Chakrabarti et al., 2004).
//!
//! The paper's Fig. 2 and Fig. 3 sweeps use "directed RMAT graphs with 2^20
//! vertices but different average degree". R-MAT recursively descends a
//! 2×2 partition of the adjacency matrix with probabilities (a, b, c, d),
//! producing the heavy-tailed degree distributions of scale-free graphs.

use crate::RawEdge;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// R-MAT quadrant probabilities. Must sum to 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RmatParams {
    pub a: f64,
    pub b: f64,
    pub c: f64,
    pub d: f64,
    /// Per-level noise added to fight the "staircase" artifact.
    pub noise: f64,
}

impl RmatParams {
    /// The canonical Graph500-style parameters (0.57, 0.19, 0.19, 0.05).
    pub fn graph500() -> Self {
        RmatParams {
            a: 0.57,
            b: 0.19,
            c: 0.19,
            d: 0.05,
            noise: 0.1,
        }
    }

    /// A flatter distribution (closer to Erdős–Rényi).
    pub fn flat() -> Self {
        RmatParams {
            a: 0.25,
            b: 0.25,
            c: 0.25,
            d: 0.25,
            noise: 0.0,
        }
    }
}

impl Default for RmatParams {
    fn default() -> Self {
        Self::graph500()
    }
}

/// Generate `num_edges` directed R-MAT edges over `2^scale` vertices.
///
/// Duplicate edges and self-loops may appear, exactly as in the raw
/// generator — the paper's structures are responsible for deduplication.
pub fn rmat_edges(scale: u32, num_edges: usize, params: RmatParams, seed: u64) -> Vec<RawEdge> {
    assert!(scale <= 31, "scale too large for u32 vertex ids");
    let total = params.a + params.b + params.c + params.d;
    assert!(
        (total - 1.0).abs() < 1e-9,
        "RMAT probabilities must sum to 1, got {total}"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges = Vec::with_capacity(num_edges);
    for _ in 0..num_edges {
        edges.push(one_edge(scale, &params, &mut rng));
    }
    edges
}

fn one_edge(scale: u32, p: &RmatParams, rng: &mut StdRng) -> RawEdge {
    let mut src = 0u32;
    let mut dst = 0u32;
    for level in 0..scale {
        // Jitter the quadrant probabilities per level.
        let mut jitter = |v: f64| {
            if p.noise > 0.0 {
                (v * (1.0 - p.noise + 2.0 * p.noise * rng.random::<f64>())).max(1e-6)
            } else {
                v
            }
        };
        let (a, b, c, d) = (jitter(p.a), jitter(p.b), jitter(p.c), jitter(p.d));
        let sum = a + b + c + d;
        let r = rng.random::<f64>() * sum;
        let bit = 1u32 << (scale - 1 - level);
        if r < a {
            // top-left: neither bit set
        } else if r < a + b {
            dst |= bit;
        } else if r < a + b + c {
            src |= bit;
        } else {
            src |= bit;
            dst |= bit;
        }
    }
    (src, dst)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::degree_stats;

    #[test]
    fn generates_requested_count_in_range() {
        let edges = rmat_edges(10, 5000, RmatParams::graph500(), 1);
        assert_eq!(edges.len(), 5000);
        for &(u, v) in &edges {
            assert!(u < 1024 && v < 1024);
        }
    }

    #[test]
    fn deterministic_for_same_seed() {
        let a = rmat_edges(12, 1000, RmatParams::graph500(), 7);
        let b = rmat_edges(12, 1000, RmatParams::graph500(), 7);
        assert_eq!(a, b);
        let c = rmat_edges(12, 1000, RmatParams::graph500(), 8);
        assert_ne!(a, c, "different seeds differ");
    }

    #[test]
    fn graph500_is_heavy_tailed() {
        let edges = rmat_edges(12, 40_000, RmatParams::graph500(), 3);
        let s = degree_stats(4096, &edges);
        // Scale-free: max degree far above the mean, high σ.
        assert!(
            s.max as f64 > 10.0 * s.avg,
            "max {} should dwarf avg {}",
            s.max,
            s.avg
        );
        assert!(
            s.stddev > s.avg,
            "σ {} should exceed avg {}",
            s.stddev,
            s.avg
        );
    }

    #[test]
    fn flat_params_are_not_heavy_tailed() {
        let edges = rmat_edges(12, 40_000, RmatParams::flat(), 3);
        let s = degree_stats(4096, &edges);
        assert!(
            (s.max as f64) < 5.0 * s.avg,
            "flat RMAT max {} close to avg {}",
            s.max,
            s.avg
        );
    }

    #[test]
    #[should_panic(expected = "sum to 1")]
    fn bad_probabilities_rejected() {
        let p = RmatParams {
            a: 0.5,
            b: 0.5,
            c: 0.5,
            d: 0.5,
            noise: 0.0,
        };
        rmat_edges(4, 10, p, 0);
    }
}
