//! Update-batch generators for the paper's evaluation strategy (§V-A).
//!
//! "Edges are inserted or deleted between existing vertices in the graph.
//! Duplicate edges are allowed within a batch and across the batch and the
//! graph" — so insertion batches sample uniformly over the vertex set, and
//! deletion batches mix random pairs (mostly misses on sparse graphs) as
//! the paper's deletion benchmark does.

use crate::RawEdge;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// A batch of `size` random edges between existing vertices; duplicates
/// within the batch and against the graph are allowed (§V-A1).
pub fn insert_batch(n_vertices: u32, size: usize, seed: u64) -> Vec<RawEdge> {
    assert!(n_vertices > 0);
    let mut rng = StdRng::seed_from_u64(seed);
    (0..size)
        .map(|_| {
            (
                rng.random_range(0..n_vertices),
                rng.random_range(0..n_vertices),
            )
        })
        .collect()
}

/// A deletion batch: a mix of edges sampled from the graph (hits) and
/// random pairs (misses). `hit_fraction` controls the ratio; the paper's
/// random batches over sparse graphs are mostly misses, so Table III notes
/// "the true number of deleted edges ... is much lower than the number of
/// randomly generated edges".
pub fn delete_batch(
    n_vertices: u32,
    existing: &[RawEdge],
    size: usize,
    hit_fraction: f64,
    seed: u64,
) -> Vec<RawEdge> {
    assert!((0.0..=1.0).contains(&hit_fraction));
    let mut rng = StdRng::seed_from_u64(seed);
    let mut batch = Vec::with_capacity(size);
    for _ in 0..size {
        if !existing.is_empty() && rng.random::<f64>() < hit_fraction {
            batch.push(existing[rng.random_range(0..existing.len())]);
        } else {
            batch.push((
                rng.random_range(0..n_vertices),
                rng.random_range(0..n_vertices),
            ));
        }
    }
    batch
}

/// A batch of distinct vertex ids to delete, sampled without replacement
/// (§V-A2). Panics if `size > n_vertices`.
pub fn vertex_batch(n_vertices: u32, size: usize, seed: u64) -> Vec<u32> {
    assert!(size <= n_vertices as usize, "batch exceeds vertex count");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ids: Vec<u32> = (0..n_vertices).collect();
    ids.shuffle(&mut rng);
    ids.truncate(size);
    ids
}

/// Attach deterministic pseudo-random weights to raw edges.
pub fn weighted(edges: &[RawEdge], seed: u64) -> Vec<(u32, u32, u32)> {
    let mut rng = StdRng::seed_from_u64(seed);
    edges
        .iter()
        .map(|&(u, v)| (u, v, rng.random_range(1..1_000_000)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_batch_in_range_and_deterministic() {
        let a = insert_batch(50, 500, 1);
        assert_eq!(a, insert_batch(50, 500, 1));
        assert!(a.iter().all(|&(u, v)| u < 50 && v < 50));
        assert_eq!(a.len(), 500);
    }

    #[test]
    fn insert_batch_contains_duplicates_at_scale() {
        // Birthday bound: 500 draws over 10×10 pairs must collide.
        let a = insert_batch(10, 500, 2);
        let set: std::collections::HashSet<_> = a.iter().collect();
        assert!(set.len() < a.len(), "expected duplicate edges in batch");
    }

    #[test]
    fn delete_batch_hits_existing_edges() {
        let existing = vec![(1u32, 2u32), (3, 4), (5, 6)];
        let b = delete_batch(100, &existing, 200, 1.0, 3);
        assert!(b.iter().all(|e| existing.contains(e)), "all hits");
        let misses = delete_batch(100, &existing, 200, 0.0, 3);
        assert_eq!(misses.len(), 200);
    }

    #[test]
    fn vertex_batch_is_distinct() {
        let b = vertex_batch(100, 60, 4);
        let set: std::collections::HashSet<_> = b.iter().collect();
        assert_eq!(set.len(), 60, "no repeated vertex ids");
        assert!(b.iter().all(|&v| v < 100));
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn oversized_vertex_batch_panics() {
        vertex_batch(10, 11, 0);
    }

    #[test]
    fn weighted_attaches_nonzero_weights() {
        let w = weighted(&[(0, 1), (2, 3)], 7);
        assert_eq!(w.len(), 2);
        assert!(w.iter().all(|&(_, _, wt)| wt >= 1));
        assert_eq!(w, weighted(&[(0, 1), (2, 3)], 7));
    }
}
