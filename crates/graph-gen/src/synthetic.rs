//! Non-scale-free generators matching Table I's road, mesh, and geometric
//! dataset families.

use crate::RawEdge;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Road-network-like graph: a W×H grid with 4-connectivity where a
/// fraction of edges is randomly removed, giving degree ≈ 2 with tiny
/// variance — the profile of `luxembourg_osm` / `germany_osm` / `road_usa`
/// (avg 2.1–2.4, σ 0.4–0.9). Returns directed edge pairs (both
/// directions), vertices are `0..W·H`.
pub fn grid_road(width: u32, height: u32, drop_fraction: f64, seed: u64) -> Vec<RawEdge> {
    assert!((0.0..1.0).contains(&drop_fraction));
    let mut rng = StdRng::seed_from_u64(seed);
    let id = |x: u32, y: u32| y * width + x;
    let mut edges = Vec::new();
    for y in 0..height {
        for x in 0..width {
            if x + 1 < width && rng.random::<f64>() >= drop_fraction {
                edges.push((id(x, y), id(x + 1, y)));
                edges.push((id(x + 1, y), id(x, y)));
            }
            if y + 1 < height && rng.random::<f64>() >= drop_fraction {
                edges.push((id(x, y), id(x, y + 1)));
                edges.push((id(x, y + 1), id(x, y)));
            }
        }
    }
    edges
}

/// Delaunay-triangulation-like graph: every vertex connects to ~6
/// neighbours with small variance (`delaunay_n20/n23`: avg 6.0, σ 1.33).
/// Built as a jittered triangular lattice rather than a true Delaunay
/// triangulation — the degree profile is what matters.
pub fn delaunay_like(n_vertices: u32, seed: u64) -> Vec<RawEdge> {
    let width = (n_vertices as f64).sqrt().ceil() as u32;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges = Vec::new();
    let id = |x: u32, y: u32| y * width + x;
    let height = n_vertices.div_ceil(width);
    for y in 0..height {
        for x in 0..width {
            let u = id(x, y);
            if u >= n_vertices {
                continue;
            }
            // Triangular lattice: right, down, down-right (≈6 undirected
            // incident edges per interior vertex), with a little jitter.
            let mut push = |v: u32| {
                if v < n_vertices {
                    edges.push((u, v));
                    edges.push((v, u));
                }
            };
            if x + 1 < width {
                push(id(x + 1, y));
            }
            if y + 1 < height {
                push(id(x, y + 1));
                if x + 1 < width && rng.random::<f64>() < 0.95 {
                    push(id(x + 1, y + 1));
                }
            }
        }
    }
    edges
}

/// Random-geometric-like graph (`rgg_n_2_*`: avg degree 13–16, σ ≈ 4):
/// points on a grid of cells, connected to all points within a radius —
/// approximated by connecting each vertex to a Poisson-ish number of
/// nearby vertices in id-space (locality mimics the RGG's spatial
/// structure; degree mean/σ match Table I).
pub fn random_geometric(n_vertices: u32, target_avg_degree: f64, seed: u64) -> Vec<RawEdge> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges = Vec::new();
    let half = target_avg_degree / 2.0;
    for u in 0..n_vertices {
        // Sample a per-vertex count ~ Normal(half, half/4) via CLT-ish sum.
        let mut k = 0.0;
        for _ in 0..4 {
            k += rng.random::<f64>();
        }
        let k = (half + (k - 2.0) * half / 2.0).round().max(0.0) as u32;
        for _ in 0..k {
            // Neighbours are nearby in id space (locality window).
            let window = 64.min(n_vertices);
            let off = rng.random_range(1..window);
            let v = (u + off) % n_vertices;
            if v != u {
                edges.push((u, v));
                edges.push((v, u));
            }
        }
    }
    edges
}

/// Uniform (Erdős–Rényi-style) directed edges: `num_edges` pairs drawn
/// uniformly over `n_vertices` — duplicates and self-loops possible, as in
/// the paper's random update batches.
pub fn uniform_random(n_vertices: u32, num_edges: usize, seed: u64) -> Vec<RawEdge> {
    assert!(n_vertices > 0);
    let mut rng = StdRng::seed_from_u64(seed);
    (0..num_edges)
        .map(|_| {
            (
                rng.random_range(0..n_vertices),
                rng.random_range(0..n_vertices),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::degree_stats;

    #[test]
    fn grid_road_degree_profile() {
        // Interior out-degree ≈ 4·(1−drop): drop 0.45 targets avg ≈ 2.1.
        let e = grid_road(100, 100, 0.45, 1);
        let s = degree_stats(10_000, &e);
        assert!((1.7..2.5).contains(&s.avg), "road avg {} ≈ 2", s.avg);
        assert!(s.stddev < 1.2, "road σ {} small", s.stddev);
        assert!(s.max <= 4);
    }

    #[test]
    fn delaunay_degree_profile() {
        let e = delaunay_like(10_000, 2);
        let s = degree_stats(10_000, &e);
        assert!((4.5..6.5).contains(&s.avg), "delaunay avg {} ≈ 6", s.avg);
        assert!(s.stddev < 2.0, "delaunay σ {} small", s.stddev);
    }

    #[test]
    fn rgg_degree_profile() {
        let e = random_geometric(10_000, 14.0, 3);
        let s = degree_stats(10_000, &e);
        assert!((11.0..17.0).contains(&s.avg), "rgg avg {} ≈ 14", s.avg);
        assert!(
            (2.0..8.0).contains(&s.stddev),
            "rgg σ {} moderate",
            s.stddev
        );
    }

    #[test]
    fn uniform_random_in_range_and_deterministic() {
        let a = uniform_random(100, 1000, 5);
        let b = uniform_random(100, 1000, 5);
        assert_eq!(a, b);
        assert_eq!(a.len(), 1000);
        assert!(a.iter().all(|&(u, v)| u < 100 && v < 100));
    }

    #[test]
    fn generators_are_symmetric_where_promised() {
        // grid_road and delaunay_like emit both directions of every edge.
        let e = grid_road(10, 10, 0.0, 1);
        let set: std::collections::HashSet<_> = e.iter().copied().collect();
        for &(u, v) in &e {
            assert!(set.contains(&(v, u)), "missing reverse of ({u},{v})");
        }
    }
}
