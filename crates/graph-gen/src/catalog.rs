//! The Table I dataset catalog, reproduced as scaled synthetic graphs.
//!
//! Each entry records the paper's published statistics (vertices, edges,
//! degree min/max/avg/σ) and knows how to generate a *scaled* synthetic
//! stand-in whose degree distribution matches the original's family:
//! road networks, meshes, geometric graphs, or scale-free social graphs.
//! See DESIGN.md §2 for why degree-matched synthetics preserve the
//! measured behaviour.

use crate::rmat::{rmat_edges, RmatParams};
use crate::synthetic::{delaunay_like, grid_road, random_geometric};
use crate::RawEdge;

/// Structural family driving the generator choice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Family {
    /// Degree ≈ 2, σ < 1 (osm road networks, road_usa).
    Road,
    /// Degree ≈ 6, σ ≈ 1.3 (delaunay_n20/n23).
    Delaunay,
    /// Degree 13–16, σ ≈ 4 (rgg_n_2_*).
    Geometric,
    /// Degree ≈ 48, σ ≈ 12 (ldoor FEM mesh).
    Mesh,
    /// Heavy-tailed (coAuthorsDBLP, soc-*, hollywood-2009).
    ScaleFree,
}

/// One Table I row: the paper's numbers plus generation parameters.
#[derive(Debug, Clone, Copy)]
pub struct DatasetSpec {
    pub name: &'static str,
    pub family: Family,
    pub paper_vertices: u64,
    pub paper_edges: u64,
    pub paper_avg_degree: f64,
    pub paper_degree_sigma: f64,
}

/// A generated, scaled instance of a catalog dataset.
#[derive(Debug, Clone)]
pub struct Dataset {
    pub spec: DatasetSpec,
    pub n_vertices: u32,
    pub edges: Vec<RawEdge>,
}

/// All twelve Table I rows, in the paper's order.
pub fn datasets() -> Vec<DatasetSpec> {
    use Family::*;
    vec![
        spec("luxembourg_osm", Road, 114_000, 239_000, 2.1, 0.41),
        spec("germany_osm", Road, 11_500_000, 24_700_000, 2.1, 0.51),
        spec("road_usa", Road, 23_900_000, 57_710_000, 2.4, 0.85),
        spec("delaunay_n23", Delaunay, 8_400_000, 50_300_000, 6.0, 1.33),
        spec("delaunay_n20", Delaunay, 1_000_000, 6_300_000, 6.0, 1.33),
        spec(
            "rgg_n_2_20_s0",
            Geometric,
            1_000_000,
            13_800_000,
            13.1,
            3.62,
        ),
        spec(
            "rgg_n_2_24_s0",
            Geometric,
            16_800_000,
            265_100_000,
            16.0,
            3.99,
        ),
        spec("coAuthorsDBLP", ScaleFree, 299_000, 1_900_000, 6.4, 9.80),
        spec("ldoor", Mesh, 952_000, 45_500_000, 47.7, 11.97),
        spec(
            "soc-LiveJournal1",
            ScaleFree,
            4_800_000,
            85_700_000,
            17.2,
            50.65,
        ),
        spec("soc-orkut", ScaleFree, 3_000_000, 212_700_000, 70.9, 139.72),
        spec(
            "hollywood-2009",
            ScaleFree,
            1_100_000,
            112_800_000,
            98.9,
            271.70,
        ),
    ]
}

fn spec(name: &'static str, family: Family, v: u64, e: u64, avg: f64, sigma: f64) -> DatasetSpec {
    DatasetSpec {
        name,
        family,
        paper_vertices: v,
        paper_edges: e,
        paper_avg_degree: avg,
        paper_degree_sigma: sigma,
    }
}

/// Look up a catalog row by name.
pub fn dataset(name: &str) -> Option<DatasetSpec> {
    datasets().into_iter().find(|d| d.name == name)
}

impl DatasetSpec {
    /// Default benchmark scale: vertex count capped so the edge count stays
    /// around a few hundred thousand — sized for a single-core host running
    /// the simulator (see DESIGN.md §8).
    pub fn default_scale(&self) -> u32 {
        let cap_by_edges = (400_000.0 / self.paper_avg_degree.max(1.0)) as u64;
        self.paper_vertices.min(cap_by_edges).max(4096) as u32
    }

    /// Generate a scaled instance with ~`n_vertices` vertices, preserving
    /// the family's degree profile. Deterministic in `seed`.
    pub fn generate(&self, n_vertices: u32, seed: u64) -> Dataset {
        let edges = match self.family {
            Family::Road => {
                let side = (n_vertices as f64).sqrt().ceil() as u32;
                // 4-connected grid: interior out-degree 4(1-p); solve for
                // the paper's average.
                let drop = (1.0 - self.paper_avg_degree / 4.0).clamp(0.05, 0.9);
                grid_road(side, n_vertices.div_ceil(side), drop, seed)
            }
            Family::Delaunay => delaunay_like(n_vertices, seed),
            Family::Geometric | Family::Mesh => {
                random_geometric(n_vertices, self.paper_avg_degree, seed)
            }
            Family::ScaleFree => {
                let scale = 32 - n_vertices.next_power_of_two().leading_zeros() - 1;
                let num_edges = (n_vertices as f64 * self.paper_avg_degree) as usize;
                rmat_edges(scale.max(4), num_edges, RmatParams::graph500(), seed)
            }
        };
        let n_vertices = match self.family {
            // Grid generators may round the vertex count up to a full grid.
            Family::Road => {
                let side = (n_vertices as f64).sqrt().ceil() as u32;
                side * n_vertices.div_ceil(side)
            }
            // R-MAT draws ids over the full 2^scale id space.
            Family::ScaleFree => n_vertices.next_power_of_two(),
            _ => n_vertices,
        };
        Dataset {
            spec: *self,
            n_vertices,
            edges,
        }
    }

    /// Generate at the default benchmark scale.
    pub fn generate_default(&self, seed: u64) -> Dataset {
        self.generate(self.default_scale(), seed)
    }
}

impl Dataset {
    /// Observed degree statistics of the generated instance.
    pub fn stats(&self) -> crate::stats::DegreeStats {
        crate::stats::degree_stats(self.n_vertices, &self.edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_has_twelve_rows_matching_table1() {
        let all = datasets();
        assert_eq!(all.len(), 12);
        let road = dataset("road_usa").unwrap();
        assert_eq!(road.paper_vertices, 23_900_000);
        assert_eq!(road.paper_avg_degree, 2.4);
        assert!(dataset("no_such_graph").is_none());
    }

    #[test]
    fn default_scales_are_tractable() {
        for d in datasets() {
            let v = d.default_scale();
            assert!(v >= 4096, "{}: {v}", d.name);
            let approx_edges = v as f64 * d.paper_avg_degree;
            assert!(
                approx_edges < 600_000.0,
                "{}: ~{approx_edges} edges too many",
                d.name
            );
        }
    }

    #[test]
    fn generated_families_match_degree_profiles() {
        for name in ["luxembourg_osm", "delaunay_n20", "rgg_n_2_20_s0"] {
            let spec = dataset(name).unwrap();
            let ds = spec.generate(10_000, 42);
            let s = ds.stats();
            let rel = (s.avg - spec.paper_avg_degree).abs() / spec.paper_avg_degree;
            assert!(
                rel < 0.35,
                "{name}: generated avg {} vs paper {}",
                s.avg,
                spec.paper_avg_degree
            );
        }
    }

    #[test]
    fn scale_free_instances_are_heavy_tailed() {
        let spec = dataset("hollywood-2009").unwrap();
        let ds = spec.generate(8192, 1);
        let s = ds.stats();
        assert!(s.max as f64 > 5.0 * s.avg, "max {} avg {}", s.max, s.avg);
    }

    #[test]
    fn generation_is_deterministic() {
        let spec = dataset("coAuthorsDBLP").unwrap();
        assert_eq!(spec.generate(5000, 9).edges, spec.generate(5000, 9).edges);
    }

    #[test]
    fn edges_stay_in_vertex_range() {
        for d in datasets() {
            let ds = d.generate(5000, 3);
            for &(u, v) in ds.edges.iter().take(5000) {
                assert!(u < ds.n_vertices && v < ds.n_vertices, "{}", d.name);
            }
        }
    }
}
