//! # graph-gen — deterministic workload generators for the evaluation
//!
//! The paper benchmarks on twelve public datasets (Table I) spanning three
//! families — road networks (degree ≈ 2, tiny variance), meshes/geometric
//! graphs (degree 6–16, small variance), and scale-free social/web graphs
//! (heavy-tailed, max degree in the tens of thousands). The datasets
//! themselves are not load-bearing; their *degree distributions* are, since
//! they determine adjacency-list sizes and hence data-structure behaviour.
//!
//! This crate provides seeded, dependency-light generators for each family
//! plus a [`catalog`] mirroring Table I at configurable scale, and the
//! update-batch generators defined by the paper's evaluation strategy
//! (§V-A: random edges between existing vertices, duplicates allowed).

pub mod batch;
pub mod catalog;
pub mod fixtures;
pub mod rmat;
pub mod stats;
pub mod synthetic;

pub use batch::{delete_batch, insert_batch, vertex_batch, weighted};
pub use catalog::{dataset, datasets, Dataset, DatasetSpec};
pub use fixtures::{both_directions, fixture_edges, mirror, FIXTURE_TRIANGLES};
pub use rmat::{rmat_edges, RmatParams};
pub use stats::{degree_stats, DegreeStats};
pub use synthetic::{delaunay_like, grid_road, random_geometric, uniform_random};

/// An unweighted directed edge as produced by every generator.
pub type RawEdge = (u32, u32);
