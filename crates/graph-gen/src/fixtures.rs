//! Shared test fixtures and edge-list helpers.
//!
//! Several test suites and benchmark drivers need the same two things: a
//! way to mirror an undirected edge list into both stored directions, and
//! a small graph with a known triangle count. They live here so every
//! crate uses one definition instead of redeclaring them.

/// Mirror an undirected edge list into both stored directions,
/// interleaved: `(u,v)` becomes `[(u,v), (v,u)]`. The interleaving
/// matches the work-list order SlabGraph's own undirected insert path
/// produces, so counter profiles are comparable across structures.
pub fn mirror(edges: &[(u32, u32)]) -> Vec<(u32, u32)> {
    edges.iter().flat_map(|&(u, v)| [(u, v), (v, u)]).collect()
}

/// Alias of [`mirror`] under the name the algorithm tests historically
/// used.
pub fn both_directions(edges: &[(u32, u32)]) -> Vec<(u32, u32)> {
    mirror(edges)
}

/// Number of triangles in [`fixture_edges`].
pub const FIXTURE_TRIANGLES: u64 = 10;

/// A graph with a known triangle structure: K5 (C(5,3) = 10 triangles)
/// plus a triangle-free 4-cycle on vertices 10..=13, in a 16-vertex id
/// space. Returns `(n_vertices, undirected_edges)`.
pub fn fixture_edges() -> (u32, Vec<(u32, u32)>) {
    let mut e = vec![];
    for u in 0..5u32 {
        for v in (u + 1)..5 {
            e.push((u, v));
        }
    }
    e.extend_from_slice(&[(10, 11), (11, 12), (12, 13), (13, 10)]);
    (16, e)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mirror_interleaves_directions() {
        assert_eq!(
            mirror(&[(1, 2), (3, 4)]),
            vec![(1, 2), (2, 1), (3, 4), (4, 3)]
        );
        assert_eq!(both_directions(&[(0, 7)]), vec![(0, 7), (7, 0)]);
    }

    #[test]
    fn fixture_shape() {
        let (n, e) = fixture_edges();
        assert_eq!(n, 16);
        assert_eq!(e.len(), 14, "10 K5 edges + 4 cycle edges");
    }
}
