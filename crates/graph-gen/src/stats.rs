//! Degree statistics in the exact shape of the paper's Table I
//! (min / max / average / σ of out-degree).

use crate::RawEdge;

/// Out-degree statistics of an edge list.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DegreeStats {
    pub vertices: u32,
    pub edges: u64,
    pub min: u32,
    pub max: u32,
    pub avg: f64,
    pub stddev: f64,
}

/// Compute [`DegreeStats`] for `edges` over `n_vertices` vertices
/// (self-loops and duplicates count toward degree, as in raw COO data).
pub fn degree_stats(n_vertices: u32, edges: &[RawEdge]) -> DegreeStats {
    let mut deg = vec![0u32; n_vertices as usize];
    for &(u, _) in edges {
        deg[u as usize] += 1;
    }
    let n = n_vertices as f64;
    let sum: u64 = deg.iter().map(|&d| d as u64).sum();
    let avg = sum as f64 / n;
    let var = deg
        .iter()
        .map(|&d| {
            let x = d as f64 - avg;
            x * x
        })
        .sum::<f64>()
        / n;
    DegreeStats {
        vertices: n_vertices,
        edges: edges.len() as u64,
        min: deg.iter().copied().min().unwrap_or(0),
        max: deg.iter().copied().max().unwrap_or(0),
        avg,
        stddev: var.sqrt(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_stats() {
        // Vertex 0 has out-degree 3, vertex 1 has 1, vertex 2 has 0.
        let edges = vec![(0, 1), (0, 2), (0, 1), (1, 0)];
        let s = degree_stats(3, &edges);
        assert_eq!(s.vertices, 3);
        assert_eq!(s.edges, 4);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, 3);
        assert!((s.avg - 4.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn regular_graph_has_zero_stddev() {
        let edges: Vec<_> = (0..10u32).map(|u| (u, (u + 1) % 10)).collect();
        let s = degree_stats(10, &edges);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 1);
        assert_eq!(s.stddev, 0.0);
    }

    #[test]
    fn empty_edge_list() {
        let s = degree_stats(5, &[]);
        assert_eq!(s.edges, 0);
        assert_eq!(s.max, 0);
        assert_eq!(s.avg, 0.0);
    }
}
