//! A minimal in-workspace stand-in for the `parking_lot` crate.
//!
//! The build environment has no registry access, so the workspace provides
//! the small slice of `parking_lot`'s API it actually uses — [`Mutex`] and
//! [`RwLock`] with non-poisoning guards — implemented over `std::sync`.
//! Semantics match `parking_lot` where it matters here: `lock()`/`read()`/
//! `write()` never return poison errors (a panicked holder just unlocks).

use std::sync::{MutexGuard, PoisonError, RwLockReadGuard, RwLockWriteGuard};

/// Non-poisoning mutual-exclusion lock.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Create a new mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available. Never poisons.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Non-poisoning reader-writer lock.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Create a new rwlock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard. Never poisons.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire an exclusive write guard. Never poisons.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn mutex_does_not_poison() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        *m.lock() = 7;
        assert_eq!(*m.lock(), 7);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        {
            let r1 = l.read();
            let r2 = l.read();
            assert_eq!(r1.len() + r2.len(), 4);
        }
        l.write().push(3);
        assert_eq!(l.into_inner(), vec![1, 2, 3]);
    }
}
