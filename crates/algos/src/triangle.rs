//! Triangle counting, static and dynamic (paper §VI-C).
//!
//! All counters assume an **undirected** graph stored with both edge
//! directions and count each triangle exactly once (smallest-vertex
//! convention: a triangle a<b<c is counted at `a` via the pair (b, c)).
//!
//! A single generic [`tc`] serves every structure through the
//! [`GraphBackend`] trait, dispatching on the backend's declared
//! [`IntersectionKind`]:
//!
//! - **Hash probe** (SlabGraph) — the paper's hash approach: "we perform
//!   an `edgeExist` query for all edges". For every vertex `u` and
//!   neighbour pair v<w (both > u), probe w in A_v. O(1) per probe, no
//!   sorting needed.
//! - **Sorted merge** (Hornet, faimGraph, CSR) — the list approach:
//!   intersect two *sorted* adjacency lists with a serial merge walk
//!   ("little parallelism, but cheaper and faster than a
//!   hash-table-based solution" — the paper's own Table VII finding).
//!   The required sorting is charged separately (Table VIII): call
//!   [`GraphBackend::ensure_sorted`] before counting.

use backend::{GraphBackend, IntersectionKind};

/// Host-side reference triangle count from a raw undirected edge list
/// (used by tests to validate every implementation).
pub fn tc_reference(n_vertices: u32, edges: &[(u32, u32)]) -> u64 {
    let mut adj: Vec<std::collections::BTreeSet<u32>> =
        vec![std::collections::BTreeSet::new(); n_vertices as usize];
    for &(u, v) in edges {
        if u != v && u < n_vertices && v < n_vertices {
            adj[u as usize].insert(v);
            adj[v as usize].insert(u);
        }
    }
    let mut count = 0u64;
    for u in 0..n_vertices {
        let nu: Vec<u32> = adj[u as usize].iter().copied().filter(|&v| v > u).collect();
        for (i, &v) in nu.iter().enumerate() {
            for &w in &nu[i + 1..] {
                if adj[v as usize].contains(&w) {
                    count += 1;
                }
            }
        }
    }
    count
}

/// Triangle count over any [`GraphBackend`], using the intersection
/// strategy the backend declares in its capabilities. All device work is
/// fused under one `triangle_count` kernel scope for attribution.
///
/// # Panics
/// Sorted-merge backends must have sorted adjacency lists — call
/// [`GraphBackend::ensure_sorted`] first (its cost is Table VIII's
/// subject).
pub fn tc<B: GraphBackend + ?Sized>(g: &B) -> u64 {
    match g.caps().intersection {
        IntersectionKind::HashProbe => tc_hash_probe(g),
        IntersectionKind::SortedMerge => tc_sorted_merge(g),
    }
}

/// The hash approach: batched `edgeExist` probes for every candidate
/// closing edge, flushed through the backend's batched query kernel.
fn tc_hash_probe<B: GraphBackend + ?Sized>(g: &B) -> u64 {
    // One logical TC kernel: helper launches fuse under one named scope.
    g.device().fused_scope("triangle_count", || {
        let mut count = 0u64;
        let mut pending: Vec<(u32, u32)> = Vec::new();
        const FLUSH: usize = 1 << 16;
        let flush = |pairs: &mut Vec<(u32, u32)>| -> u64 {
            if pairs.is_empty() {
                return 0;
            }
            let hits = g.edges_exist(pairs).into_iter().filter(|&b| b).count() as u64;
            pairs.clear();
            hits
        };
        for u in 0..g.num_vertices() {
            let mut nu: Vec<u32> = g.read_neighbors(u).into_iter().filter(|&v| v > u).collect();
            nu.sort_unstable();
            for (i, &v) in nu.iter().enumerate() {
                for &w in &nu[i + 1..] {
                    pending.push((v, w));
                    if pending.len() >= FLUSH {
                        count += flush(&mut pending);
                    }
                }
            }
        }
        count += flush(&mut pending);
        count
    })
}

/// The list approach: serial sorted-merge intersection of adjacency
/// lists.
fn tc_sorted_merge<B: GraphBackend + ?Sized>(g: &B) -> u64 {
    assert!(
        g.is_sorted(),
        "{} TC requires sorted adjacency lists",
        g.name()
    );
    g.device().fused_scope("triangle_count", || {
        let mut count = 0u64;
        for u in 0..g.num_vertices() {
            let adj_u = g.read_neighbors(u);
            debug_assert!(adj_u.windows(2).all(|w| w[0] <= w[1]), "unsorted list");
            for &v in adj_u.iter().filter(|&&v| v > u) {
                let adj_v = g.read_neighbors(v);
                count += intersect_above(&adj_u, &adj_v, v);
            }
        }
        count
    })
}

/// Serial sorted-merge intersection size over elements `> floor`.
fn intersect_above(a: &[u32], b: &[u32], floor: u32) -> u64 {
    let (mut i, mut j, mut n) = (0usize, 0usize, 0u64);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                if a[i] > floor {
                    n += 1;
                }
                i += 1;
                j += 1;
            }
        }
    }
    n
}

/// One round of the dynamic triangle-counting scenario (Table IX):
/// timings for "insert a batch, then recount triangles".
#[derive(Debug, Clone, Copy, Default)]
pub struct DynamicTcRound {
    pub insert_seconds: f64,
    pub tc_seconds: f64,
    pub triangles: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use baselines::{Csr, FaimGraph, Hornet};
    use graph_gen::fixtures::{both_directions, fixture_edges, FIXTURE_TRIANGLES};
    use slabgraph::{DynGraph, Edge, GraphConfig};

    #[test]
    fn reference_counts_k5() {
        let (n, e) = fixture_edges();
        // K5 has C(5,3) = 10 triangles; the 4-cycle has none.
        assert_eq!(tc_reference(n, &e), FIXTURE_TRIANGLES);
    }

    #[test]
    fn slabgraph_matches_reference() {
        let (n, e) = fixture_edges();
        let g = DynGraph::with_uniform_buckets(GraphConfig::undirected_set(n), n, 1);
        g.insert_edges(&e.iter().map(|&p| Edge::from(p)).collect::<Vec<_>>());
        assert_eq!(tc(&g), FIXTURE_TRIANGLES);
    }

    #[test]
    fn hornet_matches_reference() {
        let (n, e) = fixture_edges();
        let mut g = Hornet::bulk_build(n, &both_directions(&e), 1 << 18);
        g.sort_adjacencies();
        assert_eq!(tc(&g), FIXTURE_TRIANGLES);
    }

    #[test]
    fn faimgraph_matches_reference() {
        let (n, e) = fixture_edges();
        let g = FaimGraph::build(n, &both_directions(&e), 1 << 18);
        g.sort_adjacencies();
        assert_eq!(tc(&g), FIXTURE_TRIANGLES);
    }

    #[test]
    fn csr_matches_reference() {
        let (n, e) = fixture_edges();
        let g = Csr::build(n, &both_directions(&e), 1 << 18);
        assert_eq!(tc(&g), FIXTURE_TRIANGLES);
    }

    #[test]
    fn all_structures_agree_on_random_graph() {
        let edges = graph_gen::uniform_random(64, 600, 42);
        let n = 64u32;
        let expect = tc_reference(n, &edges);
        assert!(expect > 0, "fixture should contain triangles");

        let g = DynGraph::with_uniform_buckets(GraphConfig::undirected_set(n), n, 1);
        g.insert_edges(&edges.iter().map(|&p| Edge::from(p)).collect::<Vec<_>>());
        assert_eq!(tc(&g), expect, "slabgraph");

        let dir = both_directions(&edges);
        let mut h = Hornet::bulk_build(n, &dir, 1 << 20);
        h.sort_adjacencies();
        assert_eq!(tc(&h), expect, "hornet");

        let f = FaimGraph::build(n, &dir, 1 << 20);
        f.sort_adjacencies();
        assert_eq!(tc(&f), expect, "faimgraph");

        let c = Csr::build(n, &dir, 1 << 20);
        assert_eq!(tc(&c), expect, "csr");
    }

    #[test]
    fn tc_after_incremental_updates() {
        // Dynamic scenario: counts must track edge insertions/deletions.
        let g = DynGraph::with_uniform_buckets(GraphConfig::undirected_set(8), 8, 1);
        g.insert_edges(&[Edge::new(0, 1), Edge::new(1, 2)]);
        assert_eq!(tc(&g), 0);
        g.insert_edges(&[Edge::new(0, 2)]);
        assert_eq!(tc(&g), 1, "closing the wedge makes a triangle");
        g.insert_edges(&[Edge::new(0, 3), Edge::new(1, 3)]);
        assert_eq!(tc(&g), 2);
        g.delete_edges(&[Edge::new(0, 1)]);
        assert_eq!(tc(&g), 0, "shared edge removal kills both");
    }

    #[test]
    fn tc_through_trait_objects() {
        // The whole point of the trait layer: one loop, four structures.
        let (n, e) = fixture_edges();
        let dir = both_directions(&e);
        let g = DynGraph::with_uniform_buckets(GraphConfig::undirected_set(n), n, 1);
        g.insert_edges(&e.iter().map(|&p| Edge::from(p)).collect::<Vec<_>>());
        let backends: Vec<Box<dyn GraphBackend>> = vec![
            Box::new(g),
            Box::new(Hornet::bulk_build(n, &dir, 1 << 18)),
            Box::new(FaimGraph::build(n, &dir, 1 << 18)),
            Box::new(Csr::build(n, &dir, 1 << 18)),
        ];
        for mut b in backends {
            b.ensure_sorted();
            assert_eq!(tc(b.as_ref()), FIXTURE_TRIANGLES, "{}", b.name());
        }
    }

    #[test]
    #[should_panic(expected = "sorted")]
    fn hornet_tc_requires_sort() {
        let mut g = Hornet::bulk_build(8, &[(0, 1), (1, 0)], 1 << 16);
        g.insert_batch(&[(0, 2)]); // unsorts
        tc(&g);
    }

    #[test]
    fn intersect_above_basics() {
        assert_eq!(intersect_above(&[1, 3, 5, 7], &[3, 5, 9], 0), 2);
        assert_eq!(intersect_above(&[1, 3, 5, 7], &[3, 5, 9], 3), 1);
        assert_eq!(intersect_above(&[], &[1], 0), 0);
    }
}
