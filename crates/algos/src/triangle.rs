//! Triangle counting, static and dynamic (paper §VI-C).
//!
//! All counters assume an **undirected** graph stored with both edge
//! directions and count each triangle exactly once (smallest-vertex
//! convention: a triangle a<b<c is counted at `a` via the pair (b, c)).
//!
//! - [`tc_slabgraph`] — the paper's hash approach: "we perform an
//!   `edgeExist` query for all edges". For every vertex `u` and neighbour
//!   pair v<w (both > u), probe w in A_v. O(1) per probe, no sorting
//!   needed.
//! - [`tc_hornet`] / [`tc_faimgraph`] / [`tc_csr`] — the list approach:
//!   intersect two *sorted* adjacency lists with a serial merge walk
//!   ("little parallelism, but cheaper and faster than a hash-table-based
//!   solution" — the paper's own Table VII finding). The required sorting
//!   is charged separately (Table VIII).

use baselines::{Csr, FaimGraph, Hornet};
use slabgraph::DynGraph;

/// Host-side reference triangle count from a raw undirected edge list
/// (used by tests to validate every implementation).
pub fn tc_reference(n_vertices: u32, edges: &[(u32, u32)]) -> u64 {
    let mut adj: Vec<std::collections::BTreeSet<u32>> =
        vec![std::collections::BTreeSet::new(); n_vertices as usize];
    for &(u, v) in edges {
        if u != v && u < n_vertices && v < n_vertices {
            adj[u as usize].insert(v);
            adj[v as usize].insert(u);
        }
    }
    let mut count = 0u64;
    for u in 0..n_vertices {
        let nu: Vec<u32> = adj[u as usize].iter().copied().filter(|&v| v > u).collect();
        for (i, &v) in nu.iter().enumerate() {
            for &w in &nu[i + 1..] {
                if adj[v as usize].contains(&w) {
                    count += 1;
                }
            }
        }
    }
    count
}

/// Triangle counting over the hash-based dynamic graph via batched
/// `edgeExist` probes. Uses the set/map variant's query path; candidate
/// pairs are emitted per vertex and probed in large batches through the
/// WCWS query kernel.
pub fn tc_slabgraph(g: &DynGraph) -> u64 {
    // One logical TC kernel: helper launches fuse under one named scope.
    g.device().fused_scope("triangle_count", || {
        let mut count = 0u64;
        let mut pending: Vec<(u32, u32)> = Vec::new();
        const FLUSH: usize = 1 << 16;
        let flush = |pairs: &mut Vec<(u32, u32)>| -> u64 {
            if pairs.is_empty() {
                return 0;
            }
            let hits = g.edges_exist(pairs).into_iter().filter(|&b| b).count() as u64;
            pairs.clear();
            hits
        };
        for u in 0..g.vertex_capacity() {
            let mut nu: Vec<u32> = g.neighbor_ids(u).into_iter().filter(|&v| v > u).collect();
            nu.sort_unstable();
            for (i, &v) in nu.iter().enumerate() {
                for &w in &nu[i + 1..] {
                    pending.push((v, w));
                    if pending.len() >= FLUSH {
                        count += flush(&mut pending);
                    }
                }
            }
        }
        count += flush(&mut pending);
        count
    })
}

/// Serial sorted-merge intersection size over elements `> floor`.
fn intersect_above(a: &[u32], b: &[u32], floor: u32) -> u64 {
    let (mut i, mut j, mut n) = (0usize, 0usize, 0u64);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                if a[i] > floor {
                    n += 1;
                }
                i += 1;
                j += 1;
            }
        }
    }
    n
}

/// Triangle counting over Hornet with sorted-list intersections.
///
/// # Panics
/// Panics if the adjacency lists are not sorted — call
/// [`Hornet::sort_adjacencies`] first (its cost is Table VIII's subject).
pub fn tc_hornet(g: &Hornet) -> u64 {
    assert!(g.is_sorted(), "Hornet TC requires sorted adjacency lists");
    g.device().fused_scope("triangle_count", || {
        let mut count = 0u64;
        for u in 0..g.num_vertices() {
            let adj_u = g.read_adjacency(u);
            for &v in adj_u.iter().filter(|&&v| v > u) {
                let adj_v = g.read_adjacency(v);
                count += intersect_above(&adj_u, &adj_v, v);
            }
        }
        count
    })
}

/// Triangle counting over faimGraph with sorted-list intersections
/// (call [`FaimGraph::sort_adjacencies`] first).
pub fn tc_faimgraph(g: &FaimGraph) -> u64 {
    g.device().fused_scope("triangle_count", || {
        let mut count = 0u64;
        for u in 0..g.num_vertices() {
            let adj_u = g.read_adjacency(u);
            debug_assert!(adj_u.windows(2).all(|w| w[0] <= w[1]), "unsorted list");
            for &v in adj_u.iter().filter(|&&v| v > u) {
                let adj_v = g.read_adjacency(v);
                count += intersect_above(&adj_u, &adj_v, v);
            }
        }
        count
    })
}

/// Triangle counting over static CSR (always sorted).
pub fn tc_csr(g: &Csr) -> u64 {
    g.device().fused_scope("triangle_count", || {
        let mut count = 0u64;
        for u in 0..g.num_vertices() {
            let adj_u = g.read_adjacency(u);
            for &v in adj_u.iter().filter(|&&v| v > u) {
                let adj_v = g.read_adjacency(v);
                count += intersect_above(&adj_u, &adj_v, v);
            }
        }
        count
    })
}

/// One round of the dynamic triangle-counting scenario (Table IX):
/// timings for "insert a batch, then recount triangles".
#[derive(Debug, Clone, Copy, Default)]
pub struct DynamicTcRound {
    pub insert_seconds: f64,
    pub tc_seconds: f64,
    pub triangles: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use slabgraph::{Edge, GraphConfig};

    /// A graph with a known triangle structure: K5 ∪ a 4-cycle.
    fn fixture_edges() -> (u32, Vec<(u32, u32)>) {
        let mut e = vec![];
        for u in 0..5u32 {
            for v in (u + 1)..5 {
                e.push((u, v));
            }
        }
        // 4-cycle on 10..13: zero triangles.
        e.extend_from_slice(&[(10, 11), (11, 12), (12, 13), (13, 10)]);
        (16, e)
    }

    fn both_directions(edges: &[(u32, u32)]) -> Vec<(u32, u32)> {
        edges.iter().flat_map(|&(u, v)| [(u, v), (v, u)]).collect()
    }

    #[test]
    fn reference_counts_k5() {
        let (n, e) = fixture_edges();
        // K5 has C(5,3) = 10 triangles; the 4-cycle has none.
        assert_eq!(tc_reference(n, &e), 10);
    }

    #[test]
    fn slabgraph_matches_reference() {
        let (n, e) = fixture_edges();
        let g = DynGraph::with_uniform_buckets(GraphConfig::undirected_set(n), n, 1);
        g.insert_edges(&e.iter().map(|&p| Edge::from(p)).collect::<Vec<_>>());
        assert_eq!(tc_slabgraph(&g), 10);
    }

    #[test]
    fn hornet_matches_reference() {
        let (n, e) = fixture_edges();
        let mut g = Hornet::bulk_build(n, &both_directions(&e), 1 << 18);
        g.sort_adjacencies();
        assert_eq!(tc_hornet(&g), 10);
    }

    #[test]
    fn faimgraph_matches_reference() {
        let (n, e) = fixture_edges();
        let g = FaimGraph::build(n, &both_directions(&e), 1 << 18);
        g.sort_adjacencies();
        assert_eq!(tc_faimgraph(&g), 10);
    }

    #[test]
    fn csr_matches_reference() {
        let (n, e) = fixture_edges();
        let g = Csr::build(n, &both_directions(&e), 1 << 18);
        assert_eq!(tc_csr(&g), 10);
    }

    #[test]
    fn all_structures_agree_on_random_graph() {
        let edges = graph_gen::uniform_random(64, 600, 42);
        let n = 64u32;
        let expect = tc_reference(n, &edges);
        assert!(expect > 0, "fixture should contain triangles");

        let g = DynGraph::with_uniform_buckets(GraphConfig::undirected_set(n), n, 1);
        g.insert_edges(&edges.iter().map(|&p| Edge::from(p)).collect::<Vec<_>>());
        assert_eq!(tc_slabgraph(&g), expect, "slabgraph");

        let dir = both_directions(&edges);
        let mut h = Hornet::bulk_build(n, &dir, 1 << 20);
        h.sort_adjacencies();
        assert_eq!(tc_hornet(&h), expect, "hornet");

        let f = FaimGraph::build(n, &dir, 1 << 20);
        f.sort_adjacencies();
        assert_eq!(tc_faimgraph(&f), expect, "faimgraph");

        let c = Csr::build(n, &dir, 1 << 20);
        assert_eq!(tc_csr(&c), expect, "csr");
    }

    #[test]
    fn tc_after_incremental_updates() {
        // Dynamic scenario: counts must track edge insertions/deletions.
        let g = DynGraph::with_uniform_buckets(GraphConfig::undirected_set(8), 8, 1);
        g.insert_edges(&[Edge::new(0, 1), Edge::new(1, 2)]);
        assert_eq!(tc_slabgraph(&g), 0);
        g.insert_edges(&[Edge::new(0, 2)]);
        assert_eq!(tc_slabgraph(&g), 1, "closing the wedge makes a triangle");
        g.insert_edges(&[Edge::new(0, 3), Edge::new(1, 3)]);
        assert_eq!(tc_slabgraph(&g), 2);
        g.delete_edges(&[Edge::new(0, 1)]);
        assert_eq!(tc_slabgraph(&g), 0, "shared edge removal kills both");
    }

    #[test]
    #[should_panic(expected = "sorted")]
    fn hornet_tc_requires_sort() {
        let mut g = Hornet::bulk_build(8, &[(0, 1), (1, 0)], 1 << 16);
        g.insert_batch(&[(0, 2)]); // unsorts
        tc_hornet(&g);
    }

    #[test]
    fn intersect_above_basics() {
        assert_eq!(intersect_above(&[1, 3, 5, 7], &[3, 5, 9], 0), 2);
        assert_eq!(intersect_above(&[1, 3, 5, 7], &[3, 5, 9], 3), 1);
        assert_eq!(intersect_above(&[], &[1], 0), 0);
    }
}
