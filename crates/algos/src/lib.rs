//! # algos — graph algorithms over the dynamic structures
//!
//! The paper's application study (§VI-C) is triangle counting, chosen to
//! exercise the data structures' *query* operation (`intersect`): sorted
//! list-based structures intersect two adjacency lists with a serial merge
//! walk; the hash-based structure probes one table per candidate edge
//! (`edgeExist`). This crate implements both forms over every structure,
//! plus a host-side reference counter for validation and a BFS utility.

pub mod bfs;
pub mod triangle;

pub use bfs::bfs_levels;
pub use triangle::{tc_csr, tc_faimgraph, tc_hornet, tc_reference, tc_slabgraph, DynamicTcRound};
