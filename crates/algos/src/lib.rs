//! # algos — generic graph algorithms over the [`backend`] trait layer
//!
//! The paper's application study (§VI-C) is triangle counting, chosen to
//! exercise the data structures' *query* operation (`intersect`): sorted
//! list-based structures intersect two adjacency lists with a serial merge
//! walk; the hash-based structure probes one table per candidate edge
//! (`edgeExist`). Both strategies live behind **one** generic [`tc`],
//! dispatched by each backend's declared
//! [`backend::IntersectionKind`] — there is exactly one triangle-counting
//! and one BFS implementation for all four structures, plus a host-side
//! reference counter for validation.

pub mod bfs;
pub mod triangle;

pub use bfs::bfs_levels;
pub use triangle::{tc, tc_reference, DynamicTcRound};
