//! Breadth-first search over any graph backend — a representative
//! read-only analytic exercising the adjacency iterator, included to show
//! the structures slot into a Gunrock-style frontier workflow.

use backend::GraphBackend;

/// Level (hop distance) of every vertex from `src`; `u32::MAX` for
/// unreachable vertices. Frontier-at-a-time traversal, one adjacency
/// iteration per frontier vertex per level, via the backend's
/// allocation-free [`GraphBackend::for_each_neighbor`] hot path.
pub fn bfs_levels<B: GraphBackend + ?Sized>(g: &B, src: u32) -> Vec<u32> {
    let n = g.num_vertices();
    let mut levels = vec![u32::MAX; n as usize];
    if src >= n {
        return levels;
    }
    levels[src as usize] = 0;
    let mut frontier = vec![src];
    let mut depth = 0u32;
    while !frontier.is_empty() {
        depth += 1;
        let mut next = Vec::new();
        for &u in &frontier {
            g.for_each_neighbor(u, &mut |v| {
                let slot = &mut levels[v as usize];
                if *slot == u32::MAX {
                    *slot = depth;
                    next.push(v);
                }
            });
        }
        frontier = next;
    }
    levels
}

#[cfg(test)]
mod tests {
    use super::*;
    use baselines::{Csr, Hornet};
    use graph_gen::fixtures::mirror;
    use slabgraph::{DynGraph, Edge, GraphConfig};

    fn path_graph(n: u32) -> DynGraph {
        let g = DynGraph::with_uniform_buckets(GraphConfig::undirected_set(n), n, 1);
        let edges: Vec<Edge> = (0..n - 1).map(|u| Edge::new(u, u + 1)).collect();
        g.insert_edges(&edges);
        g
    }

    #[test]
    fn bfs_on_path() {
        let g = path_graph(6);
        let levels = bfs_levels(&g, 0);
        assert_eq!(levels, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn bfs_from_middle() {
        let g = path_graph(5);
        assert_eq!(bfs_levels(&g, 2), vec![2, 1, 0, 1, 2]);
    }

    #[test]
    fn unreachable_vertices_are_max() {
        let g = DynGraph::with_uniform_buckets(GraphConfig::undirected_set(6), 6, 1);
        g.insert_edges(&[Edge::new(0, 1), Edge::new(3, 4)]);
        let levels = bfs_levels(&g, 0);
        assert_eq!(levels[1], 1);
        assert_eq!(levels[3], u32::MAX);
        assert_eq!(levels[5], u32::MAX);
    }

    #[test]
    fn bfs_tracks_dynamic_updates() {
        let g = path_graph(5);
        assert_eq!(bfs_levels(&g, 0)[4], 4);
        // Shortcut edge halves the distance.
        g.insert_edges(&[Edge::new(0, 4)]);
        assert_eq!(bfs_levels(&g, 0)[4], 1);
        // Cutting the path after the shortcut keeps 4 reachable via it.
        g.delete_edges(&[Edge::new(2, 3)]);
        let l = bfs_levels(&g, 0);
        assert_eq!(l[3], 2, "3 now reached via 4");
    }

    #[test]
    fn bfs_out_of_range_source() {
        let g = path_graph(3);
        assert!(bfs_levels(&g, 99).iter().all(|&l| l == u32::MAX));
    }

    #[test]
    fn bfs_agrees_across_backends() {
        let path: Vec<(u32, u32)> = (0..5u32).map(|u| (u, u + 1)).collect();
        let dir = mirror(&path);
        let slab = path_graph(6);
        let hornet = Hornet::bulk_build(6, &dir, 1 << 16);
        let csr = Csr::build(6, &dir, 1 << 16);
        let expect = vec![0, 1, 2, 3, 4, 5];
        assert_eq!(bfs_levels(&slab, 0), expect, "slabgraph");
        assert_eq!(bfs_levels(&hornet, 0), expect, "hornet");
        assert_eq!(bfs_levels(&csr, 0), expect, "csr");
    }
}
