//! Criterion regression benches mirroring the paper's tables at reduced
//! scale — one group per table. These track *host* wall-clock of the
//! simulator (useful for regressions); the paper-shaped modeled numbers
//! come from the `table*` binaries.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use baselines::{FaimGraph, Hornet};
use graph_gen::{catalog, insert_batch, vertex_batch};
use slabgraph::{Direction, DynGraph, Edge, GraphConfig, TableKind};

fn ds() -> graph_gen::Dataset {
    catalog::dataset("coAuthorsDBLP").unwrap().generate(4096, 7)
}

fn build_ours(d: &graph_gen::Dataset, kind: TableKind, dir: Direction) -> DynGraph {
    let mut cfg = GraphConfig::directed_map(d.n_vertices);
    cfg.kind = kind;
    cfg.direction = dir;
    cfg.device_words = (d.edges.len() * 12).max(1 << 20);
    DynGraph::bulk_build(cfg, &d.edges.iter().map(|&p| Edge::from(p)).collect::<Vec<_>>())
}

/// Table II/III: batched edge insertion and deletion per structure.
fn bench_edge_updates(c: &mut Criterion) {
    let d = ds();
    let batch = insert_batch(d.n_vertices, 1 << 12, 5);
    let edges: Vec<Edge> = batch.iter().map(|&p| Edge::from(p)).collect();

    let mut g = c.benchmark_group("table2_insert");
    g.sample_size(10);
    g.bench_function("ours", |b| {
        b.iter_batched(
            || build_ours(&d, TableKind::Map, Direction::Directed),
            |gr| gr.insert_edges(&edges),
            BatchSize::LargeInput,
        )
    });
    g.bench_function("hornet", |b| {
        b.iter_batched(
            || Hornet::bulk_build(d.n_vertices, &d.edges, 1 << 22),
            |mut h| h.insert_batch(&batch),
            BatchSize::LargeInput,
        )
    });
    g.bench_function("faimgraph", |b| {
        b.iter_batched(
            || FaimGraph::build(d.n_vertices, &d.edges, 1 << 22),
            |f| f.insert_batch(&batch),
            BatchSize::LargeInput,
        )
    });
    g.finish();

    let mut g = c.benchmark_group("table3_delete");
    g.sample_size(10);
    g.bench_function("ours", |b| {
        b.iter_batched(
            || {
                let gr = build_ours(&d, TableKind::Map, Direction::Directed);
                gr.insert_edges(&edges);
                gr
            },
            |gr| gr.delete_edges(&edges),
            BatchSize::LargeInput,
        )
    });
    g.bench_function("hornet", |b| {
        b.iter_batched(
            || {
                let mut h = Hornet::bulk_build(d.n_vertices, &d.edges, 1 << 22);
                h.insert_batch(&batch);
                h
            },
            |mut h| h.delete_batch(&batch),
            BatchSize::LargeInput,
        )
    });
    g.finish();
}

/// Table IV: vertex deletion.
fn bench_vertex_deletion(c: &mut Criterion) {
    let d = catalog::dataset("delaunay_n20").unwrap().generate(2048, 7);
    let victims = vertex_batch(d.n_vertices, 128, 3);
    let mut g = c.benchmark_group("table4_vertex_delete");
    g.sample_size(10);
    g.bench_function("ours", |b| {
        b.iter_batched(
            || build_ours(&d, TableKind::Map, Direction::Undirected),
            |gr| gr.delete_vertices(&victims),
            BatchSize::LargeInput,
        )
    });
    g.finish();
}

/// Table V/VI: bulk and incremental build.
fn bench_builds(c: &mut Criterion) {
    let d = ds();
    let edges: Vec<Edge> = d.edges.iter().map(|&p| Edge::from(p)).collect();
    let mut g = c.benchmark_group("table5_bulk_build");
    g.sample_size(10);
    g.bench_function("ours", |b| {
        b.iter(|| build_ours(&d, TableKind::Map, Direction::Directed))
    });
    g.bench_function("hornet", |b| {
        b.iter(|| Hornet::bulk_build(d.n_vertices, &d.edges, 1 << 22))
    });
    g.finish();

    let mut g = c.benchmark_group("table6_incremental");
    g.sample_size(10);
    g.bench_function("ours_1bucket", |b| {
        b.iter(|| {
            let mut cfg = GraphConfig::directed_map(d.n_vertices);
            cfg.device_words = (d.edges.len() * 12).max(1 << 20);
            let gr = DynGraph::with_uniform_buckets(cfg, d.n_vertices, 1);
            for chunk in edges.chunks(1 << 12) {
                gr.insert_edges(chunk);
            }
            gr
        })
    });
    g.finish();
}

/// Table VII: static triangle counting.
fn bench_triangle_counting(c: &mut Criterion) {
    let d = catalog::dataset("coAuthorsDBLP").unwrap().generate(1024, 7);
    let gr = {
        let mut cfg = GraphConfig::undirected_set(d.n_vertices);
        cfg.device_words = (d.edges.len() * 16).max(1 << 20);
        let gr = DynGraph::with_uniform_buckets(cfg, d.n_vertices, 1);
        gr.insert_edges(&d.edges.iter().map(|&p| Edge::from(p)).collect::<Vec<_>>());
        gr
    };
    let sym: Vec<(u32, u32)> = d.edges.iter().flat_map(|&(u, v)| [(u, v), (v, u)]).collect();
    let mut h = Hornet::bulk_build(d.n_vertices, &sym, 1 << 22);
    h.sort_adjacencies();

    let mut g = c.benchmark_group("table7_static_tc");
    g.sample_size(10);
    g.bench_function("ours_hash_probes", |b| b.iter(|| algos::tc_slabgraph(&gr)));
    g.bench_function("hornet_sorted_intersect", |b| b.iter(|| algos::tc_hornet(&h)));
    g.finish();
}

criterion_group!(
    benches,
    bench_edge_updates,
    bench_vertex_deletion,
    bench_builds,
    bench_triangle_counting
);
criterion_main!(benches);
