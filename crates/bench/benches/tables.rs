//! Wall-clock regression benches mirroring the paper's tables at reduced
//! scale — one group per table. These track *host* wall-clock of the
//! simulator (useful for regressions); the paper-shaped modeled numbers
//! come from the `table*` binaries.
//!
//! Run with `cargo bench --bench tables`. Each case reports min/mean over
//! a fixed number of iterations; no external bench framework is used.

use baselines::{FaimGraph, Hornet};
use graph_gen::{catalog, insert_batch, vertex_batch};
use slabgraph::{Direction, DynGraph, Edge, GraphConfig, TableKind};
use std::time::Instant;

const ITERS: usize = 10;

/// Time `f` over [`ITERS`] iterations (plus one warmup) and print a line.
fn bench(group: &str, name: &str, mut f: impl FnMut()) {
    f(); // warmup
    let mut times = Vec::with_capacity(ITERS);
    for _ in 0..ITERS {
        let t0 = Instant::now();
        f();
        times.push(t0.elapsed().as_secs_f64());
    }
    let min = times.iter().cloned().fold(f64::INFINITY, f64::min);
    let mean = times.iter().sum::<f64>() / times.len() as f64;
    println!(
        "{group}/{name}: min {:.3} ms  mean {:.3} ms",
        min * 1e3,
        mean * 1e3
    );
}

fn ds() -> graph_gen::Dataset {
    catalog::dataset("coAuthorsDBLP").unwrap().generate(4096, 7)
}

fn build_ours(d: &graph_gen::Dataset, kind: TableKind, dir: Direction) -> DynGraph {
    let mut cfg = GraphConfig::directed_map(d.n_vertices);
    cfg.kind = kind;
    cfg.direction = dir;
    cfg.device_words = (d.edges.len() * 12).max(1 << 20);
    DynGraph::bulk_build(
        cfg,
        &d.edges.iter().map(|&p| Edge::from(p)).collect::<Vec<_>>(),
    )
}

/// Table II/III: batched edge insertion and deletion per structure.
fn bench_edge_updates() {
    let d = ds();
    let batch = insert_batch(d.n_vertices, 1 << 12, 5);
    let edges: Vec<Edge> = batch.iter().map(|&p| Edge::from(p)).collect();

    bench("table2_insert", "ours", || {
        let gr = build_ours(&d, TableKind::Map, Direction::Directed);
        gr.insert_edges(&edges);
    });
    bench("table2_insert", "hornet", || {
        let mut h = Hornet::bulk_build(d.n_vertices, &d.edges, 1 << 22);
        h.insert_batch(&batch);
    });
    bench("table2_insert", "faimgraph", || {
        let f = FaimGraph::build(d.n_vertices, &d.edges, 1 << 22);
        f.insert_batch(&batch);
    });

    bench("table3_delete", "ours", || {
        let gr = build_ours(&d, TableKind::Map, Direction::Directed);
        gr.insert_edges(&edges);
        gr.delete_edges(&edges);
    });
    bench("table3_delete", "hornet", || {
        let mut h = Hornet::bulk_build(d.n_vertices, &d.edges, 1 << 22);
        h.insert_batch(&batch);
        h.delete_batch(&batch);
    });
}

/// Table IV: vertex deletion.
fn bench_vertex_deletion() {
    let d = catalog::dataset("delaunay_n20").unwrap().generate(2048, 7);
    let victims = vertex_batch(d.n_vertices, 128, 3);
    bench("table4_vertex_delete", "ours", || {
        let gr = build_ours(&d, TableKind::Map, Direction::Undirected);
        gr.delete_vertices(&victims);
    });
}

/// Table V/VI: bulk and incremental build.
fn bench_builds() {
    let d = ds();
    let edges: Vec<Edge> = d.edges.iter().map(|&p| Edge::from(p)).collect();
    bench("table5_bulk_build", "ours", || {
        build_ours(&d, TableKind::Map, Direction::Directed);
    });
    bench("table5_bulk_build", "hornet", || {
        Hornet::bulk_build(d.n_vertices, &d.edges, 1 << 22);
    });

    bench("table6_incremental", "ours_1bucket", || {
        let mut cfg = GraphConfig::directed_map(d.n_vertices);
        cfg.device_words = (d.edges.len() * 12).max(1 << 20);
        let gr = DynGraph::with_uniform_buckets(cfg, d.n_vertices, 1);
        for chunk in edges.chunks(1 << 12) {
            gr.insert_edges(chunk);
        }
    });
}

/// Table VII: static triangle counting.
fn bench_triangle_counting() {
    let d = catalog::dataset("coAuthorsDBLP").unwrap().generate(1024, 7);
    let gr = {
        let mut cfg = GraphConfig::undirected_set(d.n_vertices);
        cfg.device_words = (d.edges.len() * 16).max(1 << 20);
        let gr = DynGraph::with_uniform_buckets(cfg, d.n_vertices, 1);
        gr.insert_edges(&d.edges.iter().map(|&p| Edge::from(p)).collect::<Vec<_>>());
        gr
    };
    let sym = graph_gen::mirror(&d.edges);
    let mut h = Hornet::bulk_build(d.n_vertices, &sym, 1 << 22);
    h.sort_adjacencies();

    bench("table7_static_tc", "ours_hash_probes", || {
        algos::tc(&gr);
    });
    bench("table7_static_tc", "hornet_sorted_intersect", || {
        algos::tc(&h);
    });
}

fn main() {
    bench_edge_updates();
    bench_vertex_deletion();
    bench_builds();
    bench_triangle_counting();
}
