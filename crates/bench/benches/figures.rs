//! Wall-clock benches for the figure experiments: the load-factor sweeps of
//! Fig. 2 (insertion) and Fig. 3 (triangle-counting queries).
//!
//! Run with `cargo bench --bench figures`.

use graph_gen::{rmat_edges, RmatParams};
use slabgraph::{DynGraph, Edge, GraphConfig};
use std::time::Instant;

const ITERS: usize = 10;

fn bench(group: &str, name: &str, mut f: impl FnMut()) {
    f(); // warmup
    let mut times = Vec::with_capacity(ITERS);
    for _ in 0..ITERS {
        let t0 = Instant::now();
        f();
        times.push(t0.elapsed().as_secs_f64());
    }
    let min = times.iter().cloned().fold(f64::INFINITY, f64::min);
    let mean = times.iter().sum::<f64>() / times.len() as f64;
    println!(
        "{group}/{name}: min {:.3} ms  mean {:.3} ms",
        min * 1e3,
        mean * 1e3
    );
}

/// Fig. 2a: insertion throughput as the load factor (≈ chain length) grows.
fn bench_fig2_insertion_vs_load_factor() {
    let v_exp = 10;
    let n = 1u32 << v_exp;
    let raw = rmat_edges(v_exp, n as usize * 16, RmatParams::flat(), 3);
    let edges: Vec<Edge> = raw.iter().map(|&p| Edge::from(p)).collect();
    let mut degrees = vec![0u32; n as usize];
    for e in &edges {
        if e.src != e.dst {
            degrees[e.src as usize] += 1;
        }
    }
    for lf in [0.35, 0.7, 1.5, 3.0] {
        bench("fig2_insert_rate", &format!("lf={lf}"), || {
            let cfg = GraphConfig::directed_map(n)
                .with_load_factor(lf)
                .with_device_words(edges.len() * 12);
            let gr = DynGraph::with_degree_hints(cfg, &degrees);
            gr.insert_edges(&edges);
        });
    }
}

/// Fig. 3: query (TC) cost as the load factor grows — the optimum near
/// 0.7 shows as minimal time per probe.
fn bench_fig3_tc_vs_load_factor() {
    let v_exp = 9;
    let n = 1u32 << v_exp;
    let raw = rmat_edges(v_exp, n as usize * 8, RmatParams::flat(), 5);
    let edges: Vec<Edge> = raw.iter().map(|&p| Edge::from(p)).collect();
    let mut degrees = vec![0u32; n as usize];
    for e in &edges {
        if e.src != e.dst {
            degrees[e.src as usize] += 1;
            degrees[e.dst as usize] += 1;
        }
    }
    for lf in [0.35, 0.7, 2.0] {
        let cfg = GraphConfig::undirected_set(n)
            .with_load_factor(lf)
            .with_device_words(edges.len() * 16);
        let gr = DynGraph::with_degree_hints(cfg, &degrees);
        gr.insert_edges(&edges);
        bench("fig3_tc_time", &format!("lf={lf}"), || {
            algos::tc(&gr);
        });
    }
}

fn main() {
    bench_fig2_insertion_vs_load_factor();
    bench_fig3_tc_vs_load_factor();
}
