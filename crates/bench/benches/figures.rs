//! Criterion benches for the figure experiments: the load-factor sweeps of
//! Fig. 2 (insertion) and Fig. 3 (triangle-counting queries).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use graph_gen::{rmat_edges, RmatParams};
use slabgraph::{DynGraph, Edge, GraphConfig};

/// Fig. 2a: insertion throughput as the load factor (≈ chain length) grows.
fn bench_fig2_insertion_vs_load_factor(c: &mut Criterion) {
    let v_exp = 10;
    let n = 1u32 << v_exp;
    let raw = rmat_edges(v_exp, n as usize * 16, RmatParams::flat(), 3);
    let edges: Vec<Edge> = raw.iter().map(|&p| Edge::from(p)).collect();
    let mut degrees = vec![0u32; n as usize];
    for e in &edges {
        if e.src != e.dst {
            degrees[e.src as usize] += 1;
        }
    }
    let mut g = c.benchmark_group("fig2_insert_rate");
    g.sample_size(10);
    for lf in [0.35, 0.7, 1.5, 3.0] {
        g.bench_with_input(BenchmarkId::from_parameter(lf), &lf, |b, &lf| {
            b.iter(|| {
                let cfg = GraphConfig::directed_map(n)
                    .with_load_factor(lf)
                    .with_device_words(edges.len() * 12);
                let gr = DynGraph::with_degree_hints(cfg, &degrees);
                gr.insert_edges(&edges)
            })
        });
    }
    g.finish();
}

/// Fig. 3: query (TC) cost as the load factor grows — the optimum near
/// 0.7 shows as minimal time per probe.
fn bench_fig3_tc_vs_load_factor(c: &mut Criterion) {
    let v_exp = 9;
    let n = 1u32 << v_exp;
    let raw = rmat_edges(v_exp, n as usize * 8, RmatParams::flat(), 5);
    let edges: Vec<Edge> = raw.iter().map(|&p| Edge::from(p)).collect();
    let mut degrees = vec![0u32; n as usize];
    for e in &edges {
        if e.src != e.dst {
            degrees[e.src as usize] += 1;
            degrees[e.dst as usize] += 1;
        }
    }
    let mut g = c.benchmark_group("fig3_tc_time");
    g.sample_size(10);
    for lf in [0.35, 0.7, 2.0] {
        let cfg = GraphConfig::undirected_set(n)
            .with_load_factor(lf)
            .with_device_words(edges.len() * 16);
        let gr = DynGraph::with_degree_hints(cfg, &degrees);
        gr.insert_edges(&edges);
        g.bench_with_input(BenchmarkId::from_parameter(lf), &gr, |b, gr| {
            b.iter(|| algos::tc_slabgraph(gr))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_fig2_insertion_vs_load_factor, bench_fig3_tc_vs_load_factor);
criterion_main!(benches);
