//! Criterion micro-benchmarks of the substrate primitives: slab-hash
//! operations, the slab allocator, and the warp intrinsics themselves.

use criterion::{criterion_group, criterion_main, Criterion};
use gpu_sim::{Device, Lanes};
use slab_alloc::SlabAllocator;
use slab_hash::{buckets_for, TableDesc, TableKind};

fn bench_slab_hash_ops(c: &mut Criterion) {
    let dev = Device::new(1 << 20);
    let alloc = SlabAllocator::new(&dev, 4096);
    let n = 4096u32;
    let table = TableDesc::create(&dev, TableKind::Map, buckets_for(n as usize, 0.7, TableKind::Map));
    dev.launch_warps(1, |warp| {
        for k in 0..n {
            table.replace(warp, &alloc, k, k);
        }
    });

    let mut g = c.benchmark_group("slab_hash");
    g.bench_function("search_hit", |b| {
        let mut k = 0u32;
        b.iter(|| {
            let out = std::sync::atomic::AtomicU32::new(0);
            dev.launch_warps(1, |warp| {
                out.store(table.search(warp, k % n).unwrap_or(0), std::sync::atomic::Ordering::Relaxed);
            });
            k = k.wrapping_add(1);
            out.into_inner()
        })
    });
    g.bench_function("search_miss", |b| {
        b.iter(|| {
            let out = std::sync::atomic::AtomicU32::new(0);
            dev.launch_warps(1, |warp| {
                out.store(table.search(warp, n + 17).is_some() as u32, std::sync::atomic::Ordering::Relaxed);
            });
            out.into_inner()
        })
    });
    g.bench_function("replace_existing", |b| {
        let mut k = 0u32;
        b.iter(|| {
            dev.launch_warps(1, |warp| {
                table.replace(warp, &alloc, k % n, 9);
            });
            k = k.wrapping_add(1);
        })
    });
    g.finish();
}

fn bench_allocator(c: &mut Criterion) {
    let dev = Device::new(1 << 22);
    let alloc = SlabAllocator::new(&dev, 1 << 14);
    c.bench_function("slab_alloc/allocate_free", |b| {
        b.iter(|| {
            dev.launch_warps(1, |warp| {
                let a = alloc.allocate(warp);
                alloc.free(warp, a);
            });
        })
    });
}

fn bench_warp_primitives(c: &mut Criterion) {
    let dev = Device::new(1 << 12);
    let slab = dev.alloc_words(32, 32);
    c.bench_function("warp/read_slab_ballot", |b| {
        b.iter(|| {
            let out = std::sync::atomic::AtomicU32::new(0);
            dev.launch_warps(1, |warp| {
                let words = warp.read_slab(slab);
                let preds = Lanes::from_fn(|i| words.get(i) == 0);
                out.store(warp.ballot(&preds), std::sync::atomic::Ordering::Relaxed);
            });
            out.into_inner()
        })
    });
}

criterion_group!(benches, bench_slab_hash_ops, bench_allocator, bench_warp_primitives);
criterion_main!(benches);
