//! Wall-clock micro-benchmarks of the substrate primitives: slab-hash
//! operations, the slab allocator, and the warp intrinsics themselves.
//!
//! Run with `cargo bench --bench structures`.

use gpu_sim::{Device, Lanes};
use slab_alloc::SlabAllocator;
use slab_hash::{buckets_for, TableDesc, TableKind};
use std::time::Instant;

const ITERS: usize = 1000;

fn bench(name: &str, mut f: impl FnMut()) {
    f(); // warmup
    let mut times = Vec::with_capacity(ITERS);
    for _ in 0..ITERS {
        let t0 = Instant::now();
        f();
        times.push(t0.elapsed().as_secs_f64());
    }
    let min = times.iter().cloned().fold(f64::INFINITY, f64::min);
    let mean = times.iter().sum::<f64>() / times.len() as f64;
    println!("{name}: min {:.3} µs  mean {:.3} µs", min * 1e6, mean * 1e6);
}

fn bench_slab_hash_ops() {
    let dev = Device::new(1 << 20);
    let alloc = SlabAllocator::new(&dev, 4096);
    let n = 4096u32;
    let table = TableDesc::create(
        &dev,
        TableKind::Map,
        buckets_for(n as usize, 0.7, TableKind::Map),
    );
    dev.launch_warps("bench_setup", 1, |warp| {
        for k in 0..n {
            table.replace(warp, &alloc, k, k).unwrap();
        }
    });

    let mut k = 0u32;
    bench("slab_hash/search_hit", || {
        let out = std::sync::atomic::AtomicU32::new(0);
        dev.launch_warps("bench_search", 1, |warp| {
            out.store(
                table.search(warp, k % n).unwrap_or(0),
                std::sync::atomic::Ordering::Release,
            );
        });
        k = k.wrapping_add(1);
    });
    bench("slab_hash/search_miss", || {
        let out = std::sync::atomic::AtomicU32::new(0);
        dev.launch_warps("bench_search", 1, |warp| {
            out.store(
                table.search(warp, n + 17).is_some() as u32,
                std::sync::atomic::Ordering::Release,
            );
        });
    });
    let mut k2 = 0u32;
    bench("slab_hash/replace_existing", || {
        dev.launch_warps("bench_replace", 1, |warp| {
            table.replace(warp, &alloc, k2 % n, 9).unwrap();
        });
        k2 = k2.wrapping_add(1);
    });
}

fn bench_allocator() {
    let dev = Device::new(1 << 22);
    let alloc = SlabAllocator::new(&dev, 1 << 14);
    bench("slab_alloc/allocate_free", || {
        dev.launch_warps("bench_alloc", 1, |warp| {
            let a = alloc.allocate(warp);
            alloc.free(warp, a).unwrap();
        });
    });
}

fn bench_warp_primitives() {
    let dev = Device::new(1 << 12);
    let slab = dev.alloc_words(32, 32);
    bench("warp/read_slab_ballot", || {
        let out = std::sync::atomic::AtomicU32::new(0);
        dev.launch_warps("bench_ballot", 1, |warp| {
            let words = warp.read_slab(slab);
            let preds = Lanes::from_fn(|i| words.get(i) == 0);
            out.store(warp.ballot(&preds), std::sync::atomic::Ordering::Release);
        });
    });
}

fn main() {
    bench_slab_hash_ops();
    bench_allocator();
    bench_warp_primitives();
}
