//! Regenerates the paper experiment; see DESIGN.md §4 and EXPERIMENTS.md.
fn main() {
    bench::experiments::table9_dynamic_tc().emit();
}
