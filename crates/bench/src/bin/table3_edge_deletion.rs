//! Regenerates the paper experiment; see DESIGN.md §4 and EXPERIMENTS.md.
fn main() {
    bench::experiments::table3_edge_deletion().emit();
}
