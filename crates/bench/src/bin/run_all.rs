//! Runs every table and figure experiment in sequence, printing each and
//! persisting JSON under target/experiments/. `BENCH_SCALE_SHIFT=n` scales
//! every workload up by 2^n.
use bench::experiments as e;
use bench::harness::write_bench_artifact;

fn main() {
    let t0 = std::time::Instant::now();
    let mut tables: Vec<bench::Table> = vec![];
    for (name, f) in [
        ("table1", e::table1 as fn() -> bench::Table),
        ("table2", e::table2_edge_insertion),
        ("table3", e::table3_edge_deletion),
        ("table4", e::table4_vertex_deletion),
        ("table5", e::table5_bulk_build),
        ("table6", e::table6_incremental_build),
        ("table7", e::table7_static_tc),
        ("table8", e::table8_sort_cost),
        ("table9", e::table9_dynamic_tc),
        ("fig2", e::fig2_load_factor),
        ("fig3", e::fig3_tc_load_factor),
        ("churn", bench::churn::churn_default),
    ] {
        let t = std::time::Instant::now();
        let table = f();
        table.emit();
        tables.push(table);
        eprintln!("[{name}] finished in {:.1}s\n", t.elapsed().as_secs_f64());
    }
    let refs: Vec<&bench::Table> = tables.iter().collect();
    write_bench_artifact("BENCH_tables.json", "run_all", &refs);
    eprintln!("all experiments done in {:.1}s", t0.elapsed().as_secs_f64());
    eprintln!("(standalone harnesses: cargo run -p bench --release --bin ablation_tombstones | fault_recovery)");
}
