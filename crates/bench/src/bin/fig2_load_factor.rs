//! Regenerates the paper experiment; see DESIGN.md §4 and EXPERIMENTS.md.
fn main() {
    bench::experiments::fig2_load_factor().emit();
}
