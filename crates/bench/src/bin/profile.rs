//! Profiled churn replay: run the churn operation stream against every
//! backend with the device timeline profiler attached, then export one
//! merged Chrome Trace Event Format file (one pid per backend) plus a
//! rendered per-phase / per-metric summary.
//!
//! ```text
//! cargo run -p bench --release --bin profile -- --scale 4096
//! ```
//!
//! The trace lands in `target/profile/churn.trace.json`; load it at
//! <https://ui.perfetto.dev> (or chrome://tracing) to inspect per-kernel
//! spans, host phases, and allocator instants on the modeled clock.

use bench::churn::ChurnConfig;
use bench::harness::{build_backends, build_sharded, stream_for};
use bench::sharded::traffic_for;
use gpu_sim::profiler::{chrome_trace_json, parse_chrome_trace, set_default_profiler};
use gpu_sim::{CostModel, ProfilerConfig, TraceReport};
use router::BatchRouter;

fn main() {
    let mut cfg = ChurnConfig::default();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut val = |name: &str| {
            it.next()
                .unwrap_or_else(|| {
                    eprintln!("missing value for {name}");
                    std::process::exit(2);
                })
                .clone()
        };
        match flag.as_str() {
            "--dataset" => cfg.dataset = val("--dataset"),
            "--rounds" => cfg.rounds = val("--rounds").parse().expect("--rounds: integer"),
            "--ops" => cfg.ops_per_round = val("--ops").parse().expect("--ops: integer"),
            "--seed" => cfg.seed = val("--seed").parse().expect("--seed: integer"),
            "--scale" => cfg.scale = Some(val("--scale").parse().expect("--scale: vertices")),
            "--shards" => cfg.shards = val("--shards").parse().expect("--shards: integer"),
            "--sessions" => cfg.sessions = val("--sessions").parse().expect("--sessions: integer"),
            other => {
                eprintln!(
                    "unknown flag {other}; known: --dataset --rounds --ops --seed --scale --shards --sessions"
                );
                std::process::exit(2);
            }
        }
    }

    // Attach a profiler to every device built from here on — including the
    // ones baselines construct internally — before any backend exists.
    // Large rings so a full churn replay never drops span events.
    set_default_profiler(Some(ProfilerConfig::default().with_ring_capacity(1 << 20)));

    let (ds, stream) = stream_for(&cfg);
    let model = CostModel::titan_v();
    let mut all_events = Vec::new();
    let mut total_spans = 0u64;
    let mut total_launches = 0u64;
    let mut next_pid = 0u64;

    for (pid, mut g) in build_backends(&ds).into_iter().enumerate() {
        let name = g.name();
        let caps = g.caps();
        if caps.insert_edges && caps.delete_edges {
            for round in &stream {
                {
                    let _p = g.device().phase("churn.insert");
                    g.insert_edges(&round.ins);
                }
                {
                    let _p = g.device().phase("churn.delete");
                    g.delete_edges(&round.del);
                }
                {
                    let _p = g.device().phase("churn.query");
                    let _ = g.edges_exist(&round.qry);
                }
            }
        } else {
            println!(
                "[{name}] capabilities do not cover the churn stream; profiling the build only"
            );
        }

        let prof = g
            .device()
            .profiler()
            .expect("default profiler attached before backend construction")
            .clone();
        let timeline = prof.timeline();
        let stats = timeline.stats;
        let launches = g.device().counters().snapshot().launches;
        assert_eq!(
            stats.spans_recorded, launches,
            "{name}: one timeline span per kernel launch"
        );
        assert_eq!(
            stats.spans_dropped + stats.host_spans_dropped,
            0,
            "{name}: span rings must not drop at this scale"
        );

        // The modeled clock must agree with the cost model applied to the
        // device's total counters, to within one launch quantum: kernel
        // spans plus host spans partition all costed work.
        let span_total: f64 = timeline
            .spans
            .iter()
            .chain(&timeline.host_spans)
            .map(|s| s.dur_s)
            .sum();
        let modeled = model.seconds(&g.device().counters().snapshot());
        assert!(
            (span_total - modeled).abs() <= 5e-6,
            "{name}: span durations sum to {span_total}s but the cost model says {modeled}s"
        );

        let report =
            TraceReport::new(&g.device().trace(), &model).with_metrics(prof.metric_summaries());
        println!("== {name}: profiled churn (build + stream) ==");
        println!("{}", report.render());

        all_events.extend(prof.chrome_events(pid as u64));
        total_spans += stats.spans_recorded;
        total_launches += launches;
        next_pid = next_pid.max(pid as u64 + 1);
    }

    // Sharded replay through the batch router: multi-tenant traffic is
    // coalesced per shard and dispatched concurrently, so the per-shard
    // pids below show the flush kernels overlapping on the modeled clock.
    let shards = cfg.shards.max(1);
    let g = build_sharded(&ds, shards);
    let router = BatchRouter::new(&g);
    for round in &traffic_for(&cfg, &ds, shards) {
        for (sid, updates) in round.sessions.iter().enumerate() {
            for &u in updates {
                router.submit(sid, u);
            }
        }
        let report = router.flush();
        assert!(
            report.is_complete(),
            "profiled flush hit the memory ceiling"
        );
        let _ = g.edges_exist(&round.qry);
    }
    g.validate()
        .expect("cross-shard audit after profiled replay");

    for (s, dev) in g.group().devices().iter().enumerate() {
        let prof = dev
            .profiler()
            .expect("default profiler attached before shard construction");
        let timeline = prof.timeline();
        let stats = timeline.stats;
        let launches = dev.counters().snapshot().launches;
        assert_eq!(
            stats.spans_recorded, launches,
            "shard {s}: one timeline span per kernel launch"
        );
        assert_eq!(
            stats.spans_dropped + stats.host_spans_dropped,
            0,
            "shard {s}: span rings must not drop at this scale"
        );
        let span_total: f64 = timeline
            .spans
            .iter()
            .chain(&timeline.host_spans)
            .map(|sp| sp.dur_s)
            .sum();
        let modeled = model.seconds(&dev.counters().snapshot());
        assert!(
            (span_total - modeled).abs() <= 5e-6,
            "shard {s}: span durations sum to {span_total}s but the cost model says {modeled}s"
        );
        total_spans += stats.spans_recorded;
        total_launches += launches;
    }
    // One pid per shard, after the backend pids, so the overlap between
    // shards of one flush is visible side by side.
    let shard_events = g.group().chrome_events(next_pid);
    all_events.extend(shard_events);
    println!(
        "== ShardedSlabGraph ({shards} shard(s), {} session(s)): routed replay ==",
        cfg.sessions.max(1)
    );
    // Fold the router's per-shard health rows into the merged report so the
    // rendered trace (and its JSON round-trip) carries the health machine's
    // final state alongside the kernel-span accounting.
    let merged = g
        .group()
        .merged_report(&model)
        .with_shard_health(router.report().rows);
    println!("{}", merged.render());

    let json = chrome_trace_json(&all_events);
    let parsed = parse_chrome_trace(&json).expect("emitted trace must parse back");
    assert_eq!(parsed.len(), all_events.len(), "trace round-trip count");

    let dir = std::path::Path::new("target/profile");
    std::fs::create_dir_all(dir).expect("create target/profile");
    let path = dir.join("churn.trace.json");
    std::fs::write(&path, &json).expect("write trace file");
    println!(
        "trace OK: {total_spans} spans == {total_launches} launches, {} events -> {}",
        all_events.len(),
        path.display()
    );
    println!("load it at https://ui.perfetto.dev (Open trace file) or chrome://tracing");
}
