//! Regenerates the paper experiment; see DESIGN.md §4 and EXPERIMENTS.md.
fn main() {
    bench::experiments::table2_edge_insertion().emit();
}
