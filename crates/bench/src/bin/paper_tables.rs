//! One binary for every paper table and figure: pass one or more
//! experiment ids (`table1`..`table9`, `fig2`, `fig3`, or `all`) and each
//! is printed and persisted as JSON under `target/experiments/`.
//!
//!     cargo run -p bench --release --bin paper_tables -- table2 table3
//!     cargo run -p bench --release --bin paper_tables -- all

use bench::experiments as e;

const IDS: [&str; 11] = [
    "table1", "table2", "table3", "table4", "table5", "table6", "table7", "table8", "table9",
    "fig2", "fig3",
];

fn run(id: &str) -> Option<bench::Table> {
    Some(match id {
        "table1" => e::table1(),
        "table2" => e::table2_edge_insertion(),
        "table3" => e::table3_edge_deletion(),
        "table4" => e::table4_vertex_deletion(),
        "table5" => e::table5_bulk_build(),
        "table6" => e::table6_incremental_build(),
        "table7" => e::table7_static_tc(),
        "table8" => e::table8_sort_cost(),
        "table9" => e::table9_dynamic_tc(),
        "fig2" => e::fig2_load_factor(),
        "fig3" => e::fig3_tc_load_factor(),
        _ => return None,
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!("usage: paper_tables <id>... where id is one of {IDS:?} or 'all'");
        std::process::exit(2);
    }
    let ids: Vec<&str> = if args.iter().any(|a| a == "all") {
        IDS.to_vec()
    } else {
        args.iter().map(String::as_str).collect()
    };
    for id in ids {
        match run(id) {
            Some(t) => t.emit(),
            None => {
                eprintln!("unknown experiment id {id:?}; known ids: {IDS:?}");
                std::process::exit(2);
            }
        }
    }
}
