//! Cost of the failure model: what does a bounded device budget *cost*
//! when a batch trips it? One batch is run three ways — unconstrained,
//! budget-bounded with retry-after-raise, and under an every-Nth injected
//! fault plan — and the modeled time, rounds to converge, and per-kernel
//! bill are compared. The recovered runs must land on the same graph as
//! the unconstrained one; this harness also quantifies the overhead of
//! getting there.

use bench::harness::{fnum, measure_traced, Table};
use slabgraph::{DynGraph, Edge, FaultPlan, GraphConfig};

const SOURCES: u32 = 16;
const PER_SOURCE: u32 = 1100;

fn batch() -> Vec<Edge> {
    (0..SOURCES)
        .flat_map(|u| {
            (0..PER_SOURCE).map(move |i| Edge::weighted(u, SOURCES + u * PER_SOURCE + i, i + 1))
        })
        .collect()
}

fn config() -> GraphConfig {
    GraphConfig::directed_map(2048)
        .with_device_words(1 << 16)
        .with_pool_slabs(1024)
}

fn main() {
    let mut t = Table::new(
        "fault_recovery",
        "Recovery overhead: bounded budget and injected faults vs unconstrained",
        &["scenario", "rounds", "modeled ms", "overhead", "edges"],
    );
    let edges = batch();

    // Baseline: one unconstrained round.
    let g = DynGraph::new(config());
    let (base, base_trace) = measure_traced(g.device(), || {
        assert_eq!(g.insert_edges(&edges), edges.len() as u64);
    });
    g.check_invariants();
    let base_edges = g.num_edges();
    t.row(vec![
        "unconstrained".into(),
        "1".into(),
        fnum(base.modeled_ms()),
        "1.00x".into(),
        base_edges.to_string(),
    ]);
    t.breakdown("unconstrained insert", base_trace);

    // Bounded budget: the batch exhausts 130k words mid-kernel, the suffix
    // retries after each budget raise until it converges.
    let g = DynGraph::new(config().with_device_capacity(130_000));
    let (m, trace) = measure_traced(g.device(), || {
        let mut outcome = g.try_insert_edges(&edges).expect("valid batch");
        let mut rounds = 1u32;
        while !outcome.is_complete() {
            g.validate().expect("consistent after partial batch");
            let budget = g.device().capacity_words();
            g.device().set_capacity_words(budget + (1 << 17));
            outcome = g.retry_suffix(&outcome).expect("valid suffix");
            rounds += 1;
        }
        assert_eq!(g.num_edges(), base_edges);
        println!("# bounded budget converged in {rounds} round(s)");
    });
    g.check_invariants();
    t.row(vec![
        "budget 130k words, +128k/round".into(),
        "measured".into(),
        fnum(m.modeled_ms()),
        format!("{:.2}x", m.modeled_ms() / base.modeled_ms()),
        g.num_edges().to_string(),
    ]);
    t.breakdown("bounded-budget recovery (validate each round)", trace);

    // Injected faults: every 4th slab acquisition fails; retries converge
    // because the suffix shrinks every round.
    let g = DynGraph::new(config());
    g.device().set_fault_plan(FaultPlan::fail_every_nth(4));
    let (m, trace) = measure_traced(g.device(), || {
        let mut outcome = g.try_insert_edges(&edges).expect("valid batch");
        let mut rounds = 1u32;
        while !outcome.is_complete() {
            g.validate().expect("consistent after injected fault");
            outcome = g.retry_suffix(&outcome).expect("valid suffix");
            rounds += 1;
        }
        assert_eq!(g.num_edges(), base_edges);
        println!("# every-4th fault plan converged in {rounds} round(s)");
    });
    g.device().clear_fault_plan();
    g.check_invariants();
    t.row(vec![
        format!(
            "fault plan: every 4th alloc ({} injected)",
            g.device().injected_faults()
        ),
        "measured".into(),
        fnum(m.modeled_ms()),
        format!("{:.2}x", m.modeled_ms() / base.modeled_ms()),
        g.num_edges().to_string(),
    ]);
    t.breakdown("every-4th-alloc fault recovery", trace);

    t.note(format!(
        "one batch of {} edges over {SOURCES} sources; recovered runs must reach the \
unconstrained graph exactly (asserted), so 'overhead' is the full price of partial \
application, per-round validate() audits, and re-staged suffixes",
        edges.len()
    ));
    t.emit();
}
