//! Churn workload runner: replay a seeded mixed insert/delete/query
//! stream against every backend that supports it, with per-kernel
//! breakdowns.
//!
//! ```text
//! cargo run -p bench --release --bin churn -- \
//!     --dataset rgg_n_2_20_s0 --rounds 4 --ops 2048 \
//!     --inserts 50 --deletes 30 --seed 71
//! ```

use bench::churn::{churn, ChurnConfig};
use bench::harness::write_bench_artifact;

fn main() {
    let mut cfg = ChurnConfig::default();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut val = |name: &str| {
            it.next()
                .unwrap_or_else(|| {
                    eprintln!("missing value for {name}");
                    std::process::exit(2);
                })
                .clone()
        };
        match flag.as_str() {
            "--dataset" => cfg.dataset = val("--dataset"),
            "--rounds" => cfg.rounds = val("--rounds").parse().expect("--rounds: integer"),
            "--ops" => cfg.ops_per_round = val("--ops").parse().expect("--ops: integer"),
            "--inserts" => cfg.insert_pct = val("--inserts").parse().expect("--inserts: percent"),
            "--deletes" => cfg.delete_pct = val("--deletes").parse().expect("--deletes: percent"),
            "--seed" => cfg.seed = val("--seed").parse().expect("--seed: integer"),
            "--scale" => cfg.scale = Some(val("--scale").parse().expect("--scale: vertices")),
            other => {
                eprintln!(
                    "unknown flag {other}; known: --dataset --rounds --ops --inserts --deletes --seed --scale"
                );
                std::process::exit(2);
            }
        }
    }
    assert!(
        cfg.insert_pct + cfg.delete_pct <= 100,
        "insert and delete percentages must sum to at most 100"
    );
    let t = churn(&cfg);
    t.emit();
    write_bench_artifact("BENCH_churn.json", "churn", &[&t]);
}
