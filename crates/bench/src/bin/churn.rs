//! Churn workload runner: replay a seeded mixed insert/delete/query
//! stream against every backend that supports it (including the
//! hash-partitioned `ShardedSlabGraph`), then replay multi-tenant traffic
//! through the batch router at increasing shard counts to measure
//! modeled-throughput scaling.
//!
//! ```text
//! cargo run -p bench --release --bin churn -- \
//!     --dataset rgg_n_2_20_s0 --rounds 4 --ops 2048 \
//!     --inserts 50 --deletes 30 --seed 71 \
//!     --shards 4 --sessions 8 --skew uniform
//! ```

use bench::chaos::chaos_churn;
use bench::churn::{churn, readers_vs_writers, ChurnConfig};
use bench::harness::write_bench_artifact;
use bench::sharded::sharded_scaling;

fn main() {
    let mut cfg = ChurnConfig::default();
    let mut chaos = false;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut val = |name: &str| {
            it.next()
                .unwrap_or_else(|| {
                    eprintln!("missing value for {name}");
                    std::process::exit(2);
                })
                .clone()
        };
        match flag.as_str() {
            "--dataset" => cfg.dataset = val("--dataset"),
            "--rounds" => cfg.rounds = val("--rounds").parse().expect("--rounds: integer"),
            "--ops" => cfg.ops_per_round = val("--ops").parse().expect("--ops: integer"),
            "--inserts" => cfg.insert_pct = val("--inserts").parse().expect("--inserts: percent"),
            "--deletes" => cfg.delete_pct = val("--deletes").parse().expect("--deletes: percent"),
            "--seed" => cfg.seed = val("--seed").parse().expect("--seed: integer"),
            "--scale" => cfg.scale = Some(val("--scale").parse().expect("--scale: vertices")),
            "--shards" => cfg.shards = val("--shards").parse().expect("--shards: integer"),
            "--sessions" => cfg.sessions = val("--sessions").parse().expect("--sessions: integer"),
            "--skew" => {
                cfg.skew = val("--skew").parse().unwrap_or_else(|e| {
                    eprintln!("{e}");
                    std::process::exit(2);
                })
            }
            "--readers" => cfg.readers = val("--readers").parse().expect("--readers: integer"),
            "--chaos" => chaos = true,
            other => {
                eprintln!(
                    "unknown flag {other}; known: --dataset --rounds --ops --inserts --deletes --seed --scale --shards --sessions --skew --readers --chaos"
                );
                std::process::exit(2);
            }
        }
    }
    assert!(
        cfg.insert_pct + cfg.delete_pct <= 100,
        "insert and delete percentages must sum to at most 100"
    );
    assert!(cfg.shards >= 1, "--shards must be at least 1");
    if chaos {
        // Fault-tolerance mode: seeded kill/revive schedule over the
        // sharded router replay, with the byte-identical-vs-unsharded
        // assertion and sanitizer check built in.
        let t = chaos_churn(&cfg);
        t.emit();
        write_bench_artifact("BENCH_chaos.json", "chaos_churn", &[&t]);
        return;
    }
    let t = churn(&cfg);
    t.emit();

    // Mixed readers-vs-writers: pinned queries racing the mutation stream
    // on one slab graph, with tail latency from the metrics registry. The
    // oracle and sanitizer assertions run inside.
    let rw = readers_vs_writers(&cfg);
    rw.emit();

    // Scaling study: identical multi-tenant traffic at 1..=max(8, shards)
    // shards (powers of two), so the artifact always records how modeled
    // throughput scales with the shard count.
    let mut counts: Vec<usize> = vec![1, 2, 4, 8];
    if !counts.contains(&cfg.shards) {
        counts.push(cfg.shards);
        counts.sort_unstable();
    }
    let (scaling, per_shard) = sharded_scaling(&cfg, &counts);
    scaling.emit();
    per_shard.emit();
    write_bench_artifact(
        "BENCH_churn.json",
        "churn",
        &[&t, &rw, &scaling, &per_shard],
    );
}
