//! Ablation of the paper's §IV-C2 design choice: skip tombstones on
//! insertion (fast, memory grows) vs. the two-stage recycling insertion
//! (slower, memory reused), plus the effect of an explicit tombstone
//! flush. The paper chose the former for throughput and notes the latter
//! "could be used to optimize for memory usage on the expense of decreased
//! insertion throughput" — this harness quantifies that trade-off.

use bench::harness::{fnum, measure, Table};
use graph_gen::{insert_batch, weighted};
use slabgraph::{DynGraph, Edge, GraphConfig};

fn main() {
    let mut t = Table::new(
        "ablation_tombstones",
        "Tombstone handling: skip (paper default) vs recycle vs flush",
        &[
            "strategy",
            "reinsert MEdge/s",
            "slabs",
            "tombstones",
            "memory MB",
        ],
    );
    let n = 512u32;
    let rounds = 8;
    let batch = 1usize << 13;

    let run = |recycle: bool, flush_every_round: bool| {
        let mut cfg = GraphConfig::directed_map(n);
        cfg.device_words = 1 << 22;
        if recycle {
            cfg = cfg.with_tombstone_recycling();
        }
        let g = DynGraph::with_uniform_buckets(cfg, n, 1);
        // Churn workload: insert a batch, delete it, insert a different one.
        let mut rate_items = 0u64;
        let mut rate_seconds = 0.0f64;
        for round in 0..rounds {
            let ins: Vec<Edge> = weighted(&insert_batch(n, batch, round), round)
                .into_iter()
                .map(Edge::from)
                .collect();
            let m = measure(g.device(), || {
                g.insert_edges(&ins);
            });
            rate_items += batch as u64;
            rate_seconds += m.modeled_s;
            let del: Vec<Edge> = ins.iter().map(|e| Edge::new(e.src, e.dst)).collect();
            g.delete_edges(&del);
            if flush_every_round {
                g.flush_tombstones();
            }
        }
        g.check_invariants();
        let stats = g.stats(&g.pin_read());
        (
            rate_items as f64 / rate_seconds / 1e6,
            stats.tables.slabs,
            stats.tables.tombstones,
            stats.memory_bytes() as f64 / 1e6,
        )
    };

    for (name, recycle, flush) in [
        ("skip tombstones (paper)", false, false),
        ("recycle tombstones", true, false),
        ("skip + flush each round", false, true),
    ] {
        let (rate, slabs, tombs, mb) = run(recycle, flush);
        t.row(vec![
            name.into(),
            fnum(rate),
            slabs.to_string(),
            tombs.to_string(),
            fnum(mb),
        ]);
    }
    t.note("churn workload: 8 rounds of insert-then-delete 2^13 random edges over 512 vertices");
    t.note(
        "the paper prefers skip-mode for throughput; that holds while tombstones are rare — \
under delete-heavy churn, skip-mode chains bloat with dead slots until even early-exit \
insertion traverses them, and recycling wins both throughput and memory",
    );
    t.emit();
}
