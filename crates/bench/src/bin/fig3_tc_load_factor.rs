//! Regenerates the paper experiment; see DESIGN.md §4 and EXPERIMENTS.md.
fn main() {
    bench::experiments::fig3_tc_load_factor().emit();
}
