//! trace-query — replay the seeded multi-tenant churn stream through the
//! batch router and print causal op lifecycles.
//!
//! Every client update and traced query carries a `TraceCtx`; the router
//! folds each one into a lifecycle record with a per-component latency
//! breakdown `{queue, coalesce, backoff, kernel, degraded}` on the
//! modeled clock. This bin is the CLI over that op log: reconstruct one
//! op (`--op`), one tenant's traffic (`--session`), or the tail
//! (`--slowest N`).
//!
//! ```text
//! cargo run -p bench --release --bin trace-query -- \
//!     --shards 4 --sessions 8 --readers 2 --slowest 5
//! ```

use bench::churn::ChurnConfig;
use bench::harness::{dataset_for, fnum};
use bench::sharded::traffic_for;
use gpu_sim::CostModel;
use router::{BatchRouter, OpTraceRecord, ShardedGraph};

fn print_record(r: &OpTraceRecord) {
    println!(
        "op {} ({}, session {}): {} ns = queue {} + coalesce {} + backoff {} + kernel {} + degraded {}",
        r.op,
        r.kind,
        r.session,
        r.total_ns(),
        r.queue_ns,
        r.coalesce_ns,
        r.backoff_ns,
        r.kernel_ns,
        r.degraded_ns
    );
    for s in &r.spans {
        println!("    {s}");
    }
}

fn main() {
    let mut cfg = ChurnConfig {
        shards: 4,
        sessions: 8,
        readers: 2,
        ..ChurnConfig::default()
    };
    let mut op_filter: Option<u64> = None;
    let mut session_filter: Option<u64> = None;
    let mut slowest: Option<usize> = None;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut val = |name: &str| {
            it.next()
                .unwrap_or_else(|| {
                    eprintln!("missing value for {name}");
                    std::process::exit(2);
                })
                .clone()
        };
        match flag.as_str() {
            "--dataset" => cfg.dataset = val("--dataset"),
            "--rounds" => cfg.rounds = val("--rounds").parse().expect("--rounds: integer"),
            "--ops" => cfg.ops_per_round = val("--ops").parse().expect("--ops: integer"),
            "--seed" => cfg.seed = val("--seed").parse().expect("--seed: integer"),
            "--scale" => cfg.scale = Some(val("--scale").parse().expect("--scale: vertices")),
            "--shards" => cfg.shards = val("--shards").parse().expect("--shards: integer"),
            "--sessions" => cfg.sessions = val("--sessions").parse().expect("--sessions: integer"),
            "--readers" => cfg.readers = val("--readers").parse().expect("--readers: integer"),
            "--op" => op_filter = Some(val("--op").parse().expect("--op: op id")),
            "--session" => {
                session_filter = Some(val("--session").parse().expect("--session: session id"))
            }
            "--slowest" => slowest = Some(val("--slowest").parse().expect("--slowest: count")),
            other => {
                eprintln!(
                    "unknown flag {other}; known: --dataset --rounds --ops --seed --scale \
                     --shards --sessions --readers --op --session --slowest"
                );
                std::process::exit(2);
            }
        }
    }

    let ds = dataset_for(&cfg);
    let traffic = traffic_for(&cfg, &ds, cfg.shards);
    // Attach profilers so the replay carries ctx-stamped spans and a
    // modeled clock (queue latency is measured on it).
    let prev = gpu_sim::profiler::default_profiler();
    gpu_sim::profiler::set_default_profiler(Some(gpu_sim::ProfilerConfig::default()));
    let g = ShardedGraph::bulk_build(
        cfg.shards,
        bench::harness::slab_config(&ds),
        &graph_gen::weighted(&ds.edges, 99)
            .into_iter()
            .map(slabgraph::Edge::from)
            .collect::<Vec<_>>(),
    );
    gpu_sim::profiler::set_default_profiler(prev);
    let router = BatchRouter::new(&g);

    // Replay: each round submits every session's updates, flushes, then
    // the reader sessions (numbered after the writers) issue traced
    // membership queries against the round's query batch.
    let readers = cfg.readers.max(1);
    for round in &traffic {
        for (sid, updates) in round.sessions.iter().enumerate() {
            for &u in updates {
                router.submit(sid, u);
            }
        }
        let report = router.flush();
        assert!(report.is_complete(), "trace-query replay hit a fault");
        for (i, &(u, v)) in round.qry.iter().enumerate() {
            router.edge_exists_traced(cfg.sessions + (i % readers), u, v);
        }
    }

    let records = router.op_records();
    let total: u64 = records.iter().map(OpTraceRecord::total_ns).sum();
    println!(
        "trace-query: {} ops traced ({} ns modeled total) over {} rounds",
        records.len(),
        total,
        traffic.len()
    );

    let mut printed = 0usize;
    if let Some(op) = op_filter {
        for r in records.iter().filter(|r| r.op == op) {
            print_record(r);
            printed += 1;
        }
        if printed == 0 {
            eprintln!("op {op} not found in the op log");
            std::process::exit(1);
        }
    } else if let Some(session) = session_filter {
        for r in records.iter().filter(|r| r.session == session) {
            print_record(r);
            printed += 1;
        }
    } else {
        let n = slowest.unwrap_or(5);
        let mut sorted: Vec<&OpTraceRecord> = records.iter().collect();
        sorted.sort_by(|a, b| b.total_ns().cmp(&a.total_ns()).then(a.op.cmp(&b.op)));
        println!("-- {} slowest ops --", n.min(sorted.len()));
        for r in sorted.into_iter().take(n) {
            print_record(r);
            printed += 1;
        }
    }

    // The merged report (attribution table, tail exemplars, shard
    // health) closes the run, same renderer the artifacts embed.
    let report = router.trace_report(&CostModel::titan_v());
    println!();
    println!("{}", report.render());
    println!(
        "trace OK: {printed} lifecycle(s) printed, makespan {} ms",
        fnum(g.group().clock_s() * 1e3)
    );
}
