//! Shared measurement, reporting, and workload-construction utilities.
//!
//! The workload builders ([`dataset_for`], [`stream_for`], [`slab_config`],
//! [`build_sharded`], [`build_backends_sharded`]) live here — one
//! definition shared by the churn runner and the `profile`, `chaos`, and
//! scaling harnesses, so every replay of a stream builds byte-identical
//! structures.

use crate::churn::{ChurnConfig, Round};
use backend::GraphBackend;
use baselines::{Csr, FaimGraph, Hornet};
use gpu_sim::{CostModel, CounterSnapshot, Device, Json, TraceReport, TraceSnapshot};
use graph_gen::catalog;
use router::ShardedGraph;
use slabgraph::{Direction, DynGraph, TableKind};
use std::time::Instant;

/// One measured phase: host wall-clock plus modeled GPU time derived from
/// the counter delta.
#[derive(Debug, Clone, Copy)]
pub struct Measurement {
    pub wall_s: f64,
    pub modeled_s: f64,
    pub counters: CounterSnapshot,
}

impl Measurement {
    /// Throughput in millions of items per *modeled* second — the unit of
    /// the paper's rate tables (MEdges/s, MVertex/s).
    pub fn mrate(&self, items: u64) -> f64 {
        if self.modeled_s <= 0.0 {
            return 0.0;
        }
        items as f64 / self.modeled_s / 1e6
    }

    /// Modeled milliseconds (the unit of the paper's time tables).
    pub fn modeled_ms(&self) -> f64 {
        self.modeled_s * 1e3
    }
}

impl Measurement {
    /// Manual measurement for operations that need `&mut` access to the
    /// structure owning the device: snapshot counters and clock first,
    /// run the operation, then call this with the same device.
    pub fn complete(dev: &Device, before: CounterSnapshot, t0: Instant) -> Measurement {
        let delta = dev.counters().snapshot().delta(&before);
        Measurement {
            wall_s: t0.elapsed().as_secs_f64(),
            modeled_s: CostModel::titan_v().seconds(&delta),
            counters: delta,
        }
    }
}

/// Run `f` against `dev`, returning wall + modeled time for exactly the
/// counters `f` charged.
pub fn measure(dev: &Device, f: impl FnOnce()) -> Measurement {
    let model = CostModel::titan_v();
    let before = dev.counters().snapshot();
    let t0 = Instant::now();
    f();
    let wall_s = t0.elapsed().as_secs_f64();
    let delta = dev.counters().snapshot().delta(&before);
    Measurement {
        wall_s,
        modeled_s: model.seconds(&delta),
        counters: delta,
    }
}

/// Like [`measure`], but also captures a per-kernel [`TraceReport`] for
/// the phase: which named kernels ran and what each one cost.
pub fn measure_traced(dev: &Device, f: impl FnOnce()) -> (Measurement, TraceReport) {
    let model = CostModel::titan_v();
    let before = dev.trace();
    let t0 = Instant::now();
    f();
    let wall_s = t0.elapsed().as_secs_f64();
    let delta = dev.trace().delta(&before);
    let report = TraceReport::new(&delta, &model);
    (
        Measurement {
            wall_s,
            modeled_s: model.seconds(&delta.global),
            counters: delta.global,
        },
        report,
    )
}

/// Begin a traced phase for an operation that needs `&mut` access to the
/// structure owning the device: snapshot the trace and the clock, run the
/// operation, then finish with [`trace_complete`] on the same device.
pub fn trace_begin(dev: &Device) -> (TraceSnapshot, Instant) {
    (dev.trace(), Instant::now())
}

/// Finish a phase begun with [`trace_begin`]: the counterpart of
/// [`measure_traced`] for `&mut` operations.
pub fn trace_complete(
    dev: &Device,
    before: TraceSnapshot,
    t0: Instant,
) -> (Measurement, TraceReport) {
    let model = CostModel::titan_v();
    let wall_s = t0.elapsed().as_secs_f64();
    let delta = dev.trace().delta(&before);
    let report = TraceReport::new(&delta, &model);
    (
        Measurement {
            wall_s,
            modeled_s: model.seconds(&delta.global),
            counters: delta.global,
        },
        report,
    )
}

/// Global scale shift from `BENCH_SCALE_SHIFT` (each step doubles sizes).
pub fn scale_shift() -> u32 {
    std::env::var("BENCH_SCALE_SHIFT")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

/// A printable experiment table that also serialises to JSON.
#[derive(Debug, Clone)]
pub struct Table {
    pub id: String,
    pub title: String,
    pub headers: Vec<String>,
    pub rows: Vec<Vec<String>>,
    /// Free-form notes (scaling, substitutions) recorded with the data.
    pub notes: Vec<String>,
    /// Per-kernel breakdowns attached to named phases of the experiment,
    /// rendered after the table and embedded in the emitted JSON.
    pub breakdowns: Vec<(String, TraceReport)>,
}

impl Table {
    pub fn new(id: &str, title: &str, headers: &[&str]) -> Self {
        Table {
            id: id.to_string(),
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: vec![],
            notes: vec![],
            breakdowns: vec![],
        }
    }

    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    pub fn note(&mut self, s: impl Into<String>) {
        self.notes.push(s.into());
    }

    /// Attach a per-kernel breakdown for one phase (e.g. the largest batch
    /// of one dataset).
    pub fn breakdown(&mut self, label: impl Into<String>, report: TraceReport) {
        self.breakdowns.push((label.into(), report));
    }

    /// Render as an aligned text table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = format!("== {} — {} ==\n", self.id, self.title);
        let fmt_row = |cells: &[String], widths: &[usize]| {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        for n in &self.notes {
            out.push_str(&format!("note: {n}\n"));
        }
        for (label, report) in &self.breakdowns {
            out.push_str(&format!("\n-- per-kernel breakdown: {label} --\n"));
            out.push_str(&report.render());
        }
        out
    }

    /// The table as a JSON value (the same structure `emit` persists).
    pub fn to_json(&self) -> Json {
        let strs = |v: &[String]| Json::Arr(v.iter().map(Json::str).collect());
        Json::Obj(vec![
            ("id".into(), Json::str(&self.id)),
            ("title".into(), Json::str(&self.title)),
            ("headers".into(), strs(&self.headers)),
            (
                "rows".into(),
                Json::Arr(self.rows.iter().map(|r| strs(r)).collect()),
            ),
            ("notes".into(), strs(&self.notes)),
            (
                "breakdowns".into(),
                Json::Arr(
                    self.breakdowns
                        .iter()
                        .map(|(label, report)| {
                            Json::Obj(vec![
                                ("label".into(), Json::str(label)),
                                (
                                    "trace".into(),
                                    Json::parse(&report.to_json())
                                        .expect("TraceReport::to_json is valid JSON"),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Print to stdout and persist JSON under `target/experiments/`.
    pub fn emit(&self) {
        println!("{}", self.render());
        let dir = std::path::Path::new("target/experiments");
        if std::fs::create_dir_all(dir).is_ok() {
            let path = dir.join(format!("{}.json", self.id));
            let _ = std::fs::write(path, self.to_json().render_pretty());
        }
    }
}

/// Write a benchmark-trajectory artifact: one JSON file collecting the
/// given tables, intended to be committed to CI artifact storage so runs
/// can be compared over time. Table rows carry the workload/backend rates
/// and modeled times; the embedded per-kernel breakdowns (TraceReport
/// JSON) carry the per-kernel counter sums.
///
/// `path` is relative to the invoking directory — `ci.sh` runs the bench
/// bins from the repository root, which puts `BENCH_*.json` there.
pub fn write_bench_artifact(path: &str, workload: &str, tables: &[&Table]) {
    let json = Json::Obj(vec![
        ("schema".into(), Json::str("bench-trajectory-v1")),
        ("workload".into(), Json::str(workload)),
        ("scale_shift".into(), Json::u64(u64::from(scale_shift()))),
        (
            "tables".into(),
            Json::Arr(tables.iter().map(|t| t.to_json()).collect()),
        ),
    ]);
    if let Err(e) = std::fs::write(path, json.render_pretty()) {
        eprintln!("warning: could not write bench artifact {path}: {e}");
    } else {
        eprintln!("bench artifact written to {path}");
    }
}

// ---------------------------------------------------------------------------
// Workload builders: one definition for every harness that replays a
// churn-family stream (the churn runner, the profile/chaos bins, the
// sharded scaling study).
// ---------------------------------------------------------------------------

/// Generate the dataset a churn-family config names, honouring the
/// `--scale` override.
pub fn dataset_for(cfg: &ChurnConfig) -> graph_gen::Dataset {
    let spec = catalog::dataset(&cfg.dataset)
        .unwrap_or_else(|| panic!("unknown dataset {:?}", cfg.dataset));
    match cfg.scale {
        Some(n) => spec.generate(n, cfg.seed),
        None => spec.generate_default(cfg.seed),
    }
}

/// Generate the dataset and precomputed operation stream for a config —
/// the exact sequence [`crate::churn::churn`] replays, for external
/// harnesses (the `profile` bin) that need to drive backends themselves.
pub fn stream_for(cfg: &ChurnConfig) -> (graph_gen::Dataset, Vec<Round>) {
    let ds = dataset_for(cfg);
    let stream = crate::churn::make_stream(&ds, cfg);
    (ds, stream)
}

/// The `GraphConfig` the slab-graph contender (sharded or not) uses for a
/// dataset, so every replay of the stream sizes the structure identically.
pub fn slab_config(ds: &graph_gen::Dataset) -> slabgraph::GraphConfig {
    let mut c = slabgraph::GraphConfig::directed_map(ds.n_vertices);
    c.kind = TableKind::Map;
    c.direction = Direction::Directed;
    c.device_words = (ds.edges.len() * 12).max(1 << 20);
    c.pool_slabs = (ds.edges.len() / 64).max(1 << 10);
    c
}

/// Build the single-device slab-graph contender, bulk-loaded identically
/// to how [`build_backends_sharded`] registers it. The readers-vs-writers
/// scenario builds its graph (and its phase-separated oracle) through this
/// so both see byte-identical initial state.
pub fn build_slab(ds: &graph_gen::Dataset) -> DynGraph {
    DynGraph::bulk_build(
        slab_config(ds),
        &graph_gen::weighted(&ds.edges, 99)
            .into_iter()
            .map(slabgraph::Edge::from)
            .collect::<Vec<_>>(),
    )
}

/// Build the hash-partitioned contender: `n_shards` slab graphs over a
/// device group, bulk-loaded with the dataset (cut edges replicated).
pub fn build_sharded(ds: &graph_gen::Dataset, n_shards: usize) -> ShardedGraph {
    ShardedGraph::bulk_build(
        n_shards,
        slab_config(ds),
        &graph_gen::weighted(&ds.edges, 99)
            .into_iter()
            .map(slabgraph::Edge::from)
            .collect::<Vec<_>>(),
    )
}

/// Construct the registered backend set for a dataset, identically to
/// [`crate::churn::churn`] — one instance per structure, sized for the
/// dataset. The `profile` bin uses this so its timelines cover the same
/// builds. `shards >= 1` appends the `ShardedSlabGraph` contender at that
/// shard count (0 omits it, preserving the pre-sharding set).
pub fn build_backends_sharded(
    ds: &graph_gen::Dataset,
    shards: usize,
) -> Vec<Box<dyn GraphBackend>> {
    let dw = (ds.edges.len() * 8).max(1 << 20);
    let mut backends: Vec<Box<dyn GraphBackend>> = vec![
        Box::new(Hornet::bulk_build(ds.n_vertices, &ds.edges, dw)),
        Box::new(FaimGraph::build(ds.n_vertices, &ds.edges, dw)),
        Box::new(build_slab(ds)),
        Box::new(Csr::build(ds.n_vertices, &ds.edges, dw)),
    ];
    if shards >= 1 {
        backends.push(Box::new(build_sharded(ds, shards)));
    }
    backends
}

/// The pre-sharding backend set (no `ShardedSlabGraph`), kept for callers
/// that want exactly one device per backend.
pub fn build_backends(ds: &graph_gen::Dataset) -> Vec<Box<dyn GraphBackend>> {
    build_backends_sharded(ds, 0)
}

/// Format a float with sensible precision for table cells.
pub fn fnum(x: f64) -> String {
    if x == 0.0 {
        "0".into()
    } else if x.abs() >= 1000.0 {
        format!("{x:.0}")
    } else if x.abs() >= 10.0 {
        format!("{x:.1}")
    } else {
        format!("{x:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_captures_counters() {
        let dev = Device::new(1 << 12);
        let p = dev.alloc_words(32, 32);
        let m = measure(&dev, || {
            dev.memset("bench_fill", p, 32, 1);
        });
        assert_eq!(m.counters.transactions, 1);
        assert!(m.modeled_s > 0.0);
        assert!(m.wall_s >= 0.0);
    }

    #[test]
    fn measure_traced_breakdown_sums_to_global() {
        let dev = Device::new(1 << 12);
        let p = dev.alloc_words(64, 32);
        let (m, report) = measure_traced(&dev, || {
            dev.memset("phase_a", p, 64, 1);
            dev.launch_tasks("phase_b", 64, |warp| {
                let _ = warp.read_word(p);
            });
        });
        assert_eq!(report.kernel_sum(), m.counters);
        assert_eq!(report.total.counters, m.counters);
        assert_eq!(report.rows.len(), 2);
        let parsed = TraceReport::from_json(&report.to_json()).unwrap();
        assert_eq!(parsed, report);
    }

    #[test]
    fn mrate_inverts_modeled_time() {
        let m = Measurement {
            wall_s: 0.0,
            modeled_s: 0.5,
            counters: CounterSnapshot::default(),
        };
        assert_eq!(m.mrate(1_000_000), 2.0);
        assert_eq!(m.modeled_ms(), 500.0);
    }

    #[test]
    fn table_renders_and_guards_arity() {
        let mut t = Table::new("t0", "demo", &["a", "b"]);
        t.row(vec!["1".into(), "2".into()]);
        t.note("scaled");
        let r = t.render();
        assert!(r.contains("demo"));
        assert!(r.contains("note: scaled"));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn row_arity_checked() {
        let mut t = Table::new("t0", "demo", &["a", "b"]);
        t.row(vec!["1".into()]);
    }

    #[test]
    fn fnum_precision() {
        assert_eq!(fnum(0.0), "0");
        assert_eq!(fnum(12345.6), "12346");
        assert_eq!(fnum(42.25), "42.2");
        assert_eq!(fnum(1.23456), "1.235");
    }
}
