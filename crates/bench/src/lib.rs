//! # bench — harness regenerating every table and figure of the paper
//!
//! Each experiment from the evaluation section (§VI) is a library function
//! returning a [`Table`]; thin binaries (`table2_edge_insertion`, …,
//! `fig3_tc_load_factor`, `run_all`) print them and dump JSON rows under
//! `target/experiments/`. See DESIGN.md §4 for the experiment index and
//! EXPERIMENTS.md for paper-vs-measured results.
//!
//! Methodology (matching §VI): measured time covers the operation only —
//! no host↔device transfer; throughput is reported from **modeled GPU
//! time** (the transaction-level TITAN V cost model, [`gpu_sim::CostModel`])
//! with host wall-clock shown alongside. Datasets are the Table I catalog
//! at scaled size (DESIGN.md §8); scale with `BENCH_SCALE_SHIFT=n` (each
//! step doubles dataset/batch sizes).

pub mod chaos;
pub mod churn;
pub mod experiments;
pub mod harness;
pub mod sharded;

pub use harness::{measure, scale_shift, Measurement, Table};
