//! Churn workload: a seeded, mixed insert/delete/query stream driven
//! through the [`GraphBackend`] trait against every registered structure.
//!
//! The paper's update tables measure inserts and deletes in isolation; a
//! dynamic-graph deployment interleaves them with queries. This runner
//! replays one deterministic operation stream — identical for every
//! backend — and reports per-class throughput plus a per-kernel breakdown
//! of where each structure spends its modeled time. Backends whose
//! [`Capabilities`](backend::Capabilities) cannot run the stream (static
//! CSR) are skipped via their capability flags rather than special-cased.

use crate::harness::{fnum, scale_shift, Table};
use backend::GraphBackend;
use baselines::{Csr, FaimGraph, Hornet};
use gpu_sim::{CostModel, DeviceGroup, TraceSnapshot};
use graph_gen::{catalog, insert_batch};
use router::ShardedGraph;
use slabgraph::{Direction, DynGraph, TableKind};

/// Key distribution of generated traffic — how update endpoints are drawn
/// from the vertex space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Skew {
    /// Endpoints uniform over the vertex range (the paper's rMAT-free
    /// batches): edges cut shards with probability (N-1)/N but load stays
    /// balanced.
    #[default]
    Uniform,
    /// Power-law endpoints (a cubed uniform sample): a hot head of the id
    /// space absorbs most traffic, as in social-network streams.
    Skewed,
    /// Worst case for a hash-partitioned graph: every src is owned by
    /// shard 0, so routing cannot spread the primary-copy work at all.
    Adversarial,
}

impl std::str::FromStr for Skew {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "uniform" => Ok(Skew::Uniform),
            "skewed" => Ok(Skew::Skewed),
            "adversarial" => Ok(Skew::Adversarial),
            other => Err(format!(
                "unknown skew {other:?}; known: uniform skewed adversarial"
            )),
        }
    }
}

impl std::fmt::Display for Skew {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Skew::Uniform => "uniform",
            Skew::Skewed => "skewed",
            Skew::Adversarial => "adversarial",
        })
    }
}

/// Parameters of a churn run. Percentages are of `ops_per_round`; the
/// remainder after inserts and deletes are membership queries.
#[derive(Debug, Clone)]
pub struct ChurnConfig {
    /// Table I dataset name providing the initial graph.
    pub dataset: String,
    /// Number of mixed rounds to replay.
    pub rounds: usize,
    /// Operations per round (scaled by `BENCH_SCALE_SHIFT`).
    pub ops_per_round: usize,
    /// Percent of each round that inserts new random edges.
    pub insert_pct: u32,
    /// Percent of each round that deletes previously-live edges.
    pub delete_pct: u32,
    /// Stream seed: same seed, same stream, every backend.
    pub seed: u64,
    /// Override the dataset's default vertex scale. The sanitized CI
    /// smoke uses this: shadow-memory tracking multiplies the cost of
    /// every word access, so it runs a small instance of the same
    /// stream rather than the full benchmark scale.
    pub scale: Option<u32>,
    /// Shard count for the `ShardedSlabGraph` contender and the sharded
    /// scaling section (`--shards`).
    pub shards: usize,
    /// Concurrent client sessions feeding the batch router (`--sessions`).
    pub sessions: usize,
    /// Key distribution of the multi-tenant traffic generator (`--skew`).
    pub skew: Skew,
}

impl Default for ChurnConfig {
    fn default() -> Self {
        ChurnConfig {
            dataset: "rgg_n_2_20_s0".into(),
            rounds: 4,
            ops_per_round: 2048,
            insert_pct: 50,
            delete_pct: 30,
            seed: 71,
            scale: None,
            shards: 1,
            sessions: 1,
            skew: Skew::Uniform,
        }
    }
}

/// One precomputed round of the stream. Public so external replays (the
/// `profile` bin) can drive the identical operation sequence.
pub struct Round {
    pub ins: Vec<(u32, u32)>,
    pub del: Vec<(u32, u32)>,
    pub qry: Vec<(u32, u32)>,
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// Build the operation stream host-side, independent of any backend:
/// deletes and half the queries sample edges inserted in earlier rounds,
/// so every backend sees the identical sequence regardless of its own
/// state.
fn make_stream(ds: &graph_gen::Dataset, cfg: &ChurnConfig) -> Vec<Round> {
    let ops = cfg.ops_per_round << scale_shift();
    let n_ins = ops * cfg.insert_pct as usize / 100;
    let n_del = ops * cfg.delete_pct as usize / 100;
    let n_qry = ops - n_ins - n_del;
    let mut live: Vec<(u32, u32)> = ds.edges.clone();
    let mut rng = cfg.seed;
    let mut rounds = Vec::with_capacity(cfg.rounds);
    for r in 0..cfg.rounds as u64 {
        let ins = insert_batch(ds.n_vertices, n_ins, cfg.seed + 10 * r);
        let del: Vec<(u32, u32)> = (0..n_del)
            .map(|_| live[(splitmix64(&mut rng) % live.len() as u64) as usize])
            .collect();
        let random_qry = insert_batch(ds.n_vertices, n_qry, cfg.seed + 10 * r + 5);
        let qry: Vec<(u32, u32)> = random_qry
            .iter()
            .enumerate()
            .map(|(i, &p)| {
                if i % 2 == 0 {
                    live[(splitmix64(&mut rng) % live.len() as u64) as usize]
                } else {
                    p
                }
            })
            .collect();
        live.extend_from_slice(&ins);
        rounds.push(Round { ins, del, qry });
    }
    rounds
}

/// Generate the dataset and precomputed operation stream for a config —
/// the exact sequence [`churn`] replays, for external harnesses (the
/// `profile` bin) that need to drive backends themselves.
pub fn stream_for(cfg: &ChurnConfig) -> (graph_gen::Dataset, Vec<Round>) {
    let spec = catalog::dataset(&cfg.dataset)
        .unwrap_or_else(|| panic!("unknown dataset {:?}", cfg.dataset));
    let ds = match cfg.scale {
        Some(n) => spec.generate(n, cfg.seed),
        None => spec.generate_default(cfg.seed),
    };
    let stream = make_stream(&ds, cfg);
    (ds, stream)
}

/// The `GraphConfig` the slab-graph contender (sharded or not) uses for a
/// dataset, so every replay of the stream sizes the structure identically.
pub fn slab_config(ds: &graph_gen::Dataset) -> slabgraph::GraphConfig {
    let mut c = slabgraph::GraphConfig::directed_map(ds.n_vertices);
    c.kind = TableKind::Map;
    c.direction = Direction::Directed;
    c.device_words = (ds.edges.len() * 12).max(1 << 20);
    c.pool_slabs = (ds.edges.len() / 64).max(1 << 10);
    c
}

/// Build the hash-partitioned contender: `n_shards` slab graphs over a
/// device group, bulk-loaded with the dataset (cut edges replicated).
pub fn build_sharded(ds: &graph_gen::Dataset, n_shards: usize) -> ShardedGraph {
    ShardedGraph::bulk_build(
        n_shards,
        slab_config(ds),
        &graph_gen::weighted(&ds.edges, 99)
            .into_iter()
            .map(slabgraph::Edge::from)
            .collect::<Vec<_>>(),
    )
}

/// Construct the registered backend set for a dataset, identically to
/// [`churn`] — one instance per structure, sized for the dataset. The
/// `profile` bin uses this so its timelines cover the same builds.
/// `shards >= 1` appends the `ShardedSlabGraph` contender at that shard
/// count (0 omits it, preserving the pre-sharding set).
pub fn build_backends_sharded(
    ds: &graph_gen::Dataset,
    shards: usize,
) -> Vec<Box<dyn GraphBackend>> {
    let dw = (ds.edges.len() * 8).max(1 << 20);
    let mut backends: Vec<Box<dyn GraphBackend>> = vec![
        Box::new(Hornet::bulk_build(ds.n_vertices, &ds.edges, dw)),
        Box::new(FaimGraph::build(ds.n_vertices, &ds.edges, dw)),
        Box::new(DynGraph::bulk_build(
            slab_config(ds),
            &graph_gen::weighted(&ds.edges, 99)
                .into_iter()
                .map(slabgraph::Edge::from)
                .collect::<Vec<_>>(),
        )),
        Box::new(Csr::build(ds.n_vertices, &ds.edges, dw)),
    ];
    if shards >= 1 {
        backends.push(Box::new(build_sharded(ds, shards)));
    }
    backends
}

/// The pre-sharding backend set (no `ShardedSlabGraph`), kept for callers
/// that want exactly one device per backend.
pub fn build_backends(ds: &graph_gen::Dataset) -> Vec<Box<dyn GraphBackend>> {
    build_backends_sharded(ds, 0)
}

/// Modeled makespan of work done since `before` across all of a backend's
/// devices: shards execute concurrently, so the modeled cost of a step is
/// the *maximum* per-device delta, not the sum. For single-device backends
/// this is exactly the old single-counter measurement.
fn trace_all(g: &dyn GraphBackend) -> Vec<TraceSnapshot> {
    g.devices().iter().map(|d| d.trace()).collect()
}

fn makespan_since(g: &dyn GraphBackend, before: &[TraceSnapshot]) -> f64 {
    let model = CostModel::titan_v();
    g.devices()
        .iter()
        .zip(before)
        .map(|(d, b)| model.seconds(&d.trace().delta(b).global))
        .fold(0.0, f64::max)
}

/// Run the churn stream over every registered backend and tabulate
/// per-class throughput with per-kernel breakdowns.
pub fn churn(cfg: &ChurnConfig) -> Table {
    let (ds, stream) = stream_for(cfg);

    let mut t = Table::new(
        "churn",
        "Churn stream: mixed insert/delete/query throughput per structure",
        &[
            "structure",
            "inserts MEdge/s",
            "deletes MEdge/s",
            "queries Mq/s",
            "total modeled ms",
            "query hits",
        ],
    );

    let backends = build_backends_sharded(&ds, cfg.shards.max(1));

    let mut hit_counts: Vec<u64> = vec![];
    for mut g in backends {
        let caps = g.caps();
        if !(caps.insert_edges && caps.delete_edges) {
            t.note(format!(
                "{} skipped: capabilities do not cover the churn stream",
                g.name()
            ));
            continue;
        }
        let name = g.name();
        let trace0 = trace_all(&*g);
        let (mut ins_s, mut del_s, mut qry_s) = (0.0f64, 0.0f64, 0.0f64);
        let (mut n_ins, mut n_del, mut n_qry, mut hits) = (0u64, 0u64, 0u64, 0u64);
        for round in &stream {
            let before = trace_all(&*g);
            g.insert_edges(&round.ins);
            ins_s += makespan_since(&*g, &before);
            n_ins += round.ins.len() as u64;

            let before = trace_all(&*g);
            g.delete_edges(&round.del);
            del_s += makespan_since(&*g, &before);
            n_del += round.del.len() as u64;

            let before = trace_all(&*g);
            let found = g.edges_exist(&round.qry);
            qry_s += makespan_since(&*g, &before);
            n_qry += round.qry.len() as u64;
            hits += found.iter().filter(|&&b| b).count() as u64;
        }
        // One deterministic per-kernel report for the stream, merged over
        // every device the backend spans (one for the classic structures,
        // one per shard for `ShardedSlabGraph`). The attribution invariant
        // must survive the merge: named kernels sum to the global delta.
        let deltas: Vec<TraceSnapshot> = g
            .devices()
            .iter()
            .zip(&trace0)
            .map(|(d, b)| d.trace().delta(b))
            .collect();
        let merged = DeviceGroup::merge_traces(&deltas);
        let report = gpu_sim::TraceReport::new(&merged, &CostModel::titan_v());
        assert_eq!(
            report.kernel_sum(),
            merged.global,
            "{name}: churn per-kernel counters must sum to the stream's delta"
        );
        // Under `--features sanitize` every backend device carries the
        // shadow-memory checker; a churn stream must finish clean on every
        // shard (the escalation hook would also have aborted mid-launch).
        for dev in g.devices() {
            let findings = dev.sanitizer_findings();
            assert!(
                findings.is_empty(),
                "{name}: churn must be sanitizer-clean, got {findings:?}"
            );
        }
        hit_counts.push(hits);
        let rate = |items: u64, secs: f64| {
            if secs <= 0.0 {
                0.0
            } else {
                items as f64 / secs / 1e6
            }
        };
        t.row(vec![
            name.into(),
            fnum(rate(n_ins, ins_s)),
            fnum(rate(n_del, del_s)),
            fnum(rate(n_qry, qry_s)),
            fnum((ins_s + del_s + qry_s) * 1e3),
            hits.to_string(),
        ]);
        t.breakdown(format!("churn, {name}"), report);
    }
    assert!(
        hit_counts.windows(2).all(|w| w[0] == w[1]),
        "backends disagree on query results: {hit_counts:?}"
    );
    t.note(format!(
        "dataset {} | {} rounds x {} ops ({}% insert / {}% delete / {}% query), seed {}",
        cfg.dataset,
        cfg.rounds,
        cfg.ops_per_round << scale_shift(),
        cfg.insert_pct,
        cfg.delete_pct,
        100 - cfg.insert_pct - cfg.delete_pct,
        cfg.seed
    ));
    t.note(format!(
        "ShardedSlabGraph runs {} shard(s); modeled time per step is the max over shard devices (concurrent dispatch)",
        cfg.shards.max(1)
    ));
    t
}

/// Default-parameter churn run, for `run_all` and smoke tests.
pub fn churn_default() -> Table {
    churn(&ChurnConfig::default())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_is_deterministic_and_sized() {
        let ds = catalog::dataset("luxembourg_osm").unwrap().generate(512, 3);
        let cfg = ChurnConfig {
            dataset: "luxembourg_osm".into(),
            rounds: 3,
            ops_per_round: 100,
            insert_pct: 40,
            delete_pct: 30,
            seed: 9,
            scale: None,
            ..ChurnConfig::default()
        };
        let a = make_stream(&ds, &cfg);
        let b = make_stream(&ds, &cfg);
        assert_eq!(a.len(), 3);
        for (ra, rb) in a.iter().zip(&b) {
            assert_eq!(ra.ins, rb.ins);
            assert_eq!(ra.del, rb.del);
            assert_eq!(ra.qry, rb.qry);
            assert_eq!(ra.ins.len(), 40);
            assert_eq!(ra.del.len(), 30);
            assert_eq!(ra.qry.len(), 30);
        }
    }

    #[test]
    fn deletes_target_previously_live_edges() {
        let ds = catalog::dataset("luxembourg_osm").unwrap().generate(512, 3);
        let cfg = ChurnConfig {
            dataset: "luxembourg_osm".into(),
            rounds: 2,
            ops_per_round: 50,
            insert_pct: 60,
            delete_pct: 20,
            seed: 5,
            scale: None,
            ..ChurnConfig::default()
        };
        let stream = make_stream(&ds, &cfg);
        let mut live: std::collections::HashSet<(u32, u32)> = ds.edges.iter().copied().collect();
        for r in &stream {
            for d in &r.del {
                assert!(live.contains(d), "delete of never-inserted edge {d:?}");
            }
            live.extend(r.ins.iter().copied());
        }
    }
}
