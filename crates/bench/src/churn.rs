//! Churn workload: a seeded, mixed insert/delete/query stream driven
//! through the [`GraphBackend`] trait against every registered structure.
//!
//! The paper's update tables measure inserts and deletes in isolation; a
//! dynamic-graph deployment interleaves them with queries. This runner
//! replays one deterministic operation stream — identical for every
//! backend — and reports per-class throughput plus a per-kernel breakdown
//! of where each structure spends its modeled time. Backends whose
//! [`Capabilities`](backend::Capabilities) cannot run the stream (static
//! CSR) are skipped via their capability flags rather than special-cased.

use crate::harness::{fnum, scale_shift, Table};
use backend::GraphBackend;
use gpu_sim::{CostModel, DeviceGroup, TraceSnapshot};
use graph_gen::insert_batch;

// The workload builders moved to [`crate::harness`] (shared with the
// profile/chaos bins); re-exported here so `bench::churn::*` callers keep
// one canonical path.
pub use crate::harness::{
    build_backends, build_backends_sharded, build_sharded, build_slab, dataset_for, slab_config,
    stream_for,
};

/// Key distribution of generated traffic — how update endpoints are drawn
/// from the vertex space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Skew {
    /// Endpoints uniform over the vertex range (the paper's rMAT-free
    /// batches): edges cut shards with probability (N-1)/N but load stays
    /// balanced.
    #[default]
    Uniform,
    /// Power-law endpoints (a cubed uniform sample): a hot head of the id
    /// space absorbs most traffic, as in social-network streams.
    Skewed,
    /// Worst case for a hash-partitioned graph: every src is owned by
    /// shard 0, so routing cannot spread the primary-copy work at all.
    Adversarial,
}

impl std::str::FromStr for Skew {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "uniform" => Ok(Skew::Uniform),
            "skewed" => Ok(Skew::Skewed),
            "adversarial" => Ok(Skew::Adversarial),
            other => Err(format!(
                "unknown skew {other:?}; known: uniform skewed adversarial"
            )),
        }
    }
}

impl std::fmt::Display for Skew {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Skew::Uniform => "uniform",
            Skew::Skewed => "skewed",
            Skew::Adversarial => "adversarial",
        })
    }
}

/// Parameters of a churn run. Percentages are of `ops_per_round`; the
/// remainder after inserts and deletes are membership queries.
#[derive(Debug, Clone)]
pub struct ChurnConfig {
    /// Table I dataset name providing the initial graph.
    pub dataset: String,
    /// Number of mixed rounds to replay.
    pub rounds: usize,
    /// Operations per round (scaled by `BENCH_SCALE_SHIFT`).
    pub ops_per_round: usize,
    /// Percent of each round that inserts new random edges.
    pub insert_pct: u32,
    /// Percent of each round that deletes previously-live edges.
    pub delete_pct: u32,
    /// Stream seed: same seed, same stream, every backend.
    pub seed: u64,
    /// Override the dataset's default vertex scale. The sanitized CI
    /// smoke uses this: shadow-memory tracking multiplies the cost of
    /// every word access, so it runs a small instance of the same
    /// stream rather than the full benchmark scale.
    pub scale: Option<u32>,
    /// Shard count for the `ShardedSlabGraph` contender and the sharded
    /// scaling section (`--shards`).
    pub shards: usize,
    /// Concurrent client sessions feeding the batch router (`--sessions`).
    pub sessions: usize,
    /// Key distribution of the multi-tenant traffic generator (`--skew`).
    pub skew: Skew,
    /// Concurrent pinned-reader threads racing the writer in the mixed
    /// readers-vs-writers scenario (`--readers`).
    pub readers: usize,
}

impl Default for ChurnConfig {
    fn default() -> Self {
        ChurnConfig {
            dataset: "rgg_n_2_20_s0".into(),
            rounds: 4,
            ops_per_round: 2048,
            insert_pct: 50,
            delete_pct: 30,
            seed: 71,
            scale: None,
            shards: 1,
            sessions: 1,
            skew: Skew::Uniform,
            readers: 2,
        }
    }
}

/// One precomputed round of the stream. Public so external replays (the
/// `profile` bin) can drive the identical operation sequence.
pub struct Round {
    pub ins: Vec<(u32, u32)>,
    pub del: Vec<(u32, u32)>,
    pub qry: Vec<(u32, u32)>,
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// Build the operation stream host-side, independent of any backend:
/// deletes and half the queries sample edges inserted in earlier rounds,
/// so every backend sees the identical sequence regardless of its own
/// state.
pub(crate) fn make_stream(ds: &graph_gen::Dataset, cfg: &ChurnConfig) -> Vec<Round> {
    let ops = cfg.ops_per_round << scale_shift();
    let n_ins = ops * cfg.insert_pct as usize / 100;
    let n_del = ops * cfg.delete_pct as usize / 100;
    let n_qry = ops - n_ins - n_del;
    let mut live: Vec<(u32, u32)> = ds.edges.clone();
    let mut rng = cfg.seed;
    let mut rounds = Vec::with_capacity(cfg.rounds);
    for r in 0..cfg.rounds as u64 {
        let ins = insert_batch(ds.n_vertices, n_ins, cfg.seed + 10 * r);
        let del: Vec<(u32, u32)> = (0..n_del)
            .map(|_| live[(splitmix64(&mut rng) % live.len() as u64) as usize])
            .collect();
        let random_qry = insert_batch(ds.n_vertices, n_qry, cfg.seed + 10 * r + 5);
        let qry: Vec<(u32, u32)> = random_qry
            .iter()
            .enumerate()
            .map(|(i, &p)| {
                if i % 2 == 0 {
                    live[(splitmix64(&mut rng) % live.len() as u64) as usize]
                } else {
                    p
                }
            })
            .collect();
        live.extend_from_slice(&ins);
        rounds.push(Round { ins, del, qry });
    }
    rounds
}

/// Modeled makespan of work done since `before` across all of a backend's
/// devices: shards execute concurrently, so the modeled cost of a step is
/// the *maximum* per-device delta, not the sum. For single-device backends
/// this is exactly the old single-counter measurement.
fn trace_all(g: &dyn GraphBackend) -> Vec<TraceSnapshot> {
    g.devices().iter().map(|d| d.trace()).collect()
}

fn makespan_since(g: &dyn GraphBackend, before: &[TraceSnapshot]) -> f64 {
    let model = CostModel::titan_v();
    g.devices()
        .iter()
        .zip(before)
        .map(|(d, b)| model.seconds(&d.trace().delta(b).global))
        .fold(0.0, f64::max)
}

/// Run the churn stream over every registered backend and tabulate
/// per-class throughput with per-kernel breakdowns.
pub fn churn(cfg: &ChurnConfig) -> Table {
    let (ds, stream) = stream_for(cfg);

    let mut t = Table::new(
        "churn",
        "Churn stream: mixed insert/delete/query throughput per structure",
        &[
            "structure",
            "shards",
            "inserts MEdge/s",
            "deletes MEdge/s",
            "queries Mq/s",
            "total modeled ms",
            "query hits",
        ],
    );

    let backends = build_backends_sharded(&ds, cfg.shards.max(1));

    let mut hit_counts: Vec<u64> = vec![];
    for mut g in backends {
        let caps = g.caps();
        if !(caps.insert_edges && caps.delete_edges) {
            t.note(format!(
                "{} skipped: capabilities do not cover the churn stream",
                g.name()
            ));
            continue;
        }
        let name = g.name();
        // Each row carries its own device/shard count: one for the classic
        // single-device structures, N for `ShardedSlabGraph`.
        let n_shards = g.devices().len();
        let trace0 = trace_all(&*g);
        let (mut ins_s, mut del_s, mut qry_s) = (0.0f64, 0.0f64, 0.0f64);
        let (mut n_ins, mut n_del, mut n_qry, mut hits) = (0u64, 0u64, 0u64, 0u64);
        for round in &stream {
            let before = trace_all(&*g);
            g.insert_edges(&round.ins);
            ins_s += makespan_since(&*g, &before);
            n_ins += round.ins.len() as u64;

            let before = trace_all(&*g);
            g.delete_edges(&round.del);
            del_s += makespan_since(&*g, &before);
            n_del += round.del.len() as u64;

            let before = trace_all(&*g);
            let found = g.edges_exist(&round.qry);
            qry_s += makespan_since(&*g, &before);
            n_qry += round.qry.len() as u64;
            hits += found.iter().filter(|&&b| b).count() as u64;
        }
        // One deterministic per-kernel report for the stream, merged over
        // every device the backend spans (one for the classic structures,
        // one per shard for `ShardedSlabGraph`). The attribution invariant
        // must survive the merge: named kernels sum to the global delta.
        let deltas: Vec<TraceSnapshot> = g
            .devices()
            .iter()
            .zip(&trace0)
            .map(|(d, b)| d.trace().delta(b))
            .collect();
        let merged = DeviceGroup::merge_traces(&deltas);
        let report = gpu_sim::TraceReport::new(&merged, &CostModel::titan_v());
        assert_eq!(
            report.kernel_sum(),
            merged.global,
            "{name}: churn per-kernel counters must sum to the stream's delta"
        );
        // Under `--features sanitize` every backend device carries the
        // shadow-memory checker; a churn stream must finish clean on every
        // shard (the escalation hook would also have aborted mid-launch).
        for dev in g.devices() {
            let findings = dev.sanitizer_findings();
            assert!(
                findings.is_empty(),
                "{name}: churn must be sanitizer-clean, got {findings:?}"
            );
        }
        hit_counts.push(hits);
        let rate = |items: u64, secs: f64| {
            if secs <= 0.0 {
                0.0
            } else {
                items as f64 / secs / 1e6
            }
        };
        t.row(vec![
            name.into(),
            n_shards.to_string(),
            fnum(rate(n_ins, ins_s)),
            fnum(rate(n_del, del_s)),
            fnum(rate(n_qry, qry_s)),
            fnum((ins_s + del_s + qry_s) * 1e3),
            hits.to_string(),
        ]);
        t.breakdown(format!("churn, {name}"), report);
    }
    assert!(
        hit_counts.windows(2).all(|w| w[0] == w[1]),
        "backends disagree on query results: {hit_counts:?}"
    );
    t.note(format!(
        "dataset {} | {} rounds x {} ops ({}% insert / {}% delete / {}% query), seed {}",
        cfg.dataset,
        cfg.rounds,
        cfg.ops_per_round << scale_shift(),
        cfg.insert_pct,
        cfg.delete_pct,
        100 - cfg.insert_pct - cfg.delete_pct,
        cfg.seed
    ));
    t.note(
        "modeled time per step is the max over each row's devices (shards dispatch concurrently)",
    );
    t
}

/// Default-parameter churn run, for `run_all` and smoke tests.
pub fn churn_default() -> Table {
    churn(&ChurnConfig::default())
}

/// Mixed readers-vs-writers scenario: `cfg.readers` threads issue pinned
/// membership probes against one `DynGraph` while the main thread lands
/// the churn stream's insert/delete batches concurrently. Per-probe host
/// wall-clock latency flows through the device metrics registry
/// (`query.latency_us`), and the table reports the bucketed p50/p95/p99
/// tail alongside the pin high-water mark.
///
/// Probes draw from a *stable* universe — edges present from the initial
/// build that no round deletes, and pairs no round ever inserts — so every
/// result is independent of where the writer happens to be. That makes the
/// correctness bar exact: the collected result vectors must be
/// byte-identical to a phase-separated oracle that first lands the whole
/// stream, then replays the identical probe sequences quiescently. The run
/// must also finish sanitizer-clean on both devices (under
/// `--features sanitize` the shadow checker watches every slab word the
/// pinned walks touch while the writer publishes and retires slabs).
pub fn readers_vs_writers(cfg: &ChurnConfig) -> Table {
    use std::collections::HashSet;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::time::Instant;

    let readers = cfg.readers.max(1);
    let (ds, stream) = stream_for(cfg);

    // Stable probe universe: membership the stream never disturbs.
    let deleted: HashSet<(u32, u32)> = stream.iter().flat_map(|r| r.del.iter().copied()).collect();
    let ever_inserted: HashSet<(u32, u32)> = ds
        .edges
        .iter()
        .copied()
        .chain(stream.iter().flat_map(|r| r.ins.iter().copied()))
        .collect();
    let present: Vec<(u32, u32)> = ds
        .edges
        .iter()
        .copied()
        .filter(|e| !deleted.contains(e))
        .take(1024)
        .collect();
    let absent: Vec<(u32, u32)> = insert_batch(ds.n_vertices, 4096, cfg.seed ^ 0x5eed)
        .into_iter()
        .filter(|p| !ever_inserted.contains(p) && p.0 != p.1)
        .take(1024)
        .collect();
    assert!(
        !present.is_empty() && !absent.is_empty(),
        "stable probe pools must be non-empty (dataset too small or stream deletes everything)"
    );

    // The scenario needs the metrics registry, which rides on the device
    // profiler; attach one for the graphs built here without disturbing
    // the process default the other runners see.
    let prev = gpu_sim::profiler::default_profiler();
    gpu_sim::profiler::set_default_profiler(Some(gpu_sim::ProfilerConfig::default()));
    let g = build_slab(&ds);
    gpu_sim::profiler::set_default_profiler(prev);
    let prof = g
        .device()
        .profiler()
        .expect("profiler attached at build")
        .clone();

    // Each reader's probe sequence is a pure function of (seed, reader
    // index), so the oracle can replay it exactly. Readers re-pin every
    // PIN_BATCH probes: eras advance under them, which is what forces the
    // allocator's coverage rule (no recycle while a reader era is pinned)
    // to actually carry the run.
    const PIN_BATCH: usize = 64;
    // Mutations go through the same pair→Edge conversion the backend
    // trait applies, so graph and oracle land byte-identical batches.
    let to_edges = |pairs: &[(u32, u32)]| -> Vec<slabgraph::Edge> {
        pairs.iter().map(|&p| slabgraph::Edge::from(p)).collect()
    };
    let probe_at = |rng: &mut u64| -> (u32, u32) {
        let x = splitmix64(rng);
        if x & 1 == 0 {
            present[(x >> 1) as usize % present.len()]
        } else {
            absent[(x >> 1) as usize % absent.len()]
        }
    };
    let quota = cfg.ops_per_round << scale_shift();
    let stop = AtomicBool::new(false);
    let observed: Vec<Vec<bool>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..readers as u64)
            .map(|r| {
                let (g, stop, prof) = (&g, &stop, &prof);
                let probe_at = &probe_at;
                s.spawn(move || {
                    let hist = prof.metrics().histogram("query.latency_us");
                    let mut rng = cfg.seed ^ (0x9e3779b9 + r);
                    let mut out = Vec::with_capacity(quota);
                    // Run at least the quota, and keep the pressure on
                    // until the writer has landed its final batch.
                    while out.len() < quota || !stop.load(Ordering::Acquire) {
                        let pin = g.pin_read();
                        for _ in 0..PIN_BATCH {
                            let (u, v) = probe_at(&mut rng);
                            let t0 = Instant::now();
                            let hit = g.edge_exists(&pin, u, v);
                            hist.record(t0.elapsed().as_micros() as u64);
                            out.push(hit);
                        }
                    }
                    out
                })
            })
            .collect();
        // The writer: the stream's mutation batches, back to back, racing
        // the pinned readers the whole way.
        for round in &stream {
            g.insert_edges(&to_edges(&round.ins));
            g.delete_edges(&to_edges(&round.del));
        }
        stop.store(true, Ordering::Release);
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    // Phase-separated oracle: identical build, whole stream landed with no
    // reader in flight, then the identical probe sequences replayed
    // against the quiescent graph.
    let prev = gpu_sim::profiler::default_profiler();
    gpu_sim::profiler::set_default_profiler(None);
    let oracle = build_slab(&ds);
    gpu_sim::profiler::set_default_profiler(prev);
    for round in &stream {
        oracle.insert_edges(&to_edges(&round.ins));
        oracle.delete_edges(&to_edges(&round.del));
    }
    let pin = oracle.pin_read();
    for (r, obs) in observed.iter().enumerate() {
        let mut rng = cfg.seed ^ (0x9e3779b9 + r as u64);
        let expect: Vec<bool> = (0..obs.len())
            .map(|_| {
                let (u, v) = probe_at(&mut rng);
                oracle.edge_exists(&pin, u, v)
            })
            .collect();
        assert_eq!(
            obs, &expect,
            "reader {r}: concurrent results must be byte-identical to the phase-separated oracle"
        );
    }
    for dev in [g.device(), oracle.device()] {
        let findings = dev.sanitizer_findings();
        assert!(
            findings.is_empty(),
            "readers-vs-writers must be sanitizer-clean, got {findings:?}"
        );
    }

    let snap = prof.metrics().histogram("query.latency_us").snapshot();
    let n_queries: usize = observed.iter().map(Vec::len).sum();
    assert_eq!(
        snap.count as usize, n_queries,
        "every probe must land one latency observation"
    );
    let mut t = Table::new(
        "readers_vs_writers",
        "Mixed readers vs writers: pinned query latency under concurrent mutation",
        &[
            "readers",
            "queries",
            "p50 us",
            "p95 us",
            "p99 us",
            "max us",
            "mean us",
            "writer batches",
        ],
    );
    t.row(vec![
        readers.to_string(),
        snap.count.to_string(),
        snap.quantile(0.50).to_string(),
        snap.quantile(0.95).to_string(),
        snap.quantile(0.99).to_string(),
        snap.max.to_string(),
        fnum(snap.sum as f64 / snap.count.max(1) as f64),
        (stream.len() * 2).to_string(),
    ]);
    t.note(format!(
        "{} reader thread(s) re-pin every {PIN_BATCH} probes while the writer lands {} insert/delete batches; \
         latency is host wall-clock per pinned membership probe (log2-bucketed, quantiles are bucket floors)",
        readers,
        stream.len() * 2
    ));
    t.note(
        "probes target stream-invariant membership; results asserted byte-identical to a \
         phase-separated oracle replay, both devices asserted sanitizer-clean",
    );
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use graph_gen::catalog;

    #[test]
    fn stream_is_deterministic_and_sized() {
        let ds = catalog::dataset("luxembourg_osm").unwrap().generate(512, 3);
        let cfg = ChurnConfig {
            dataset: "luxembourg_osm".into(),
            rounds: 3,
            ops_per_round: 100,
            insert_pct: 40,
            delete_pct: 30,
            seed: 9,
            scale: None,
            ..ChurnConfig::default()
        };
        let a = make_stream(&ds, &cfg);
        let b = make_stream(&ds, &cfg);
        assert_eq!(a.len(), 3);
        for (ra, rb) in a.iter().zip(&b) {
            assert_eq!(ra.ins, rb.ins);
            assert_eq!(ra.del, rb.del);
            assert_eq!(ra.qry, rb.qry);
            assert_eq!(ra.ins.len(), 40);
            assert_eq!(ra.del.len(), 30);
            assert_eq!(ra.qry.len(), 30);
        }
    }

    #[test]
    fn readers_vs_writers_smoke() {
        let cfg = ChurnConfig {
            dataset: "luxembourg_osm".into(),
            rounds: 3,
            ops_per_round: 256,
            insert_pct: 50,
            delete_pct: 25,
            seed: 17,
            scale: Some(512),
            readers: 3,
            ..ChurnConfig::default()
        };
        // The oracle byte-equality and sanitizer assertions live inside;
        // the table must report one row with every probe counted.
        let t = readers_vs_writers(&cfg);
        assert_eq!(t.rows.len(), 1);
        assert_eq!(t.rows[0][0], "3");
        let queries: usize = t.rows[0][1].parse().unwrap();
        assert!(
            queries >= 3 * 256,
            "each reader must at least exhaust its probe quota, got {queries}"
        );
    }

    #[test]
    fn deletes_target_previously_live_edges() {
        let ds = catalog::dataset("luxembourg_osm").unwrap().generate(512, 3);
        let cfg = ChurnConfig {
            dataset: "luxembourg_osm".into(),
            rounds: 2,
            ops_per_round: 50,
            insert_pct: 60,
            delete_pct: 20,
            seed: 5,
            scale: None,
            ..ChurnConfig::default()
        };
        let stream = make_stream(&ds, &cfg);
        let mut live: std::collections::HashSet<(u32, u32)> = ds.edges.iter().copied().collect();
        for r in &stream {
            for d in &r.del {
                assert!(live.contains(d), "delete of never-inserted edge {d:?}");
            }
            live.extend(r.ins.iter().copied());
        }
    }
}
