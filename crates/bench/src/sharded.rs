//! Multi-tenant sharded churn: a traffic generator simulating `M`
//! concurrent client sessions feeding the [`router::BatchRouter`], and a
//! scaling study replaying identical traffic at increasing shard counts.
//!
//! The single-structure churn runner ([`crate::churn`]) measures one
//! device; this module measures the *fleet*: per-flush modeled time is the
//! maximum over shards (they dispatch concurrently through the device
//! group's executor), so the headline metric is the makespan a perfectly
//! overlapped multi-GPU run would see. Per-shard rows expose the balance —
//! uniform traffic spreads, [`Skew::Adversarial`] traffic funnels every
//! primary copy through shard 0 and the makespan degrades accordingly.

use crate::churn::{ChurnConfig, Skew};
use crate::harness::{build_sharded, dataset_for, fnum, scale_shift, Table};
use gpu_sim::{CostModel, CounterSnapshot};
use router::{shard_of, BatchRouter, Update};
use slabgraph::Edge;

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// Draw one vertex id under the configured key distribution.
fn sample_vertex(rng: &mut u64, n_vertices: u32, skew: Skew, shards: usize) -> u32 {
    match skew {
        Skew::Uniform => (splitmix64(rng) % n_vertices as u64) as u32,
        Skew::Skewed => {
            // Cube a uniform sample: ~12.5% of the id space absorbs half
            // the traffic.
            let u = splitmix64(rng) as f64 / u64::MAX as f64;
            ((u * u * u * n_vertices as f64) as u32).min(n_vertices - 1)
        }
        Skew::Adversarial => {
            // Rejection-sample until shard 0 owns the id: the router has
            // no freedom left, every primary copy lands on one shard.
            loop {
                let v = (splitmix64(rng) % n_vertices as u64) as u32;
                if shard_of(v, shards) == 0 {
                    return v;
                }
            }
        }
    }
}

/// One round of multi-tenant traffic: per-session update lists (what each
/// client submits before the round's flush) plus a query batch.
pub struct TrafficRound {
    pub sessions: Vec<Vec<Update>>,
    pub qry: Vec<(u32, u32)>,
}

/// Generate the seeded multi-tenant stream for `shards` shards: `rounds`
/// rounds of `sessions` clients, splitting the configured insert/delete
/// budget evenly across sessions. Deletes target previously-live edges;
/// insert endpoints follow `cfg.skew` (adversarial skew is defined
/// relative to `shards`).
pub fn traffic_for(cfg: &ChurnConfig, ds: &graph_gen::Dataset, shards: usize) -> Vec<TrafficRound> {
    let ops = cfg.ops_per_round << scale_shift();
    let n_ins = ops * cfg.insert_pct as usize / 100;
    let n_del = ops * cfg.delete_pct as usize / 100;
    let n_qry = ops - n_ins - n_del;
    let sessions = cfg.sessions.max(1);
    let mut live: Vec<(u32, u32)> = ds.edges.clone();
    let mut rng = cfg.seed ^ 0x5ba4_7c15;
    let mut rounds = Vec::with_capacity(cfg.rounds);
    for _ in 0..cfg.rounds {
        let mut session_updates: Vec<Vec<Update>> = vec![Vec::new(); sessions];
        let mut inserted: Vec<(u32, u32)> = Vec::with_capacity(n_ins);
        for i in 0..n_ins {
            let src = sample_vertex(&mut rng, ds.n_vertices, cfg.skew, shards);
            let mut dst = sample_vertex(&mut rng, ds.n_vertices, cfg.skew, shards);
            if dst == src {
                dst = (dst + 1) % ds.n_vertices;
            }
            inserted.push((src, dst));
            session_updates[i % sessions].push(Update::Insert(Edge::new(src, dst)));
        }
        for i in 0..n_del {
            let (u, v) = live[(splitmix64(&mut rng) % live.len() as u64) as usize];
            session_updates[i % sessions].push(Update::Delete(Edge::new(u, v)));
        }
        let qry: Vec<(u32, u32)> = (0..n_qry)
            .map(|i| {
                if i % 2 == 0 {
                    live[(splitmix64(&mut rng) % live.len() as u64) as usize]
                } else {
                    let u = sample_vertex(&mut rng, ds.n_vertices, cfg.skew, shards);
                    let v = sample_vertex(&mut rng, ds.n_vertices, cfg.skew, shards);
                    (u, v)
                }
            })
            .collect();
        live.extend_from_slice(&inserted);
        rounds.push(TrafficRound {
            sessions: session_updates,
            qry,
        });
    }
    rounds
}

/// What one shard-count replay measured.
struct ScalePoint {
    updates: u64,
    queries: u64,
    hits: u64,
    /// Sum over rounds of the flush makespan (max over shards per flush).
    update_s: f64,
    /// Sum over rounds of the query makespan.
    query_s: f64,
    /// Per-shard (ops routed, modeled seconds) over the whole run.
    per_shard: Vec<(u64, f64)>,
}

fn replay_at(cfg: &ChurnConfig, ds: &graph_gen::Dataset, shards: usize) -> ScalePoint {
    let traffic = traffic_for(cfg, ds, shards);
    let g = build_sharded(ds, shards);
    let router = BatchRouter::new(&g);
    let model = CostModel::titan_v();
    let mut point = ScalePoint {
        updates: 0,
        queries: 0,
        hits: 0,
        update_s: 0.0,
        query_s: 0.0,
        per_shard: vec![(0, 0.0); shards],
    };
    for round in &traffic {
        // Sessions submit concurrently — arrival interleaving is racy on
        // purpose; the router's flush order is deterministic regardless.
        std::thread::scope(|sc| {
            for (sid, updates) in round.sessions.iter().enumerate() {
                let router = &router;
                sc.spawn(move || {
                    for &u in updates {
                        router.submit(sid, u);
                    }
                });
            }
        });
        let report = router.flush();
        assert!(
            report.is_complete(),
            "scaling replay must not hit the memory ceiling (shards {shards})"
        );
        point.updates += report.updates as u64;
        point.update_s += report.modeled_s();
        for so in &report.shards {
            let routed = so.insert.as_ref().map_or(0, |o| o.attempted as u64)
                + so.delete.as_ref().map_or(0, |o| o.attempted as u64);
            point.per_shard[so.shard].0 += routed;
            point.per_shard[so.shard].1 += so.modeled_s;
        }

        let before: Vec<CounterSnapshot> = g
            .group()
            .devices()
            .iter()
            .map(|d| d.counters().snapshot())
            .collect();
        let found = g.edges_exist(&round.qry);
        point.query_s += g
            .group()
            .devices()
            .iter()
            .zip(&before)
            .map(|(d, b)| model.seconds(&d.counters().snapshot().delta(b)))
            .fold(0.0, f64::max);
        point.queries += round.qry.len() as u64;
        point.hits += found.iter().filter(|&&b| b).count() as u64;
    }
    g.validate()
        .expect("cross-shard audit must pass after the scaling replay");
    point
}

/// Replay identical multi-tenant traffic at each shard count and tabulate
/// the modeled-throughput scaling, plus a per-shard load table. Returns
/// `(scaling, per_shard)`.
pub fn sharded_scaling(cfg: &ChurnConfig, shard_counts: &[usize]) -> (Table, Table) {
    let ds = dataset_for(cfg);

    let mut scaling = Table::new(
        "churn_sharded",
        "Sharded churn: multi-tenant batch-router throughput vs shard count",
        &[
            "shards",
            "sessions",
            "skew",
            "updates MUps",
            "queries Mq/s",
            "update modeled ms",
            "query hits",
            "speedup vs 1 shard",
        ],
    );
    let mut per_shard = Table::new(
        "churn_shard_throughput",
        "Sharded churn: per-shard routed load and modeled time",
        &["shards", "shard", "ops routed", "modeled ms", "MUps"],
    );

    let rate = |items: u64, secs: f64| {
        if secs <= 0.0 {
            0.0
        } else {
            items as f64 / secs / 1e6
        }
    };
    let mut base_rate: Option<f64> = None;
    let mut hit_counts: Vec<u64> = Vec::new();
    for &n in shard_counts {
        let p = replay_at(cfg, &ds, n);
        let ups = rate(p.updates, p.update_s);
        let speedup = match base_rate {
            None => {
                base_rate = Some(ups);
                1.0
            }
            Some(b) => {
                if b > 0.0 {
                    ups / b
                } else {
                    0.0
                }
            }
        };
        hit_counts.push(p.hits);
        scaling.row(vec![
            n.to_string(),
            cfg.sessions.max(1).to_string(),
            cfg.skew.to_string(),
            fnum(ups),
            fnum(rate(p.queries, p.query_s)),
            fnum(p.update_s * 1e3),
            p.hits.to_string(),
            fnum(speedup),
        ]);
        for (s, &(ops, secs)) in p.per_shard.iter().enumerate() {
            per_shard.row(vec![
                n.to_string(),
                s.to_string(),
                ops.to_string(),
                fnum(secs * 1e3),
                fnum(rate(ops, secs)),
            ]);
        }
    }
    // Identical traffic must produce identical query results at every
    // shard count (adversarial skew regenerates per count, where hit
    // parity is still expected because the stream itself is identical
    // whenever the sampler ignores the shard count).
    if cfg.skew != Skew::Adversarial {
        assert!(
            hit_counts.windows(2).all(|w| w[0] == w[1]),
            "shard counts disagree on query results: {hit_counts:?}"
        );
    }
    scaling.note(format!(
        "dataset {} | {} rounds x {} ops, {} session(s), skew {}; modeled flush time = max over shards (concurrent dispatch)",
        cfg.dataset,
        cfg.rounds,
        cfg.ops_per_round << scale_shift(),
        cfg.sessions.max(1),
        cfg.skew,
    ));
    (scaling, per_shard)
}

#[cfg(test)]
mod tests {
    use super::*;
    use graph_gen::catalog;

    fn small_cfg() -> ChurnConfig {
        ChurnConfig {
            dataset: "luxembourg_osm".into(),
            rounds: 2,
            ops_per_round: 200,
            insert_pct: 50,
            delete_pct: 25,
            seed: 13,
            scale: Some(512),
            shards: 2,
            sessions: 3,
            skew: Skew::Uniform,
            readers: 0,
        }
    }

    #[test]
    fn traffic_is_deterministic_and_splits_sessions() {
        let cfg = small_cfg();
        let ds = catalog::dataset("luxembourg_osm")
            .unwrap()
            .generate(512, 13);
        let a = traffic_for(&cfg, &ds, 2);
        let b = traffic_for(&cfg, &ds, 2);
        assert_eq!(a.len(), 2);
        for (ra, rb) in a.iter().zip(&b) {
            assert_eq!(ra.sessions.len(), 3);
            assert_eq!(ra.sessions, rb.sessions);
            assert_eq!(ra.qry, rb.qry);
            let total: usize = ra.sessions.iter().map(Vec::len).sum();
            assert_eq!(total, 100 + 50, "insert + delete budget");
            assert_eq!(ra.qry.len(), 50);
        }
    }

    #[test]
    fn adversarial_traffic_targets_shard_zero() {
        let cfg = ChurnConfig {
            skew: Skew::Adversarial,
            ..small_cfg()
        };
        let ds = catalog::dataset("luxembourg_osm")
            .unwrap()
            .generate(512, 13);
        for round in traffic_for(&cfg, &ds, 4) {
            for session in &round.sessions {
                for u in session {
                    if let Update::Insert(e) = u {
                        assert_eq!(shard_of(e.src, 4), 0, "src must be shard-0-owned");
                    }
                }
            }
        }
    }

    #[test]
    fn scaling_replays_are_consistent() {
        let (scaling, per_shard) = sharded_scaling(&small_cfg(), &[1, 2]);
        assert_eq!(scaling.rows.len(), 2);
        assert_eq!(per_shard.rows.len(), 1 + 2);
        // Same traffic, same hits at both shard counts (asserted inside),
        // and the 1-shard row is the speedup baseline.
        assert_eq!(scaling.rows[0][7], "1.000");
    }
}
