//! The paper's evaluation, experiment by experiment (§VI, Tables I–IX and
//! Figures 2–3). Every function returns a [`Table`]; binaries print them.
//!
//! Since every structure implements [`backend::GraphBackend`], each
//! experiment is a **generic driver**: it registers a list of
//! `Contender`s (label + build recipe) and loops one measurement body
//! over them. Adding a structure to a table means adding one contender
//! line, not a new measurement arm.
//!
//! Throughputs/times are from modeled GPU time (DESIGN.md §2); the raw
//! wall-clock of the simulation is recorded in the JSON notes where useful.

use crate::harness::{fnum, measure, scale_shift, trace_begin, trace_complete, Table};
use algos::tc;
use backend::GraphBackend;
use baselines::{sort, Csr, FaimGraph, Hornet};
use graph_gen::{catalog, insert_batch, mirror, rmat_edges, vertex_batch, weighted, RmatParams};
use slabgraph::{Direction, DynGraph, Edge, GraphConfig, TableKind};

/// Datasets used by the update-rate tables (a representative spread of
/// Table I's families, kept small enough for the single-core simulator).
const UPDATE_DATASETS: [&str; 6] = [
    "luxembourg_osm",
    "road_usa",
    "delaunay_n20",
    "rgg_n_2_20_s0",
    "coAuthorsDBLP",
    "soc-LiveJournal1",
];

/// Paper Table IV's four datasets.
const VDEL_DATASETS: [&str; 4] = [
    "soc-orkut",
    "soc-LiveJournal1",
    "delaunay_n23",
    "germany_osm",
];

fn to_edges(raw: &[(u32, u32)]) -> Vec<Edge> {
    weighted(raw, 99).into_iter().map(Edge::from).collect()
}

fn graph_config(ds: &graph_gen::Dataset, kind: TableKind, direction: Direction) -> GraphConfig {
    let mut c = GraphConfig::directed_map(ds.n_vertices);
    c.kind = kind;
    c.direction = direction;
    c.device_words = (ds.edges.len() * 12).max(1 << 20);
    c.pool_slabs = (ds.edges.len() / 64).max(1 << 10);
    c
}

fn build_ours(ds: &graph_gen::Dataset, kind: TableKind, direction: Direction) -> DynGraph {
    DynGraph::bulk_build(graph_config(ds, kind, direction), &to_edges(&ds.edges))
}

fn device_words(ds: &graph_gen::Dataset) -> usize {
    (ds.edges.len() * 8).max(1 << 20)
}

type BuildFn = Box<dyn Fn(&graph_gen::Dataset) -> Box<dyn GraphBackend>>;

/// One registered structure in a generic benchmark driver: a column
/// label plus a recipe turning a dataset into a boxed backend. Each
/// experiment registers the contenders the corresponding paper table
/// compares (with the experiment's own sizing/symmetrisation knobs baked
/// into the recipe) and runs a single measurement body over them.
struct Contender {
    label: &'static str,
    build: BuildFn,
}

impl Contender {
    fn new(
        label: &'static str,
        build: impl Fn(&graph_gen::Dataset) -> Box<dyn GraphBackend> + 'static,
    ) -> Self {
        Contender {
            label,
            build: Box::new(build),
        }
    }
}

/// Table I — dataset catalog: paper stats vs. generated scaled stats.
pub fn table1() -> Table {
    let mut t = Table::new(
        "table1",
        "Datasets (paper scale vs. generated scale)",
        &[
            "dataset",
            "paper |V|",
            "paper |E|",
            "paper avg",
            "paper σ",
            "gen |V|",
            "gen |E|",
            "gen avg",
            "gen σ",
            "gen max",
        ],
    );
    for spec in catalog::datasets() {
        let ds = spec.generate_default(17);
        let s = ds.stats();
        t.row(vec![
            spec.name.into(),
            spec.paper_vertices.to_string(),
            spec.paper_edges.to_string(),
            fnum(spec.paper_avg_degree),
            fnum(spec.paper_degree_sigma),
            s.vertices.to_string(),
            s.edges.to_string(),
            fnum(s.avg),
            fnum(s.stddev),
            s.max.to_string(),
        ]);
    }
    t.note("generated instances are degree-matched synthetics (DESIGN.md §2)");
    t
}

/// Mean over per-dataset rates.
fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Table II — mean edge-insertion rates (MEdge/s) per batch size, for
/// Hornet, faimGraph, and ours.
pub fn table2_edge_insertion() -> Table {
    update_rate_table(false)
}

/// Table III — mean edge-deletion rates (MEdge/s) per batch size.
pub fn table3_edge_deletion() -> Table {
    update_rate_table(true)
}

fn update_rate_table(deletion: bool) -> Table {
    let (id, title) = if deletion {
        ("table3", "Mean edge deletion rates (MEdge/s)")
    } else {
        ("table2", "Mean edge insertion rates (MEdge/s)")
    };
    // Registered contenders, in column order. Every measurement below is
    // one generic body: build, run the batched update through the trait,
    // attribute the counter delta per kernel.
    let contenders = [
        Contender::new("Hornet", |ds| {
            Box::new(Hornet::bulk_build(
                ds.n_vertices,
                &ds.edges,
                device_words(ds),
            ))
        }),
        Contender::new("faimGraph", |ds| {
            Box::new(FaimGraph::build(ds.n_vertices, &ds.edges, device_words(ds)))
        }),
        Contender::new("Ours", |ds| {
            Box::new(build_ours(ds, TableKind::Map, Direction::Directed))
        }),
    ];
    let mut headers = vec!["batch"];
    headers.extend(contenders.iter().map(|c| c.label));
    let mut t = Table::new(id, title, &headers);
    let shift = scale_shift();
    let batch_exps: Vec<u32> = (12..=15).map(|e| e + shift).collect();
    let specs: Vec<_> = UPDATE_DATASETS
        .iter()
        .map(|n| catalog::dataset(n).unwrap())
        .collect();
    let datasets: Vec<_> = specs.iter().map(|s| s.generate_default(21)).collect();

    for (bi, &be) in batch_exps.iter().enumerate() {
        let bsz = 1usize << be;
        let mut rates: Vec<Vec<f64>> = vec![vec![]; contenders.len()];
        for (di, ds) in datasets.iter().enumerate() {
            let batch = insert_batch(ds.n_vertices, bsz, 1000 + bi as u64);
            for (ci, c) in contenders.iter().enumerate() {
                let mut g = (c.build)(ds);
                let (before, t0) = trace_begin(g.device());
                if deletion {
                    g.delete_edges(&batch);
                } else {
                    g.insert_edges(&batch);
                }
                let (m, report) = trace_complete(g.device(), before, t0);
                assert_eq!(
                    report.kernel_sum(),
                    m.counters,
                    "per-kernel counters must sum to the phase's global delta"
                );
                if c.label == "Ours" && bi == batch_exps.len() - 1 && di == 0 {
                    t.breakdown(format!("ours, {} batch 2^{be}", specs[di].name), report);
                }
                rates[ci].push(m.mrate(bsz as u64));
            }
        }
        let mut cells = vec![format!("2^{be}")];
        cells.extend(rates.iter().map(|r| fnum(mean(r))));
        t.row(cells);
    }
    t.note(format!(
        "mean over {:?}; batches are random pairs over existing vertices, duplicates allowed",
        UPDATE_DATASETS
    ));
    t
}

/// Table IV — vertex-deletion throughput (MVertex/s), faimGraph vs ours,
/// averaged over the paper's four datasets, undirected graphs.
pub fn table4_vertex_deletion() -> Table {
    let contenders = [
        Contender::new("faimGraph", |ds| {
            Box::new(FaimGraph::build(
                ds.n_vertices,
                &mirror(&ds.edges),
                device_words(ds) * 2,
            ))
        }),
        Contender::new("Ours", |ds| {
            Box::new(build_ours(ds, TableKind::Map, Direction::Undirected))
        }),
    ];
    let mut headers = vec!["batch"];
    headers.extend(contenders.iter().map(|c| c.label));
    let mut t = Table::new(
        "table4",
        "Mean vertex deletion throughput (MVertex/s)",
        &headers,
    );
    let shift = scale_shift();
    let batch_exps: Vec<u32> = (6..=9).map(|e| e + shift).collect();
    let specs: Vec<_> = VDEL_DATASETS
        .iter()
        .map(|n| catalog::dataset(n).unwrap())
        .collect();
    // Smaller instances: vertex deletion is the heaviest op to simulate.
    let datasets: Vec<_> = specs
        .iter()
        .map(|s| s.generate(s.default_scale() / 4, 23))
        .collect();

    for (bi, &be) in batch_exps.iter().enumerate() {
        let bsz = 1usize << be;
        let mut rates: Vec<Vec<f64>> = vec![vec![]; contenders.len()];
        for ds in &datasets {
            let victims = vertex_batch(
                ds.n_vertices,
                bsz.min(ds.n_vertices as usize / 2),
                77 + bi as u64,
            );
            for (ci, c) in contenders.iter().enumerate() {
                let mut g = (c.build)(ds);
                assert!(
                    g.caps().delete_vertices,
                    "{} cannot delete vertices",
                    g.name()
                );
                let (before, t0) = trace_begin(g.device());
                g.delete_vertices(&victims);
                let (m, _) = trace_complete(g.device(), before, t0);
                rates[ci].push(m.mrate(victims.len() as u64));
            }
        }
        let mut cells = vec![format!("2^{be}")];
        cells.extend(rates.iter().map(|r| fnum(mean(r))));
        t.row(cells);
    }
    t.note("Hornet omitted: it does not implement vertex deletion (paper §VI-A3)");
    t
}

/// Table V — bulk-build elapsed time (modeled ms), Hornet vs ours.
pub fn table5_bulk_build() -> Table {
    let contenders = vec![
        Contender::new("Hornet", |ds| {
            Box::new(Hornet::bulk_build(
                ds.n_vertices,
                &ds.edges,
                device_words(ds),
            ))
        }),
        Contender::new("Ours", |ds| {
            Box::new(build_ours(ds, TableKind::Map, Direction::Directed))
        }),
    ];
    let mut headers = vec!["dataset"];
    headers.extend(contenders.iter().map(|c| c.label));
    let mut t = Table::new("table5", "Bulk build elapsed time (modeled ms)", &headers);
    let model = gpu_sim::CostModel::titan_v();
    for spec in catalog::datasets() {
        let ds = spec.generate_default(29);

        // The build *is* the measured operation: construct each structure
        // and read its device counters afterwards.
        let mut cells = vec![spec.name.to_string()];
        let mut edge_counts: Vec<u64> = vec![];
        for c in &contenders {
            let g = (c.build)(&ds);
            let ms = model.seconds(&g.device().counters().snapshot()) * 1e3;
            edge_counts.push(g.num_edges());
            cells.push(fnum(ms));
        }
        assert!(
            edge_counts.windows(2).all(|w| w[0] == w[1]),
            "{}: structures disagree on unique edges: {edge_counts:?}",
            spec.name
        );
        t.row(cells);
    }
    t.note("build = COO batch -> structure, including sort/dedup (Hornet) and table init (ours)");
    t
}

/// Table VI — incremental build mean insertion rates (MEdge/s): empty
/// graph, known vertex bound, single-bucket tables; batched inserts.
pub fn table6_incremental_build() -> Table {
    let contenders = [
        Contender::new("Hornet", |ds| {
            Box::new(Hornet::new(ds.n_vertices, device_words(ds)))
        }),
        // Ours: one bucket per vertex (§V-B2's worst case for us).
        Contender::new("Ours", |ds| {
            Box::new(DynGraph::with_uniform_buckets(
                graph_config(ds, TableKind::Map, Direction::Directed),
                ds.n_vertices,
                1,
            ))
        }),
    ];
    let mut headers = vec!["batch"];
    headers.extend(contenders.iter().map(|c| c.label));
    let mut t = Table::new(
        "table6",
        "Incremental build mean edge insertion rates (MEdge/s)",
        &headers,
    );
    let shift = scale_shift();
    let names = ["ldoor", "delaunay_n23", "road_usa", "soc-LiveJournal1"];
    let datasets: Vec<_> = names
        .iter()
        .map(|n| catalog::dataset(n).unwrap().generate_default(31))
        .collect();
    for be in [12 + shift, 13 + shift, 14 + shift] {
        let bsz = 1usize << be;
        let mut rates: Vec<Vec<f64>> = vec![vec![]; contenders.len()];
        for ds in &datasets {
            for (ci, c) in contenders.iter().enumerate() {
                let mut g = (c.build)(ds);
                let (before, t0) = trace_begin(g.device());
                for chunk in ds.edges.chunks(bsz) {
                    g.insert_edges(chunk);
                }
                let (m, _) = trace_complete(g.device(), before, t0);
                rates[ci].push(m.mrate(ds.edges.len() as u64));
            }
        }
        let mut cells = vec![format!("2^{be}")];
        cells.extend(rates.iter().map(|r| fnum(mean(r))));
        t.row(cells);
    }
    t.note(format!(
        "mean over {names:?}; ours starts with 1 bucket/vertex"
    ));
    t
}

/// TC-specific scale: intersection workloads grow with Σ deg², so the
/// heavy-tailed datasets run at reduced vertex counts.
fn tc_scale(spec: &catalog::DatasetSpec) -> u32 {
    let base = match spec.family {
        catalog::Family::ScaleFree | catalog::Family::Mesh => 2048,
        catalog::Family::Geometric => 4096,
        _ => spec.default_scale() / 2,
    };
    (base << scale_shift()).min(spec.default_scale().max(4096))
}

/// Table VII — static triangle counting time (modeled ms), Hornet /
/// faimGraph / ours (set variant). One generic `tc` serves all three;
/// the backend's capabilities choose hash-probe vs sorted-merge.
pub fn table7_static_tc() -> Table {
    let contenders = vec![
        Contender::new("Hornet", |ds| {
            Box::new(Hornet::bulk_build(
                ds.n_vertices,
                &mirror(&ds.edges),
                device_words(ds) * 2,
            ))
        }),
        Contender::new("faimGraph", |ds| {
            Box::new(FaimGraph::build(
                ds.n_vertices,
                &mirror(&ds.edges),
                device_words(ds) * 2,
            ))
        }),
        Contender::new("Ours", |ds| {
            Box::new(build_ours(ds, TableKind::Set, Direction::Undirected))
        }),
    ];
    let mut headers = vec!["dataset"];
    headers.extend(contenders.iter().map(|c| c.label));
    headers.push("triangles");
    let mut t = Table::new(
        "table7",
        "Static triangle counting time (modeled ms)",
        &headers,
    );
    for spec in catalog::datasets() {
        let ds = spec.generate(tc_scale(&spec), 37);
        let mut cells = vec![spec.name.to_string()];
        let mut counts: Vec<u64> = vec![];
        for c in &contenders {
            let mut g = (c.build)(&ds);
            g.ensure_sorted(); // sort cost reported in Table VIII
            let mut count = 0;
            let m = measure(g.device(), || {
                count = tc(g.as_ref());
            });
            counts.push(count);
            cells.push(fnum(m.modeled_ms()));
        }
        assert!(
            counts.windows(2).all(|w| w[0] == w[1]),
            "{}: TC mismatch across structures: {counts:?}",
            spec.name
        );
        cells.push(counts[0].to_string());
        t.row(cells);
    }
    t.note("list baselines intersect pre-sorted lists; sort cost excluded here (Table VIII)");
    t
}

/// Table VIII — adjacency sort cost (modeled ms): CUB-style segmented sort
/// of a CSR vs faimGraph's per-adjacency sort.
pub fn table8_sort_cost() -> Table {
    let mut t = Table::new(
        "table8",
        "Adjacency sort time (modeled ms)",
        &["dataset", "Sort CSR (CUB-style)", "Sort faimGraph"],
    );
    for spec in catalog::datasets() {
        // Sort cost needs no triangle counting, so run at full bench scale
        // (the Σ deg² effect needs real hub degrees to show).
        let ds = spec.generate_default(41);
        let sym = mirror(&ds.edges);

        let csr = Csr::build(ds.n_vertices, &sym, device_words(&ds) * 2);
        let segs = csr.segments();
        let mut vals: Vec<u32> = (0..csr.num_edges() as u32).collect();
        let m_c = measure(csr.device(), || {
            sort::segmented_sort(csr.device(), &segs, &mut vals);
        });

        let f = FaimGraph::build(ds.n_vertices, &sym, device_words(&ds) * 2);
        let m_f = measure(f.device(), || {
            f.sort_adjacencies();
        });

        t.row(vec![
            spec.name.into(),
            fnum(m_c.modeled_ms()),
            fnum(m_f.modeled_ms()),
        ]);
    }
    t.note("faimGraph's sort wins on small max-degree graphs, loses badly on scale-free ones");
    t
}

/// Table IX — dynamic TC: five rounds of (insert batch, recount), ours vs
/// Hornet (which must re-sort each round), on a road-like and a
/// hollywood-like dataset.
pub fn table9_dynamic_tc() -> Table {
    let mut t = Table::new(
        "table9",
        "Dynamic TC cumulative time (modeled ms): insert batch then count",
        &[
            "dataset",
            "iter",
            "ours insert",
            "ours TC",
            "ours total",
            "hornet insert",
            "hornet TC(+sort)",
            "hornet total",
            "speedup",
        ],
    );
    let shift = scale_shift();
    for name in ["road_usa", "hollywood-2009"] {
        let spec = catalog::dataset(name).unwrap();
        let ds = spec.generate(tc_scale(&spec) / 2, 43);
        let batch_size = 1usize << (11 + shift);

        // Persistent structures, updated round by round. Ours stores the
        // undirected graph internally; Hornet needs explicitly mirrored
        // batches and incremental re-sort maintenance before counting.
        struct Dynamic {
            g: Box<dyn GraphBackend>,
            mirror_batches: bool,
            ins_ms: f64,
            tc_ms: f64,
        }
        let mut contenders = [
            Dynamic {
                g: Box::new(DynGraph::with_uniform_buckets(
                    graph_config(&ds, TableKind::Set, Direction::Undirected),
                    ds.n_vertices,
                    1,
                )),
                mirror_batches: false,
                ins_ms: 0.0,
                tc_ms: 0.0,
            },
            Dynamic {
                g: Box::new(Hornet::new(ds.n_vertices, device_words(&ds) * 2)),
                mirror_batches: true,
                ins_ms: 0.0,
                tc_ms: 0.0,
            },
        ];

        for iter in 1..=5u32 {
            let batch = insert_batch(ds.n_vertices, batch_size, 500 + iter as u64);
            let mut tris: Vec<u64> = vec![];
            for c in &mut contenders {
                let (edges, touched): (Vec<(u32, u32)>, Vec<u32>) = if c.mirror_batches {
                    let sym = mirror(&batch);
                    let touched = sym.iter().map(|&(u, _)| u).collect();
                    (sym, touched)
                } else {
                    (batch.clone(), vec![])
                };

                let (before, t0) = trace_begin(c.g.device());
                c.g.insert_edges(&edges);
                let (m, _) = trace_complete(c.g.device(), before, t0);
                c.ins_ms += m.modeled_ms();

                let (before, t0) = trace_begin(c.g.device());
                // Incremental sort maintenance: only batch-touched lists
                // (a no-op for the hash-based structure).
                c.g.ensure_sorted_touched(&touched);
                let tri = tc(c.g.as_ref());
                let (m, _) = trace_complete(c.g.device(), before, t0);
                c.tc_ms += m.modeled_ms();
                tris.push(tri);
            }
            assert!(
                tris.windows(2).all(|w| w[0] == w[1]),
                "{name}: iter {iter} TC mismatch: {tris:?}"
            );
            let (o, h) = (&contenders[0], &contenders[1]);
            t.row(vec![
                name.into(),
                iter.to_string(),
                fnum(o.ins_ms),
                fnum(o.tc_ms),
                fnum(o.ins_ms + o.tc_ms),
                fnum(h.ins_ms),
                fnum(h.tc_ms),
                fnum(h.ins_ms + h.tc_ms),
                fnum((h.ins_ms + h.tc_ms) / (o.ins_ms + o.tc_ms)),
            ]);
        }
    }
    t.note("cumulative over rounds, as in the paper; Hornet TC includes per-round re-sort");
    t
}

/// Fig. 2 — load-factor sweep on directed RMAT graphs: insertion rate,
/// memory utilization, and memory usage vs. average chain length.
pub fn fig2_load_factor() -> Table {
    let mut t = Table::new(
        "fig2",
        "Load-factor sweep (RMAT): rate / utilization / memory vs chain length",
        &[
            "avg degree",
            "load factor",
            "avg chain",
            "MEdge/s",
            "utilization",
            "memory MB",
        ],
    );
    let shift = scale_shift();
    let v_exp = 11 + shift;
    let n_vertices = 1u32 << v_exp;
    for avg_deg in [15usize, 45, 90, 135] {
        let raw = rmat_edges(v_exp, n_vertices as usize * avg_deg, RmatParams::flat(), 53);
        let edges = to_edges(&raw);
        let mut degrees = vec![0u32; n_vertices as usize];
        for e in &edges {
            if e.src != e.dst {
                degrees[e.src as usize] += 1;
            }
        }
        for lf in [0.35, 0.7, 1.5, 3.0, 5.0] {
            let cfg = GraphConfig::directed_map(n_vertices)
                .with_load_factor(lf)
                .with_device_words(edges.len() * 12)
                .with_pool_slabs((edges.len() / 64).max(1 << 10));
            let g = DynGraph::with_degree_hints(cfg, &degrees);
            let m = measure(g.device(), || {
                g.insert_edges(&edges);
            });
            let stats = g.stats(&g.pin_read());
            t.row(vec![
                avg_deg.to_string(),
                fnum(lf),
                fnum(stats.avg_chain()),
                fnum(m.mrate(edges.len() as u64)),
                fnum(stats.utilization()),
                fnum(stats.memory_bytes() as f64 / 1e6),
            ]);
        }
    }
    t.note("paper: 2^20-vertex RMAT, 15M-135M edges; here scaled per DESIGN.md §8");
    t
}

/// Fig. 3 — static TC time vs chain length (load-factor sweep) on
/// undirected RMAT graphs; the optimum sits near load factor 0.7.
pub fn fig3_tc_load_factor() -> Table {
    let mut t = Table::new(
        "fig3",
        "Static TC time vs chain length (load-factor sweep, RMAT)",
        &[
            "avg degree",
            "load factor",
            "avg chain",
            "TC modeled ms",
            "triangles",
        ],
    );
    let shift = scale_shift();
    let v_exp = 10 + shift;
    let n_vertices = 1u32 << v_exp;
    for avg_deg in [32usize, 64] {
        let raw = rmat_edges(
            v_exp,
            n_vertices as usize * avg_deg / 2,
            RmatParams::flat(),
            59,
        );
        let edges: Vec<Edge> = raw.iter().map(|&p| Edge::from(p)).collect();
        let mut degrees = vec![0u32; n_vertices as usize];
        for e in &edges {
            if e.src != e.dst {
                degrees[e.src as usize] += 1;
                degrees[e.dst as usize] += 1;
            }
        }
        for lf in [0.2, 0.35, 0.5, 0.7, 1.0, 1.5, 2.5, 4.0] {
            let mut cfg = GraphConfig::undirected_set(n_vertices)
                .with_load_factor(lf)
                .with_device_words(edges.len() * 12)
                .with_pool_slabs((edges.len() / 64).max(1 << 10));
            cfg.kind = TableKind::Set;
            let g = DynGraph::with_degree_hints(cfg, &degrees);
            g.insert_edges(&edges);
            let stats = g.stats(&g.pin_read());
            let mut tri = 0;
            let m = measure(g.device(), || {
                tri = tc(&g);
            });
            t.row(vec![
                avg_deg.to_string(),
                fnum(lf),
                fnum(stats.avg_chain()),
                fnum(m.modeled_ms()),
                tri.to_string(),
            ]);
        }
    }
    t.note("paper Fig. 3: optimum near load factor 0.7");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    // Smoke tests: each experiment runs end-to-end at tiny scale and
    // produces a well-formed table. (Full-scale runs are the binaries.)

    #[test]
    fn table1_has_all_datasets() {
        let t = table1();
        assert_eq!(t.rows.len(), 12);
    }

    #[test]
    fn mean_of_empty_is_zero() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
    }

    #[test]
    fn mirror_doubles() {
        assert_eq!(mirror(&[(1, 2)]), vec![(1, 2), (2, 1)]);
    }
}
