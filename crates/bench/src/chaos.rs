//! Chaos-churn: the multi-tenant router stream replayed while a seeded
//! schedule kills and revives shards mid-stream.
//!
//! Each kill arms [`gpu_sim::FaultPlan::device_lost_at`] on a victim
//! shard's device, so the next flush drives the router's health machine
//! to Down and opens the circuit breaker; the shard's traffic is held in
//! the write-ahead journal while reads degrade to surviving replicas.
//! Each revive calls [`router::BatchRouter::rebuild_downed`] — device
//! reset, journal replay, cross-shard audit, re-admission. The run ends
//! by reviving everything and asserting the sharded graph's final state
//! is byte-identical to an unsharded replay of the same stream, that the
//! audit passes, and that every device is sanitizer-clean.

use crate::churn::ChurnConfig;
use crate::harness::{build_sharded, dataset_for, fnum, slab_config, Table};
use crate::sharded::traffic_for;
use gpu_sim::FaultPlan;
use router::{BatchRouter, ReadQuality, Update};
use slabgraph::{DynGraph, Edge};

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

fn mix(h: u64, x: u64) -> u64 {
    let mut s = h ^ x;
    s = splitmix64(&mut s);
    s
}

/// Order-insensitive-across-vertices, order-exact-within-adjacency digest
/// of a graph's full state: every `(u, v, weight)` triple, neighbors
/// sorted. Two graphs digest equal iff their edge sets and weights are
/// byte-identical.
fn state_digest(
    n_vertices: u32,
    neighbors: impl Fn(u32) -> Vec<u32>,
    weight: impl Fn(u32, u32) -> u32,
) -> u64 {
    let mut h = 0xd6e8_feb8_6659_fd93u64;
    for u in 0..n_vertices {
        let mut ns = neighbors(u);
        ns.sort_unstable();
        for v in ns {
            h = mix(h, ((u as u64) << 32) | v as u64);
            h = mix(h, weight(u, v) as u64);
        }
    }
    h
}

/// What the chaos schedule did before one round's flush.
enum Action {
    None,
    Kill(usize),
    Revive(Vec<usize>),
}

/// Run the chaos-churn replay and tabulate per-round fault-tolerance
/// behavior. Panics (deliberately — this is the correctness harness the
/// CI smoke leans on) if the breaker charges launches to a Down shard,
/// the final state diverges from the unsharded replay, the cross-shard
/// audit fails, or any device reports sanitizer findings.
pub fn chaos_churn(cfg: &ChurnConfig) -> Table {
    let shards = cfg.shards.max(2);
    let ds = dataset_for(cfg);
    let traffic = traffic_for(cfg, &ds, shards);
    let g = build_sharded(&ds, shards);
    let router = BatchRouter::new(&g);

    // Unsharded reference: same bulk load, same per-round coalesced
    // apply order (inserts before deletes).
    let reference = DynGraph::bulk_build(
        slab_config(&ds),
        &graph_gen::weighted(&ds.edges, 99)
            .into_iter()
            .map(Edge::from)
            .collect::<Vec<_>>(),
    );

    let mut table = Table::new(
        "churn_chaos",
        "Chaos churn: seeded shard kill/revive under multi-tenant router traffic",
        &[
            "round",
            "action",
            "updates",
            "down shards",
            "journal depth",
            "degraded reads",
            "flush ms",
        ],
    );

    let mut rng = cfg.seed ^ 0xc4a0_5e97;
    let mut kills = 0u64;
    let mut revives = 0u64;
    for (r, round) in traffic.iter().enumerate() {
        // Seeded schedule: kill a healthy shard on rounds 1 mod 3, try a
        // revive on rounds 0 mod 3 (after the first), otherwise leave the
        // fleet alone. Victims are drawn from the seeded stream.
        let action = if router.unhealthy_shards().is_empty() {
            if r % 3 == 1 {
                let victim = (splitmix64(&mut rng) % shards as u64) as usize;
                g.group()
                    .device(victim)
                    .set_fault_plan(FaultPlan::device_lost_at(1));
                kills += 1;
                Action::Kill(victim)
            } else {
                Action::None
            }
        } else if r % 3 == 0 {
            let revived = router
                .rebuild_downed()
                .expect("mid-stream rebuild must pass the cross-shard audit");
            revives += revived.len() as u64;
            Action::Revive(revived)
        } else {
            Action::None
        };

        for (sid, updates) in round.sessions.iter().enumerate() {
            for &u in updates {
                router.submit(sid, u);
            }
        }
        // Snapshot Down shards' counters: the open breaker must not
        // charge a single launch to them during the flush. (Suspect
        // shards still dispatch, so only non-dispatchable ones count.)
        let down_before: Vec<(usize, u64)> = router
            .unhealthy_shards()
            .into_iter()
            .filter(|&s| !router.health(s).is_dispatchable())
            .map(|s| (s, g.group().device(s).counters().snapshot().launches))
            .collect();
        let report = router.flush();
        for (s, launches) in down_before {
            assert_eq!(
                g.group().device(s).counters().snapshot().launches,
                launches,
                "shard {s}: open circuit breaker must not charge launches"
            );
        }

        // Degraded-read sampling: the round's query batch through the
        // fault-aware read path.
        let mut degraded = 0u64;
        for &(u, v) in &round.qry {
            if router.edge_exists_degraded(u, v).1 == ReadQuality::Degraded {
                degraded += 1;
            }
        }

        // Reference replay (inserts before deletes, session-major — the
        // router's own drain order).
        let mut ins: Vec<Edge> = Vec::new();
        let mut del: Vec<Edge> = Vec::new();
        for session in &round.sessions {
            for &u in session {
                match u {
                    Update::Insert(e) => ins.push(e),
                    Update::Delete(e) => del.push(e),
                }
            }
        }
        reference.insert_edges(&ins);
        reference.delete_edges(&del);

        let max_journal = (0..shards)
            .map(|s| router.journal_depth(s))
            .max()
            .unwrap_or(0);
        table.row(vec![
            r.to_string(),
            match action {
                Action::None => "-".to_string(),
                Action::Kill(s) => format!("kill {s}"),
                Action::Revive(ref v) => format!("revive {v:?}"),
            },
            report.updates.to_string(),
            router.unhealthy_shards().len().to_string(),
            max_journal.to_string(),
            degraded.to_string(),
            fnum(report.modeled_s() * 1e3),
        ]);
    }

    // End of stream: revive whatever is still down, then the final state
    // must be byte-identical to the unsharded replay.
    let revived = router
        .rebuild_downed()
        .expect("final rebuild must pass the cross-shard audit");
    revives += revived.len() as u64;
    assert!(
        router.unhealthy_shards().is_empty(),
        "all shards re-admitted at end of chaos run"
    );
    g.validate().expect("post-rebuild cross-shard audit");
    let sharded_digest = state_digest(
        ds.n_vertices,
        |u| g.neighbor_ids(u),
        |u, v| {
            let shard = g.shard(g.owner_of(u));
            shard.edge_weight(&shard.pin_read(), u, v).unwrap_or(0)
        },
    );
    let reference_digest = state_digest(
        ds.n_vertices,
        |u| reference.neighbor_ids(&reference.pin_read(), u),
        |u, v| {
            reference
                .edge_weight(&reference.pin_read(), u, v)
                .unwrap_or(0)
        },
    );
    assert_eq!(
        g.num_edges(),
        reference.num_edges(),
        "sharded and unsharded replays disagree on edge count"
    );
    assert_eq!(
        sharded_digest, reference_digest,
        "final state must be byte-identical to the unsharded replay"
    );
    for (s, dev) in g.group().devices().iter().enumerate() {
        let findings = dev.sanitizer_findings();
        assert!(
            findings.is_empty(),
            "shard {s}: chaos churn must be sanitizer-clean, got {findings:?}"
        );
    }
    table.note(format!(
        "dataset {} | {} rounds x {} ops, {} shard(s), seed {}; {} kill(s), {} revive(s); {} | final state digest {:#018x} == unsharded replay",
        cfg.dataset,
        cfg.rounds,
        traffic.first().map_or(0, |r| r.sessions.iter().map(Vec::len).sum::<usize>() + r.qry.len()),
        shards,
        cfg.seed,
        kills,
        revives,
        router.report().render(),
        sharded_digest,
    ));
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::churn::Skew;

    #[test]
    fn chaos_run_converges_to_reference() {
        let cfg = ChurnConfig {
            dataset: "luxembourg_osm".into(),
            rounds: 5,
            ops_per_round: 160,
            insert_pct: 50,
            delete_pct: 25,
            seed: 37,
            scale: Some(256),
            shards: 3,
            sessions: 3,
            skew: Skew::Uniform,
            readers: 0,
        };
        // All the correctness assertions live inside chaos_churn; the
        // table must cover every round and record at least one kill.
        let t = chaos_churn(&cfg);
        assert_eq!(t.rows.len(), 5);
        assert!(
            t.rows.iter().any(|r| r[1].starts_with("kill")),
            "schedule must kill at least one shard: {:?}",
            t.rows
        );
    }
}
