//! # backend — one trait over every dynamic-graph structure
//!
//! The paper compares four structures (SlabGraph §IV, Hornet, faimGraph,
//! and static CSR) on the same workloads. This crate captures the shared
//! surface as the object-safe [`GraphBackend`] trait so that algorithms
//! (`algos`) and benchmark drivers (`bench`) are written **once** and run
//! against any structure.
//!
//! Design notes:
//!
//! - The trait is object-safe: benchmark drivers hold
//!   `Box<dyn GraphBackend>` contenders and loop over them.
//! - [`GraphBackend::for_each_neighbor`] is the hot-path adjacency
//!   iterator. SlabGraph implements it allocation-free over the slab
//!   lists; the array-based baselines fall back to their coalesced
//!   adjacency read (the charged device work is identical either way —
//!   only host-side allocation differs).
//! - Not every structure supports every operation (CSR is static; Hornet
//!   has no vertex deletion). [`Capabilities`] advertises what a backend
//!   can do so generic drivers can skip unsupported contenders instead of
//!   panicking.
//! - Edges at the trait level are unweighted `(u32, u32)` pairs: none of
//!   the paper's cross-structure workloads exercise weights, and the
//!   SlabGraph map variant charges identically for any weight value.
//! - [`GraphBackend::device`] exposes the simulated [`Device`] so callers
//!   can snapshot counters and pull per-kernel attribution around any
//!   trait call.

use baselines::{Csr, FaimGraph, Hornet};
use gpu_sim::Device;
use slabgraph::{DynGraph, Edge, ReadGuard};

/// An epoch pin over every allocator a backend reads from — the trait-level
/// form of [`slabgraph::ReadGuard`]. Backends with true epoch-based
/// reclamation (SlabGraph, sharded SlabGraph) return one guard per shard;
/// phase-separated backends (CSR, Hornet, faimGraph) return an *empty* pin
/// and rely on the caller keeping reads and writes in separate phases, as
/// before. Holding a `ReadPin` across a mutation is only snapshot-safe when
/// [`Capabilities::concurrent_reads`] is set.
#[must_use = "queries are only snapshot-safe while the pin is held"]
#[derive(Default)]
pub struct ReadPin {
    guards: Vec<ReadGuard>,
}

impl ReadPin {
    /// The empty pin of a phase-separated backend: reads are only safe
    /// between mutation batches, exactly as without the epoch protocol.
    pub fn phase_fallback() -> Self {
        ReadPin { guards: Vec::new() }
    }

    /// Wrap per-shard guards (shard order) into one trait-level pin.
    pub fn from_guards(guards: Vec<ReadGuard>) -> Self {
        ReadPin { guards }
    }

    /// Whether any era is actually pinned (false for phase fallback).
    pub fn is_pinned(&self) -> bool {
        !self.guards.is_empty()
    }

    /// The per-shard guards, in shard order (empty for phase fallback).
    pub fn guards(&self) -> &[ReadGuard] {
        &self.guards
    }
}

/// Which adjacency-intersection strategy suits this backend's layout
/// (paper §VI-C): hash tables probe (`edgeExist`), sorted arrays merge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IntersectionKind {
    /// O(1) membership probes against a hash table; no sorting required.
    HashProbe,
    /// Serial merge-walk over two sorted adjacency arrays; requires
    /// [`GraphBackend::ensure_sorted`] first.
    SortedMerge,
}

/// What a backend supports. Generic drivers consult this to skip
/// contenders rather than panic on unsupported operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Capabilities {
    /// Batched edge insertion after construction.
    pub insert_edges: bool,
    /// Batched edge deletion.
    pub delete_edges: bool,
    /// Batched vertex deletion (with incident edges).
    pub delete_vertices: bool,
    /// Queries may run concurrently with mutation batches when issued
    /// under a live [`ReadPin`] (epoch-based reclamation + validated chain
    /// walks). When `false`, [`GraphBackend::pin_read`] returns the empty
    /// phase-fallback pin and reads must stay phase-separated.
    pub concurrent_reads: bool,
    /// Preferred triangle-counting intersection strategy.
    pub intersection: IntersectionKind,
}

/// The shared surface of every graph structure in the study.
///
/// Mutating operations take `&mut self` at the trait level even where a
/// concrete structure offers interior mutability (`DynGraph`,
/// `FaimGraph`): the trait models the logical host-side protocol, in
/// which updates are phase-exclusive.
///
/// # Panics
/// Calling a mutating operation whose [`Capabilities`] flag is `false`
/// panics. Check `caps()` first when driving heterogeneous backends.
pub trait GraphBackend {
    /// Short structure name for reports ("SlabGraph", "Hornet", ...).
    fn name(&self) -> &'static str;

    /// What this backend supports.
    fn caps(&self) -> Capabilities;

    /// The simulated device, for counter snapshots and per-kernel
    /// attribution around any trait call. Multi-device backends return
    /// their first shard here; see [`Self::devices`].
    fn device(&self) -> &Device;

    /// Every device this backend runs on, in shard order. Single-device
    /// backends (the default) return just [`Self::device`]; a sharded
    /// backend returns one device per shard so drivers can sum counter
    /// deltas across shards and take the per-shard *maximum* of modeled
    /// times (shards execute concurrently — the makespan is the slowest
    /// shard, not the sum).
    fn devices(&self) -> Vec<&Device> {
        vec![self.device()]
    }

    /// Number of vertex slots (IDs are `0..num_vertices()`).
    fn num_vertices(&self) -> u32;

    /// Current number of directed edges stored.
    fn num_edges(&self) -> u64;

    /// Out-degree of `u`.
    fn degree(&self, u: u32) -> u32;

    /// Pin the current era for snapshot reads. Backends with
    /// [`Capabilities::concurrent_reads`] return a live pin (one guard per
    /// shard) under which the `*_pinned` queries tolerate concurrent
    /// mutation; the default returns the empty phase-fallback pin, keeping
    /// phase-separated backends conformant with zero changes.
    fn pin_read(&self) -> ReadPin {
        ReadPin::phase_fallback()
    }

    /// Single `edgeExist` membership query.
    fn contains_edge(&self, u: u32, v: u32) -> bool;

    /// Batched membership queries. Backends with a batched query kernel
    /// (SlabGraph's WCWS `edge_exist`) override this; the default loops
    /// [`Self::contains_edge`].
    fn edges_exist(&self, pairs: &[(u32, u32)]) -> Vec<bool> {
        pairs
            .iter()
            .map(|&(u, v)| self.contains_edge(u, v))
            .collect()
    }

    /// [`Self::contains_edge`] under an explicit [`ReadPin`]. The default
    /// ignores the pin (phase fallback); epoch-aware backends route the
    /// guard into their pinned query kernels.
    fn contains_edge_pinned(&self, _pin: &ReadPin, u: u32, v: u32) -> bool {
        self.contains_edge(u, v)
    }

    /// [`Self::edges_exist`] under an explicit [`ReadPin`].
    fn edges_exist_pinned(&self, _pin: &ReadPin, pairs: &[(u32, u32)]) -> Vec<bool> {
        self.edges_exist(pairs)
    }

    /// [`Self::read_neighbors`] under an explicit [`ReadPin`].
    fn read_neighbors_pinned(&self, _pin: &ReadPin, u: u32) -> Vec<u32> {
        self.read_neighbors(u)
    }

    /// [`Self::for_each_neighbor`] under an explicit [`ReadPin`].
    fn for_each_neighbor_pinned(&self, _pin: &ReadPin, u: u32, f: &mut (dyn FnMut(u32) + Send)) {
        self.for_each_neighbor(u, f)
    }

    /// Read `u`'s adjacency list into a fresh `Vec` (order is the
    /// structure's internal order; sorted only if [`Self::is_sorted`]).
    fn read_neighbors(&self, u: u32) -> Vec<u32>;

    /// Hot-path adjacency iteration: call `f` with every neighbour of
    /// `u`. SlabGraph walks its slab lists without allocating; the
    /// default falls back to [`Self::read_neighbors`].
    fn for_each_neighbor(&self, u: u32, f: &mut (dyn FnMut(u32) + Send)) {
        for v in self.read_neighbors(u) {
            f(v);
        }
    }

    /// Insert a batch of directed edges; returns how many were new.
    fn insert_edges(&mut self, edges: &[(u32, u32)]) -> u64;

    /// Delete a batch of directed edges; returns how many were present.
    fn delete_edges(&mut self, edges: &[(u32, u32)]) -> u64;

    /// Delete vertices and their incident edges.
    fn delete_vertices(&mut self, vertices: &[u32]);

    /// Whether every adjacency list is currently sorted.
    fn is_sorted(&self) -> bool {
        true
    }

    /// Make every adjacency list sorted (no-op for hash-based and
    /// always-sorted backends). Charged separately from queries, as in
    /// the paper's Table VIII.
    fn ensure_sorted(&mut self) {}

    /// Restore sortedness after updates known to touch only `touched`
    /// vertices. Backends without incremental re-sort fall back to the
    /// full [`Self::ensure_sorted`].
    fn ensure_sorted_touched(&mut self, _touched: &[u32]) {
        self.ensure_sorted();
    }
}

fn unsupported(name: &str, op: &str) -> ! {
    panic!("{name} does not support {op} (check Capabilities before calling)")
}

// ---------------------------------------------------------------------------
// SlabGraph (ours)
// ---------------------------------------------------------------------------

impl GraphBackend for DynGraph {
    fn name(&self) -> &'static str {
        "SlabGraph"
    }

    fn caps(&self) -> Capabilities {
        Capabilities {
            insert_edges: true,
            delete_edges: true,
            delete_vertices: true,
            concurrent_reads: true,
            intersection: IntersectionKind::HashProbe,
        }
    }

    fn device(&self) -> &Device {
        DynGraph::device(self)
    }

    fn pin_read(&self) -> ReadPin {
        ReadPin::from_guards(vec![DynGraph::pin_read(self)])
    }

    fn num_vertices(&self) -> u32 {
        self.vertex_capacity()
    }

    fn num_edges(&self) -> u64 {
        DynGraph::num_edges(self)
    }

    fn degree(&self, u: u32) -> u32 {
        DynGraph::degree(self, u)
    }

    // The unpinned entry points pin internally per call: each query is
    // snapshot-consistent on its own, matching the old phase-separated
    // contract for drivers that never hold a pin across calls.
    fn contains_edge(&self, u: u32, v: u32) -> bool {
        self.edge_exists(&DynGraph::pin_read(self), u, v)
    }

    fn edges_exist(&self, pairs: &[(u32, u32)]) -> Vec<bool> {
        DynGraph::edges_exist(self, &DynGraph::pin_read(self), pairs)
    }

    fn read_neighbors(&self, u: u32) -> Vec<u32> {
        self.neighbor_ids(&DynGraph::pin_read(self), u)
    }

    fn for_each_neighbor(&self, u: u32, f: &mut (dyn FnMut(u32) + Send)) {
        DynGraph::for_each_neighbor(self, &DynGraph::pin_read(self), u, f)
    }

    fn contains_edge_pinned(&self, pin: &ReadPin, u: u32, v: u32) -> bool {
        self.edge_exists(&pin.guards()[0], u, v)
    }

    fn edges_exist_pinned(&self, pin: &ReadPin, pairs: &[(u32, u32)]) -> Vec<bool> {
        DynGraph::edges_exist(self, &pin.guards()[0], pairs)
    }

    fn read_neighbors_pinned(&self, pin: &ReadPin, u: u32) -> Vec<u32> {
        self.neighbor_ids(&pin.guards()[0], u)
    }

    fn for_each_neighbor_pinned(&self, pin: &ReadPin, u: u32, f: &mut (dyn FnMut(u32) + Send)) {
        DynGraph::for_each_neighbor(self, &pin.guards()[0], u, f)
    }

    fn insert_edges(&mut self, edges: &[(u32, u32)]) -> u64 {
        let edges: Vec<Edge> = edges.iter().map(|&p| Edge::from(p)).collect();
        DynGraph::insert_edges(self, &edges)
    }

    fn delete_edges(&mut self, edges: &[(u32, u32)]) -> u64 {
        let edges: Vec<Edge> = edges.iter().map(|&p| Edge::from(p)).collect();
        DynGraph::delete_edges(self, &edges)
    }

    fn delete_vertices(&mut self, vertices: &[u32]) {
        DynGraph::delete_vertices(self, vertices)
    }
}

// ---------------------------------------------------------------------------
// Hornet
// ---------------------------------------------------------------------------

impl GraphBackend for Hornet {
    fn name(&self) -> &'static str {
        "Hornet"
    }

    fn caps(&self) -> Capabilities {
        Capabilities {
            insert_edges: true,
            delete_edges: true,
            // Hornet's published update API has no vertex deletion; the
            // paper's Table IV omits it for the same reason.
            delete_vertices: false,
            concurrent_reads: false,
            intersection: IntersectionKind::SortedMerge,
        }
    }

    fn device(&self) -> &Device {
        Hornet::device(self)
    }

    fn num_vertices(&self) -> u32 {
        Hornet::num_vertices(self)
    }

    fn num_edges(&self) -> u64 {
        Hornet::num_edges(self)
    }

    fn degree(&self, u: u32) -> u32 {
        Hornet::degree(self, u)
    }

    fn contains_edge(&self, u: u32, v: u32) -> bool {
        self.edge_exists(u, v)
    }

    fn read_neighbors(&self, u: u32) -> Vec<u32> {
        self.read_adjacency(u)
    }

    fn insert_edges(&mut self, edges: &[(u32, u32)]) -> u64 {
        self.insert_batch(edges)
    }

    fn delete_edges(&mut self, edges: &[(u32, u32)]) -> u64 {
        self.delete_batch(edges)
    }

    fn delete_vertices(&mut self, _vertices: &[u32]) {
        unsupported("Hornet", "delete_vertices")
    }

    fn is_sorted(&self) -> bool {
        Hornet::is_sorted(self)
    }

    fn ensure_sorted(&mut self) {
        self.sort_adjacencies()
    }

    fn ensure_sorted_touched(&mut self, touched: &[u32]) {
        self.sort_touched(touched)
    }
}

// ---------------------------------------------------------------------------
// faimGraph
// ---------------------------------------------------------------------------

impl GraphBackend for FaimGraph {
    fn name(&self) -> &'static str {
        "faimGraph"
    }

    fn caps(&self) -> Capabilities {
        Capabilities {
            insert_edges: true,
            delete_edges: true,
            delete_vertices: true,
            concurrent_reads: false,
            intersection: IntersectionKind::SortedMerge,
        }
    }

    fn device(&self) -> &Device {
        FaimGraph::device(self)
    }

    fn num_vertices(&self) -> u32 {
        FaimGraph::num_vertices(self)
    }

    fn num_edges(&self) -> u64 {
        FaimGraph::num_edges(self)
    }

    fn degree(&self, u: u32) -> u32 {
        FaimGraph::degree(self, u)
    }

    fn contains_edge(&self, u: u32, v: u32) -> bool {
        // faimGraph has no dedicated membership kernel; a query is a
        // charged adjacency read plus a host-side scan.
        self.read_adjacency(u).contains(&v)
    }

    fn read_neighbors(&self, u: u32) -> Vec<u32> {
        self.read_adjacency(u)
    }

    fn insert_edges(&mut self, edges: &[(u32, u32)]) -> u64 {
        self.insert_batch(edges)
    }

    fn delete_edges(&mut self, edges: &[(u32, u32)]) -> u64 {
        self.delete_batch(edges)
    }

    fn delete_vertices(&mut self, vertices: &[u32]) {
        FaimGraph::delete_vertices(self, vertices)
    }

    fn ensure_sorted(&mut self) {
        self.sort_adjacencies()
    }
}

// ---------------------------------------------------------------------------
// CSR (static)
// ---------------------------------------------------------------------------

impl GraphBackend for Csr {
    fn name(&self) -> &'static str {
        "CSR"
    }

    fn caps(&self) -> Capabilities {
        Capabilities {
            insert_edges: false,
            delete_edges: false,
            delete_vertices: false,
            concurrent_reads: false,
            intersection: IntersectionKind::SortedMerge,
        }
    }

    fn device(&self) -> &Device {
        Csr::device(self)
    }

    fn num_vertices(&self) -> u32 {
        Csr::num_vertices(self)
    }

    fn num_edges(&self) -> u64 {
        Csr::num_edges(self)
    }

    fn degree(&self, u: u32) -> u32 {
        Csr::degree(self, u)
    }

    fn contains_edge(&self, u: u32, v: u32) -> bool {
        self.edge_exists(u, v)
    }

    fn read_neighbors(&self, u: u32) -> Vec<u32> {
        self.read_adjacency(u)
    }

    fn insert_edges(&mut self, _edges: &[(u32, u32)]) -> u64 {
        unsupported("CSR", "insert_edges")
    }

    fn delete_edges(&mut self, _edges: &[(u32, u32)]) -> u64 {
        unsupported("CSR", "delete_edges")
    }

    fn delete_vertices(&mut self, _vertices: &[u32]) {
        unsupported("CSR", "delete_vertices")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slabgraph::GraphConfig;

    fn edges() -> Vec<(u32, u32)> {
        vec![(0, 1), (0, 2), (1, 2), (2, 3)]
    }

    fn both_dirs(e: &[(u32, u32)]) -> Vec<(u32, u32)> {
        e.iter().flat_map(|&(u, v)| [(u, v), (v, u)]).collect()
    }

    fn all_backends() -> Vec<Box<dyn GraphBackend>> {
        let dir = both_dirs(&edges());
        let mut g = DynGraph::with_uniform_buckets(GraphConfig::undirected_set(8), 8, 1);
        GraphBackend::insert_edges(&mut g, &edges());
        let mut h = Hornet::bulk_build(8, &dir, 1 << 16);
        h.sort_adjacencies();
        let f = FaimGraph::build(8, &dir, 1 << 16);
        f.sort_adjacencies();
        let c = Csr::build(8, &dir, 1 << 16);
        vec![Box::new(g), Box::new(h), Box::new(f), Box::new(c)]
    }

    #[test]
    fn all_backends_agree_on_membership_and_degree() {
        for b in all_backends() {
            let name = b.name();
            assert_eq!(b.num_vertices(), 8, "{name}");
            assert_eq!(b.num_edges(), 8, "{name}: 4 undirected = 8 directed");
            assert_eq!(b.degree(0), 2, "{name}");
            assert_eq!(b.degree(2), 3, "{name}");
            assert!(b.contains_edge(0, 1), "{name}");
            assert!(b.contains_edge(1, 0), "{name}: mirrored");
            assert!(!b.contains_edge(0, 3), "{name}");
            assert_eq!(
                b.edges_exist(&[(0, 1), (0, 3), (2, 3)]),
                vec![true, false, true],
                "{name}"
            );
        }
    }

    #[test]
    fn neighbor_iteration_matches_read_neighbors() {
        for b in all_backends() {
            let mut seen = Vec::new();
            b.for_each_neighbor(2, &mut |v| seen.push(v));
            let mut read = b.read_neighbors(2);
            seen.sort_unstable();
            read.sort_unstable();
            assert_eq!(seen, vec![0, 1, 3], "{}", b.name());
            assert_eq!(seen, read, "{}", b.name());
        }
    }

    #[test]
    fn capability_flags_match_structure_semantics() {
        let caps: Vec<(&str, Capabilities)> = all_backends()
            .iter()
            .map(|b| (b.name(), b.caps()))
            .collect();
        for (name, c) in &caps {
            match *name {
                "CSR" => {
                    assert!(!c.insert_edges && !c.delete_edges && !c.delete_vertices);
                }
                "Hornet" => {
                    assert!(c.insert_edges && c.delete_edges && !c.delete_vertices);
                }
                _ => {
                    assert!(c.insert_edges && c.delete_edges && c.delete_vertices);
                }
            }
            let expect = if *name == "SlabGraph" {
                IntersectionKind::HashProbe
            } else {
                IntersectionKind::SortedMerge
            };
            assert_eq!(c.intersection, expect, "{name}");
            assert_eq!(
                c.concurrent_reads,
                *name == "SlabGraph",
                "{name}: only the epoch-pinned structure serves concurrent reads"
            );
        }
    }

    #[test]
    fn pinned_queries_agree_with_unpinned_on_every_backend() {
        for b in all_backends() {
            let name = b.name();
            let pin = b.pin_read();
            assert_eq!(
                pin.is_pinned(),
                b.caps().concurrent_reads,
                "{name}: pin liveness must track the capability flag"
            );
            assert_eq!(
                b.contains_edge_pinned(&pin, 0, 1),
                b.contains_edge(0, 1),
                "{name}"
            );
            assert_eq!(
                b.edges_exist_pinned(&pin, &[(0, 1), (0, 3), (2, 3)]),
                b.edges_exist(&[(0, 1), (0, 3), (2, 3)]),
                "{name}"
            );
            let mut via_pin = b.read_neighbors_pinned(&pin, 2);
            let mut direct = b.read_neighbors(2);
            via_pin.sort_unstable();
            direct.sort_unstable();
            assert_eq!(via_pin, direct, "{name}");
            let mut seen = Vec::new();
            b.for_each_neighbor_pinned(&pin, 2, &mut |v| seen.push(v));
            seen.sort_unstable();
            assert_eq!(seen, direct, "{name}");
        }
    }

    #[test]
    fn updates_through_the_trait() {
        let mut g: Box<dyn GraphBackend> = Box::new(DynGraph::with_uniform_buckets(
            GraphConfig::undirected_set(8),
            8,
            1,
        ));
        assert_eq!(g.insert_edges(&edges()), 8, "4 undirected = 8 directed");
        assert_eq!(g.delete_edges(&[(0, 1)]), 2);
        assert!(!g.contains_edge(0, 1));
        g.delete_vertices(&[2]);
        assert_eq!(g.degree(2), 0);
        assert!(!g.contains_edge(1, 2));
    }

    #[test]
    #[should_panic(expected = "does not support")]
    fn csr_insert_panics() {
        let mut c: Box<dyn GraphBackend> = Box::new(Csr::build(4, &[(0, 1)], 1 << 14));
        c.insert_edges(&[(1, 2)]);
    }
}
