//! Warp-wide lane vectors and pure warp intrinsics.
//!
//! A CUDA warp executes 32 lanes in lockstep. We model warp-synchronous
//! code as operations over [`Lanes<T>`], a fixed 32-wide vector holding one
//! value per lane. The intrinsics in this module are *pure* (no counter
//! charging); the [`crate::Warp`] context wraps them with performance
//! accounting so kernels pay for ballots and shuffles like real hardware.

/// Number of lanes in a warp. Matches NVIDIA hardware.
pub const WARP_SIZE: usize = 32;

/// Active mask with all 32 lanes enabled.
pub const FULL_MASK: u32 = u32::MAX;

/// A warp-wide vector: one `T` per lane.
///
/// This is the register file of warp-synchronous programming: each lane's
/// private variable becomes one element. Warp intrinsics (`ballot`,
/// `shuffle`, …) combine the 32 elements exactly as the hardware does.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Lanes<T>(pub [T; WARP_SIZE]);

impl<T: Copy> Lanes<T> {
    /// Broadcast `v` into every lane.
    #[inline]
    pub fn splat(v: T) -> Self {
        Lanes([v; WARP_SIZE])
    }

    /// Build a lane vector from a function of the lane index.
    #[inline]
    pub fn from_fn(f: impl FnMut(usize) -> T) -> Self {
        Lanes(std::array::from_fn(f))
    }

    /// Value held by `lane`.
    #[inline]
    pub fn get(&self, lane: usize) -> T {
        self.0[lane]
    }

    /// Overwrite the value held by `lane`.
    #[inline]
    pub fn set(&mut self, lane: usize, v: T) {
        self.0[lane] = v;
    }

    /// Apply `f` lane-wise.
    #[inline]
    pub fn map<U: Copy>(&self, mut f: impl FnMut(T) -> U) -> Lanes<U> {
        Lanes(std::array::from_fn(|i| f(self.0[i])))
    }

    /// Apply `f` lane-wise with the lane index.
    #[inline]
    pub fn map_with_lane<U: Copy>(&self, mut f: impl FnMut(usize, T) -> U) -> Lanes<U> {
        Lanes(std::array::from_fn(|i| f(i, self.0[i])))
    }

    /// Combine two lane vectors lane-wise.
    #[inline]
    pub fn zip_with<U: Copy, V: Copy>(
        &self,
        other: &Lanes<U>,
        mut f: impl FnMut(T, U) -> V,
    ) -> Lanes<V> {
        Lanes(std::array::from_fn(|i| f(self.0[i], other.0[i])))
    }

    /// Iterate over `(lane, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (usize, T)> + '_ {
        self.0.iter().copied().enumerate()
    }
}

impl<T: Copy + Default> Default for Lanes<T> {
    fn default() -> Self {
        Lanes::splat(T::default())
    }
}

/// `__ballot_sync`: bit *i* of the result is set iff lane *i* is in
/// `active_mask` and its predicate is true.
#[inline]
pub fn ballot(active_mask: u32, preds: &Lanes<bool>) -> u32 {
    let mut out = 0u32;
    for lane in 0..WARP_SIZE {
        if active_mask & (1 << lane) != 0 && preds.0[lane] {
            out |= 1 << lane;
        }
    }
    out
}

/// `__shfl_sync` broadcast form: every lane reads lane `src_lane`'s value.
#[inline]
pub fn shuffle<T: Copy>(vals: &Lanes<T>, src_lane: u32) -> T {
    vals.0[(src_lane as usize) & (WARP_SIZE - 1)]
}

/// `__shfl_sync` indexed form: lane *i* reads the value of lane `idx[i]`.
#[inline]
pub fn shuffle_idx<T: Copy>(vals: &Lanes<T>, idx: &Lanes<u32>) -> Lanes<T> {
    Lanes::from_fn(|i| vals.0[(idx.0[i] as usize) & (WARP_SIZE - 1)])
}

/// `__popc`: population count.
#[inline]
pub fn popc(x: u32) -> u32 {
    x.count_ones()
}

/// `__ffs`-style helper returning the *zero-based* index of the first
/// (least significant) set bit, or `None` when `x == 0`.
///
/// CUDA's `__ffs` is one-based; warp-synchronous code always subtracts the
/// one immediately, so we expose the zero-based form directly.
#[inline]
pub fn ffs(x: u32) -> Option<u32> {
    if x == 0 {
        None
    } else {
        Some(x.trailing_zeros())
    }
}

/// Mask with bits `[0, lane)` set: the "lanes before me" mask used for
/// warp-scan style offset computation (`__lanemask_lt`).
#[inline]
pub fn lanemask_lt(lane: u32) -> u32 {
    if lane == 0 {
        0
    } else {
        u32::MAX >> (32 - lane)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splat_and_get() {
        let l = Lanes::splat(7u32);
        for i in 0..WARP_SIZE {
            assert_eq!(l.get(i), 7);
        }
    }

    #[test]
    fn from_fn_indexes_lanes() {
        let l = Lanes::from_fn(|i| i as u32 * 2);
        assert_eq!(l.get(0), 0);
        assert_eq!(l.get(31), 62);
    }

    #[test]
    fn ballot_respects_active_mask() {
        let preds = Lanes::splat(true);
        assert_eq!(ballot(FULL_MASK, &preds), u32::MAX);
        assert_eq!(ballot(0b1010, &preds), 0b1010);
        let none = Lanes::splat(false);
        assert_eq!(ballot(FULL_MASK, &none), 0);
    }

    #[test]
    fn ballot_mixed_predicates() {
        let preds = Lanes::from_fn(|i| i % 2 == 0);
        let b = ballot(FULL_MASK, &preds);
        assert_eq!(b, 0x5555_5555);
    }

    #[test]
    fn shuffle_broadcasts() {
        let vals = Lanes::from_fn(|i| i as u32 + 100);
        assert_eq!(shuffle(&vals, 5), 105);
        assert_eq!(shuffle(&vals, 0), 100);
        // Source lane wraps modulo 32, matching hardware behaviour.
        assert_eq!(shuffle(&vals, 37), 105);
    }

    #[test]
    fn shuffle_idx_permutes() {
        let vals = Lanes::from_fn(|i| i as u32);
        let rev = Lanes::from_fn(|i| 31 - i as u32);
        let out = shuffle_idx(&vals, &rev);
        for i in 0..WARP_SIZE {
            assert_eq!(out.get(i), 31 - i as u32);
        }
    }

    #[test]
    fn ffs_finds_first_set_bit() {
        assert_eq!(ffs(0), None);
        assert_eq!(ffs(1), Some(0));
        assert_eq!(ffs(0b1000), Some(3));
        assert_eq!(ffs(u32::MAX), Some(0));
        assert_eq!(ffs(1 << 31), Some(31));
    }

    #[test]
    fn lanemask_lt_counts_earlier_lanes() {
        assert_eq!(lanemask_lt(0), 0);
        assert_eq!(lanemask_lt(1), 1);
        assert_eq!(lanemask_lt(5), 0b11111);
        assert_eq!(lanemask_lt(31), u32::MAX >> 1);
    }

    #[test]
    fn zip_with_combines() {
        let a = Lanes::from_fn(|i| i as u32);
        let b = Lanes::splat(10u32);
        let c = a.zip_with(&b, |x, y| x + y);
        assert_eq!(c.get(3), 13);
    }

    #[test]
    fn popc_counts() {
        assert_eq!(popc(0), 0);
        assert_eq!(popc(0b1011), 3);
        assert_eq!(popc(u32::MAX), 32);
    }
}
