//! Named kernels and per-kernel performance attribution.
//!
//! Every launch on a [`crate::Device`] names the kernel it runs
//! ([`KernelSpec`]); every charged event — transactions, atomics, ballots,
//! shuffles, launches, warps, allocations — is tallied twice: once into the
//! device-wide [`crate::PerfCounters`] and once into the named kernel's
//! counters in a [`KernelRegistry`]. The two views are kept exactly
//! consistent (per-kernel counters sum to the global tally), so a
//! [`TraceReport`] can break any measured phase down by kernel without
//! perturbing the global numbers existing tests and benches assert on.
//!
//! Host-side work that is conceptually one kernel but implemented as many
//! helper launches runs under [`crate::Device::fused_scope`]: the scope's
//! name wins over inner launch names, and only the outermost scope charges
//! a launch. Host-side charges outside any kernel or scope (e.g. arena
//! allocation bookkeeping) fall into the reserved [`HOST_KERNEL`] bucket.

use crate::cost::CostModel;
use crate::counters::{CounterSnapshot, PerfCounters};
use crate::json::Json;
use crate::metrics::{MetricKind, MetricSummary};
use crate::profiler::Profiler;
use crate::sanitizer::{Finding, FindingKind};
use std::sync::Arc;

/// Reserved kernel name for host-side charges issued outside any named
/// launch or fused scope (keeps per-kernel sums equal to the global tally).
pub const HOST_KERNEL: &str = "(host)";

/// The launch shape of a kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LaunchShape {
    /// One *thread* (lane) per task, grouped into warps of 32 — the Warp
    /// Cooperative Work Sharing launch shape.
    Tasks(usize),
    /// Exactly `n` warps, all 32 lanes active (warp-per-work-item kernels
    /// that pull work from a device queue).
    Warps(usize),
}

/// A named kernel launch: what to call it and how to shape it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KernelSpec {
    /// Static kernel name — the attribution key. Use stable, short,
    /// snake_case names (`"edge_insert"`, `"vertex_delete"`).
    pub name: &'static str,
    pub shape: LaunchShape,
}

impl KernelSpec {
    /// One lane per task (`⌈n/32⌉` warps, partial last warp masked).
    pub fn tasks(name: &'static str, n_tasks: usize) -> Self {
        KernelSpec {
            name,
            shape: LaunchShape::Tasks(n_tasks),
        }
    }

    /// Exactly `n_warps` warps with all 32 lanes active.
    pub fn warps(name: &'static str, n_warps: usize) -> Self {
        KernelSpec {
            name,
            shape: LaunchShape::Warps(n_warps),
        }
    }
}

/// Registry of per-kernel counters, keyed by static name, in first-launch
/// order.
#[derive(Debug, Default)]
pub struct KernelRegistry {
    entries: parking_lot::Mutex<Vec<(&'static str, Arc<PerfCounters>)>>,
}

impl KernelRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    /// Find or insert the counters for `name`.
    pub fn counters(&self, name: &'static str) -> Arc<PerfCounters> {
        let mut entries = self.entries.lock();
        if let Some((_, c)) = entries.iter().find(|(n, _)| *n == name) {
            return c.clone();
        }
        let c = Arc::new(PerfCounters::new());
        entries.push((name, c.clone()));
        c
    }

    /// Snapshot every kernel's counters, in first-launch order.
    pub fn snapshot(&self) -> Vec<KernelStats> {
        self.entries
            .lock()
            .iter()
            .map(|(name, c)| KernelStats {
                name,
                counters: c.snapshot(),
            })
            .collect()
    }
}

/// A dual-charging handle returned by [`crate::Device::charge`]: every
/// `add_*` call lands in both the device-wide tally and the named kernel's
/// tally, preserving the attribution invariant at manual charge sites.
///
/// On a profiled device a *top-level* handle (no enclosing launch or
/// scope) is itself an attribution unit: it tallies its own charges and
/// records them as timeline spans when dropped (see
/// [`crate::profiler::Profiler::record_charge`]). Charges issued under an
/// active scope are covered by the enclosing unit's span instead.
pub struct Charge<'d> {
    pub(crate) global: &'d PerfCounters,
    pub(crate) kernel: Arc<PerfCounters>,
    /// Present iff this handle is top-level on a profiled device.
    pub(crate) prof: Option<(Arc<Profiler>, &'static str)>,
    /// Self-tally for the drop-time span; only maintained when `prof` is
    /// set, so an unprofiled handle's cost is unchanged.
    pub(crate) tally: std::cell::Cell<CounterSnapshot>,
}

macro_rules! charge_methods {
    ($($(#[$doc:meta])* $method:ident => $field:ident),* $(,)?) => {$(
        $(#[$doc])*
        pub fn $method(&self, n: u64) {
            self.global.$method(n);
            self.kernel.$method(n);
            if self.prof.is_some() {
                let mut t = self.tally.get();
                t.$field += n;
                self.tally.set(t);
            }
        }
    )*};
}

impl Charge<'_> {
    charge_methods!(
        add_transactions => transactions,
        add_atomics => atomics,
        add_ballots => ballots,
        add_shuffles => shuffles,
        add_launches => launches,
        add_warps => warps,
        add_words_allocated => words_allocated,
    );
}

impl Drop for Charge<'_> {
    fn drop(&mut self) {
        if let Some((prof, name)) = &self.prof {
            let tally = self.tally.get();
            if tally != CounterSnapshot::default() {
                prof.record_charge(name, tally);
            }
        }
    }
}

/// One kernel's counter totals at a point in time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KernelStats {
    pub name: &'static str,
    pub counters: CounterSnapshot,
}

/// A point-in-time capture of the global tally plus every kernel's tally.
///
/// The usual pattern mirrors [`CounterSnapshot`]: take one before a phase,
/// one after, and [`TraceSnapshot::delta`] them.
#[derive(Debug, Clone, Default)]
pub struct TraceSnapshot {
    pub global: CounterSnapshot,
    pub kernels: Vec<KernelStats>,
}

impl TraceSnapshot {
    /// Per-kernel and global difference `self - earlier`. Kernels whose
    /// delta is all-zero are dropped; kernels absent from `earlier` keep
    /// their full counts (the registry only grows).
    pub fn delta(&self, earlier: &TraceSnapshot) -> TraceSnapshot {
        let zero = CounterSnapshot::default();
        let kernels = self
            .kernels
            .iter()
            .map(|k| {
                let before = earlier
                    .kernels
                    .iter()
                    .find(|e| e.name == k.name)
                    .map(|e| e.counters)
                    .unwrap_or_default();
                KernelStats {
                    name: k.name,
                    counters: k.counters.delta(&before),
                }
            })
            .filter(|k| k.counters != zero)
            .collect();
        TraceSnapshot {
            global: self.global.delta(&earlier.global),
            kernels,
        }
    }

    /// Event-wise sum of every kernel's counters. Equals [`Self::global`]
    /// by construction — the attribution invariant tests assert it.
    pub fn kernel_sum(&self) -> CounterSnapshot {
        let mut sum = CounterSnapshot::default();
        for k in &self.kernels {
            sum.transactions += k.counters.transactions;
            sum.atomics += k.counters.atomics;
            sum.ballots += k.counters.ballots;
            sum.shuffles += k.counters.shuffles;
            sum.launches += k.counters.launches;
            sum.warps += k.counters.warps;
            sum.words_allocated += k.counters.words_allocated;
        }
        sum
    }
}

/// One row of a [`TraceReport`].
#[derive(Debug, Clone, PartialEq)]
pub struct TraceRow {
    pub name: String,
    pub counters: CounterSnapshot,
    /// Modeled GPU seconds for this kernel's counters.
    pub modeled_s: f64,
}

/// One shard's health status at report time: the router's state-machine
/// state plus cumulative fault-tolerance tallies. Lives here (not in the
/// router crate) so [`TraceReport`] can carry it without a dependency
/// inversion; the router constructs these from its own health machine.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardHealthRow {
    /// Shard index.
    pub shard: u64,
    /// Health-machine state name (`healthy` / `suspect` / `down` /
    /// `rebuilding`).
    pub state: String,
    /// Cumulative dispatch retries against this shard.
    pub retries: u64,
    /// Cumulative modeled backoff seconds charged waiting on this shard.
    pub backoff_s: f64,
    /// Unacknowledged write-ahead-journal entries for this shard.
    pub journal_depth: u64,
    /// Completed rebuild cycles (reset → replay → re-admit).
    pub rebuilds: u64,
}

/// One latency-attribution component summarized across every completed
/// client op: where end-to-end modeled time went (`queue`, `coalesce`,
/// `backoff`, `kernel`, `degraded`) plus the `total` row. All figures are
/// modeled nanoseconds. Lives here (like [`ShardHealthRow`]) so
/// [`TraceReport`] can carry it without depending on the router crate.
#[derive(Debug, Clone, PartialEq)]
pub struct OpAttributionRow {
    /// Component name: `queue`, `coalesce`, `backoff`, `kernel`,
    /// `degraded`, or `total`.
    pub component: String,
    /// Ops that spent any time in this component.
    pub count: u64,
    /// Sum of the component across all ops, modeled ns.
    pub sum_ns: u64,
    /// Largest single-op share, modeled ns.
    pub max_ns: u64,
    /// Bucketed quantiles over per-op shares, modeled ns.
    pub p50_ns: u64,
    pub p95_ns: u64,
    pub p99_ns: u64,
}

/// One of the K slowest client ops in the report window, with its full
/// causal span chain — the concrete story behind a tail percentile.
#[derive(Debug, Clone, PartialEq)]
pub struct TailExemplarRow {
    /// Client op id (unique within the router's lifetime).
    pub op: u64,
    /// Submitting session.
    pub session: u64,
    /// Op kind: `insert`, `delete`, or `query`.
    pub kind: String,
    /// End-to-end modeled latency, ns.
    pub total_ns: u64,
    /// Per-component breakdown, modeled ns. Components sum to `total_ns`.
    pub queue_ns: u64,
    pub coalesce_ns: u64,
    pub backoff_ns: u64,
    pub kernel_ns: u64,
    pub degraded_ns: u64,
    /// The op's causal span chain, root first — e.g.
    /// `op#17 → flush#2 → shard1/router.flush → shard1/edge_insert`.
    pub spans: Vec<String>,
}

/// A renderable, serializable per-kernel breakdown of a measured phase.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceReport {
    /// Per-kernel rows, heaviest (by modeled time) first.
    pub rows: Vec<TraceRow>,
    /// The phase's global totals.
    pub total: TraceRow,
    /// Sanitizer violations recorded during the phase (empty when the
    /// sanitizer is off or the run was clean). See [`crate::sanitizer`].
    pub findings: Vec<Finding>,
    /// Metric summaries (histogram p50/p95/p99/max, gauge high-waters) from
    /// an attached profiler (empty when no profiler ran). See
    /// [`crate::metrics`].
    pub metrics: Vec<MetricSummary>,
    /// Per-shard health rows from a sharded router's fault-tolerance
    /// layer (empty for unsharded runs or pre-robustness reports).
    pub shard_health: Vec<ShardHealthRow>,
    /// Per-component latency attribution across completed client ops
    /// (empty for untraced runs or pre-tracing reports).
    pub op_attribution: Vec<OpAttributionRow>,
    /// The K slowest client ops with their causal span chains (empty for
    /// untraced runs or pre-tracing reports).
    pub tail_exemplars: Vec<TailExemplarRow>,
}

impl TraceReport {
    /// Build a report from a (usually delta'd) snapshot under `model`.
    pub fn new(trace: &TraceSnapshot, model: &CostModel) -> Self {
        let mut rows: Vec<TraceRow> = trace
            .kernels
            .iter()
            .map(|k| TraceRow {
                name: k.name.to_string(),
                counters: k.counters,
                modeled_s: model.seconds(&k.counters),
            })
            .collect();
        rows.sort_by(|a, b| b.modeled_s.total_cmp(&a.modeled_s));
        TraceReport {
            rows,
            total: TraceRow {
                name: "total".to_string(),
                counters: trace.global,
                modeled_s: model.seconds(&trace.global),
            },
            findings: Vec::new(),
            metrics: Vec::new(),
            shard_health: Vec::new(),
            op_attribution: Vec::new(),
            tail_exemplars: Vec::new(),
        }
    }

    /// Attach sanitizer findings (e.g. from
    /// [`crate::Device::sanitizer_findings`]) to the report.
    pub fn with_findings(mut self, findings: Vec<Finding>) -> Self {
        self.findings = findings;
        self
    }

    /// Attach metric summaries (e.g. from
    /// [`crate::profiler::Profiler::metric_summaries`]) to the report.
    pub fn with_metrics(mut self, metrics: Vec<MetricSummary>) -> Self {
        self.metrics = metrics;
        self
    }

    /// Attach per-shard health rows from a sharded router's
    /// fault-tolerance layer.
    pub fn with_shard_health(mut self, shard_health: Vec<ShardHealthRow>) -> Self {
        self.shard_health = shard_health;
        self
    }

    /// Attach per-component latency-attribution rows from a traced
    /// router's op accounting.
    pub fn with_op_attribution(mut self, op_attribution: Vec<OpAttributionRow>) -> Self {
        self.op_attribution = op_attribution;
        self
    }

    /// Attach tail exemplars — the K slowest ops with their span chains.
    pub fn with_tail_exemplars(mut self, tail_exemplars: Vec<TailExemplarRow>) -> Self {
        self.tail_exemplars = tail_exemplars;
        self
    }

    /// Event-wise sum over the per-kernel rows (excluding the total row).
    pub fn kernel_sum(&self) -> CounterSnapshot {
        let mut sum = CounterSnapshot::default();
        for r in &self.rows {
            sum.transactions += r.counters.transactions;
            sum.atomics += r.counters.atomics;
            sum.ballots += r.counters.ballots;
            sum.shuffles += r.counters.shuffles;
            sum.launches += r.counters.launches;
            sum.warps += r.counters.warps;
            sum.words_allocated += r.counters.words_allocated;
        }
        sum
    }

    /// Render as an aligned text table.
    pub fn render(&self) -> String {
        const HEADERS: [&str; 9] = [
            "kernel",
            "launches",
            "warps",
            "transactions",
            "atomics",
            "ballots",
            "shuffles",
            "alloc words",
            "modeled ms",
        ];
        let row_cells = |r: &TraceRow| -> [String; 9] {
            [
                r.name.clone(),
                r.counters.launches.to_string(),
                r.counters.warps.to_string(),
                r.counters.transactions.to_string(),
                r.counters.atomics.to_string(),
                r.counters.ballots.to_string(),
                r.counters.shuffles.to_string(),
                r.counters.words_allocated.to_string(),
                format!("{:.4}", r.modeled_s * 1e3),
            ]
        };
        let mut body: Vec<[String; 9]> = self.rows.iter().map(row_cells).collect();
        body.push(row_cells(&self.total));
        let mut widths: Vec<usize> = HEADERS.iter().map(|h| h.len()).collect();
        for row in &body {
            for (w, cell) in widths.iter_mut().zip(row.iter()) {
                *w = (*w).max(cell.len());
            }
        }
        let fmt_row = |cells: &[String]| {
            let mut line = String::new();
            for (i, (cell, w)) in cells.iter().zip(&widths).enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                if i == 0 {
                    line.push_str(&format!("{cell:<w$}"));
                } else {
                    line.push_str(&format!("{cell:>w$}"));
                }
            }
            line.push('\n');
            line
        };
        let header: Vec<String> = HEADERS.iter().map(|h| h.to_string()).collect();
        let rule = widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>();
        let mut out = fmt_row(&header);
        out.push_str(&fmt_row(&rule));
        for row in &body[..body.len() - 1] {
            out.push_str(&fmt_row(row));
        }
        out.push_str(&fmt_row(&rule));
        out.push_str(&fmt_row(&body[body.len() - 1]));
        if !self.metrics.is_empty() {
            out.push_str(&format!("\nmetrics ({}):\n", self.metrics.len()));
            const MHEADERS: [&str; 8] =
                ["metric", "kind", "count", "sum", "max", "p50", "p95", "p99"];
            let mrow = |m: &MetricSummary| -> [String; 8] {
                [
                    m.name.clone(),
                    m.kind.as_str().to_string(),
                    m.count.to_string(),
                    m.sum.to_string(),
                    m.max.to_string(),
                    m.p50.to_string(),
                    m.p95.to_string(),
                    m.p99.to_string(),
                ]
            };
            let mbody: Vec<[String; 8]> = self.metrics.iter().map(mrow).collect();
            let mut mwidths: Vec<usize> = MHEADERS.iter().map(|h| h.len()).collect();
            for row in &mbody {
                for (w, cell) in mwidths.iter_mut().zip(row.iter()) {
                    *w = (*w).max(cell.len());
                }
            }
            let fmt_mrow = |cells: &[String]| {
                let mut line = String::from("  ");
                for (i, (cell, w)) in cells.iter().zip(&mwidths).enumerate() {
                    if i > 0 {
                        line.push_str("  ");
                    }
                    if i < 2 {
                        line.push_str(&format!("{cell:<w$}"));
                    } else {
                        line.push_str(&format!("{cell:>w$}"));
                    }
                }
                line.push('\n');
                line
            };
            let mheader: Vec<String> = MHEADERS.iter().map(|h| h.to_string()).collect();
            out.push_str(&fmt_mrow(&mheader));
            for row in &mbody {
                out.push_str(&fmt_mrow(row));
            }
        }
        if !self.op_attribution.is_empty() {
            out.push_str(&format!(
                "\nop attribution ({}):\n",
                self.op_attribution.len()
            ));
            const AHEADERS: [&str; 7] = [
                "component",
                "count",
                "sum ns",
                "max ns",
                "p50 ns",
                "p95 ns",
                "p99 ns",
            ];
            let arow = |a: &OpAttributionRow| -> [String; 7] {
                [
                    a.component.clone(),
                    a.count.to_string(),
                    a.sum_ns.to_string(),
                    a.max_ns.to_string(),
                    a.p50_ns.to_string(),
                    a.p95_ns.to_string(),
                    a.p99_ns.to_string(),
                ]
            };
            let abody: Vec<[String; 7]> = self.op_attribution.iter().map(arow).collect();
            let mut awidths: Vec<usize> = AHEADERS.iter().map(|h| h.len()).collect();
            for row in &abody {
                for (w, cell) in awidths.iter_mut().zip(row.iter()) {
                    *w = (*w).max(cell.len());
                }
            }
            let fmt_arow = |cells: &[String]| {
                let mut line = String::from("  ");
                for (i, (cell, w)) in cells.iter().zip(&awidths).enumerate() {
                    if i > 0 {
                        line.push_str("  ");
                    }
                    if i == 0 {
                        line.push_str(&format!("{cell:<w$}"));
                    } else {
                        line.push_str(&format!("{cell:>w$}"));
                    }
                }
                line.push('\n');
                line
            };
            let aheader: Vec<String> = AHEADERS.iter().map(|h| h.to_string()).collect();
            out.push_str(&fmt_arow(&aheader));
            for row in &abody {
                out.push_str(&fmt_arow(row));
            }
        }
        if !self.tail_exemplars.is_empty() {
            out.push_str(&format!(
                "\ntail exemplars ({}):\n",
                self.tail_exemplars.len()
            ));
            for e in &self.tail_exemplars {
                out.push_str(&format!(
                    "  op {} ({}, session {}): {} ns = queue {} + coalesce {} + backoff {} + kernel {} + degraded {}\n",
                    e.op,
                    e.kind,
                    e.session,
                    e.total_ns,
                    e.queue_ns,
                    e.coalesce_ns,
                    e.backoff_ns,
                    e.kernel_ns,
                    e.degraded_ns,
                ));
                for s in &e.spans {
                    out.push_str(&format!("    {s}\n"));
                }
            }
        }
        if !self.shard_health.is_empty() {
            out.push_str(&format!("\nshard health ({}):\n", self.shard_health.len()));
            for h in &self.shard_health {
                out.push_str(&format!(
                    "  shard {}: {} (retries {}, backoff {:.4} ms, journal depth {}, rebuilds {})\n",
                    h.shard,
                    h.state,
                    h.retries,
                    h.backoff_s * 1e3,
                    h.journal_depth,
                    h.rebuilds
                ));
            }
        }
        if !self.findings.is_empty() {
            out.push_str(&format!(
                "\nsanitizer findings ({}):\n",
                self.findings.len()
            ));
            for f in &self.findings {
                out.push_str(&format!("  {f}\n"));
            }
        }
        out
    }

    /// Serialize to JSON. Round-trips exactly through [`Self::from_json`].
    pub fn to_json(&self) -> String {
        let row_json = |r: &TraceRow| {
            Json::Obj(vec![
                ("name".into(), Json::str(&r.name)),
                ("transactions".into(), Json::u64(r.counters.transactions)),
                ("atomics".into(), Json::u64(r.counters.atomics)),
                ("ballots".into(), Json::u64(r.counters.ballots)),
                ("shuffles".into(), Json::u64(r.counters.shuffles)),
                ("launches".into(), Json::u64(r.counters.launches)),
                ("warps".into(), Json::u64(r.counters.warps)),
                (
                    "words_allocated".into(),
                    Json::u64(r.counters.words_allocated),
                ),
                ("modeled_s".into(), Json::f64(r.modeled_s)),
            ])
        };
        let finding_json = |f: &Finding| {
            Json::Obj(vec![
                ("kind".into(), Json::str(f.kind.as_str())),
                ("addr".into(), Json::u64(f.addr as u64)),
                ("kernel".into(), Json::str(&f.kernel)),
                ("warp".into(), Json::u64(f.warp as u64)),
                ("era".into(), Json::u64(f.era)),
                ("other_kernel".into(), Json::str(&f.other_kernel)),
                ("other_warp".into(), Json::u64(f.other_warp as u64)),
                ("note".into(), Json::str(&f.note)),
            ])
        };
        let metric_json = |m: &MetricSummary| {
            Json::Obj(vec![
                ("name".into(), Json::str(&m.name)),
                ("kind".into(), Json::str(m.kind.as_str())),
                ("count".into(), Json::u64(m.count)),
                ("sum".into(), Json::u64(m.sum)),
                ("max".into(), Json::u64(m.max)),
                ("p50".into(), Json::u64(m.p50)),
                ("p95".into(), Json::u64(m.p95)),
                ("p99".into(), Json::u64(m.p99)),
            ])
        };
        Json::Obj(vec![
            (
                "kernels".into(),
                Json::Arr(self.rows.iter().map(row_json).collect()),
            ),
            ("total".into(), row_json(&self.total)),
            (
                "sanitizer_findings".into(),
                Json::Arr(self.findings.iter().map(finding_json).collect()),
            ),
            (
                "metrics".into(),
                Json::Arr(self.metrics.iter().map(metric_json).collect()),
            ),
            (
                "shard_health".into(),
                Json::Arr(
                    self.shard_health
                        .iter()
                        .map(|h| {
                            Json::Obj(vec![
                                ("shard".into(), Json::u64(h.shard)),
                                ("state".into(), Json::str(&h.state)),
                                ("retries".into(), Json::u64(h.retries)),
                                ("backoff_s".into(), Json::f64(h.backoff_s)),
                                ("journal_depth".into(), Json::u64(h.journal_depth)),
                                ("rebuilds".into(), Json::u64(h.rebuilds)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "op_attribution".into(),
                Json::Arr(
                    self.op_attribution
                        .iter()
                        .map(|a| {
                            Json::Obj(vec![
                                ("component".into(), Json::str(&a.component)),
                                ("count".into(), Json::u64(a.count)),
                                ("sum_ns".into(), Json::u64(a.sum_ns)),
                                ("max_ns".into(), Json::u64(a.max_ns)),
                                ("p50_ns".into(), Json::u64(a.p50_ns)),
                                ("p95_ns".into(), Json::u64(a.p95_ns)),
                                ("p99_ns".into(), Json::u64(a.p99_ns)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "tail_exemplars".into(),
                Json::Arr(
                    self.tail_exemplars
                        .iter()
                        .map(|e| {
                            Json::Obj(vec![
                                ("op".into(), Json::u64(e.op)),
                                ("session".into(), Json::u64(e.session)),
                                ("kind".into(), Json::str(&e.kind)),
                                ("total_ns".into(), Json::u64(e.total_ns)),
                                ("queue_ns".into(), Json::u64(e.queue_ns)),
                                ("coalesce_ns".into(), Json::u64(e.coalesce_ns)),
                                ("backoff_ns".into(), Json::u64(e.backoff_ns)),
                                ("kernel_ns".into(), Json::u64(e.kernel_ns)),
                                ("degraded_ns".into(), Json::u64(e.degraded_ns)),
                                (
                                    "spans".into(),
                                    Json::Arr(e.spans.iter().map(Json::str).collect()),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
        .render_pretty()
    }

    /// Parse a report serialized by [`Self::to_json`].
    pub fn from_json(text: &str) -> Result<TraceReport, String> {
        let v = Json::parse(text)?;
        let parse_row = |j: &Json| -> Result<TraceRow, String> {
            let field = |key: &str| -> Result<u64, String> {
                j.get(key)
                    .and_then(Json::as_u64)
                    .ok_or_else(|| format!("missing counter '{key}'"))
            };
            Ok(TraceRow {
                name: j
                    .get("name")
                    .and_then(Json::as_str)
                    .ok_or("missing 'name'")?
                    .to_string(),
                counters: CounterSnapshot {
                    transactions: field("transactions")?,
                    atomics: field("atomics")?,
                    ballots: field("ballots")?,
                    shuffles: field("shuffles")?,
                    launches: field("launches")?,
                    warps: field("warps")?,
                    words_allocated: field("words_allocated")?,
                },
                modeled_s: j
                    .get("modeled_s")
                    .and_then(Json::as_f64)
                    .ok_or("missing 'modeled_s'")?,
            })
        };
        let rows = v
            .get("kernels")
            .and_then(Json::as_arr)
            .ok_or("missing 'kernels' array")?
            .iter()
            .map(parse_row)
            .collect::<Result<Vec<_>, _>>()?;
        let total = parse_row(v.get("total").ok_or("missing 'total'")?)?;
        let parse_finding = |j: &Json| -> Result<Finding, String> {
            let s = |key: &str| -> Result<String, String> {
                j.get(key)
                    .and_then(Json::as_str)
                    .map(str::to_string)
                    .ok_or_else(|| format!("missing finding field '{key}'"))
            };
            let n = |key: &str| -> Result<u64, String> {
                j.get(key)
                    .and_then(Json::as_u64)
                    .ok_or_else(|| format!("missing finding field '{key}'"))
            };
            let kind_str = s("kind")?;
            Ok(Finding {
                kind: FindingKind::parse(&kind_str)
                    .ok_or_else(|| format!("unknown finding kind '{kind_str}'"))?,
                addr: n("addr")? as crate::memory::Addr,
                kernel: s("kernel")?,
                warp: n("warp")? as u32,
                era: n("era")?,
                other_kernel: s("other_kernel")?,
                other_warp: n("other_warp")? as u32,
                note: s("note")?,
            })
        };
        // Absent in reports written before the sanitizer existed.
        let findings = match v.get("sanitizer_findings").and_then(Json::as_arr) {
            Some(arr) => arr.iter().map(parse_finding).collect::<Result<_, _>>()?,
            None => Vec::new(),
        };
        let parse_metric = |j: &Json| -> Result<MetricSummary, String> {
            let s = |key: &str| -> Result<String, String> {
                j.get(key)
                    .and_then(Json::as_str)
                    .map(str::to_string)
                    .ok_or_else(|| format!("missing metric field '{key}'"))
            };
            let n = |key: &str| -> Result<u64, String> {
                j.get(key)
                    .and_then(Json::as_u64)
                    .ok_or_else(|| format!("missing metric field '{key}'"))
            };
            let kind_str = s("kind")?;
            let p95 = n("p95")?;
            Ok(MetricSummary {
                name: s("name")?,
                kind: MetricKind::parse(&kind_str)
                    .ok_or_else(|| format!("unknown metric kind '{kind_str}'"))?,
                count: n("count")?,
                sum: n("sum")?,
                max: n("max")?,
                p50: n("p50")?,
                p95,
                // Absent in reports written before p99 existed: fall back
                // to p95 (the best lower bound the old schema carries).
                p99: j.get("p99").and_then(Json::as_u64).unwrap_or(p95),
            })
        };
        // Absent in reports written before the profiler existed.
        let metrics = match v.get("metrics").and_then(Json::as_arr) {
            Some(arr) => arr.iter().map(parse_metric).collect::<Result<_, _>>()?,
            None => Vec::new(),
        };
        let parse_health = |j: &Json| -> Result<ShardHealthRow, String> {
            let n = |key: &str| -> Result<u64, String> {
                j.get(key)
                    .and_then(Json::as_u64)
                    .ok_or_else(|| format!("missing shard-health field '{key}'"))
            };
            Ok(ShardHealthRow {
                shard: n("shard")?,
                state: j
                    .get("state")
                    .and_then(Json::as_str)
                    .ok_or("missing shard-health field 'state'")?
                    .to_string(),
                retries: n("retries")?,
                backoff_s: j
                    .get("backoff_s")
                    .and_then(Json::as_f64)
                    .ok_or("missing shard-health field 'backoff_s'")?,
                journal_depth: n("journal_depth")?,
                rebuilds: n("rebuilds")?,
            })
        };
        // Absent in reports written before the fault-tolerance layer.
        let shard_health = match v.get("shard_health").and_then(Json::as_arr) {
            Some(arr) => arr.iter().map(parse_health).collect::<Result<_, _>>()?,
            None => Vec::new(),
        };
        let parse_attr = |j: &Json| -> Result<OpAttributionRow, String> {
            let n = |key: &str| -> Result<u64, String> {
                j.get(key)
                    .and_then(Json::as_u64)
                    .ok_or_else(|| format!("missing attribution field '{key}'"))
            };
            Ok(OpAttributionRow {
                component: j
                    .get("component")
                    .and_then(Json::as_str)
                    .ok_or("missing attribution field 'component'")?
                    .to_string(),
                count: n("count")?,
                sum_ns: n("sum_ns")?,
                max_ns: n("max_ns")?,
                p50_ns: n("p50_ns")?,
                p95_ns: n("p95_ns")?,
                p99_ns: n("p99_ns")?,
            })
        };
        let parse_exemplar = |j: &Json| -> Result<TailExemplarRow, String> {
            let n = |key: &str| -> Result<u64, String> {
                j.get(key)
                    .and_then(Json::as_u64)
                    .ok_or_else(|| format!("missing exemplar field '{key}'"))
            };
            Ok(TailExemplarRow {
                op: n("op")?,
                session: n("session")?,
                kind: j
                    .get("kind")
                    .and_then(Json::as_str)
                    .ok_or("missing exemplar field 'kind'")?
                    .to_string(),
                total_ns: n("total_ns")?,
                queue_ns: n("queue_ns")?,
                coalesce_ns: n("coalesce_ns")?,
                backoff_ns: n("backoff_ns")?,
                kernel_ns: n("kernel_ns")?,
                degraded_ns: n("degraded_ns")?,
                spans: j
                    .get("spans")
                    .and_then(Json::as_arr)
                    .ok_or("missing exemplar field 'spans'")?
                    .iter()
                    .map(|s| {
                        s.as_str()
                            .map(str::to_string)
                            .ok_or_else(|| "non-string exemplar span".to_string())
                    })
                    .collect::<Result<_, _>>()?,
            })
        };
        // Absent in reports written before the tracing layer.
        let op_attribution = match v.get("op_attribution").and_then(Json::as_arr) {
            Some(arr) => arr.iter().map(parse_attr).collect::<Result<_, _>>()?,
            None => Vec::new(),
        };
        let tail_exemplars = match v.get("tail_exemplars").and_then(Json::as_arr) {
            Some(arr) => arr.iter().map(parse_exemplar).collect::<Result<_, _>>()?,
            None => Vec::new(),
        };
        Ok(TraceReport {
            rows,
            total,
            findings,
            metrics,
            shard_health,
            op_attribution,
            tail_exemplars,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(transactions: u64, launches: u64) -> CounterSnapshot {
        CounterSnapshot {
            transactions,
            launches,
            ..Default::default()
        }
    }

    #[test]
    fn registry_keeps_first_launch_order() {
        let r = KernelRegistry::new();
        r.counters("b").add_transactions(1);
        r.counters("a").add_transactions(2);
        r.counters("b").add_transactions(3);
        let s = r.snapshot();
        assert_eq!(s.len(), 2);
        assert_eq!(s[0].name, "b");
        assert_eq!(s[0].counters.transactions, 4);
        assert_eq!(s[1].name, "a");
    }

    #[test]
    fn snapshot_delta_drops_idle_kernels() {
        let before = TraceSnapshot {
            global: snap(10, 1),
            kernels: vec![KernelStats {
                name: "x",
                counters: snap(10, 1),
            }],
        };
        let after = TraceSnapshot {
            global: snap(25, 2),
            kernels: vec![
                KernelStats {
                    name: "x",
                    counters: snap(10, 1),
                },
                KernelStats {
                    name: "y",
                    counters: snap(15, 1),
                },
            ],
        };
        let d = after.delta(&before);
        assert_eq!(d.global, snap(15, 1));
        assert_eq!(d.kernels.len(), 1, "idle kernel 'x' dropped");
        assert_eq!(d.kernels[0].name, "y");
        assert_eq!(d.kernel_sum(), d.global);
    }

    #[test]
    fn report_sorts_rows_by_modeled_time() {
        let trace = TraceSnapshot {
            global: snap(1100, 2),
            kernels: vec![
                KernelStats {
                    name: "cheap",
                    counters: snap(100, 1),
                },
                KernelStats {
                    name: "hot",
                    counters: snap(1000, 1),
                },
            ],
        };
        let report = TraceReport::new(&trace, &CostModel::titan_v());
        assert_eq!(report.rows[0].name, "hot");
        assert_eq!(report.kernel_sum(), trace.global);
        let rendered = report.render();
        assert!(rendered.contains("hot"));
        assert!(rendered.contains("total"));
    }

    #[test]
    fn json_roundtrip_is_exact() {
        let trace = TraceSnapshot {
            global: CounterSnapshot {
                transactions: 12345,
                atomics: 67,
                ballots: 89,
                shuffles: 10,
                launches: 3,
                warps: 40,
                words_allocated: u64::MAX,
            },
            kernels: vec![
                KernelStats {
                    name: "edge_insert",
                    counters: snap(12000, 2),
                },
                KernelStats {
                    name: "(host)",
                    counters: snap(345, 1),
                },
            ],
        };
        let report = TraceReport::new(&trace, &CostModel::titan_v());
        let parsed = TraceReport::from_json(&report.to_json()).unwrap();
        assert_eq!(parsed, report);
    }

    #[test]
    fn findings_roundtrip_and_render() {
        use crate::sanitizer::NO_WARP;
        let trace = TraceSnapshot {
            global: snap(10, 1),
            kernels: vec![KernelStats {
                name: "edge_insert",
                counters: snap(10, 1),
            }],
        };
        let finding = Finding {
            kind: FindingKind::RaceWriteWrite,
            addr: 0x40,
            kernel: "edge_insert".into(),
            warp: 3,
            era: 7,
            other_kernel: "edge_insert".into(),
            other_warp: 5,
            note: "plain write races with plain write by `edge_insert` (warp 5)".into(),
        };
        let clean = Finding {
            kind: FindingKind::UseAfterFree,
            addr: 0x80,
            kernel: "(host)".into(),
            warp: NO_WARP,
            era: 0,
            other_kernel: String::new(),
            other_warp: NO_WARP,
            note: "freed slab".into(),
        };
        let report =
            TraceReport::new(&trace, &CostModel::titan_v()).with_findings(vec![finding, clean]);
        let parsed = TraceReport::from_json(&report.to_json()).unwrap();
        assert_eq!(parsed, report);
        let rendered = report.render();
        assert!(rendered.contains("sanitizer findings (2):"));
        assert!(rendered.contains("race-write-write"));
        // Reports without the findings key (pre-sanitizer) still parse.
        let bare = TraceReport::new(&trace, &CostModel::titan_v());
        let parsed = TraceReport::from_json(&bare.to_json()).unwrap();
        assert!(parsed.findings.is_empty());
    }

    #[test]
    fn metrics_roundtrip_and_render() {
        use crate::metrics::MetricKind;
        let trace = TraceSnapshot {
            global: snap(10, 1),
            kernels: vec![KernelStats {
                name: "edge_insert",
                counters: snap(10, 1),
            }],
        };
        let metrics = vec![
            MetricSummary {
                name: "slab_hash.probe_depth".into(),
                kind: MetricKind::Histogram,
                count: 1000,
                sum: 1700,
                max: 9,
                p50: 1,
                p95: 4,
                p99: 8,
            },
            MetricSummary {
                name: "slab_alloc.live_slabs".into(),
                kind: MetricKind::Gauge,
                count: 64,
                sum: 12,
                max: 48,
                p50: 12,
                p95: 12,
                p99: 12,
            },
        ];
        let report = TraceReport::new(&trace, &CostModel::titan_v()).with_metrics(metrics);
        let parsed = TraceReport::from_json(&report.to_json()).unwrap();
        assert_eq!(parsed, report);
        let rendered = report.render();
        assert!(rendered.contains("metrics (2):"));
        assert!(rendered.contains("slab_hash.probe_depth"));
        assert!(rendered.contains("histogram"));
        assert!(rendered.contains("gauge"));
        assert!(rendered.contains("p95"));
        // Reports without the metrics key (pre-profiler) still parse.
        let bare = TraceReport::new(&trace, &CostModel::titan_v());
        let parsed = TraceReport::from_json(&bare.to_json()).unwrap();
        assert!(parsed.metrics.is_empty());
    }

    #[test]
    fn shard_health_roundtrips_and_renders() {
        let trace = TraceSnapshot {
            global: snap(10, 1),
            kernels: vec![KernelStats {
                name: "router.flush",
                counters: snap(10, 1),
            }],
        };
        let health = vec![
            ShardHealthRow {
                shard: 0,
                state: "healthy".into(),
                retries: 0,
                backoff_s: 0.0,
                journal_depth: 0,
                rebuilds: 0,
            },
            ShardHealthRow {
                shard: 2,
                state: "down".into(),
                retries: 3,
                backoff_s: 0.015625,
                journal_depth: 42,
                rebuilds: 1,
            },
        ];
        let report = TraceReport::new(&trace, &CostModel::titan_v()).with_shard_health(health);
        let parsed = TraceReport::from_json(&report.to_json()).unwrap();
        assert_eq!(parsed, report, "shard-health round-trip must be exact");
        let rendered = report.render();
        assert!(rendered.contains("shard health (2):"));
        assert!(rendered.contains("shard 2: down"));
        assert!(rendered.contains("rebuilds 1"));
        // Reports without the key (pre-fault-tolerance) still parse.
        let bare = TraceReport::new(&trace, &CostModel::titan_v());
        let parsed = TraceReport::from_json(&bare.to_json()).unwrap();
        assert!(parsed.shard_health.is_empty());
        // Malformed health entries name the offending field.
        let good = report.to_json();
        let wrong = good.replacen(r#""journal_depth": 42"#, r#""journal_depth": "deep""#, 1);
        assert_ne!(wrong, good);
        let err = TraceReport::from_json(&wrong).unwrap_err();
        assert!(err.contains("'journal_depth'"), "{err}");
    }

    #[test]
    fn pre_p99_metric_json_still_parses() {
        // A metrics entry serialized before p99 existed: p99 defaults to
        // p95 instead of failing the parse.
        let old = r#"{"kernels": [], "total": {"name": "total", "transactions": 0,
            "atomics": 0, "ballots": 0, "shuffles": 0, "launches": 0, "warps": 0,
            "words_allocated": 0, "modeled_s": 0.0}, "metrics": [
            {"name": "m", "kind": "histogram", "count": 10, "sum": 40,
             "max": 9, "p50": 2, "p95": 8}]}"#;
        let parsed = TraceReport::from_json(old).expect("pre-p99 report parses");
        assert_eq!(parsed.metrics.len(), 1);
        assert_eq!(parsed.metrics[0].p95, 8);
        assert_eq!(parsed.metrics[0].p99, 8, "p99 defaults to p95");
    }

    #[test]
    fn op_attribution_and_exemplars_roundtrip_and_render() {
        let trace = TraceSnapshot {
            global: snap(10, 1),
            kernels: vec![KernelStats {
                name: "router.flush",
                counters: snap(10, 1),
            }],
        };
        let attribution = vec![
            OpAttributionRow {
                component: "kernel".into(),
                count: 100,
                sum_ns: 5000,
                max_ns: 400,
                p50_ns: 32,
                p95_ns: 128,
                p99_ns: 256,
            },
            OpAttributionRow {
                component: "backoff".into(),
                count: 3,
                sum_ns: 150,
                max_ns: 100,
                p50_ns: 32,
                p95_ns: 64,
                p99_ns: 64,
            },
        ];
        let exemplars = vec![TailExemplarRow {
            op: 17,
            session: 3,
            kind: "insert".into(),
            total_ns: 612,
            queue_ns: 100,
            coalesce_ns: 12,
            backoff_ns: 100,
            kernel_ns: 400,
            degraded_ns: 0,
            spans: vec![
                "op#17 session 3 insert".into(),
                "flush#2".into(),
                "shard1/router.flush".into(),
                "shard1/edge_insert".into(),
            ],
        }];
        let report = TraceReport::new(&trace, &CostModel::titan_v())
            .with_op_attribution(attribution)
            .with_tail_exemplars(exemplars);
        let parsed = TraceReport::from_json(&report.to_json()).unwrap();
        assert_eq!(parsed, report, "attribution round-trip must be exact");
        let rendered = report.render();
        assert!(rendered.contains("op attribution (2):"), "{rendered}");
        assert!(rendered.contains("p99 ns"));
        assert!(rendered.contains("tail exemplars (1):"));
        assert!(rendered.contains("op 17 (insert, session 3): 612 ns"));
        assert!(rendered.contains("shard1/edge_insert"));
        // Reports without the keys (pre-tracing) still parse.
        let bare = TraceReport::new(&trace, &CostModel::titan_v());
        let parsed = TraceReport::from_json(&bare.to_json()).unwrap();
        assert!(parsed.op_attribution.is_empty());
        assert!(parsed.tail_exemplars.is_empty());
        // Malformed entries name the offending field.
        let good = report.to_json();
        let wrong = good.replacen(r#""total_ns": 612"#, r#""total_ns": "slow""#, 1);
        assert_ne!(wrong, good);
        let err = TraceReport::from_json(&wrong).unwrap_err();
        assert!(err.contains("'total_ns'"), "{err}");
    }

    #[test]
    fn from_json_rejects_malformed() {
        assert!(TraceReport::from_json("{}").is_err());
        assert!(TraceReport::from_json("[1, 2]").is_err());
        assert!(TraceReport::from_json(r#"{"kernels": [{"name": "x"}]}"#).is_err());
    }

    /// Every malformed-input path returns an `Err` naming the offending
    /// field — never panics, never silently defaults.
    #[test]
    fn from_json_errors_name_the_offending_field() {
        let good = TraceReport::new(
            &TraceSnapshot {
                global: snap(10, 1),
                kernels: vec![KernelStats {
                    name: "edge_insert",
                    counters: snap(10, 1),
                }],
            },
            &CostModel::titan_v(),
        )
        .to_json();

        // Truncated document: the JSON parser itself reports it.
        let truncated = &good[..good.len() / 2];
        assert!(TraceReport::from_json(truncated).is_err());

        // Wrong-type counter field (string where a u64 belongs).
        let wrong_type = good.replacen(r#""atomics": 0"#, r#""atomics": "zero""#, 1);
        assert_ne!(wrong_type, good, "replacement must have applied");
        let err = TraceReport::from_json(&wrong_type).unwrap_err();
        assert!(err.contains("'atomics'"), "{err}");

        // Negative counter value: rejected as non-u64, naming the field.
        let negative = good.replacen(r#""launches": 1"#, r#""launches": -1"#, 1);
        assert_ne!(negative, good);
        let err = TraceReport::from_json(&negative).unwrap_err();
        assert!(err.contains("'launches'"), "{err}");

        // A kernel row that is not an object at all.
        let err = TraceReport::from_json(r#"{"kernels": [42], "total": {}}"#).unwrap_err();
        assert!(err.contains("'name'"), "{err}");

        // A kernel row missing its counters entirely.
        let err = TraceReport::from_json(
            r#"{"kernels": [{"name": "mystery", "modeled_s": 0.5}], "total": {}}"#,
        )
        .unwrap_err();
        assert!(err.contains("counter"), "{err}");

        // Missing total row.
        let err = TraceReport::from_json(r#"{"kernels": []}"#).unwrap_err();
        assert!(err.contains("'total'"), "{err}");

        // Malformed metric entries: wrong-kind string and missing field.
        let base = r#"{"kernels": [], "total": {"name": "total", "transactions": 0,
            "atomics": 0, "ballots": 0, "shuffles": 0, "launches": 0, "warps": 0,
            "words_allocated": 0, "modeled_s": 0.0}, "metrics": [METRIC]}"#;
        let bad_kind = base.replace(
            "METRIC",
            r#"{"name": "m", "kind": "exotic", "count": 0, "sum": 0, "max": 0, "p50": 0, "p95": 0}"#,
        );
        let err = TraceReport::from_json(&bad_kind).unwrap_err();
        assert!(err.contains("unknown metric kind 'exotic'"), "{err}");
        let no_p95 = base.replace(
            "METRIC",
            r#"{"name": "m", "kind": "gauge", "count": 0, "sum": 0, "max": 0, "p50": 0}"#,
        );
        let err = TraceReport::from_json(&no_p95).unwrap_err();
        assert!(err.contains("missing metric field 'p95'"), "{err}");
    }
}
