//! Shadow-memory sanitizer: racecheck / memcheck / initcheck for the
//! simulated device, modelled on NVIDIA's `compute-sanitizer` tools.
//!
//! The sanitizer is opt-in (see [`crate::DeviceConfig::with_sanitizer`];
//! the `sanitize` cargo feature turns it on for every default-configured
//! device) and attaches to the [`crate::DeviceArena`]: every word access
//! issued through a [`crate::Warp`] accessor is classified, while raw
//! host-side arena accesses only update the initialization shadow. When
//! disabled it costs one `Option` check per access and **charges nothing**
//! either way — performance counters are byte-identical with the sanitizer
//! on or off.
//!
//! Three checkers, each individually switchable:
//!
//! - **racecheck** — FastTrack-style vector clocks keyed by
//!   (launch era, warp id). Every kernel launch is a global barrier
//!   (both executors join all warps before returning), so each launch
//!   opens a fresh era and only same-era accesses can race. Atomic RMWs
//!   acquire *and* release a per-word synchronization clock; plain reads
//!   acquire it too, modelling the GPU guarantee that a pointer published
//!   by `atomicCAS` makes the data it points at visible through the data
//!   dependency (the paper's slab-list link-CAS publication pattern).
//!   Flagged pairs: plain-write/plain-write, plain-write/plain-read, and
//!   plain-write/atomic on the same word from different warps of the same
//!   era with no happens-before path. Atomic/atomic and atomic/plain-read
//!   pairs are whitelisted: word loads are single-copy atomic on the
//!   device, so they cannot observe torn state.
//! - **memcheck** — per-slab shadow states (`Allocated` → `Quarantined` →
//!   `Free`) driven by the slab allocator's alloc/free hooks,
//!   flagging use-after-free of recycled slabs with both the allocating
//!   and freeing kernels' names, double-frees, and any warp access past
//!   the arena's bump cursor. The checker also models the release/acquire
//!   edges of *era publication* (epoch-based reclamation): a `ReadGuard`
//!   pin registers its era via [`Sanitizer::on_pin`], and an access to a
//!   **quarantined** slab is certified safe iff some live pin **on the
//!   allocator that owns the slab** has an era ≤ the slab's free era
//!   (the pin happened-before the free, so the reclamation protocol
//!   guarantees the slab's memory survives; a pin on a different
//!   allocator blocks nothing here and certifies nothing). A
//!   quarantined access with no covering pin is an *unpinned read* and is
//!   flagged as use-after-free; accesses to fully `Free` (drained) slabs
//!   are always flagged.
//! - **initcheck** — an initialization bitmap over the word space; warp
//!   reads (and atomic RMWs) of never-written words are flagged. Host
//!   stores, `fill`/`memset`, and kernel writes all mark words
//!   initialized; the simulated arena happens to be zero-initialized, but
//!   real `cudaMalloc` memory is not, so relying on implicit zeroes is
//!   exactly the bug class this checker exists for.
//!
//! Because racecheck is *model-based* (it reasons about happens-before,
//! not observed interleavings), the deterministic sequential executor
//! detects the same races as the threaded one — a race does not need to
//! manifest to be reported.

use crate::memory::{Addr, SLAB_WORDS};
use parking_lot::{Mutex, RwLock};
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};

/// Number of word-shadow shards; accesses hash by slab so one coalesced
/// slab access stays within a single shard.
const N_SHARDS: usize = 64;

/// Configuration of the shadow-memory sanitizer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SanitizerConfig {
    /// Detect unsynchronized same-word conflicts between warps.
    pub racecheck: bool,
    /// Track slab lifetimes (use-after-free, double-free, out-of-bounds).
    pub memcheck: bool,
    /// Flag reads of never-written words.
    pub initcheck: bool,
    /// Panic at the end of the first launch that produced findings
    /// (regression-test mode; negative-test fixtures keep this off and
    /// inspect [`Sanitizer::findings`] instead).
    pub escalate: bool,
    /// Retain at most this many detailed findings (the total count keeps
    /// incrementing past the cap).
    pub max_findings: usize,
}

impl Default for SanitizerConfig {
    fn default() -> Self {
        SanitizerConfig {
            racecheck: true,
            memcheck: true,
            initcheck: true,
            escalate: false,
            max_findings: 64,
        }
    }
}

impl SanitizerConfig {
    /// All checkers on, escalation configurable.
    pub fn with_escalation(mut self, escalate: bool) -> Self {
        self.escalate = escalate;
        self
    }
}

/// How a word was touched by a warp.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// Non-atomic load (`read_slab`, `read_lanes`, `read_word`).
    PlainRead,
    /// Non-atomic store (`write_slab`, `write_lanes`, `write_word`).
    PlainWrite,
    /// Atomic read-modify-write (`atomic_cas`/`exchange`/`add`/...).
    Atomic,
}

impl AccessKind {
    fn as_str(self) -> &'static str {
        match self {
            AccessKind::PlainRead => "plain read",
            AccessKind::PlainWrite => "plain write",
            AccessKind::Atomic => "atomic",
        }
    }
}

/// Classification of a sanitizer finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FindingKind {
    /// Two unsynchronized writes (at least one non-atomic) to one word.
    RaceWriteWrite,
    /// Unsynchronized plain read / plain write pair on one word.
    RaceReadWrite,
    /// Access to a slab after it was freed (or while quarantined).
    UseAfterFree,
    /// Slab freed twice without an intervening allocation.
    DoubleFree,
    /// Read (or atomic RMW) of a never-written word.
    UninitRead,
    /// Access beyond the arena's allocation cursor.
    OutOfBounds,
}

impl FindingKind {
    /// Stable identifier used in JSON payloads and reports.
    pub fn as_str(self) -> &'static str {
        match self {
            FindingKind::RaceWriteWrite => "race-write-write",
            FindingKind::RaceReadWrite => "race-read-write",
            FindingKind::UseAfterFree => "use-after-free",
            FindingKind::DoubleFree => "double-free",
            FindingKind::UninitRead => "uninit-read",
            FindingKind::OutOfBounds => "out-of-bounds",
        }
    }

    /// Inverse of [`Self::as_str`].
    pub fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "race-write-write" => FindingKind::RaceWriteWrite,
            "race-read-write" => FindingKind::RaceReadWrite,
            "use-after-free" => FindingKind::UseAfterFree,
            "double-free" => FindingKind::DoubleFree,
            "uninit-read" => FindingKind::UninitRead,
            "out-of-bounds" => FindingKind::OutOfBounds,
            _ => return None,
        })
    }
}

/// Sentinel warp id for "no conflicting warp" / host-side provenance.
pub const NO_WARP: u32 = u32::MAX;

/// One sanitizer violation, with full provenance: the accessing kernel and
/// warp, the address, the launch era, and — where applicable — the other
/// side of the conflict (racing warp, or allocating/freeing kernel).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// What went wrong.
    pub kind: FindingKind,
    /// Device word address of the access.
    pub addr: Addr,
    /// Kernel that issued the flagged access.
    pub kernel: String,
    /// Warp id of the flagged access ([`NO_WARP`] for host).
    pub warp: u32,
    /// Launch era (global launch counter) of the flagged access.
    pub era: u64,
    /// Kernel on the other side of the conflict (racing writer, or the
    /// allocating kernel for lifetime findings); empty when not
    /// applicable.
    pub other_kernel: String,
    /// Warp id on the other side ([`NO_WARP`] when not applicable).
    pub other_warp: u32,
    /// Human-readable detail.
    pub note: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "[{}] addr {:#x} in `{}` (warp {}, launch {}): {}",
            self.kind.as_str(),
            self.addr,
            self.kernel,
            self.warp,
            self.era,
            self.note
        )
    }
}

/// Vector clock over (warp id → epoch) within one launch era.
type VClock = HashMap<u32, u64>;

fn clock_join(into: &mut VClock, from: &VClock) {
    for (&w, &e) in from {
        let slot = into.entry(w).or_insert(0);
        if *slot < e {
            *slot = e;
        }
    }
}

/// Happens-before: is the recorded access (warp, epoch) ordered before the
/// current access of `self_warp` holding `clock`?
fn ordered(clock: &VClock, self_warp: u32, rec: &Access) -> bool {
    rec.warp == self_warp || clock.get(&rec.warp).copied().unwrap_or(0) >= rec.epoch
}

/// Per-warp racecheck state, created at launch and owned by the `Warp`.
#[derive(Debug)]
pub struct WarpRace {
    era: u64,
    epoch: u64,
    clock: VClock,
    /// Last `sync_vers` of each word whose sync clock this warp already
    /// joined. Re-reading a hot word whose release history is unchanged
    /// then skips the O(|clock|) join — the dominant cost on chain walks.
    sync_seen: HashMap<Addr, u64>,
}

impl WarpRace {
    /// Fresh state for one warp of launch `era`.
    pub(crate) fn new(era: u64, warp_id: u32) -> Self {
        WarpRace {
            era,
            epoch: 0,
            clock: HashMap::from([(warp_id, 0)]),
            sync_seen: HashMap::new(),
        }
    }
}

/// One recorded access in a word's shadow.
#[derive(Debug, Clone)]
struct Access {
    warp: u32,
    epoch: u64,
    kernel: &'static str,
}

/// Racecheck shadow for one word, valid for a single era.
#[derive(Debug, Default)]
struct WordShadow {
    era: u64,
    /// Last plain write.
    write: Option<Access>,
    /// Last atomic RMW.
    atomic: Option<Access>,
    /// Latest plain read per warp since the last plain write.
    reads: HashMap<u32, Access>,
    /// Synchronization clock released into by atomics on this word.
    sync: VClock,
    /// Bumped on every release into `sync`; pairs with
    /// [`WarpRace::sync_seen`] to skip redundant joins.
    sync_vers: u64,
}

/// Shadow state for the 32 words of one slab, allocated on first touch.
/// Keying shards by slab base means a coalesced slab access takes one
/// lock and one hash lookup instead of 32 of each.
type SlabWords = Box<[WordShadow; SLAB_WORDS]>;

fn new_slab_words() -> SlabWords {
    Box::new(std::array::from_fn(|_| WordShadow::default()))
}

/// Lifetime state of one dynamic-pool slab.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SlabStatus {
    Allocated,
    Quarantined,
    Free,
}

#[derive(Debug, Clone, Copy)]
struct SlabShadow {
    status: SlabStatus,
    alloc_kernel: &'static str,
    free_kernel: &'static str,
    /// Launch era in which the slab was freed (entered quarantine). A
    /// reader pin taken at era ≤ `free_era` happened-before the free and
    /// may legally read the quarantined slab.
    free_era: u64,
    /// Identity of the allocator that owns the slab: only pins registered
    /// against this allocator block its reclamation, so only they can
    /// certify a quarantined read.
    owner: u64,
}

/// The shadow-memory sanitizer attached to a device (see module docs).
pub struct Sanitizer {
    cfg: SanitizerConfig,
    /// Word shadows grouped per slab, sharded by slab index so a
    /// coalesced slab access takes one lock.
    shards: Box<[Mutex<HashMap<Addr, SlabWords>>]>,
    /// Slab lifetime shadows keyed by slab base (slab bases are 32-word
    /// aligned by construction).
    slabs: Mutex<HashMap<Addr, SlabShadow>>,
    /// Live reader pins, keyed by allocator id, each an era multiset
    /// (era → live guard count). Mirrors every allocator's pin registry
    /// so memcheck can certify quarantined-slab reads made under a
    /// covering `ReadGuard`. Keying per allocator matters: a guard on one
    /// graph does not block reclamation in another graph sharing the
    /// device, so it must not certify that graph's quarantined slabs.
    pins: Mutex<HashMap<u64, BTreeMap<u64, usize>>>,
    /// Initialization bitmap: bit per word, grown lazily.
    init: RwLock<Vec<AtomicU64>>,
    findings: Mutex<Vec<Finding>>,
    total: AtomicU64,
    escalated: AtomicU64,
}

impl Sanitizer {
    /// Build a sanitizer with the given configuration.
    pub fn new(cfg: SanitizerConfig) -> Self {
        Sanitizer {
            cfg,
            shards: (0..N_SHARDS)
                .map(|_| Mutex::new(HashMap::new()))
                .collect::<Vec<_>>()
                .into_boxed_slice(),
            slabs: Mutex::new(HashMap::new()),
            pins: Mutex::new(HashMap::new()),
            init: RwLock::new(Vec::new()),
            findings: Mutex::new(Vec::new()),
            total: AtomicU64::new(0),
            escalated: AtomicU64::new(0),
        }
    }

    /// This sanitizer's configuration.
    pub fn config(&self) -> SanitizerConfig {
        self.cfg
    }

    /// Total number of violations detected (keeps counting past the
    /// retained-findings cap).
    pub fn finding_count(&self) -> u64 {
        self.total.load(Ordering::Relaxed)
    }

    /// The retained findings (at most `max_findings`).
    pub fn findings(&self) -> Vec<Finding> {
        self.findings.lock().clone()
    }

    /// Drop all recorded findings and reset the counter (fixtures that
    /// deliberately trigger violations use this between scenarios).
    pub fn clear_findings(&self) {
        self.findings.lock().clear();
        self.total.store(0, Ordering::Relaxed);
        self.escalated.store(0, Ordering::Relaxed);
    }

    /// Discard all shadow state — word clocks, slab lifetimes, the
    /// initialization bitmap — without touching recorded findings. Called
    /// on a device reset: the rebuilt shard starts from genuinely fresh
    /// (uninitialized, unallocated) memory, but evidence gathered before
    /// the reset must survive for end-of-run assertions.
    pub fn reset_shadow(&self) {
        for shard in self.shards.iter() {
            shard.lock().clear();
        }
        self.slabs.lock().clear();
        self.init.write().clear();
    }

    fn report(&self, finding: Finding) {
        self.total.fetch_add(1, Ordering::Relaxed);
        let mut f = self.findings.lock();
        if f.len() < self.cfg.max_findings {
            f.push(finding);
        }
    }

    // ---- initialization shadow ----

    /// Mark one word initialized (every arena store/atomic-write path).
    pub fn mark_init(&self, addr: Addr) {
        self.mark_init_range(addr, 1);
    }

    /// Mark `n` consecutive words initialized (arena `fill`).
    pub fn mark_init_range(&self, base: Addr, n: usize) {
        if n == 0 {
            return;
        }
        let last_idx = ((base as usize + n - 1) / 64) + 1;
        {
            let bits = self.init.read();
            if bits.len() >= last_idx {
                Self::set_bits(&bits, base, n);
                return;
            }
        }
        let mut bits = self.init.write();
        let target = last_idx.max(bits.len() * 2);
        while bits.len() < target {
            bits.push(AtomicU64::new(0));
        }
        Self::set_bits(&bits, base, n);
    }

    fn set_bits(bits: &[AtomicU64], base: Addr, n: usize) {
        let (start, end) = (base as usize, base as usize + n);
        let mut w = start / 64;
        while w * 64 < end {
            let lo = (w * 64).max(start) % 64;
            let hi = ((w * 64 + 63).min(end - 1)) % 64;
            let mask = if (hi - lo) == 63 {
                u64::MAX
            } else {
                ((1u64 << (hi - lo + 1)) - 1) << lo
            };
            bits[w].fetch_or(mask, Ordering::Relaxed);
            w += 1;
        }
    }

    #[cfg(test)]
    fn is_init(&self, addr: Addr) -> bool {
        let bits = self.init.read();
        let w = addr as usize / 64;
        w < bits.len() && bits[w].load(Ordering::Relaxed) & (1 << (addr % 64)) != 0
    }

    // ---- slab lifetime hooks (called by the slab allocator) ----

    /// A pool slab at `base` was claimed by `kernel` on behalf of the
    /// allocator identified by `owner`.
    pub fn on_slab_alloc(&self, base: Addr, kernel: &'static str, owner: u64) {
        self.slabs.lock().insert(
            base,
            SlabShadow {
                status: SlabStatus::Allocated,
                alloc_kernel: kernel,
                free_kernel: "",
                free_era: 0,
                owner,
            },
        );
    }

    /// A pool slab at `base`, owned by allocator `owner`, was freed by
    /// `kernel` during launch `era` (enters quarantine).
    pub fn on_slab_free(&self, base: Addr, kernel: &'static str, era: u64, owner: u64) {
        let mut slabs = self.slabs.lock();
        let entry = slabs.entry(base).or_insert(SlabShadow {
            status: SlabStatus::Allocated,
            alloc_kernel: "(unknown)",
            free_kernel: "",
            free_era: 0,
            owner,
        });
        entry.status = SlabStatus::Quarantined;
        entry.free_kernel = kernel;
        entry.free_era = era;
        entry.owner = owner;
    }

    /// A quarantined slab at `base` left quarantine (reusable again).
    pub fn on_slab_drain(&self, base: Addr) {
        if let Some(s) = self.slabs.lock().get_mut(&base) {
            if s.status == SlabStatus::Quarantined {
                s.status = SlabStatus::Free;
            }
        }
    }

    /// A `ReadGuard` on allocator `owner` pinned era `era` (the acquire
    /// edge of era publication). While the pin lives, that allocator's
    /// quarantined slabs freed at or after `era` stay legal to read.
    pub fn on_pin(&self, owner: u64, era: u64) {
        *self
            .pins
            .lock()
            .entry(owner)
            .or_default()
            .entry(era)
            .or_insert(0) += 1;
    }

    /// The `ReadGuard` on allocator `owner` pinning `era` was dropped.
    pub fn on_unpin(&self, owner: u64, era: u64) {
        let mut pins = self.pins.lock();
        if let Some(eras) = pins.get_mut(&owner) {
            if let Some(n) = eras.get_mut(&era) {
                *n -= 1;
                if *n == 0 {
                    eras.remove(&era);
                }
            }
            if eras.is_empty() {
                pins.remove(&owner);
            }
        }
    }

    /// Smallest era currently pinned against allocator `owner`, if any
    /// of its reader guards is live.
    fn min_pinned(&self, owner: u64) -> Option<u64> {
        self.pins
            .lock()
            .get(&owner)
            .and_then(|eras| eras.keys().next().copied())
    }

    /// Record a double-free detected by the allocator, with the original
    /// allocation/free provenance from the shadow.
    pub fn report_double_free(&self, addr: Addr, kernel: &'static str, warp: u32, era: u64) {
        let (other, note) = match self.slabs.lock().get(&(addr & !(SLAB_WORDS as u32 - 1))) {
            Some(s) => (
                s.free_kernel,
                format!(
                    "slab allocated by `{}` was already freed by `{}`",
                    s.alloc_kernel, s.free_kernel
                ),
            ),
            None => ("", "freed address was never allocated from the pool".into()),
        };
        self.report(Finding {
            kind: FindingKind::DoubleFree,
            addr,
            kernel: kernel.to_string(),
            warp,
            era,
            other_kernel: other.to_string(),
            other_warp: NO_WARP,
            note,
        });
    }

    // ---- the per-access classifier ----

    /// Classify a contiguous warp access of `len` words at `base`.
    /// `cursor` is the arena's current bump cursor (for the out-of-bounds
    /// check). Called from every `Warp` memory accessor; never charges.
    #[allow(clippy::too_many_arguments)]
    pub fn on_warp_access(
        &self,
        st: &mut WarpRace,
        warp: u32,
        kernel: &'static str,
        base: Addr,
        len: u32,
        kind: AccessKind,
        cursor: u64,
    ) {
        let era = st.era;
        if self.cfg.memcheck {
            if base as u64 + len as u64 > cursor {
                self.report(Finding {
                    kind: FindingKind::OutOfBounds,
                    addr: base,
                    kernel: kernel.to_string(),
                    warp,
                    era,
                    other_kernel: String::new(),
                    other_warp: NO_WARP,
                    note: format!(
                        "{} of {} word(s) reaches past the allocation cursor ({})",
                        kind.as_str(),
                        len,
                        cursor
                    ),
                });
                return;
            }
            // Use-after-free: check each distinct slab the range touches.
            let first_slab = base & !(SLAB_WORDS as u32 - 1);
            let last_slab = (base + len - 1) & !(SLAB_WORDS as u32 - 1);
            let slabs = self.slabs.lock();
            let mut s = first_slab;
            while s <= last_slab {
                if let Some(sh) = slabs.get(&s) {
                    // Quarantined slabs are readable under epoch-based
                    // reclamation iff some live pin **on the owning
                    // allocator** predates the free (min pinned era ≤
                    // free era): only that allocator's pins block the
                    // slab's reclamation, so a guard on another graph
                    // certifies nothing. Sampled per slab — one range can
                    // span slabs with different owners. Drained (`Free`)
                    // slabs are past every pin and always flag.
                    let covered = sh.status == SlabStatus::Quarantined
                        && self.min_pinned(sh.owner).is_some_and(|p| p <= sh.free_era);
                    if sh.status != SlabStatus::Allocated && !covered {
                        let why = if sh.status == SlabStatus::Quarantined {
                            "quarantined, read outside a live ReadGuard (unpinned read)"
                        } else {
                            "recycled"
                        };
                        self.report(Finding {
                            kind: FindingKind::UseAfterFree,
                            addr: base.max(s),
                            kernel: kernel.to_string(),
                            warp,
                            era,
                            other_kernel: sh.alloc_kernel.to_string(),
                            other_warp: NO_WARP,
                            note: format!(
                                "{} of slab {:#x} after free (allocated by `{}`, freed by `{}`; {})",
                                kind.as_str(),
                                s,
                                sh.alloc_kernel,
                                sh.free_kernel,
                                why
                            ),
                        });
                    }
                }
                s += SLAB_WORDS as u32;
            }
        }
        if self.cfg.initcheck && kind != AccessKind::PlainWrite {
            // One bitmap-lock acquisition for the whole range, not per word.
            let (mut first, mut n) = (None, 0usize);
            {
                let bits = self.init.read();
                for a in base..base + len {
                    let w = a as usize / 64;
                    let init =
                        w < bits.len() && bits[w].load(Ordering::Relaxed) & (1 << (a % 64)) != 0;
                    if !init {
                        first.get_or_insert(a);
                        n += 1;
                    }
                }
            }
            if let Some(first) = first {
                self.report(Finding {
                    kind: FindingKind::UninitRead,
                    addr: first,
                    kernel: kernel.to_string(),
                    warp,
                    era,
                    other_kernel: String::new(),
                    other_warp: NO_WARP,
                    note: format!(
                        "{} of {} never-written word(s) starting at {:#x}",
                        kind.as_str(),
                        n,
                        first
                    ),
                });
            }
        }
        if self.cfg.racecheck {
            self.racecheck(st, warp, kernel, base, len, kind);
        }
    }

    fn racecheck(
        &self,
        st: &mut WarpRace,
        warp: u32,
        kernel: &'static str,
        base: Addr,
        len: u32,
        kind: AccessKind,
    ) {
        let era = st.era;
        st.epoch += 1;
        st.clock.insert(warp, st.epoch);
        let first_slab = base & !(SLAB_WORDS as u32 - 1);
        let last_slab = (base + len - 1) & !(SLAB_WORDS as u32 - 1);
        // Pass 1 — acquire: plain reads and atomics join every touched
        // word's sync clock *before* any conflict check, so that a slab
        // read that covers both a CAS-published link word and the data it
        // publishes sees the publication regardless of word order.
        if kind != AccessKind::PlainWrite {
            let mut slab = first_slab;
            while slab <= last_slab {
                let shard = self.shards[(slab as usize >> 5) % N_SHARDS].lock();
                if let Some(words) = shard.get(&slab) {
                    let lo = base.max(slab);
                    let hi = (base + len).min(slab + SLAB_WORDS as u32);
                    for addr in lo..hi {
                        let e = &words[(addr - slab) as usize];
                        if e.era == era
                            && !e.sync.is_empty()
                            && st.sync_seen.get(&addr) != Some(&e.sync_vers)
                        {
                            clock_join(&mut st.clock, &e.sync);
                            st.sync_seen.insert(addr, e.sync_vers);
                        }
                    }
                }
                slab += SLAB_WORDS as u32;
            }
        }
        // Pass 2 — conflict checks + shadow update.
        let me = Access {
            warp,
            epoch: st.epoch,
            kernel,
        };
        let mut slab = first_slab;
        while slab <= last_slab {
            let mut shard = self.shards[(slab as usize >> 5) % N_SHARDS].lock();
            let words = shard.entry(slab).or_insert_with(new_slab_words);
            let lo = base.max(slab);
            let hi = (base + len).min(slab + SLAB_WORDS as u32);
            for addr in lo..hi {
                let e = &mut words[(addr - slab) as usize];
                if e.era != era {
                    *e = WordShadow {
                        era,
                        ..WordShadow::default()
                    };
                }
                let race = |kind2: FindingKind, rec: &Access, what: &str| {
                    self.report(Finding {
                        kind: kind2,
                        addr,
                        kernel: kernel.to_string(),
                        warp,
                        era,
                        other_kernel: rec.kernel.to_string(),
                        other_warp: rec.warp,
                        note: format!(
                            "{} races with {} by `{}` (warp {})",
                            kind.as_str(),
                            what,
                            rec.kernel,
                            rec.warp
                        ),
                    });
                };
                match kind {
                    AccessKind::PlainRead => {
                        if let Some(w) = &e.write {
                            if !ordered(&st.clock, warp, w) {
                                race(FindingKind::RaceReadWrite, w, "plain write");
                            }
                        }
                        e.reads.insert(warp, me.clone());
                    }
                    AccessKind::PlainWrite => {
                        if let Some(w) = &e.write {
                            if !ordered(&st.clock, warp, w) {
                                race(FindingKind::RaceWriteWrite, w, "plain write");
                            }
                        }
                        if let Some(a) = &e.atomic {
                            if !ordered(&st.clock, warp, a) {
                                race(FindingKind::RaceWriteWrite, a, "atomic update");
                            }
                        }
                        for r in e.reads.values() {
                            if !ordered(&st.clock, warp, r) {
                                race(FindingKind::RaceReadWrite, r, "plain read");
                            }
                        }
                        e.write = Some(me.clone());
                        e.reads.clear();
                    }
                    AccessKind::Atomic => {
                        if let Some(w) = &e.write {
                            if !ordered(&st.clock, warp, w) {
                                race(FindingKind::RaceWriteWrite, w, "plain write");
                            }
                        }
                        // Acquire + release on the word's sync clock. The
                        // acquire half already ran in pass 1; the release
                        // bumps the version so other warps re-join.
                        clock_join(&mut e.sync, &st.clock);
                        e.sync_vers += 1;
                        st.sync_seen.insert(addr, e.sync_vers);
                        e.atomic = Some(me.clone());
                    }
                }
            }
            slab += SLAB_WORDS as u32;
        }
    }

    /// Called by the device at the end of every launch: under
    /// `escalate`, panic the first time any findings exist, printing them.
    pub fn escalate_after_launch(&self) {
        if !self.cfg.escalate || self.total.load(Ordering::Relaxed) == 0 {
            return;
        }
        let msg = {
            let findings = self.findings.lock();
            // Double-frees already surface as a typed `Err` from the
            // allocator — callers asserting on that error must not die
            // here instead. They stay in the findings list and report.
            let hard: Vec<&Finding> = findings
                .iter()
                .filter(|f| f.kind != FindingKind::DoubleFree)
                .collect();
            if hard.is_empty() {
                return;
            }
            let mut msg = format!("sanitizer detected {} violation(s):\n", hard.len());
            for f in &hard {
                msg.push_str(&format!("  {f}\n"));
            }
            msg
        };
        if self.escalated.swap(1, Ordering::Relaxed) != 0 {
            return;
        }
        panic!("{msg}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn san() -> Sanitizer {
        Sanitizer::new(SanitizerConfig::default())
    }

    #[test]
    fn init_bitmap_marks_and_tests_ranges() {
        let s = san();
        assert!(!s.is_init(0));
        s.mark_init_range(62, 5);
        for a in 62..67 {
            assert!(s.is_init(a), "word {a}");
        }
        assert!(!s.is_init(61));
        assert!(!s.is_init(67));
        s.mark_init(1_000_000);
        assert!(s.is_init(1_000_000));
        assert!(!s.is_init(999_999));
    }

    #[test]
    fn same_warp_accesses_never_race() {
        let s = san();
        s.mark_init_range(0, 32);
        let mut w0 = WarpRace::new(1, 0);
        s.on_warp_access(&mut w0, 0, "k", 0, 1, AccessKind::PlainWrite, 1024);
        s.on_warp_access(&mut w0, 0, "k", 0, 1, AccessKind::PlainRead, 1024);
        s.on_warp_access(&mut w0, 0, "k", 0, 1, AccessKind::PlainWrite, 1024);
        assert_eq!(s.finding_count(), 0);
    }

    #[test]
    fn unsynchronized_write_write_is_flagged() {
        let s = san();
        s.mark_init_range(0, 32);
        let mut w0 = WarpRace::new(1, 0);
        let mut w1 = WarpRace::new(1, 1);
        s.on_warp_access(&mut w0, 0, "ka", 5, 1, AccessKind::PlainWrite, 1024);
        s.on_warp_access(&mut w1, 1, "kb", 5, 1, AccessKind::PlainWrite, 1024);
        let f = s.findings();
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].kind, FindingKind::RaceWriteWrite);
        assert_eq!(f[0].addr, 5);
        assert_eq!(f[0].kernel, "kb");
        assert_eq!(f[0].other_kernel, "ka");
        assert_eq!(f[0].other_warp, 0);
    }

    #[test]
    fn atomic_publication_orders_plain_accesses() {
        // Warp 0 plain-writes data, releases via an atomic on a link
        // word; warp 1 plain-reads the link (acquire) then the data: no
        // race. Without the link access, the same read would race.
        let s = san();
        s.mark_init_range(0, 64);
        let mut w0 = WarpRace::new(1, 0);
        let mut w1 = WarpRace::new(1, 1);
        s.on_warp_access(&mut w0, 0, "wr", 10, 1, AccessKind::PlainWrite, 1024);
        s.on_warp_access(&mut w0, 0, "wr", 40, 1, AccessKind::Atomic, 1024);
        s.on_warp_access(&mut w1, 1, "rd", 40, 1, AccessKind::PlainRead, 1024);
        s.on_warp_access(&mut w1, 1, "rd", 10, 1, AccessKind::PlainRead, 1024);
        assert_eq!(s.finding_count(), 0, "{:?}", s.findings());

        // A third warp that never touched the link word *does* race.
        let mut w2 = WarpRace::new(1, 2);
        s.on_warp_access(&mut w2, 2, "rogue", 10, 1, AccessKind::PlainRead, 1024);
        assert_eq!(s.finding_count(), 1);
        assert_eq!(s.findings()[0].kind, FindingKind::RaceReadWrite);
    }

    #[test]
    fn atomics_are_whitelisted_but_plain_write_vs_atomic_is_not() {
        let s = san();
        s.mark_init_range(0, 32);
        let mut w0 = WarpRace::new(1, 0);
        let mut w1 = WarpRace::new(1, 1);
        s.on_warp_access(&mut w0, 0, "a", 3, 1, AccessKind::Atomic, 1024);
        s.on_warp_access(&mut w1, 1, "b", 3, 1, AccessKind::Atomic, 1024);
        assert_eq!(s.finding_count(), 0, "atomic vs atomic is whitelisted");
        let mut w2 = WarpRace::new(2, 0);
        let mut w3 = WarpRace::new(2, 1);
        s.on_warp_access(&mut w2, 0, "a", 3, 1, AccessKind::Atomic, 1024);
        s.on_warp_access(&mut w3, 1, "b", 3, 1, AccessKind::PlainWrite, 1024);
        assert_eq!(s.finding_count(), 1);
        assert_eq!(s.findings()[0].kind, FindingKind::RaceWriteWrite);
    }

    #[test]
    fn new_era_clears_conflicts() {
        let s = san();
        s.mark_init_range(0, 32);
        let mut w0 = WarpRace::new(1, 0);
        s.on_warp_access(&mut w0, 0, "ka", 7, 1, AccessKind::PlainWrite, 1024);
        // Same word, different warp, but a later launch: the launch
        // boundary is a barrier.
        let mut w1 = WarpRace::new(2, 1);
        s.on_warp_access(&mut w1, 1, "kb", 7, 1, AccessKind::PlainWrite, 1024);
        assert_eq!(s.finding_count(), 0);
    }

    #[test]
    fn uninit_read_and_oob_are_flagged() {
        let s = san();
        let mut w0 = WarpRace::new(1, 0);
        s.on_warp_access(&mut w0, 0, "k", 9, 1, AccessKind::PlainRead, 1024);
        assert_eq!(s.findings()[0].kind, FindingKind::UninitRead);
        s.clear_findings();
        s.on_warp_access(&mut w0, 0, "k", 2000, 4, AccessKind::PlainRead, 1024);
        assert_eq!(s.findings()[0].kind, FindingKind::OutOfBounds);
    }

    /// Allocator id used by single-allocator fixtures.
    const A1: u64 = 1;

    #[test]
    fn slab_lifecycle_flags_uaf_until_reallocated() {
        let s = san();
        s.mark_init_range(0, 256);
        s.on_slab_alloc(64, "alloc_k", A1);
        let mut w0 = WarpRace::new(1, 0);
        s.on_warp_access(&mut w0, 0, "reader", 70, 1, AccessKind::PlainRead, 1024);
        assert_eq!(s.finding_count(), 0);
        s.on_slab_free(64, "free_k", 1, A1);
        s.on_warp_access(&mut w0, 0, "reader", 70, 1, AccessKind::PlainRead, 1024);
        let f = s.findings();
        assert_eq!(f[0].kind, FindingKind::UseAfterFree);
        assert_eq!(f[0].other_kernel, "alloc_k");
        assert!(f[0].note.contains("free_k"));
        s.on_slab_drain(64);
        s.clear_findings();
        s.on_warp_access(&mut w0, 0, "reader", 70, 1, AccessKind::PlainRead, 1024);
        assert_eq!(s.findings()[0].kind, FindingKind::UseAfterFree);
        s.on_slab_alloc(64, "alloc2", A1);
        s.clear_findings();
        s.on_warp_access(&mut w0, 0, "reader", 70, 1, AccessKind::PlainRead, 1024);
        assert_eq!(s.finding_count(), 0);
    }

    #[test]
    fn pinned_reader_may_touch_quarantined_slab() {
        let s = san();
        s.mark_init_range(0, 256);
        s.on_slab_alloc(64, "alloc_k", A1);
        // Reader pins era 3, then the slab is freed at era 5: the pin
        // happened-before the free, so the quarantined read is certified.
        s.on_pin(A1, 3);
        s.on_slab_free(64, "free_k", 5, A1);
        let mut w0 = WarpRace::new(6, 0);
        s.on_warp_access(&mut w0, 0, "reader", 70, 1, AccessKind::PlainRead, 1024);
        assert_eq!(s.finding_count(), 0, "{:?}", s.findings());
        // Dropping the guard withdraws the certificate.
        s.on_unpin(A1, 3);
        s.on_warp_access(&mut w0, 0, "reader", 70, 1, AccessKind::PlainRead, 1024);
        assert_eq!(s.finding_count(), 1);
        let f = s.findings();
        assert_eq!(f[0].kind, FindingKind::UseAfterFree);
        assert!(f[0].note.contains("unpinned read"), "{}", f[0].note);
    }

    #[test]
    fn pin_taken_after_free_does_not_cover_the_slab() {
        let s = san();
        s.mark_init_range(0, 256);
        s.on_slab_alloc(64, "alloc_k", A1);
        s.on_slab_free(64, "free_k", 2, A1);
        // A pin at era 7 postdates the free: it cannot resurrect the slab.
        s.on_pin(A1, 7);
        let mut w0 = WarpRace::new(8, 0);
        s.on_warp_access(&mut w0, 0, "reader", 70, 1, AccessKind::PlainRead, 1024);
        assert_eq!(s.finding_count(), 1);
        assert_eq!(s.findings()[0].kind, FindingKind::UseAfterFree);
        s.on_unpin(A1, 7);
    }

    #[test]
    fn pin_never_covers_drained_slabs() {
        let s = san();
        s.mark_init_range(0, 256);
        s.on_slab_alloc(64, "alloc_k", A1);
        s.on_pin(A1, 1);
        s.on_slab_free(64, "free_k", 4, A1);
        s.on_slab_drain(64);
        // Even a covering pin cannot excuse a read of fully drained
        // memory — the allocator only drains past every pin, so reaching
        // here means the protocol itself was violated.
        let mut w0 = WarpRace::new(5, 0);
        s.on_warp_access(&mut w0, 0, "reader", 70, 1, AccessKind::PlainRead, 1024);
        assert_eq!(s.finding_count(), 1);
        assert!(s.findings()[0].note.contains("recycled"));
        s.on_unpin(A1, 1);
    }

    #[test]
    fn pin_multiset_tracks_duplicate_eras() {
        let s = san();
        s.mark_init_range(0, 256);
        s.on_slab_alloc(64, "alloc_k", A1);
        s.on_pin(A1, 2);
        s.on_pin(A1, 2);
        s.on_slab_free(64, "free_k", 3, A1);
        s.on_unpin(A1, 2);
        // One guard at era 2 is still live: the slab stays covered.
        let mut w0 = WarpRace::new(4, 0);
        s.on_warp_access(&mut w0, 0, "reader", 70, 1, AccessKind::PlainRead, 1024);
        assert_eq!(s.finding_count(), 0, "{:?}", s.findings());
        s.on_unpin(A1, 2);
        s.on_warp_access(&mut w0, 0, "reader", 70, 1, AccessKind::PlainRead, 1024);
        assert_eq!(s.finding_count(), 1);
    }

    #[test]
    fn pin_on_another_allocator_certifies_nothing() {
        let s = san();
        s.mark_init_range(0, 256);
        s.on_slab_alloc(64, "alloc_k", A1);
        // A guard on allocator 2 is live across allocator 1's free. It
        // does not block allocator 1's reclamation, so it must not
        // certify the quarantined read — this is the cross-graph hazard
        // `check_pin` guards against on the query side.
        s.on_pin(2, 3);
        s.on_slab_free(64, "free_k", 5, A1);
        let mut w0 = WarpRace::new(6, 0);
        s.on_warp_access(&mut w0, 0, "reader", 70, 1, AccessKind::PlainRead, 1024);
        assert_eq!(s.finding_count(), 1, "{:?}", s.findings());
        assert!(s.findings()[0].note.contains("unpinned read"));
        // An equally-old pin on the owning allocator does certify.
        s.on_pin(A1, 3);
        s.clear_findings();
        s.on_warp_access(&mut w0, 0, "reader", 70, 1, AccessKind::PlainRead, 1024);
        assert_eq!(s.finding_count(), 0, "{:?}", s.findings());
        s.on_unpin(2, 3);
        s.on_unpin(A1, 3);
    }
}
