//! Device timeline profiler: modeled-clock spans, host phases, allocator
//! instants, and Chrome Trace Event export.
//!
//! Attached opt-in via [`crate::DeviceConfig::with_profiler`] (or a
//! process-wide default, see [`set_default_profiler`]) with the same
//! discipline as the sanitizer: when off it costs one `Option` check per
//! hook and charges nothing; when on it still charges nothing — counters
//! are byte-identical either way.
//!
//! ## The modeled clock
//!
//! The profiler keeps a clock in *modeled seconds* (see
//! [`crate::CostModel`]), not wall time. Every **top-level attribution
//! unit** — a named launch, a [`crate::Device::fused_scope`], a top-level
//! `memset`, or a dropped top-level [`crate::trace::Charge`] — deltas the
//! global counters around itself and appends one span whose duration is
//! `CostModel::seconds(delta)`; the clock advances by exactly that span.
//! Launch scopes are host-serial (the scope stack guarantees units never
//! overlap), and every cost-bearing charge lands inside some unit, so the
//! sum of span durations equals the modeled time of the whole run up to
//! float rounding — far below one 5 µs launch-overhead quantum. A `Charge`
//! carrying `n > 1` launches (e.g. a multi-pass sort charged manually) is
//! split into `n` equal spans so spans and kernel launches stay 1:1.
//!
//! Host [`PhaseEvent`] ranges (`device.phase("bulk_build")` guards) and
//! allocator [`InstantEvent`]s are stamped from the same clock: an instant
//! recorded *inside* a launch carries the enclosing span's start time,
//! because the modeled clock only advances between units.
//!
//! Each event class lives in its own bounded ring (oldest events are
//! overwritten past [`ProfilerConfig::ring_capacity`]; drops are counted),
//! so a flood of allocator instants can never evict kernel spans.
//!
//! ## Export
//!
//! [`Profiler::chrome_events`] renders the timeline as Chrome Trace Event
//! Format objects — `ph:"X"` complete spans with microsecond `ts`/`dur`,
//! `ph:"i"` instants — loadable in `chrome://tracing` or Perfetto.
//! [`chrome_trace_json`] / [`parse_chrome_trace`] round-trip exactly
//! through [`crate::json`]. Distribution metrics live in the attached
//! [`MetricsRegistry`] (see [`crate::metrics`]); phase durations are also
//! folded into it as `phase.<name>` histograms in microseconds.

use crate::cost::CostModel;
use crate::counters::CounterSnapshot;
use crate::json::Json;
use crate::metrics::{MetricSummary, MetricsRegistry};
use parking_lot::Mutex;
use std::collections::VecDeque;

/// Construction-time profiler parameters. Plain `Copy` data so it can ride
/// in [`crate::DeviceConfig`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProfilerConfig {
    /// Maximum retained events *per class* (spans, phases, instants).
    /// Older events are overwritten once a class's ring is full; the drop
    /// count is reported per class.
    pub ring_capacity: usize,
}

impl Default for ProfilerConfig {
    fn default() -> Self {
        ProfilerConfig {
            ring_capacity: 1 << 16,
        }
    }
}

impl ProfilerConfig {
    /// Set the per-class event ring capacity.
    pub fn with_ring_capacity(mut self, ring_capacity: usize) -> Self {
        self.ring_capacity = ring_capacity.max(1);
        self
    }
}

/// Process-wide default profiler config, consulted by
/// [`crate::DeviceConfig::default`]. Code that builds its devices
/// internally (the graph backends) picks this up without API changes —
/// the runtime analogue of the `sanitize` cargo feature's compile-time
/// default.
static DEFAULT_PROFILER: std::sync::Mutex<Option<ProfilerConfig>> = std::sync::Mutex::new(None);

/// Install (or clear, with `None`) the process-wide default profiler
/// config picked up by every subsequently constructed default
/// [`crate::DeviceConfig`]. Intended for profiling binaries; tests should
/// prefer the explicit [`crate::DeviceConfig::with_profiler`].
pub fn set_default_profiler(cfg: Option<ProfilerConfig>) {
    *DEFAULT_PROFILER.lock().unwrap() = cfg;
}

/// The current process-wide default profiler config, if any.
pub fn default_profiler() -> Option<ProfilerConfig> {
    *DEFAULT_PROFILER.lock().unwrap()
}

/// Causal trace context: identifies the client operation (and its parent
/// span, if any) on whose behalf subsequently recorded spans and instants
/// run. Minted per client op by the batch router and installed around each
/// per-shard dispatch via [`crate::Device::trace_scope`], so every span a
/// coalesced batch charges can be walked back to client traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceCtx {
    /// Submitting session (client identity). [`TraceCtx::NO_SESSION`] for
    /// traffic not tied to a session (bulk builds, maintenance).
    pub session: u64,
    /// Client op id (or batch node id for coalesced dispatch), unique for
    /// the minting router's lifetime.
    pub op: u64,
    /// Span id of the causal parent span (0 = the virtual client-op root).
    pub parent_span: u64,
}

impl TraceCtx {
    /// Session id used for traffic that no client session submitted.
    pub const NO_SESSION: u64 = u64::MAX;

    /// A root context for `op` submitted by `session`.
    pub fn root(session: u64, op: u64) -> Self {
        TraceCtx {
            session,
            op,
            parent_span: 0,
        }
    }

    /// The same context reparented under span `parent_span`.
    pub fn under(self, parent_span: u64) -> Self {
        TraceCtx {
            parent_span,
            ..self
        }
    }
}

/// One kernel-launch span on the modeled clock.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanEvent {
    pub name: &'static str,
    /// Modeled seconds since profiler attach.
    pub start_s: f64,
    /// `CostModel::seconds` of this unit's counter delta.
    pub dur_s: f64,
    /// The unit's counter delta (carried into Chrome trace `args`).
    pub counters: CounterSnapshot,
    /// Monotonic span id, unique within this profiler (first span = 1).
    pub id: u64,
    /// Causal parent span id (`ctx.parent_span` at record time; 0 = root).
    pub parent: u64,
    /// The trace context active when the span was recorded, if any.
    pub ctx: Option<TraceCtx>,
}

/// One host-phase range opened by [`crate::Device::phase`].
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseEvent {
    pub name: &'static str,
    pub start_s: f64,
    pub dur_s: f64,
}

/// One point event (allocator activity, OOM, injected fault).
#[derive(Debug, Clone, PartialEq)]
pub struct InstantEvent {
    pub name: &'static str,
    pub at_s: f64,
    pub detail: String,
    /// The trace context active when the instant was stamped, if any —
    /// fault instants inherit the op whose dispatch tripped them.
    pub ctx: Option<TraceCtx>,
}

/// A bounded overwrite-oldest event ring.
#[derive(Debug)]
struct Ring<T> {
    events: VecDeque<T>,
    cap: usize,
    recorded: u64,
    dropped: u64,
}

impl<T: Clone> Ring<T> {
    fn new(cap: usize) -> Self {
        Ring {
            events: VecDeque::new(),
            cap,
            recorded: 0,
            dropped: 0,
        }
    }

    fn push(&mut self, e: T) {
        if self.events.len() == self.cap {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(e);
        self.recorded += 1;
    }

    fn to_vec(&self) -> Vec<T> {
        self.events.iter().cloned().collect()
    }
}

#[derive(Debug)]
struct ProfState {
    /// The modeled clock, in seconds since attach.
    now_s: f64,
    spans: Ring<SpanEvent>,
    host_spans: Ring<SpanEvent>,
    phases: Ring<PhaseEvent>,
    instants: Ring<InstantEvent>,
    /// Next span id (kernel and host spans share the namespace).
    next_span_id: u64,
    /// Active trace-context stack; the top stamps recorded events.
    ctx_stack: Vec<TraceCtx>,
}

/// Retained-event counts and drop counts per class.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TimelineStats {
    pub spans_recorded: u64,
    pub spans_dropped: u64,
    pub host_spans_recorded: u64,
    pub host_spans_dropped: u64,
    pub phases_recorded: u64,
    pub phases_dropped: u64,
    pub instants_recorded: u64,
    pub instants_dropped: u64,
}

/// A copy of the retained timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct Timeline {
    /// Kernel-launch spans — exactly one per charged launch.
    pub spans: Vec<SpanEvent>,
    /// Host-side costed work that is not a kernel launch: top-level
    /// charges carrying no launch (baseline per-element traffic models)
    /// and top-level [`crate::Device::unlaunched_scope`] sections. These
    /// advance the modeled clock like kernel spans, so kernel spans plus
    /// host spans together account for all modeled time.
    pub host_spans: Vec<SpanEvent>,
    pub phases: Vec<PhaseEvent>,
    pub instants: Vec<InstantEvent>,
    pub stats: TimelineStats,
}

/// The device timeline profiler. One per [`crate::Device`] when attached;
/// all hooks are reached through `device.profiler()`.
#[derive(Debug)]
pub struct Profiler {
    cfg: ProfilerConfig,
    model: CostModel,
    state: Mutex<ProfState>,
    metrics: MetricsRegistry,
}

impl Profiler {
    pub fn new(cfg: ProfilerConfig) -> Self {
        Profiler {
            cfg,
            model: CostModel::titan_v(),
            state: Mutex::new(ProfState {
                now_s: 0.0,
                spans: Ring::new(cfg.ring_capacity),
                host_spans: Ring::new(cfg.ring_capacity),
                phases: Ring::new(cfg.ring_capacity),
                instants: Ring::new(cfg.ring_capacity),
                next_span_id: 1,
                ctx_stack: Vec::new(),
            }),
            metrics: MetricsRegistry::new(),
        }
    }

    /// This profiler's configuration.
    pub fn config(&self) -> ProfilerConfig {
        self.cfg
    }

    /// The cost model driving the modeled clock (fixed to
    /// [`CostModel::titan_v`], matching the bench harness).
    pub fn model(&self) -> &CostModel {
        &self.model
    }

    /// The attached metrics registry.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// The modeled clock, in seconds since attach.
    pub fn now_s(&self) -> f64 {
        self.state.lock().now_s
    }

    /// Append one span for a completed top-level unit, stamped with the
    /// active trace context, and advance the clock by its modeled
    /// duration. Returns the span's id.
    pub fn record_span(&self, name: &'static str, delta: CounterSnapshot) -> u64 {
        let dur_s = self.model.seconds(&delta);
        let mut st = self.state.lock();
        let start_s = st.now_s;
        let ctx = st.ctx_stack.last().copied();
        let id = st.next_span_id;
        st.next_span_id += 1;
        st.spans.push(SpanEvent {
            name,
            start_s,
            dur_s,
            counters: delta,
            id,
            parent: ctx.map_or(0, |c| c.parent_span),
            ctx,
        });
        st.now_s += dur_s;
        id
    }

    /// Append one *host* span — costed work outside any kernel launch
    /// (see [`Timeline::host_spans`]) — and advance the clock by its
    /// modeled duration. Returns the span's id.
    pub fn record_host_span(&self, name: &'static str, delta: CounterSnapshot) -> u64 {
        let dur_s = self.model.seconds(&delta);
        self.push_host_span(name, dur_s, delta)
    }

    /// Charge `dur_s` seconds of pure *wait* onto the modeled clock: a
    /// host span with zero counters and an explicit duration. Retry
    /// backoff uses this so waiting for a flaky shard is as visible in the
    /// timeline — and as costly to the makespan — as the work itself.
    /// Returns the span's id.
    pub fn charge_wait(&self, name: &'static str, dur_s: f64) -> u64 {
        self.push_host_span(name, dur_s, CounterSnapshot::default())
    }

    fn push_host_span(&self, name: &'static str, dur_s: f64, counters: CounterSnapshot) -> u64 {
        let mut st = self.state.lock();
        let start_s = st.now_s;
        let ctx = st.ctx_stack.last().copied();
        let id = st.next_span_id;
        st.next_span_id += 1;
        st.host_spans.push(SpanEvent {
            name,
            start_s,
            dur_s,
            counters,
            id,
            parent: ctx.map_or(0, |c| c.parent_span),
            ctx,
        });
        st.now_s += dur_s;
        id
    }

    /// The trace context that would stamp an event recorded now, if any.
    pub fn current_ctx(&self) -> Option<TraceCtx> {
        self.state.lock().ctx_stack.last().copied()
    }

    /// Push `ctx` onto the context stack. Prefer the RAII
    /// [`crate::Device::trace_scope`]; this low-level pair exists for
    /// guards that outlive a borrow.
    pub fn push_ctx(&self, ctx: TraceCtx) {
        self.state.lock().ctx_stack.push(ctx);
    }

    /// Pop the top of the context stack (no-op when empty).
    pub fn pop_ctx(&self) {
        self.state.lock().ctx_stack.pop();
    }

    /// Record a dropped top-level [`crate::trace::Charge`]'s tally as
    /// spans. A tally carrying `n > 1` launches models `n` physical
    /// launches and is split into `n` near-equal spans (remainders fold
    /// into the earliest spans) so spans stay 1:1 with kernel launches;
    /// the split is exact event-wise, so total modeled time is preserved.
    /// A tally carrying *no* launch is host-side traffic and lands in the
    /// host-span ring instead, keeping the kernel rows 1:1 with launches.
    pub fn record_charge(&self, name: &'static str, tally: CounterSnapshot) {
        if tally.launches == 0 {
            self.record_host_span(name, tally);
            return;
        }
        let n = tally.launches;
        if n == 1 {
            self.record_span(name, tally);
            return;
        }
        let split = |total: u64, i: u64| total / n + u64::from(i < total % n);
        for i in 0..n {
            self.record_span(
                name,
                CounterSnapshot {
                    transactions: split(tally.transactions, i),
                    atomics: split(tally.atomics, i),
                    ballots: split(tally.ballots, i),
                    shuffles: split(tally.shuffles, i),
                    launches: split(tally.launches, i),
                    warps: split(tally.warps, i),
                    words_allocated: split(tally.words_allocated, i),
                },
            );
        }
    }

    /// Close a phase opened at modeled time `start_s`: appends the range
    /// and folds its duration into the `phase.<name>` histogram (µs).
    /// Called by [`PhaseGuard::drop`].
    pub fn end_phase(&self, name: &'static str, start_s: f64) {
        let mut st = self.state.lock();
        let dur_s = (st.now_s - start_s).max(0.0);
        st.phases.push(PhaseEvent {
            name,
            start_s,
            dur_s,
        });
        drop(st);
        self.metrics
            .record(&format!("phase.{name}"), (dur_s * 1e6).round() as u64);
    }

    /// Record a point event at the current modeled time, stamped with the
    /// active trace context (fault instants inherit the dispatching op).
    pub fn instant(&self, name: &'static str, detail: impl Into<String>) {
        let mut st = self.state.lock();
        let at_s = st.now_s;
        let ctx = st.ctx_stack.last().copied();
        st.instants.push(InstantEvent {
            name,
            at_s,
            detail: detail.into(),
            ctx,
        });
    }

    /// Copy out the retained timeline.
    pub fn timeline(&self) -> Timeline {
        let st = self.state.lock();
        Timeline {
            spans: st.spans.to_vec(),
            host_spans: st.host_spans.to_vec(),
            phases: st.phases.to_vec(),
            instants: st.instants.to_vec(),
            stats: self.stats_locked(&st),
        }
    }

    /// Per-class recorded/dropped counts.
    pub fn timeline_stats(&self) -> TimelineStats {
        let st = self.state.lock();
        self.stats_locked(&st)
    }

    fn stats_locked(&self, st: &ProfState) -> TimelineStats {
        TimelineStats {
            spans_recorded: st.spans.recorded,
            spans_dropped: st.spans.dropped,
            host_spans_recorded: st.host_spans.recorded,
            host_spans_dropped: st.host_spans.dropped,
            phases_recorded: st.phases.recorded,
            phases_dropped: st.phases.dropped,
            instants_recorded: st.instants.recorded,
            instants_dropped: st.instants.dropped,
        }
    }

    /// Summaries of every attached metric (see
    /// [`crate::trace::TraceReport::with_metrics`]).
    pub fn metric_summaries(&self) -> Vec<MetricSummary> {
        self.metrics.summaries()
    }

    /// Render the retained timeline as Chrome Trace events under process
    /// id `pid` (one pid per device/backend when merging timelines):
    /// tid 0 = host phases, tid 1 = kernel spans (counter deltas in
    /// `args`), tid 2 = allocator/fault instants, tid 3 = host-side
    /// costed work that is not a kernel launch.
    pub fn chrome_events(&self, pid: u64) -> Vec<ChromeEvent> {
        let t = self.timeline();
        let mut out = Vec::with_capacity(
            t.spans.len() + t.host_spans.len() + t.phases.len() + t.instants.len(),
        );
        for p in &t.phases {
            out.push(ChromeEvent {
                name: p.name.to_string(),
                ph: "X".to_string(),
                ts_us: p.start_s * 1e6,
                dur_us: p.dur_s * 1e6,
                pid,
                tid: TID_PHASES,
                args: Vec::new(),
                flow_id: None,
            });
        }
        let span_event = |s: &SpanEvent, tid: u64| {
            let c = &s.counters;
            let mut args = vec![
                ("transactions".into(), Json::u64(c.transactions)),
                ("atomics".into(), Json::u64(c.atomics)),
                ("ballots".into(), Json::u64(c.ballots)),
                ("shuffles".into(), Json::u64(c.shuffles)),
                ("launches".into(), Json::u64(c.launches)),
                ("warps".into(), Json::u64(c.warps)),
                ("words_allocated".into(), Json::u64(c.words_allocated)),
            ];
            if let Some(ctx) = s.ctx {
                args.push(("trace_span".into(), Json::u64(s.id)));
                args.push(("trace_parent".into(), Json::u64(s.parent)));
                args.push(("trace_session".into(), Json::u64(ctx.session)));
                args.push(("trace_op".into(), Json::u64(ctx.op)));
            }
            ChromeEvent {
                name: s.name.to_string(),
                ph: "X".to_string(),
                ts_us: s.start_s * 1e6,
                dur_us: s.dur_s * 1e6,
                pid,
                tid,
                args,
                flow_id: None,
            }
        };
        for s in &t.spans {
            out.push(span_event(s, TID_SPANS));
        }
        for s in &t.host_spans {
            out.push(span_event(s, TID_HOST));
        }
        for i in &t.instants {
            let mut args = vec![("detail".into(), Json::str(&i.detail))];
            if let Some(ctx) = i.ctx {
                args.push(("trace_session".into(), Json::u64(ctx.session)));
                args.push(("trace_op".into(), Json::u64(ctx.op)));
                args.push(("trace_parent".into(), Json::u64(ctx.parent_span)));
            }
            out.push(ChromeEvent {
                name: i.name.to_string(),
                ph: "i".to_string(),
                ts_us: i.at_s * 1e6,
                dur_us: 0.0,
                pid,
                tid: TID_INSTANTS,
                args,
                flow_id: None,
            });
        }
        out
    }
}

/// Thread row for host-phase ranges in the Chrome trace.
pub const TID_PHASES: u64 = 0;
/// Thread row for kernel spans in the Chrome trace.
pub const TID_SPANS: u64 = 1;
/// Thread row for allocator/fault instants in the Chrome trace.
pub const TID_INSTANTS: u64 = 2;
/// Thread row for host-side costed work that is not a kernel launch.
pub const TID_HOST: u64 = 3;

/// Closes a phase range on drop. Returned by [`crate::Device::phase`];
/// inert (and free) when the device has no profiler. Bind it —
/// `let _phase = dev.phase("bulk_build");` — a discarded guard closes the
/// phase immediately (lint-kernels rule R4 flags that).
#[must_use = "binding the guard keeps the phase open; a discarded guard closes it immediately"]
pub struct PhaseGuard {
    pub(crate) inner: Option<(std::sync::Arc<Profiler>, &'static str, f64)>,
}

impl Drop for PhaseGuard {
    fn drop(&mut self) {
        if let Some((prof, name, start_s)) = self.inner.take() {
            prof.end_phase(name, start_s);
        }
    }
}

/// Installs a [`TraceCtx`] on a profiler's context stack for its lifetime:
/// every span and instant recorded while the scope is live is stamped with
/// the context. Returned by [`crate::Device::trace_scope`]; inert (and
/// free) when the device has no profiler. Bind it — a discarded scope
/// closes immediately and nothing gets stamped.
#[must_use = "binding the scope keeps the trace context installed; a discarded scope removes it immediately"]
pub struct TraceScope {
    inner: Option<std::sync::Arc<Profiler>>,
}

impl TraceScope {
    /// Install `ctx` on `prof` (when present) until the scope drops.
    pub fn new(prof: Option<std::sync::Arc<Profiler>>, ctx: TraceCtx) -> Self {
        if let Some(p) = &prof {
            p.push_ctx(ctx);
        }
        TraceScope { inner: prof }
    }
}

impl Drop for TraceScope {
    fn drop(&mut self) {
        if let Some(p) = self.inner.take() {
            p.pop_ctx();
        }
    }
}

/// One Chrome Trace Event Format entry, as exported and re-parsed here.
/// `ph` is `"X"` (complete span, `dur` serialized), `"i"` (instant), or a
/// flow event `"s"`/`"t"`/`"f"` (start/step/finish, `id` serialized) —
/// the arrows Perfetto draws between an op's spans across shard pids.
#[derive(Debug, Clone, PartialEq)]
pub struct ChromeEvent {
    pub name: String,
    pub ph: String,
    pub ts_us: f64,
    /// 0.0 for instants (not serialized for `ph != "X"`).
    pub dur_us: f64,
    pub pid: u64,
    pub tid: u64,
    /// Event arguments, rendered under `args` when non-empty.
    pub args: Vec<(String, Json)>,
    /// Flow binding id (serialized as `id`); `Some` exactly for flow
    /// events (`ph` in `"s"`/`"t"`/`"f"`).
    pub flow_id: Option<u64>,
}

impl ChromeEvent {
    fn to_json(&self) -> Json {
        let mut fields = vec![
            ("name".to_string(), Json::str(&self.name)),
            ("ph".to_string(), Json::str(&self.ph)),
            ("ts".to_string(), Json::f64(self.ts_us)),
            ("pid".to_string(), Json::u64(self.pid)),
            ("tid".to_string(), Json::u64(self.tid)),
        ];
        if self.ph == "X" {
            fields.push(("dur".to_string(), Json::f64(self.dur_us)));
        }
        if self.ph == "i" {
            // Instant scope: thread-scoped tick marks.
            fields.push(("s".to_string(), Json::str("t")));
        }
        if let Some(id) = self.flow_id {
            fields.push(("id".to_string(), Json::u64(id)));
        }
        if self.ph == "f" {
            // Bind the flow finish to the enclosing slice, not the next.
            fields.push(("bp".to_string(), Json::str("e")));
        }
        if !self.args.is_empty() {
            fields.push(("args".to_string(), Json::Obj(self.args.clone())));
        }
        Json::Obj(fields)
    }

    fn from_json(idx: usize, j: &Json) -> Result<ChromeEvent, String> {
        let s = |key: &str| -> Result<String, String> {
            j.get(key)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("event {idx}: missing '{key}'"))
        };
        let ph = s("ph")?;
        let dur_us = if ph == "X" {
            j.get("dur")
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("event {idx}: missing 'dur'"))?
        } else {
            0.0
        };
        let flow_id = if matches!(ph.as_str(), "s" | "t" | "f") {
            Some(
                j.get("id")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| format!("event {idx}: flow event missing 'id'"))?,
            )
        } else {
            None
        };
        Ok(ChromeEvent {
            name: s("name")?,
            ph,
            ts_us: j
                .get("ts")
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("event {idx}: missing 'ts'"))?,
            dur_us,
            pid: j
                .get("pid")
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("event {idx}: missing 'pid'"))?,
            tid: j
                .get("tid")
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("event {idx}: missing 'tid'"))?,
            args: match j.get("args") {
                Some(Json::Obj(fields)) => fields.clone(),
                Some(_) => return Err(format!("event {idx}: 'args' is not an object")),
                None => Vec::new(),
            },
            flow_id,
        })
    }

    /// The value of a `trace_*` arg stamped by [`Profiler::chrome_events`].
    pub fn trace_arg(&self, key: &str) -> Option<u64> {
        self.args
            .iter()
            .find(|(k, _)| k == key)
            .and_then(|(_, v)| v.as_u64())
    }
}

/// Serialize events as a Chrome Trace Event Format document
/// (`{"traceEvents": [...]}`); round-trips exactly through
/// [`parse_chrome_trace`].
pub fn chrome_trace_json(events: &[ChromeEvent]) -> String {
    Json::Obj(vec![
        (
            "traceEvents".to_string(),
            Json::Arr(events.iter().map(ChromeEvent::to_json).collect()),
        ),
        ("displayTimeUnit".to_string(), Json::str("ms")),
    ])
    .render_pretty()
}

/// Parse a document written by [`chrome_trace_json`]. Errors name the
/// offending event and field; never panics.
pub fn parse_chrome_trace(text: &str) -> Result<Vec<ChromeEvent>, String> {
    let v = Json::parse(text)?;
    v.get("traceEvents")
        .and_then(Json::as_arr)
        .ok_or("missing 'traceEvents' array")?
        .iter()
        .enumerate()
        .map(|(idx, j)| ChromeEvent::from_json(idx, j))
        .collect()
}

/// Synthesize Chrome flow events (`ph` `"s"`/`"t"`/`"f"`, flow id = op id)
/// from ctx-stamped spans, so Perfetto draws an arrow chain across every
/// span — on any shard pid — that ran on a given client op's behalf. Ops
/// that touched fewer than two spans get no flow (nothing to connect).
/// Append the result to the span events before [`chrome_trace_json`].
pub fn op_flow_events(events: &[ChromeEvent]) -> Vec<ChromeEvent> {
    use std::collections::BTreeMap;
    let mut by_op: BTreeMap<u64, Vec<&ChromeEvent>> = BTreeMap::new();
    for e in events {
        if e.ph == "X" {
            if let Some(op) = e.trace_arg("trace_op") {
                by_op.entry(op).or_default().push(e);
            }
        }
    }
    let mut out = Vec::new();
    for (op, mut spans) in by_op {
        if spans.len() < 2 {
            continue;
        }
        spans.sort_by(|a, b| a.ts_us.total_cmp(&b.ts_us).then(a.pid.cmp(&b.pid)));
        let last = spans.len() - 1;
        for (i, s) in spans.iter().enumerate() {
            let ph = if i == 0 {
                "s"
            } else if i == last {
                "f"
            } else {
                "t"
            };
            out.push(ChromeEvent {
                name: format!("op#{op}"),
                ph: ph.to_string(),
                ts_us: s.ts_us,
                dur_us: 0.0,
                pid: s.pid,
                tid: s.tid,
                args: Vec::new(),
                flow_id: Some(op),
            });
        }
    }
    out
}

/// One client op's reconstructed lifecycle: every ctx-stamped span and
/// instant that ran on its behalf, time-ordered across shard pids.
#[derive(Debug, Clone, PartialEq)]
pub struct OpLifecycle {
    pub op: u64,
    pub session: u64,
    /// The op's spans (`ph == "X"`), sorted by `(ts, pid)`.
    pub spans: Vec<ChromeEvent>,
    /// Instants (faults, health transitions) stamped with the op's ctx.
    pub instants: Vec<ChromeEvent>,
}

impl OpLifecycle {
    /// Total modeled microseconds across the op's spans.
    pub fn span_total_us(&self) -> f64 {
        self.spans.iter().map(|s| s.dur_us).sum()
    }
}

/// Reconstruct per-op lifecycles from a (possibly multi-shard, merged)
/// Chrome event stream, validating span parenting as it ingests: within
/// each pid, every span's `trace_parent` chain must terminate at the
/// virtual root (0) without revisiting a span. A cycle — which would make
/// "walk to the causal root" diverge — is rejected with an error naming
/// the offending span. Events without trace args are skipped (untraced
/// setup work).
pub fn assemble_lifecycles(events: &[ChromeEvent]) -> Result<Vec<OpLifecycle>, String> {
    use std::collections::BTreeMap;
    // (pid, span id) → parent span id, for cycle checking.
    let mut parents: BTreeMap<(u64, u64), u64> = BTreeMap::new();
    for e in events {
        if e.ph != "X" {
            continue;
        }
        if let (Some(id), Some(parent)) = (e.trace_arg("trace_span"), e.trace_arg("trace_parent")) {
            parents.insert((e.pid, id), parent);
        }
    }
    for &(pid, id) in parents.keys() {
        let mut seen = std::collections::BTreeSet::new();
        let mut cur = id;
        while cur != 0 {
            if !seen.insert(cur) {
                return Err(format!(
                    "span parent cycle at pid {pid} span {cur}: the causal chain never reaches a client op"
                ));
            }
            cur = parents.get(&(pid, cur)).copied().unwrap_or(0);
        }
    }
    let mut by_op: BTreeMap<u64, OpLifecycle> = BTreeMap::new();
    for e in events {
        let Some(op) = e.trace_arg("trace_op") else {
            continue;
        };
        let session = e.trace_arg("trace_session").unwrap_or(TraceCtx::NO_SESSION);
        let life = by_op.entry(op).or_insert_with(|| OpLifecycle {
            op,
            session,
            spans: Vec::new(),
            instants: Vec::new(),
        });
        match e.ph.as_str() {
            "X" => life.spans.push(e.clone()),
            "i" => life.instants.push(e.clone()),
            _ => {}
        }
    }
    let mut out: Vec<OpLifecycle> = by_op.into_values().collect();
    for life in &mut out {
        life.spans
            .sort_by(|a, b| a.ts_us.total_cmp(&b.ts_us).then(a.pid.cmp(&b.pid)));
        life.instants
            .sort_by(|a, b| a.ts_us.total_cmp(&b.ts_us).then(a.pid.cmp(&b.pid)));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(transactions: u64, launches: u64) -> CounterSnapshot {
        CounterSnapshot {
            transactions,
            launches,
            ..Default::default()
        }
    }

    #[test]
    fn spans_advance_the_modeled_clock() {
        let p = Profiler::new(ProfilerConfig::default());
        p.record_span("a", snap(0, 1));
        p.record_span("b", snap(0, 2));
        let t = p.timeline();
        assert_eq!(t.spans.len(), 2);
        assert!((t.spans[0].dur_s - 5e-6).abs() < 1e-12);
        assert!((t.spans[1].start_s - 5e-6).abs() < 1e-12);
        assert!((p.now_s() - 15e-6).abs() < 1e-12);
        assert_eq!(t.stats.spans_recorded, 2);
        assert_eq!(t.stats.spans_dropped, 0);
    }

    #[test]
    fn charge_with_many_launches_splits_into_equal_spans() {
        let p = Profiler::new(ProfilerConfig::default());
        let tally = CounterSnapshot {
            transactions: 10,
            launches: 3,
            atomics: 2,
            ..Default::default()
        };
        p.record_charge("radix", tally);
        let t = p.timeline();
        assert_eq!(t.spans.len(), 3);
        let mut sum = CounterSnapshot::default();
        let mut dur = 0.0;
        for s in &t.spans {
            assert_eq!(s.name, "radix");
            assert_eq!(s.counters.launches, 1);
            sum.transactions += s.counters.transactions;
            sum.atomics += s.counters.atomics;
            sum.launches += s.counters.launches;
            dur += s.dur_s;
        }
        assert_eq!(sum.transactions, 10);
        assert_eq!(sum.atomics, 2);
        assert_eq!(sum.launches, 3);
        let total = CostModel::titan_v().seconds(&tally);
        assert!((dur - total).abs() < 1e-15, "split preserves modeled time");
    }

    #[test]
    fn ring_overwrites_oldest_and_counts_drops() {
        let p = Profiler::new(ProfilerConfig::default().with_ring_capacity(2));
        p.record_span("a", snap(1, 1));
        p.record_span("b", snap(1, 1));
        p.record_span("c", snap(1, 1));
        let t = p.timeline();
        assert_eq!(t.spans.len(), 2);
        assert_eq!(t.spans[0].name, "b");
        assert_eq!(t.stats.spans_recorded, 3);
        assert_eq!(t.stats.spans_dropped, 1);
    }

    #[test]
    fn phases_record_ranges_and_feed_metrics() {
        let p = Profiler::new(ProfilerConfig::default());
        let start = p.now_s();
        p.record_span("k", snap(0, 2));
        p.end_phase("bulk_build", start);
        let t = p.timeline();
        assert_eq!(t.phases.len(), 1);
        assert!((t.phases[0].dur_s - 10e-6).abs() < 1e-12);
        let s = p.metric_summaries();
        let ph = s.iter().find(|m| m.name == "phase.bulk_build").unwrap();
        assert_eq!(ph.count, 1);
        assert_eq!(ph.sum, 10, "10 µs rounded");
    }

    #[test]
    fn instants_stamp_current_time() {
        let p = Profiler::new(ProfilerConfig::default());
        p.record_span("k", snap(0, 1));
        p.instant("oom", "slab pool exhausted");
        let t = p.timeline();
        assert_eq!(t.instants.len(), 1);
        assert!((t.instants[0].at_s - 5e-6).abs() < 1e-12);
        assert_eq!(t.instants[0].detail, "slab pool exhausted");
    }

    #[test]
    fn chrome_trace_roundtrips_exactly() {
        let p = Profiler::new(ProfilerConfig::default());
        let start = p.now_s();
        p.record_span("edge_insert", snap(1000, 1));
        p.instant("slab_alloc", "slab 0x40");
        p.record_span("edge_delete", snap(10, 1));
        p.end_phase("churn_round", start);
        let events = p.chrome_events(7);
        assert_eq!(events.len(), 4);
        let text = chrome_trace_json(&events);
        let parsed = parse_chrome_trace(&text).unwrap();
        assert_eq!(parsed, events);
        // Classes land on their designated thread rows.
        assert!(parsed
            .iter()
            .any(|e| e.tid == TID_PHASES && e.name == "churn_round"));
        assert_eq!(
            parsed
                .iter()
                .filter(|e| e.tid == TID_SPANS && e.ph == "X")
                .count(),
            2
        );
        assert!(parsed.iter().any(|e| e.tid == TID_INSTANTS && e.ph == "i"));
    }

    #[test]
    fn ctx_scopes_stamp_spans_and_instants() {
        let p = Profiler::new(ProfilerConfig::default());
        p.record_span("untraced", snap(1, 1));
        let ctx = TraceCtx::root(3, 42);
        p.push_ctx(ctx);
        let id = p.record_span("traced", snap(1, 1));
        p.instant("fault_injected", "kernel fault");
        p.pop_ctx();
        p.record_span("after", snap(1, 1));
        let t = p.timeline();
        assert_eq!(t.spans[0].ctx, None);
        assert_eq!(t.spans[1].ctx, Some(ctx));
        assert_eq!(t.spans[1].id, id);
        assert_eq!(t.spans[1].parent, 0);
        assert_eq!(t.spans[2].ctx, None, "scope popped");
        assert_eq!(t.instants[0].ctx, Some(ctx), "instants inherit the op");
        // Ids are monotonic and unique across kernel and host spans.
        assert_eq!(t.spans.iter().map(|s| s.id).collect::<Vec<_>>(), [1, 2, 3]);
        // Chrome export carries the trace args only for stamped spans.
        let events = p.chrome_events(0);
        let traced = events.iter().find(|e| e.name == "traced").unwrap();
        assert_eq!(traced.trace_arg("trace_op"), Some(42));
        assert_eq!(traced.trace_arg("trace_session"), Some(3));
        assert_eq!(traced.trace_arg("trace_span"), Some(id));
        let untraced = events.iter().find(|e| e.name == "untraced").unwrap();
        assert_eq!(untraced.trace_arg("trace_op"), None);
    }

    #[test]
    fn nested_ctx_reparenting_builds_chains() {
        let p = Profiler::new(ProfilerConfig::default());
        let root = TraceCtx::root(0, 7);
        p.push_ctx(root);
        let dispatch = p.record_span("router.dispatch", snap(0, 1));
        p.push_ctx(root.under(dispatch));
        p.record_span("edge_insert", snap(10, 1));
        p.pop_ctx();
        p.pop_ctx();
        let t = p.timeline();
        assert_eq!(t.spans[0].parent, 0);
        assert_eq!(t.spans[1].parent, dispatch, "child chains to the dispatch");
        assert_eq!(t.spans[1].ctx.unwrap().op, 7, "op identity propagates");
    }

    #[test]
    fn flow_events_roundtrip_across_shard_pids() {
        // Two profilers = two shards; the same op dispatches on both.
        let ctx = TraceCtx::root(1, 99);
        let mut events = Vec::new();
        for pid in [10u64, 11] {
            let p = Profiler::new(ProfilerConfig::default());
            p.push_ctx(ctx);
            p.record_span("edge_insert", snap(100 * (pid - 9), 1));
            p.pop_ctx();
            events.extend(p.chrome_events(pid));
        }
        let flows = op_flow_events(&events);
        assert_eq!(flows.len(), 2, "start + finish for a two-span op");
        assert_eq!(flows[0].ph, "s");
        assert_eq!(flows[1].ph, "f");
        assert_eq!(flows[0].flow_id, Some(99));
        assert_eq!(flows[0].pid, 10);
        assert_eq!(flows[1].pid, 11, "flow crosses shard pids");
        // The merged document (spans + flows) round-trips exactly.
        events.extend(flows);
        let text = chrome_trace_json(&events);
        let parsed = parse_chrome_trace(&text).unwrap();
        assert_eq!(parsed, events);
        let pids: std::collections::BTreeSet<u64> = parsed.iter().map(|e| e.pid).collect();
        assert_eq!(pids.into_iter().collect::<Vec<_>>(), vec![10, 11]);
        // A flow event serialized without its id is rejected.
        let no_id = text.replacen(r#""id": 99"#, r#""note": 99"#, 1);
        assert_ne!(no_id, text);
        assert!(parse_chrome_trace(&no_id).unwrap_err().contains("'id'"));
    }

    #[test]
    fn single_span_ops_get_no_flow() {
        let p = Profiler::new(ProfilerConfig::default());
        p.push_ctx(TraceCtx::root(0, 5));
        p.record_span("edge_insert", snap(1, 1));
        p.pop_ctx();
        assert!(op_flow_events(&p.chrome_events(0)).is_empty());
    }

    #[test]
    fn lifecycles_assemble_per_op_and_reject_parent_cycles() {
        let p = Profiler::new(ProfilerConfig::default());
        let a = TraceCtx::root(0, 1);
        let b = TraceCtx::root(1, 2);
        p.push_ctx(a);
        let root_span = p.record_span("router.dispatch", snap(0, 1));
        p.push_ctx(a.under(root_span));
        p.record_span("edge_insert", snap(5, 1));
        p.instant("fault_injected", "boom");
        p.pop_ctx();
        p.pop_ctx();
        p.push_ctx(b);
        p.record_span("edge_delete", snap(5, 1));
        p.pop_ctx();
        let events = p.chrome_events(0);
        let lives = assemble_lifecycles(&events).unwrap();
        assert_eq!(lives.len(), 2);
        assert_eq!(lives[0].op, 1);
        assert_eq!(lives[0].session, 0);
        assert_eq!(lives[0].spans.len(), 2);
        assert_eq!(lives[0].instants.len(), 1);
        assert_eq!(lives[1].op, 2);
        assert!(lives[0].span_total_us() > 0.0);
        // A forged parent cycle (span 1 → span 2 → span 1) is rejected.
        let mut forged = events.clone();
        for e in &mut forged {
            for (k, v) in &mut e.args {
                if k == "trace_parent" {
                    *v = Json::u64(if matches!(v.as_u64(), Some(0)) { 2 } else { 1 });
                }
            }
        }
        let err = assemble_lifecycles(&forged).unwrap_err();
        assert!(err.contains("cycle"), "{err}");
    }

    #[test]
    fn parse_chrome_trace_rejects_malformed() {
        assert!(parse_chrome_trace("{").is_err());
        assert!(parse_chrome_trace("{}")
            .unwrap_err()
            .contains("traceEvents"));
        let no_ts = r#"{"traceEvents": [{"name": "x", "ph": "i", "pid": 0, "tid": 2}]}"#;
        assert!(parse_chrome_trace(no_ts).unwrap_err().contains("'ts'"));
        let no_dur = r#"{"traceEvents": [{"name": "x", "ph": "X", "ts": 0, "pid": 0, "tid": 1}]}"#;
        assert!(parse_chrome_trace(no_dur).unwrap_err().contains("'dur'"));
        let bad_args = r#"{"traceEvents": [{"name": "x", "ph": "i", "ts": 0, "pid": 0, "tid": 2, "args": 3}]}"#;
        assert!(parse_chrome_trace(bad_args).unwrap_err().contains("args"));
    }

    #[test]
    fn default_profiler_config_roundtrips() {
        // Serialized with other tests in this binary that may also touch
        // the global — keep the touch-and-restore window tight.
        let prev = default_profiler();
        set_default_profiler(Some(ProfilerConfig::default().with_ring_capacity(4)));
        assert_eq!(
            default_profiler().map(|c| c.ring_capacity),
            Some(4),
            "global default visible"
        );
        set_default_profiler(prev);
    }
}
