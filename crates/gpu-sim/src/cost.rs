//! Transaction-level GPU cost model.
//!
//! The paper's kernels are bandwidth-bound: performance is governed by how
//! many 128-byte global-memory transactions each operation issues. The cost
//! model turns a [`crate::CounterSnapshot`] into *modeled
//! time* on a TITAN V-like device, which is what the benchmark harness
//! reports alongside host wall-clock. Absolute numbers are not expected to
//! match the paper's testbed; relative ordering (who wins, by what factor)
//! is — see DESIGN.md §2.

use crate::counters::CounterSnapshot;
use std::time::Duration;

/// Bytes per coalesced global-memory transaction (one 128 B cache line,
/// equivalently one 32-lane × 4-byte coalesced access).
pub const TRANSACTION_BYTES: usize = 128;

/// A simple analytic GPU timing model.
///
/// `modeled_time = launches·launch_overhead
///               + transactions·128 B / mem_bandwidth
///               + atomics / atomic_throughput
///               + (ballots+shuffles) / warp_instr_throughput`
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Sustained global-memory bandwidth in bytes/second.
    pub mem_bandwidth: f64,
    /// Device-wide atomic operations per second.
    pub atomic_throughput: f64,
    /// Warp-wide intrinsic instructions (ballot/shuffle) per second,
    /// aggregated over all SMs.
    pub warp_instr_throughput: f64,
    /// Fixed overhead per kernel launch in seconds.
    pub launch_overhead: f64,
}

impl CostModel {
    /// Parameters approximating the paper's NVIDIA TITAN V (Volta, HBM2).
    ///
    /// 652 GB/s sustained bandwidth, ~10 G atomics/s to distinct addresses
    /// (Volta atomics resolve in L2), 80 SMs × 4 schedulers × ~1.2 GHz of
    /// warp-instruction issue, 5 µs per launch.
    pub fn titan_v() -> Self {
        CostModel {
            mem_bandwidth: 652.0e9,
            atomic_throughput: 10.0e9,
            warp_instr_throughput: 384.0e9,
            launch_overhead: 5.0e-6,
        }
    }

    /// Modeled execution time in seconds for the given counter delta.
    pub fn seconds(&self, c: &CounterSnapshot) -> f64 {
        let mem = (c.transactions as f64) * (TRANSACTION_BYTES as f64) / self.mem_bandwidth;
        let atomics = (c.atomics as f64) / self.atomic_throughput;
        let warp_instrs = ((c.ballots + c.shuffles) as f64) / self.warp_instr_throughput;
        let launch = (c.launches as f64) * self.launch_overhead;
        mem + atomics + warp_instrs + launch
    }

    /// Modeled execution time as a [`Duration`].
    pub fn duration(&self, c: &CounterSnapshot) -> Duration {
        Duration::from_secs_f64(self.seconds(c).max(0.0))
    }

    /// Throughput in *items per second* when `items` units of work issued
    /// the counter delta `c` (e.g. edges inserted → MEdges/s).
    pub fn throughput(&self, items: u64, c: &CounterSnapshot) -> f64 {
        let t = self.seconds(c);
        if t <= 0.0 {
            0.0
        } else {
            items as f64 / t
        }
    }
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::titan_v()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(transactions: u64, atomics: u64, launches: u64) -> CounterSnapshot {
        CounterSnapshot {
            transactions,
            atomics,
            launches,
            ..Default::default()
        }
    }

    #[test]
    fn zero_counters_cost_nothing() {
        let m = CostModel::titan_v();
        assert_eq!(m.seconds(&CounterSnapshot::default()), 0.0);
    }

    #[test]
    fn memory_traffic_dominates_when_large() {
        let m = CostModel::titan_v();
        // 1e9 transactions = 128 GB => ~0.196 s on 652 GB/s.
        let t = m.seconds(&snap(1_000_000_000, 0, 0));
        assert!((t - 128.0e9 / 652.0e9).abs() < 1e-9);
    }

    #[test]
    fn launch_overhead_charged_per_launch() {
        let m = CostModel::titan_v();
        let t = m.seconds(&snap(0, 0, 10));
        assert!((t - 50.0e-6).abs() < 1e-12);
    }

    #[test]
    fn cost_is_monotone_in_transactions() {
        let m = CostModel::titan_v();
        assert!(m.seconds(&snap(1000, 0, 0)) < m.seconds(&snap(2000, 0, 0)));
    }

    #[test]
    fn throughput_inverts_time() {
        let m = CostModel::titan_v();
        let c = snap(1_000_000, 0, 1);
        let thr = m.throughput(1_000_000, &c);
        assert!(thr > 0.0);
        let t = m.seconds(&c);
        assert!((thr * t - 1.0e6).abs() < 1.0);
    }

    #[test]
    fn throughput_of_zero_cost_is_zero() {
        let m = CostModel::titan_v();
        assert_eq!(m.throughput(100, &CounterSnapshot::default()), 0.0);
    }

    #[test]
    fn duration_matches_seconds() {
        let m = CostModel::titan_v();
        let c = snap(1_000_000, 5_000, 3);
        let d = m.duration(&c);
        // Duration has nanosecond resolution.
        assert!((d.as_secs_f64() - m.seconds(&c)).abs() < 1e-9);
    }
}
