//! Metrics registry: named log2-bucketed histograms and gauges.
//!
//! The profiler's timeline (see [`crate::profiler`]) answers *when* work
//! happened; the metrics registry answers *how it was distributed*: probe
//! depths per lookup, chain lengths at insert, batch retry sizes, allocator
//! occupancy. Instrumentation sites reach the registry through
//! [`crate::Device::profiler`], so when no profiler is attached a site costs
//! one `Option` check and records nothing — counters are byte-identical
//! either way.
//!
//! Histograms bucket values by `⌊log2⌋` (65 buckets cover the full `u64`
//! range; bucket 0 holds the value 0) and additionally track exact count,
//! sum, and max, so summaries report exact means/maxima alongside bucketed
//! p50/p95/p99. Gauges track a current value, its high-water mark, and an
//! update count. Summaries ([`MetricSummary`]) are all-`u64` and round-trip
//! exactly through [`crate::trace::TraceReport`] JSON.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Histogram bucket count: bucket 0 holds the value 0, bucket `i ≥ 1`
/// holds values in `[2^(i-1), 2^i)`.
pub const HIST_BUCKETS: usize = 65;

/// The bucket index for `v` (see [`HIST_BUCKETS`]).
fn bucket_index(v: u64) -> usize {
    (u64::BITS - v.leading_zeros()) as usize
}

/// The inclusive lower bound of bucket `i` — the value percentiles report.
fn bucket_floor(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        1u64 << (i - 1)
    }
}

/// A thread-safe log2-bucketed histogram.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HIST_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Record one observation.
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Capture the current totals.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// An immutable point-in-time copy of a [`Histogram`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSnapshot {
    pub buckets: [u64; HIST_BUCKETS],
    pub count: u64,
    pub sum: u64,
    pub max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            buckets: [0; HIST_BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl HistogramSnapshot {
    /// Bucket-wise merge of another snapshot into this one (cross-device
    /// aggregation: the same metric observed on several backends).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }

    /// The bucketed `q`-quantile (`0.0 ..= 1.0`): the lower bound of the
    /// first bucket at which the cumulative count reaches `⌈q·count⌉`.
    /// Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            cum += b;
            if cum >= target {
                return bucket_floor(i).min(self.max);
            }
        }
        self.max
    }

    /// Render this snapshot as a [`MetricSummary`].
    pub fn summary(&self, name: impl Into<String>) -> MetricSummary {
        MetricSummary {
            name: name.into(),
            kind: MetricKind::Histogram,
            count: self.count,
            sum: self.sum,
            max: self.max,
            p50: self.quantile(0.50),
            p95: self.quantile(0.95),
            p99: self.quantile(0.99),
        }
    }
}

/// A thread-safe gauge: current value, high-water mark, update count.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicU64,
    high: AtomicU64,
    updates: AtomicU64,
}

impl Gauge {
    /// Set the gauge to an absolute value.
    pub fn set(&self, v: u64) {
        self.value.store(v, Ordering::Relaxed);
        self.high.fetch_max(v, Ordering::Relaxed);
        self.updates.fetch_add(1, Ordering::Relaxed);
    }

    /// Increment the gauge by `n`.
    pub fn add(&self, n: u64) {
        let now = self.value.fetch_add(n, Ordering::Relaxed) + n;
        self.high.fetch_max(now, Ordering::Relaxed);
        self.updates.fetch_add(1, Ordering::Relaxed);
    }

    /// Decrement the gauge by `n` (saturating at zero).
    pub fn sub(&self, n: u64) {
        let _ = self
            .value
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_sub(n))
            });
        self.updates.fetch_add(1, Ordering::Relaxed);
    }

    /// The current value.
    pub fn value(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// The high-water mark.
    pub fn high_water(&self) -> u64 {
        self.high.load(Ordering::Relaxed)
    }

    /// Render this gauge as a [`MetricSummary`]: `count` is the update
    /// count, `sum` and the percentiles carry the current value, `max` the
    /// high-water mark.
    pub fn summary(&self, name: impl Into<String>) -> MetricSummary {
        let v = self.value();
        MetricSummary {
            name: name.into(),
            kind: MetricKind::Gauge,
            count: self.updates.load(Ordering::Relaxed),
            sum: v,
            max: self.high_water(),
            p50: v,
            p95: v,
            p99: v,
        }
    }
}

/// What a [`MetricSummary`] summarizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    Histogram,
    Gauge,
}

impl MetricKind {
    /// Stable identifier used in JSON payloads and reports.
    pub fn as_str(self) -> &'static str {
        match self {
            MetricKind::Histogram => "histogram",
            MetricKind::Gauge => "gauge",
        }
    }

    /// Inverse of [`Self::as_str`].
    pub fn parse(s: &str) -> Option<MetricKind> {
        match s {
            "histogram" => Some(MetricKind::Histogram),
            "gauge" => Some(MetricKind::Gauge),
            _ => None,
        }
    }
}

/// An all-`u64` rendering of one metric, suitable for exact JSON
/// round-tripping in [`crate::trace::TraceReport`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricSummary {
    pub name: String,
    pub kind: MetricKind,
    /// Observations (histogram) or updates (gauge).
    pub count: u64,
    /// Sum of observations (histogram) or current value (gauge).
    pub sum: u64,
    /// Largest observation (histogram) or high-water mark (gauge).
    pub max: u64,
    /// Bucketed median (histogram) or current value (gauge).
    pub p50: u64,
    /// Bucketed 95th percentile (histogram) or current value (gauge).
    pub p95: u64,
    /// Bucketed 99th percentile (histogram) or current value (gauge).
    pub p99: u64,
}

impl MetricSummary {
    /// Exact mean of a histogram's observations (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// Registry of named histograms and gauges, in first-use order.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    hists: Mutex<Vec<(String, Arc<Histogram>)>>,
    gauges: Mutex<Vec<(String, Arc<Gauge>)>>,
}

impl MetricsRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    /// Find or create the histogram named `name`.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut hists = self.hists.lock();
        if let Some((_, h)) = hists.iter().find(|(n, _)| n == name) {
            return h.clone();
        }
        let h = Arc::new(Histogram::default());
        hists.push((name.to_string(), h.clone()));
        h
    }

    /// Find or create the gauge named `name`.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut gauges = self.gauges.lock();
        if let Some((_, g)) = gauges.iter().find(|(n, _)| n == name) {
            return g.clone();
        }
        let g = Arc::new(Gauge::default());
        gauges.push((name.to_string(), g.clone()));
        g
    }

    /// Record one observation into the histogram named `name`.
    pub fn record(&self, name: &str, v: u64) {
        self.histogram(name).record(v);
    }

    /// Every histogram's snapshot, in first-use order.
    pub fn histograms(&self) -> Vec<(String, HistogramSnapshot)> {
        self.hists
            .lock()
            .iter()
            .map(|(n, h)| (n.clone(), h.snapshot()))
            .collect()
    }

    /// Summaries of every metric, sorted by name (histograms and gauges
    /// interleaved) so reports are deterministic across runs.
    pub fn summaries(&self) -> Vec<MetricSummary> {
        let mut out: Vec<MetricSummary> = self
            .hists
            .lock()
            .iter()
            .map(|(n, h)| h.snapshot().summary(n.clone()))
            .chain(self.gauges.lock().iter().map(|(n, g)| g.summary(n.clone())))
            .collect();
        out.sort_by(|a, b| a.name.cmp(&b.name));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_indexing_is_log2() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_floor(0), 0);
        assert_eq!(bucket_floor(1), 1);
        assert_eq!(bucket_floor(5), 16);
    }

    #[test]
    fn histogram_counts_sums_and_quantiles() {
        let h = Histogram::default();
        for v in [1u64, 1, 2, 3, 100] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 5);
        assert_eq!(s.sum, 107);
        assert_eq!(s.max, 100);
        // Buckets: v=1 ×2 → b1; v=2,3 → b2; v=100 → b7.
        assert_eq!(s.buckets[1], 2);
        assert_eq!(s.buckets[2], 2);
        assert_eq!(s.buckets[7], 1);
        assert_eq!(s.quantile(0.5), 2, "3rd of 5 lands in bucket [2,4)");
        assert_eq!(s.quantile(0.95), 64, "bucket floor of [64,128)");
        assert_eq!(s.quantile(1.0), 64);
    }

    #[test]
    fn quantile_of_empty_is_zero() {
        let s = HistogramSnapshot::default();
        assert_eq!(s.quantile(0.5), 0);
        assert_eq!(s.summary("x").mean(), 0.0);
    }

    #[test]
    fn quantile_clamps_to_observed_max() {
        let h = Histogram::default();
        h.record(5); // bucket [4,8), floor 4
        let s = h.snapshot();
        assert_eq!(s.quantile(0.5), 4);
        h.record(1u64 << 40);
        let s = h.snapshot();
        assert_eq!(s.quantile(1.0), 1u64 << 40);
    }

    #[test]
    fn merge_adds_bucketwise() {
        let a = Histogram::default();
        let b = Histogram::default();
        a.record(1);
        a.record(8);
        b.record(8);
        b.record(1000);
        let mut m = a.snapshot();
        m.merge(&b.snapshot());
        assert_eq!(m.count, 4);
        assert_eq!(m.sum, 1017);
        assert_eq!(m.max, 1000);
        assert_eq!(m.buckets[4], 2, "both 8s in [8,16)");
    }

    #[test]
    fn gauge_tracks_high_water() {
        let g = Gauge::default();
        g.add(10);
        g.add(5);
        g.sub(12);
        assert_eq!(g.value(), 3);
        assert_eq!(g.high_water(), 15);
        g.set(4);
        assert_eq!(g.high_water(), 15);
        let s = g.summary("pool");
        assert_eq!(s.kind, MetricKind::Gauge);
        assert_eq!(s.count, 4);
        assert_eq!(s.sum, 4);
        assert_eq!(s.max, 15);
    }

    #[test]
    fn gauge_sub_saturates() {
        let g = Gauge::default();
        g.sub(7);
        assert_eq!(g.value(), 0);
    }

    #[test]
    fn registry_interns_by_name_and_sorts_summaries() {
        let r = MetricsRegistry::new();
        r.record("z.depth", 3);
        r.record("z.depth", 5);
        r.gauge("a.pool").set(9);
        let s = r.summaries();
        assert_eq!(s.len(), 2);
        assert_eq!(s[0].name, "a.pool");
        assert_eq!(s[1].name, "z.depth");
        assert_eq!(s[1].count, 2);
        assert_eq!(s[1].sum, 8);
    }

    #[test]
    fn metric_kind_roundtrips() {
        for k in [MetricKind::Histogram, MetricKind::Gauge] {
            assert_eq!(MetricKind::parse(k.as_str()), Some(k));
        }
        assert_eq!(MetricKind::parse("nope"), None);
    }
}
