//! Allocation failure: typed out-of-memory errors and deterministic
//! fault injection.
//!
//! Real deployments of the paper's system run against a *fixed* device
//! memory budget — SlabAlloc carves collision slabs out of a statically
//! sized super-block pool — so allocation failure is a normal, recoverable
//! event, not an abort. [`OomError`] is the typed form of that event, and
//! [`FaultPlan`] lets tests inject it at exact, reproducible points: the
//! Nth allocation, a seeded coin flip per allocation, or every allocation
//! inside a named kernel.
//!
//! The plan is consulted by *fallible* allocation sites only (the slab
//! pool's acquisition path); infallible host-setup allocations never
//! consume a fault index, so a plan's schedule is stable regardless of how
//! much staging bookkeeping surrounds the structure under test.

use std::sync::atomic::{AtomicU64, Ordering};

/// A device allocation failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OomError {
    /// The configured capacity budget would be exceeded.
    Capacity {
        /// Words requested by the failing allocation.
        requested: u64,
        /// The budget in effect, in words.
        capacity: u64,
        /// Words already allocated when the request was made.
        allocated: u64,
    },
    /// The arena's fixed address space (not the budget) is exhausted.
    AddressSpace {
        /// Words requested by the failing allocation.
        requested: u64,
    },
    /// A [`FaultPlan`] injected this failure.
    Injected {
        /// 1-based index of the fallible allocation that was failed.
        alloc_index: u64,
        /// The kernel the allocation was issued under, if any.
        kernel: Option<&'static str>,
    },
}

impl std::fmt::Display for OomError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            OomError::Capacity {
                requested,
                capacity,
                allocated,
            } => write!(
                f,
                "device memory budget exhausted: requested {requested} words \
                 with {allocated}/{capacity} already allocated"
            ),
            OomError::AddressSpace { requested } => write!(
                f,
                "device address space exhausted: requested {requested} words"
            ),
            OomError::Injected {
                alloc_index,
                kernel,
            } => match kernel {
                Some(k) => write!(
                    f,
                    "injected OOM at allocation #{alloc_index} in kernel `{k}`"
                ),
                None => write!(f, "injected OOM at allocation #{alloc_index}"),
            },
        }
    }
}

impl std::error::Error for OomError {}

/// A deterministic schedule of injected allocation failures.
///
/// Installed on a device with `Device::set_fault_plan`; every fallible
/// allocation consumes one 1-based index and fails iff the plan says so.
/// Installing a plan resets the index, so schedules are reproducible
/// relative to the moment of installation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultPlan {
    /// Fail exactly the `n`th fallible allocation (1-based).
    Nth(u64),
    /// Fail every `n`th fallible allocation (the `n`th, `2n`th, …).
    EveryNth(u64),
    /// Fail each fallible allocation independently with probability `p`,
    /// derived deterministically from `seed` and the allocation index.
    Probability { p: f64, seed: u64 },
    /// Fail every fallible allocation issued while the named kernel is the
    /// outermost active scope.
    InKernel(&'static str),
}

impl FaultPlan {
    /// Fail exactly the `n`th fallible allocation (1-based).
    pub fn fail_nth(n: u64) -> Self {
        FaultPlan::Nth(n)
    }

    /// Fail every `n`th fallible allocation.
    pub fn fail_every_nth(n: u64) -> Self {
        assert!(n > 0, "fault period must be positive");
        FaultPlan::EveryNth(n)
    }

    /// Fail each fallible allocation with probability `p` under `seed`.
    pub fn fail_with_probability(p: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        FaultPlan::Probability { p, seed }
    }

    /// Fail every fallible allocation inside the named kernel.
    pub fn fail_in_kernel(name: &'static str) -> Self {
        FaultPlan::InKernel(name)
    }

    /// Whether the allocation with 1-based `index` under `kernel` fails.
    pub fn should_fail(&self, index: u64, kernel: Option<&'static str>) -> bool {
        match *self {
            FaultPlan::Nth(n) => index == n,
            FaultPlan::EveryNth(n) => n > 0 && index.is_multiple_of(n),
            FaultPlan::Probability { p, seed } => {
                // splitmix64 over (seed, index): one well-mixed u64 per
                // allocation, mapped to [0, 1).
                let x = splitmix64(seed.wrapping_add(index.wrapping_mul(0x9E37_79B9_7F4A_7C15)));
                ((x >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
            }
            FaultPlan::InKernel(name) => kernel == Some(name),
        }
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Per-device fault-injection state: the installed plan plus the fallible
/// allocation counter it is evaluated against.
#[derive(Default)]
pub(crate) struct FaultInjector {
    plan: parking_lot::Mutex<Option<FaultPlan>>,
    next_index: AtomicU64,
    injected: AtomicU64,
}

impl FaultInjector {
    /// Install `plan` and reset the allocation index.
    pub(crate) fn set_plan(&self, plan: FaultPlan) {
        *self.plan.lock() = Some(plan);
        self.next_index.store(0, Ordering::Relaxed);
    }

    /// Remove any installed plan (the index is left untouched).
    pub(crate) fn clear_plan(&self) {
        *self.plan.lock() = None;
    }

    /// The currently installed plan, if any.
    pub(crate) fn plan(&self) -> Option<FaultPlan> {
        *self.plan.lock()
    }

    /// Total failures injected since construction.
    pub(crate) fn injected(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }

    /// Consume one fallible-allocation index and report whether the plan
    /// fails it. No-op (and no index consumed) when no plan is installed.
    pub(crate) fn check(&self, kernel: Option<&'static str>) -> Result<(), OomError> {
        let Some(plan) = self.plan() else {
            return Ok(());
        };
        let index = self.next_index.fetch_add(1, Ordering::Relaxed) + 1;
        if plan.should_fail(index, kernel) {
            self.injected.fetch_add(1, Ordering::Relaxed);
            Err(OomError::Injected {
                alloc_index: index,
                kernel,
            })
        } else {
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nth_fails_exactly_once() {
        let plan = FaultPlan::fail_nth(3);
        let fails: Vec<u64> = (1..=10).filter(|&i| plan.should_fail(i, None)).collect();
        assert_eq!(fails, vec![3]);
    }

    #[test]
    fn every_nth_fails_periodically() {
        let plan = FaultPlan::fail_every_nth(4);
        let fails: Vec<u64> = (1..=12).filter(|&i| plan.should_fail(i, None)).collect();
        assert_eq!(fails, vec![4, 8, 12]);
    }

    #[test]
    fn probability_is_deterministic_and_roughly_calibrated() {
        let plan = FaultPlan::fail_with_probability(0.25, 42);
        let a: Vec<bool> = (1..=1000).map(|i| plan.should_fail(i, None)).collect();
        let b: Vec<bool> = (1..=1000).map(|i| plan.should_fail(i, None)).collect();
        assert_eq!(a, b, "same seed, same schedule");
        let hits = a.iter().filter(|&&x| x).count();
        assert!((150..350).contains(&hits), "p=0.25 hit {hits}/1000 times");
        let other = FaultPlan::fail_with_probability(0.25, 43);
        let c: Vec<bool> = (1..=1000).map(|i| other.should_fail(i, None)).collect();
        assert_ne!(a, c, "different seeds, different schedules");
    }

    #[test]
    fn in_kernel_matches_scope_name_only() {
        let plan = FaultPlan::fail_in_kernel("edge_insert");
        assert!(plan.should_fail(1, Some("edge_insert")));
        assert!(!plan.should_fail(1, Some("edge_delete")));
        assert!(!plan.should_fail(1, None));
    }

    #[test]
    fn injector_counts_and_resets_on_install() {
        let inj = FaultInjector::default();
        assert!(inj.check(None).is_ok(), "no plan, no faults");
        inj.set_plan(FaultPlan::fail_nth(2));
        assert!(inj.check(None).is_ok());
        assert_eq!(
            inj.check(None),
            Err(OomError::Injected {
                alloc_index: 2,
                kernel: None
            })
        );
        assert!(inj.check(None).is_ok());
        assert_eq!(inj.injected(), 1);
        // Re-installing resets the index: the 2nd allocation fails again.
        inj.set_plan(FaultPlan::fail_nth(2));
        assert!(inj.check(None).is_ok());
        assert!(inj.check(None).is_err());
        inj.clear_plan();
        assert!(inj.check(None).is_ok());
    }
}
