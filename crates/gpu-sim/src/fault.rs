//! Allocation and device failure: typed errors and deterministic fault
//! injection.
//!
//! Real deployments of the paper's system run against a *fixed* device
//! memory budget — SlabAlloc carves collision slabs out of a statically
//! sized super-block pool — so allocation failure is a normal, recoverable
//! event, not an abort. [`OomError`] is the typed form of that event, and
//! [`FaultPlan`] lets tests inject it at exact, reproducible points: the
//! Nth allocation, a seeded coin flip per allocation, or every allocation
//! inside a named kernel.
//!
//! Beyond allocation, a fleet also loses whole devices. The *device-level*
//! plan kinds model that: [`FaultPlan::DeviceLost`] marks the device lost
//! — terminal until [`crate::Device::reset`] — and
//! [`FaultPlan::TransientKernel`] fails a bounded run of launches and then
//! heals. Both surface as a typed [`DeviceFault`], deliberately distinct
//! from [`OomError`]: an OOM means "this batch needs more memory", a
//! device fault means "this shard needs retry/backoff or a rebuild".
//!
//! Allocation-level plans are consulted by *fallible* allocation sites only
//! (the slab pool's acquisition path); device-level plans are consulted at
//! launch-admission sites ([`crate::Device::launch_check`]) only. The two
//! families keep **independent indices**, so layering a device-level plan
//! on top of an allocation plan never perturbs the allocation schedule —
//! retry schedules stay deterministic under composition.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// A device allocation failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OomError {
    /// The configured capacity budget would be exceeded.
    Capacity {
        /// Words requested by the failing allocation.
        requested: u64,
        /// The budget in effect, in words.
        capacity: u64,
        /// Words already allocated when the request was made.
        allocated: u64,
    },
    /// The arena's fixed address space (not the budget) is exhausted.
    AddressSpace {
        /// Words requested by the failing allocation.
        requested: u64,
    },
    /// A [`FaultPlan`] injected this failure.
    Injected {
        /// 1-based index of the fallible allocation that was failed.
        alloc_index: u64,
        /// The kernel the allocation was issued under, if any.
        kernel: Option<&'static str>,
    },
}

impl std::fmt::Display for OomError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            OomError::Capacity {
                requested,
                capacity,
                allocated,
            } => write!(
                f,
                "device memory budget exhausted: requested {requested} words \
                 with {allocated}/{capacity} already allocated"
            ),
            OomError::AddressSpace { requested } => write!(
                f,
                "device address space exhausted: requested {requested} words"
            ),
            OomError::Injected {
                alloc_index,
                kernel,
            } => match kernel {
                Some(k) => write!(
                    f,
                    "injected OOM at allocation #{alloc_index} in kernel `{k}`"
                ),
                None => write!(f, "injected OOM at allocation #{alloc_index}"),
            },
        }
    }
}

impl std::error::Error for OomError {}

/// A device-level failure — the device itself, not one allocation, is
/// unhealthy. Distinct from [`OomError`] on purpose: callers recover from
/// OOM by growing the budget and retrying the suffix, but from a device
/// fault by backing off (transient) or resetting and rebuilding (lost).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeviceFault {
    /// The device is lost. Terminal: every launch admission fails until
    /// [`crate::Device::reset`]. `launch_index` is the 1-based launch
    /// admission that tripped the loss (0 when reported after the trip).
    Lost { launch_index: u64 },
    /// A transient kernel fault failed this launch admission; the device
    /// heals once the scheduled failure run is exhausted. `remaining` is
    /// how many further admissions the plan will still fail.
    TransientKernel { launch_index: u64, remaining: u64 },
}

impl DeviceFault {
    /// Whether this fault is terminal (no retry can help; the device needs
    /// a reset and its state a rebuild).
    pub fn is_terminal(&self) -> bool {
        matches!(self, DeviceFault::Lost { .. })
    }
}

impl std::fmt::Display for DeviceFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            DeviceFault::Lost { launch_index: 0 } => write!(f, "device lost (awaiting reset)"),
            DeviceFault::Lost { launch_index } => {
                write!(f, "device lost at launch admission #{launch_index}")
            }
            DeviceFault::TransientKernel {
                launch_index,
                remaining,
            } => write!(
                f,
                "transient kernel fault at launch admission #{launch_index} ({remaining} more scheduled)"
            ),
        }
    }
}

impl std::error::Error for DeviceFault {}

/// A deterministic schedule of injected failures.
///
/// Installed on a device with `Device::set_fault_plan`. Allocation-level
/// kinds ([`Self::Nth`], [`Self::EveryNth`], [`Self::Probability`],
/// [`Self::InKernel`]) are consulted by every fallible allocation;
/// device-level kinds ([`Self::DeviceLost`], [`Self::TransientKernel`])
/// are consulted at launch admission. The injector keeps one slot and one
/// independent 1-based index per family, so installing a plan resets only
/// *its* family's index and the two schedules compose deterministically.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultPlan {
    /// Fail exactly the `n`th fallible allocation (1-based).
    Nth(u64),
    /// Fail every `n`th fallible allocation (the `n`th, `2n`th, …).
    EveryNth(u64),
    /// Fail each fallible allocation independently with probability `p`,
    /// derived deterministically from `seed` and the allocation index.
    Probability { p: f64, seed: u64 },
    /// Fail every fallible allocation issued while the named kernel is the
    /// outermost active scope.
    InKernel(&'static str),
    /// Lose the device at the `at_launch`th launch admission (1-based).
    /// Terminal: once tripped, every admission fails with
    /// [`DeviceFault::Lost`] until [`crate::Device::reset`].
    DeviceLost { at_launch: u64 },
    /// Fail launch admissions `first..first + failures` with
    /// [`DeviceFault::TransientKernel`], then heal.
    TransientKernel { first: u64, failures: u64 },
}

impl FaultPlan {
    /// Fail exactly the `n`th fallible allocation (1-based).
    pub fn fail_nth(n: u64) -> Self {
        FaultPlan::Nth(n)
    }

    /// Fail every `n`th fallible allocation.
    pub fn fail_every_nth(n: u64) -> Self {
        assert!(n > 0, "fault period must be positive");
        FaultPlan::EveryNth(n)
    }

    /// Fail each fallible allocation with probability `p` under `seed`.
    pub fn fail_with_probability(p: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        FaultPlan::Probability { p, seed }
    }

    /// Fail every fallible allocation inside the named kernel.
    pub fn fail_in_kernel(name: &'static str) -> Self {
        FaultPlan::InKernel(name)
    }

    /// Lose the device at the `n`th launch admission (1-based).
    pub fn device_lost_at(n: u64) -> Self {
        assert!(n > 0, "launch index is 1-based");
        FaultPlan::DeviceLost { at_launch: n }
    }

    /// Fail `failures` launch admissions starting at the `first`th
    /// (1-based), then heal.
    pub fn transient_kernel(first: u64, failures: u64) -> Self {
        assert!(first > 0, "launch index is 1-based");
        assert!(failures > 0, "a transient fault must fail at least once");
        FaultPlan::TransientKernel { first, failures }
    }

    /// Whether this is a device-level (launch-admission) kind rather than
    /// an allocation-level kind.
    pub fn is_device_level(&self) -> bool {
        matches!(
            self,
            FaultPlan::DeviceLost { .. } | FaultPlan::TransientKernel { .. }
        )
    }

    /// Whether the allocation with 1-based `index` under `kernel` fails.
    /// Device-level kinds never match here — they are consulted via
    /// [`Self::device_failure`] against the launch index instead.
    pub fn should_fail(&self, index: u64, kernel: Option<&'static str>) -> bool {
        match *self {
            FaultPlan::Nth(n) => index == n,
            FaultPlan::EveryNth(n) => n > 0 && index.is_multiple_of(n),
            FaultPlan::Probability { p, seed } => {
                // splitmix64 over (seed, index): one well-mixed u64 per
                // allocation, mapped to [0, 1).
                let x = splitmix64(seed.wrapping_add(index.wrapping_mul(0x9E37_79B9_7F4A_7C15)));
                ((x >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
            }
            FaultPlan::InKernel(name) => kernel == Some(name),
            FaultPlan::DeviceLost { .. } | FaultPlan::TransientKernel { .. } => false,
        }
    }

    /// The device failure (if any) this plan schedules for the launch
    /// admission with 1-based `index`. Allocation-level kinds never match.
    pub fn device_failure(&self, index: u64) -> Option<DeviceFault> {
        match *self {
            FaultPlan::DeviceLost { at_launch } if index >= at_launch => Some(DeviceFault::Lost {
                launch_index: index,
            }),
            FaultPlan::TransientKernel { first, failures }
                if index >= first && index < first + failures =>
            {
                Some(DeviceFault::TransientKernel {
                    launch_index: index,
                    remaining: first + failures - index - 1,
                })
            }
            _ => None,
        }
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Per-device fault-injection state: one plan slot and one independent
/// 1-based counter per fault family (fallible allocations vs launch
/// admissions), plus the sticky "lost" latch a [`DeviceFault::Lost`] trip
/// sets until the device is reset.
#[derive(Default)]
pub(crate) struct FaultInjector {
    alloc_plan: parking_lot::Mutex<Option<FaultPlan>>,
    launch_plan: parking_lot::Mutex<Option<FaultPlan>>,
    next_index: AtomicU64,
    next_launch: AtomicU64,
    lost: AtomicBool,
    injected: AtomicU64,
    device_faults: AtomicU64,
}

impl FaultInjector {
    /// Install `plan` into its family's slot and reset only that family's
    /// index — the other family's schedule is untouched, so composed plans
    /// stay deterministic.
    pub(crate) fn set_plan(&self, plan: FaultPlan) {
        if plan.is_device_level() {
            *self.launch_plan.lock() = Some(plan);
            self.next_launch.store(0, Ordering::Relaxed);
        } else {
            *self.alloc_plan.lock() = Some(plan);
            self.next_index.store(0, Ordering::Relaxed);
        }
    }

    /// Remove any installed plans (indices are left untouched). Does *not*
    /// clear the lost latch — only a device reset revives a lost device.
    pub(crate) fn clear_plan(&self) {
        *self.alloc_plan.lock() = None;
        *self.launch_plan.lock() = None;
    }

    /// The currently installed allocation-level plan, if any.
    pub(crate) fn plan(&self) -> Option<FaultPlan> {
        *self.alloc_plan.lock()
    }

    /// The currently installed device-level plan, if any.
    pub(crate) fn launch_plan(&self) -> Option<FaultPlan> {
        *self.launch_plan.lock()
    }

    /// Total allocation failures injected since construction.
    pub(crate) fn injected(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }

    /// Total device faults surfaced since construction (each admission
    /// failed while lost counts, so retries against a lost device show up).
    pub(crate) fn device_faults(&self) -> u64 {
        self.device_faults.load(Ordering::Relaxed)
    }

    /// Whether the device is currently lost (awaiting reset).
    pub(crate) fn is_lost(&self) -> bool {
        self.lost.load(Ordering::Relaxed)
    }

    /// Consume one fallible-allocation index and report whether the plan
    /// fails it. No-op (and no index consumed) when no plan is installed.
    pub(crate) fn check(&self, kernel: Option<&'static str>) -> Result<(), OomError> {
        let Some(plan) = self.plan() else {
            return Ok(());
        };
        let index = self.next_index.fetch_add(1, Ordering::Relaxed) + 1;
        if plan.should_fail(index, kernel) {
            self.injected.fetch_add(1, Ordering::Relaxed);
            Err(OomError::Injected {
                alloc_index: index,
                kernel,
            })
        } else {
            Ok(())
        }
    }

    /// Admit one launch. A lost device fails every admission (without
    /// consuming a launch index); otherwise consume one launch index and
    /// consult the device-level plan, latching `lost` on a terminal trip.
    pub(crate) fn check_launch(&self) -> Result<(), DeviceFault> {
        if self.lost.load(Ordering::Relaxed) {
            self.device_faults.fetch_add(1, Ordering::Relaxed);
            return Err(DeviceFault::Lost { launch_index: 0 });
        }
        let Some(plan) = self.launch_plan() else {
            return Ok(());
        };
        let index = self.next_launch.fetch_add(1, Ordering::Relaxed) + 1;
        match plan.device_failure(index) {
            Some(fault) => {
                if fault.is_terminal() {
                    self.lost.store(true, Ordering::Relaxed);
                }
                self.device_faults.fetch_add(1, Ordering::Relaxed);
                Err(fault)
            }
            None => Ok(()),
        }
    }

    /// Revive the device: clear the lost latch, both plan slots, and both
    /// family indices. Called from [`crate::Device::reset`].
    pub(crate) fn reset_device(&self) {
        self.lost.store(false, Ordering::Relaxed);
        *self.alloc_plan.lock() = None;
        *self.launch_plan.lock() = None;
        self.next_index.store(0, Ordering::Relaxed);
        self.next_launch.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nth_fails_exactly_once() {
        let plan = FaultPlan::fail_nth(3);
        let fails: Vec<u64> = (1..=10).filter(|&i| plan.should_fail(i, None)).collect();
        assert_eq!(fails, vec![3]);
    }

    #[test]
    fn every_nth_fails_periodically() {
        let plan = FaultPlan::fail_every_nth(4);
        let fails: Vec<u64> = (1..=12).filter(|&i| plan.should_fail(i, None)).collect();
        assert_eq!(fails, vec![4, 8, 12]);
    }

    #[test]
    fn probability_is_deterministic_and_roughly_calibrated() {
        let plan = FaultPlan::fail_with_probability(0.25, 42);
        let a: Vec<bool> = (1..=1000).map(|i| plan.should_fail(i, None)).collect();
        let b: Vec<bool> = (1..=1000).map(|i| plan.should_fail(i, None)).collect();
        assert_eq!(a, b, "same seed, same schedule");
        let hits = a.iter().filter(|&&x| x).count();
        assert!((150..350).contains(&hits), "p=0.25 hit {hits}/1000 times");
        let other = FaultPlan::fail_with_probability(0.25, 43);
        let c: Vec<bool> = (1..=1000).map(|i| other.should_fail(i, None)).collect();
        assert_ne!(a, c, "different seeds, different schedules");
    }

    #[test]
    fn in_kernel_matches_scope_name_only() {
        let plan = FaultPlan::fail_in_kernel("edge_insert");
        assert!(plan.should_fail(1, Some("edge_insert")));
        assert!(!plan.should_fail(1, Some("edge_delete")));
        assert!(!plan.should_fail(1, None));
    }

    #[test]
    fn injector_counts_and_resets_on_install() {
        let inj = FaultInjector::default();
        assert!(inj.check(None).is_ok(), "no plan, no faults");
        inj.set_plan(FaultPlan::fail_nth(2));
        assert!(inj.check(None).is_ok());
        assert_eq!(
            inj.check(None),
            Err(OomError::Injected {
                alloc_index: 2,
                kernel: None
            })
        );
        assert!(inj.check(None).is_ok());
        assert_eq!(inj.injected(), 1);
        // Re-installing resets the index: the 2nd allocation fails again.
        inj.set_plan(FaultPlan::fail_nth(2));
        assert!(inj.check(None).is_ok());
        assert!(inj.check(None).is_err());
        inj.clear_plan();
        assert!(inj.check(None).is_ok());
    }

    #[test]
    fn device_lost_is_terminal_until_reset() {
        let inj = FaultInjector::default();
        assert!(inj.check_launch().is_ok(), "no plan, no device faults");
        inj.set_plan(FaultPlan::device_lost_at(2));
        assert!(inj.check_launch().is_ok());
        assert_eq!(
            inj.check_launch(),
            Err(DeviceFault::Lost { launch_index: 2 })
        );
        assert!(inj.is_lost());
        // Terminal: clearing the plan does not revive the device.
        inj.clear_plan();
        assert_eq!(
            inj.check_launch(),
            Err(DeviceFault::Lost { launch_index: 0 })
        );
        inj.reset_device();
        assert!(!inj.is_lost());
        assert!(inj.check_launch().is_ok());
        assert!(inj.device_faults() >= 2);
    }

    #[test]
    fn transient_kernel_fails_a_bounded_run_then_heals() {
        let inj = FaultInjector::default();
        inj.set_plan(FaultPlan::transient_kernel(2, 3));
        let results: Vec<bool> = (0..6).map(|_| inj.check_launch().is_ok()).collect();
        assert_eq!(results, vec![true, false, false, false, true, true]);
        assert!(!inj.is_lost(), "transient faults never latch lost");
        assert_eq!(
            FaultPlan::transient_kernel(2, 3).device_failure(2),
            Some(DeviceFault::TransientKernel {
                launch_index: 2,
                remaining: 2
            })
        );
    }

    #[test]
    fn fault_families_keep_independent_indices() {
        let inj = FaultInjector::default();
        inj.set_plan(FaultPlan::fail_every_nth(2));
        inj.set_plan(FaultPlan::transient_kernel(1, 1));
        // Launch admissions do not consume allocation indices and vice
        // versa: the alloc schedule stays 1-ok 2-fail 3-ok 4-fail …
        assert!(inj.check_launch().is_err());
        assert!(inj.check(None).is_ok());
        assert!(inj.check_launch().is_ok());
        assert!(inj.check(None).is_err());
        assert!(inj.check(None).is_ok());
        // Re-installing a device plan resets only the launch index.
        inj.set_plan(FaultPlan::transient_kernel(1, 1));
        assert!(inj.check_launch().is_err());
        assert!(inj.check(None).is_err(), "alloc index 4 still fails");
    }
}
