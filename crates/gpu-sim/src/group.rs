//! Multi-device coordination: N simulated devices driven as one group.
//!
//! A [`DeviceGroup`] models a multi-GPU node the way the rest of this crate
//! models one card: deterministically, with exact accounting. The group owns
//! `n` [`Device`]s built from a single [`DeviceConfig`] (so every shard gets
//! the same budget, policy, sanitizer, and profiler configuration), runs
//! per-shard work concurrently on host threads — the CUDA-streams overlap a
//! real driver would give you — and merges per-shard observability into one
//! view:
//!
//! - **One modeled clock.** Each shard's profiler advances its own modeled
//!   clock; the group's clock ([`DeviceGroup::clock_s`]) is the *maximum*
//!   across shards, i.e. the makespan under perfect overlap. This is the
//!   multi-device analogue of the single-device span invariant: per-shard
//!   spans still partition per-shard time, and the group finishes when its
//!   slowest shard does.
//! - **Deterministic merges.** [`DeviceGroup::merged_trace`] sums per-shard
//!   kernel tallies by name (shard-major, first-launch order preserved), so
//!   the attribution invariant `kernel_sum() == global` survives the merge.
//!   [`DeviceGroup::merged_report`] folds in sanitizer findings (kernel
//!   names prefixed `shard<i>/` so a finding still names its device) and
//!   metric summaries (histograms merged bucket-wise — percentiles of the
//!   *union*, not averages of percentiles). The result is an ordinary
//!   [`TraceReport`]: it renders, JSON round-trips exactly, and pre-shard
//!   reports parse unchanged.
//! - **Per-shard timelines.** [`DeviceGroup::chrome_events`] exports shard
//!   `i` under `pid = base + i`, so a merged Chrome trace shows the shards
//!   as parallel process rows and dispatch overlap is visible directly.
//!
//! Sharded code paths construct devices *only* through a group — the
//! `lint-kernels` rule R5 enforces this — so capacity budgets, fault plans,
//! and profiler attachment stay uniform across shards.

use crate::cost::CostModel;
use crate::counters::CounterSnapshot;
use crate::device::{Device, DeviceConfig};
use crate::metrics::{HistogramSnapshot, MetricKind, MetricSummary};
use crate::profiler::ChromeEvent;
use crate::sanitizer::Finding;
use crate::trace::{KernelStats, TraceReport, TraceSnapshot};
use std::sync::Arc;

/// Event-wise sum of two counter snapshots (the merge dual of
/// [`CounterSnapshot::delta`]).
fn add_counters(a: CounterSnapshot, b: CounterSnapshot) -> CounterSnapshot {
    CounterSnapshot {
        transactions: a.transactions + b.transactions,
        atomics: a.atomics + b.atomics,
        ballots: a.ballots + b.ballots,
        shuffles: a.shuffles + b.shuffles,
        launches: a.launches + b.launches,
        warps: a.warps + b.warps,
        words_allocated: a.words_allocated + b.words_allocated,
    }
}

/// A fixed set of simulated devices sharing one configuration and driven
/// concurrently as shards of a larger structure. See the module docs for
/// the clock and merge semantics.
pub struct DeviceGroup {
    devices: Vec<Arc<Device>>,
}

impl DeviceGroup {
    /// Build a group of `n` devices, each from its own copy of `config`.
    /// Every shard gets an independent arena, counter set, fault injector,
    /// and (if configured) sanitizer and profiler — observability is
    /// per-shard and merged on demand, never shared mid-run.
    pub fn new(n: usize, config: DeviceConfig) -> Self {
        assert!(n >= 1, "a device group needs at least one device");
        DeviceGroup {
            devices: (0..n)
                .map(|_| Arc::new(Device::with_config(config)))
                .collect(),
        }
    }

    /// Number of devices in the group.
    pub fn len(&self) -> usize {
        self.devices.len()
    }

    /// Always false: groups hold at least one device.
    pub fn is_empty(&self) -> bool {
        self.devices.is_empty()
    }

    /// Shard `i`'s device. The `Arc` lets structures built on the shard
    /// (e.g. a graph) co-own the device with the group.
    pub fn device(&self, shard: usize) -> &Arc<Device> {
        &self.devices[shard]
    }

    /// All devices, in shard order.
    pub fn devices(&self) -> &[Arc<Device>] {
        &self.devices
    }

    /// Run `f(shard, device)` for every shard concurrently, one host
    /// thread per shard, and return the results in shard order. This is
    /// the group's executor: per-shard kernel streams overlap exactly as
    /// concurrent CUDA streams on separate cards would, and because each
    /// closure only touches its own shard's device, the result is
    /// deterministic regardless of thread interleaving.
    pub fn dispatch<R, F>(&self, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize, &Device) -> R + Sync,
    {
        let f = &f;
        std::thread::scope(|s| {
            let handles: Vec<_> = self
                .devices
                .iter()
                .enumerate()
                .map(|(i, d)| s.spawn(move || f(i, d.as_ref())))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("shard dispatch panicked"))
                .collect()
        })
    }

    /// The group's modeled clock: the maximum of the per-shard profiler
    /// clocks (makespan under perfect overlap). Zero when no shard carries
    /// a profiler.
    pub fn clock_s(&self) -> f64 {
        self.devices
            .iter()
            .filter_map(|d| d.profiler().map(|p| p.now_s()))
            .fold(0.0, f64::max)
    }

    /// Merge per-shard trace snapshots: globals are summed event-wise and
    /// same-named kernels are summed, keeping shard-major first-launch
    /// order. Each input satisfies `kernel_sum() == global`, so the merge
    /// does too.
    pub fn merge_traces(traces: &[TraceSnapshot]) -> TraceSnapshot {
        let mut global = CounterSnapshot::default();
        let mut kernels: Vec<KernelStats> = Vec::new();
        for t in traces {
            global = add_counters(global, t.global);
            for k in &t.kernels {
                match kernels.iter_mut().find(|e| e.name == k.name) {
                    Some(e) => e.counters = add_counters(e.counters, k.counters),
                    None => kernels.push(*k),
                }
            }
        }
        TraceSnapshot { global, kernels }
    }

    /// [`Self::merge_traces`] over every device's live tally.
    pub fn merged_trace(&self) -> TraceSnapshot {
        let traces: Vec<TraceSnapshot> = self.devices.iter().map(|d| d.trace()).collect();
        Self::merge_traces(&traces)
    }

    /// Sanitizer findings from every shard, in shard order, with kernel
    /// names prefixed `shard<i>/` so a merged report still names the
    /// offending device.
    pub fn merged_findings(&self) -> Vec<Finding> {
        let mut out = Vec::new();
        for (i, d) in self.devices.iter().enumerate() {
            for mut f in d.sanitizer_findings() {
                f.kernel = format!("shard{i}/{}", f.kernel);
                if !f.other_kernel.is_empty() {
                    f.other_kernel = format!("shard{i}/{}", f.other_kernel);
                }
                out.push(f);
            }
        }
        out
    }

    /// Merge per-shard metrics registries into one summary list, sorted by
    /// name. Histograms with the same name are merged *bucket-wise*, so the
    /// reported p50/p95 are true quantiles of the union of observations —
    /// identical to what one registry recording every shard's observations
    /// would report. Gauges sum their current values and update counts and
    /// keep the largest high-water mark.
    pub fn merged_metric_summaries(&self) -> Vec<MetricSummary> {
        let mut hists: Vec<(String, HistogramSnapshot)> = Vec::new();
        let mut gauges: Vec<MetricSummary> = Vec::new();
        for d in &self.devices {
            let Some(p) = d.profiler() else { continue };
            for (name, snap) in p.metrics().histograms() {
                match hists.iter_mut().find(|(n, _)| *n == name) {
                    Some((_, h)) => h.merge(&snap),
                    None => hists.push((name, snap)),
                }
            }
            for m in p.metric_summaries() {
                if m.kind != MetricKind::Gauge {
                    continue;
                }
                match gauges.iter_mut().find(|g| g.name == m.name) {
                    Some(g) => {
                        g.count += m.count;
                        g.sum += m.sum;
                        g.max = g.max.max(m.max);
                        g.p50 = g.sum;
                        g.p95 = g.sum;
                        g.p99 = g.sum;
                    }
                    None => gauges.push(m),
                }
            }
        }
        let mut out: Vec<MetricSummary> = hists
            .into_iter()
            .map(|(name, h)| h.summary(name))
            .chain(gauges)
            .collect();
        out.sort_by(|a, b| a.name.cmp(&b.name));
        out
    }

    /// One [`TraceReport`] for the whole group: merged kernels, merged
    /// findings, merged metrics. The report uses the ordinary single-device
    /// schema — it JSON round-trips exactly and old reports still parse.
    pub fn merged_report(&self, model: &CostModel) -> TraceReport {
        TraceReport::new(&self.merged_trace(), model)
            .with_findings(self.merged_findings())
            .with_metrics(self.merged_metric_summaries())
    }

    /// Chrome trace events for every profiled shard, shard `i` under
    /// `pid = base_pid + i` — parallel process rows in the viewer, so
    /// dispatch overlap across shards is directly visible.
    pub fn chrome_events(&self, base_pid: u64) -> Vec<ChromeEvent> {
        let mut out = Vec::new();
        for (i, d) in self.devices.iter().enumerate() {
            if let Some(p) = d.profiler() {
                out.extend(p.chrome_events(base_pid + i as u64));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiler::ProfilerConfig;

    fn group_with_profilers(n: usize) -> DeviceGroup {
        DeviceGroup::new(
            n,
            DeviceConfig::new(1 << 12).with_profiler(ProfilerConfig::default()),
        )
    }

    #[test]
    fn dispatch_returns_results_in_shard_order() {
        let g = DeviceGroup::new(4, DeviceConfig::new(1 << 10));
        let out = g.dispatch(|i, dev| {
            dev.launch_tasks("shard_touch", 32 * (i + 1), |_warp| {});
            i * 10
        });
        assert_eq!(out, vec![0, 10, 20, 30]);
        for (i, d) in g.devices().iter().enumerate() {
            assert_eq!(d.counters().snapshot().warps, (i + 1) as u64);
        }
    }

    #[test]
    fn merged_trace_sums_kernels_by_name_and_keeps_invariant() {
        let g = DeviceGroup::new(3, DeviceConfig::new(1 << 10));
        g.dispatch(|i, dev| {
            dev.launch_tasks("common", 32, |_| {});
            if i == 1 {
                dev.launch_tasks("only_one", 64, |_| {});
            }
        });
        let merged = g.merged_trace();
        assert_eq!(merged.kernel_sum(), merged.global);
        let common = merged
            .kernels
            .iter()
            .find(|k| k.name == "common")
            .expect("common kernel merged");
        assert_eq!(common.counters.launches, 3, "one launch per shard, summed");
        assert!(merged.kernels.iter().any(|k| k.name == "only_one"));
    }

    #[test]
    fn merged_report_roundtrips_json_exactly() {
        let g = group_with_profilers(2);
        g.dispatch(|_, dev| {
            let out = dev.alloc_words(32, 32);
            dev.memset("init", out, 32, 0);
            dev.launch_tasks("edge_insert", 128, move |warp| {
                warp.atomic_add(out, 1);
            })
        });
        let report = g.merged_report(&CostModel::titan_v());
        let parsed = TraceReport::from_json(&report.to_json()).expect("merged report parses");
        assert_eq!(parsed, report);
    }

    #[test]
    fn merged_histograms_are_union_quantiles() {
        let g = group_with_profilers(2);
        // Shard 0 records small values, shard 1 records large ones; the
        // merged p95 must see the large tail a per-shard average would lose.
        let p0 = g.device(0).profiler().unwrap().metrics();
        let p1 = g.device(1).profiler().unwrap().metrics();
        for _ in 0..94 {
            p0.record("probe.depth", 1);
        }
        for _ in 0..6 {
            p1.record("probe.depth", 1024);
        }
        let merged = g.merged_metric_summaries();
        let m = merged.iter().find(|m| m.name == "probe.depth").unwrap();
        assert_eq!(m.count, 100);
        assert_eq!(m.sum, 94 + 6 * 1024);
        assert_eq!(m.p50, 1);
        assert_eq!(m.p95, 1024, "p95 of the union reaches the shard-1 tail");
    }

    #[test]
    fn merged_gauges_sum_values_and_keep_high_water() {
        let g = group_with_profilers(2);
        g.device(0)
            .profiler()
            .unwrap()
            .metrics()
            .gauge("pool")
            .set(7);
        g.device(1)
            .profiler()
            .unwrap()
            .metrics()
            .gauge("pool")
            .set(5);
        let merged = g.merged_metric_summaries();
        let m = merged.iter().find(|m| m.name == "pool").unwrap();
        assert_eq!(m.kind, MetricKind::Gauge);
        assert_eq!(m.sum, 12);
        assert_eq!(m.max, 7);
        assert_eq!(m.p50, 12);
    }

    #[test]
    fn clock_is_makespan_across_shards() {
        let g = group_with_profilers(2);
        g.dispatch(|i, dev| {
            // Shard 1 does 4x the work of shard 0.
            let buf = dev.alloc_words(32, 32);
            dev.memset("init", buf, 32, 0);
            dev.launch_tasks("work", 32 << (2 * i), move |warp| {
                let _ = warp.read_word(buf);
            });
        });
        let clocks: Vec<f64> = g
            .devices()
            .iter()
            .map(|d| d.profiler().unwrap().now_s())
            .collect();
        assert!(clocks[1] > clocks[0]);
        assert_eq!(g.clock_s(), clocks[1], "group clock is the slowest shard");
    }

    #[test]
    fn chrome_events_use_one_pid_per_shard() {
        let g = group_with_profilers(2);
        g.dispatch(|_, dev| dev.launch_tasks("k", 32, |_| {}));
        let events = g.chrome_events(10);
        assert!(!events.is_empty());
        let pids: std::collections::BTreeSet<u64> = events.iter().map(|e| e.pid).collect();
        assert_eq!(pids.into_iter().collect::<Vec<_>>(), vec![10, 11]);
    }

    #[test]
    fn findings_are_prefixed_with_their_shard() {
        use crate::sanitizer::SanitizerConfig;
        let g = DeviceGroup::new(
            2,
            DeviceConfig::new(1 << 10).with_sanitizer(SanitizerConfig::default()),
        );
        // An uninitialized read on shard 1 only.
        let addr = g.device(1).alloc_words(32, 32);
        g.device(1).launch_tasks("bad_read", 1, move |warp| {
            let _ = warp.read_word(addr);
        });
        let findings = g.merged_findings();
        assert!(!findings.is_empty());
        assert!(
            findings.iter().all(|f| f.kernel.starts_with("shard1/")),
            "{findings:?}"
        );
    }
}
