//! Simulated device global memory.
//!
//! A [`DeviceArena`] is a flat, growable address space of `u32` words with
//! word-level atomics — the model of GPU global memory the slab structures
//! run on. Addresses are plain `u32` word indices, so a "device pointer"
//! fits in one lane register exactly as in the paper's CUDA implementation.
//!
//! Growth is lock-free for readers: the arena is a table of lazily
//! allocated fixed-size segments; allocation bumps a cursor and publishes
//! new segments with a CAS. Because slabs are 32-word aligned and segments
//! are a multiple of 32 words, a slab never straddles two segments.

use crate::fault::OomError;
use crate::sanitizer::Sanitizer;
use std::sync::atomic::{AtomicPtr, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;

/// log2 of the segment size in words (2^20 words = 4 MiB per segment).
const SEGMENT_SHIFT: u32 = 20;
/// Words per segment.
pub const SEGMENT_WORDS: usize = 1 << SEGMENT_SHIFT;
/// Maximum number of segments (=> 16 GiB address space, ample for benches).
const MAX_SEGMENTS: usize = 4096;

/// Words per 128-byte slab / cache line.
pub const SLAB_WORDS: usize = 32;

/// A device-memory address: an index into the arena's word space.
pub type Addr = u32;

/// Sentinel for "null device pointer".
pub const NULL_ADDR: Addr = u32::MAX;

/// Growable atomic word arena modelling GPU global memory.
pub struct DeviceArena {
    segments: Box<[AtomicPtr<AtomicU32>]>,
    /// Bump cursor: next free word index.
    cursor: AtomicU64,
    /// Number of words for which segments have been published.
    committed_words: AtomicU64,
    /// Allocation budget in words; `u64::MAX` means unbounded. The budget
    /// models the fixed memory of a physical card: it caps the *cursor*,
    /// not segment commitment, and can be raised at runtime to model a
    /// re-provisioned pool.
    capacity_words: AtomicU64,
    /// Lock serialising segment publication (growth only, never reads).
    grow_lock: parking_lot::Mutex<()>,
    /// Optional shadow-memory sanitizer. At the arena layer every store
    /// path (host or kernel) marks words initialized; access
    /// classification (race/lifetime checks) happens in [`crate::Warp`]'s
    /// accessors, which know the kernel and warp provenance.
    san: Option<Arc<Sanitizer>>,
}

impl DeviceArena {
    /// Create an unbounded arena and pre-commit `initial_words` of backing
    /// store.
    pub fn new(initial_words: usize) -> Self {
        Self::with_capacity(initial_words, u64::MAX)
    }

    /// Create an arena whose allocations may not exceed `capacity_words`
    /// in total (`u64::MAX` for unbounded).
    pub fn with_capacity(initial_words: usize, capacity_words: u64) -> Self {
        let arena = DeviceArena {
            segments: (0..MAX_SEGMENTS)
                .map(|_| AtomicPtr::new(std::ptr::null_mut()))
                .collect::<Vec<_>>()
                .into_boxed_slice(),
            cursor: AtomicU64::new(0),
            committed_words: AtomicU64::new(0),
            capacity_words: AtomicU64::new(capacity_words),
            grow_lock: parking_lot::Mutex::new(()),
            san: None,
        };
        arena.ensure_committed(initial_words as u64);
        arena
    }

    /// Attach a shadow-memory sanitizer (construction-time only; see
    /// [`crate::DeviceConfig`]).
    pub(crate) fn attach_sanitizer(&mut self, san: Arc<Sanitizer>) {
        self.san = Some(san);
    }

    /// The attached sanitizer, if any.
    pub fn sanitizer(&self) -> Option<&Arc<Sanitizer>> {
        self.san.as_ref()
    }

    /// The allocation budget in words (`u64::MAX` when unbounded).
    pub fn capacity_words(&self) -> u64 {
        self.capacity_words.load(Ordering::Relaxed)
    }

    /// Change the allocation budget. Raising it un-blocks future
    /// allocations; lowering it below the current cursor only affects
    /// future allocations (already-handed-out words stay valid).
    pub fn set_capacity_words(&self, capacity_words: u64) {
        self.capacity_words.store(capacity_words, Ordering::Relaxed);
    }

    /// Words handed out so far by [`Self::alloc_words`].
    pub fn allocated_words(&self) -> u64 {
        self.cursor.load(Ordering::Relaxed)
    }

    /// Words of backing store committed (segments published).
    pub fn committed_words(&self) -> u64 {
        self.committed_words.load(Ordering::Acquire)
    }

    /// Commit segments so that word indices `< words` are addressable.
    fn ensure_committed(&self, words: u64) {
        if self.committed_words.load(Ordering::Acquire) >= words {
            return;
        }
        let _g = self.grow_lock.lock();
        let mut committed = self.committed_words.load(Ordering::Acquire);
        while committed < words {
            let seg_idx = (committed >> SEGMENT_SHIFT) as usize;
            assert!(
                seg_idx < MAX_SEGMENTS,
                "DeviceArena exhausted: requested {words} words, max {}",
                MAX_SEGMENTS * SEGMENT_WORDS
            );
            if self.segments[seg_idx].load(Ordering::Acquire).is_null() {
                let seg: Box<[AtomicU32]> = (0..SEGMENT_WORDS).map(|_| AtomicU32::new(0)).collect();
                let ptr = Box::into_raw(seg).cast::<AtomicU32>();
                self.segments[seg_idx].store(ptr, Ordering::Release);
            }
            committed += SEGMENT_WORDS as u64;
        }
        self.committed_words.store(committed, Ordering::Release);
    }

    /// Bump-allocate `n` words aligned to `align` words; returns the base
    /// address. Used for bulk base-slab regions and fixed tables; the slab
    /// allocator builds its pools on top of this.
    ///
    /// Panics if the budget or address space is exhausted; recoverable
    /// paths use [`Self::try_alloc_words`].
    pub fn alloc_words(&self, n: usize, align: usize) -> Addr {
        self.try_alloc_words(n, align)
            .unwrap_or_else(|e| panic!("DeviceArena allocation failed: {e}"))
    }

    /// Fallible bump allocation: returns a typed [`OomError`] when the
    /// request would exceed the capacity budget or the address space,
    /// leaving the cursor untouched.
    pub fn try_alloc_words(&self, n: usize, align: usize) -> Result<Addr, OomError> {
        assert!(align.is_power_of_two(), "alignment must be a power of two");
        let align = align as u64;
        let n = n as u64;
        loop {
            let cur = self.cursor.load(Ordering::Relaxed);
            let base = (cur + align - 1) & !(align - 1);
            let end = base + n;
            if end > (MAX_SEGMENTS * SEGMENT_WORDS) as u64 {
                return Err(OomError::AddressSpace { requested: n });
            }
            let capacity = self.capacity_words.load(Ordering::Relaxed);
            if end > capacity {
                return Err(OomError::Capacity {
                    requested: n,
                    capacity,
                    allocated: cur,
                });
            }
            if self
                .cursor
                .compare_exchange_weak(cur, end, Ordering::Relaxed, Ordering::Relaxed)
                .is_ok()
            {
                self.ensure_committed(end);
                return Ok(base as Addr);
            }
        }
    }

    /// Borrow the atomic word at `addr`.
    #[inline]
    fn word(&self, addr: Addr) -> &AtomicU32 {
        let seg_idx = (addr >> SEGMENT_SHIFT) as usize;
        let off = (addr as usize) & (SEGMENT_WORDS - 1);
        let ptr = self.segments[seg_idx].load(Ordering::Acquire);
        assert!(
            !ptr.is_null(),
            "access to uncommitted device address {addr:#x}"
        );
        // SAFETY: segments are SEGMENT_WORDS long, published once with
        // Release, never freed before the arena drops, and `off` is in
        // bounds by construction.
        unsafe { &*ptr.add(off) }
    }

    /// Relaxed load of one word.
    #[inline]
    pub fn load(&self, addr: Addr) -> u32 {
        self.word(addr).load(Ordering::Acquire)
    }

    /// Store one word.
    #[inline]
    pub fn store(&self, addr: Addr, v: u32) {
        self.word(addr).store(v, Ordering::Release);
        self.mark_init(addr);
    }

    /// Mark `addr` initialized in the sanitizer's shadow (no-op without
    /// an attached sanitizer).
    #[inline]
    fn mark_init(&self, addr: Addr) {
        if let Some(s) = &self.san {
            s.mark_init(addr);
        }
    }

    /// Compare-and-swap one word; returns `Ok(expected)` on success or
    /// `Err(actual)` on failure, like hardware `atomicCAS`.
    #[inline]
    pub fn cas(&self, addr: Addr, expected: u32, new: u32) -> Result<u32, u32> {
        let r =
            self.word(addr)
                .compare_exchange(expected, new, Ordering::AcqRel, Ordering::Acquire);
        if r.is_ok() {
            self.mark_init(addr);
        }
        r
    }

    /// Atomic exchange.
    #[inline]
    pub fn exchange(&self, addr: Addr, v: u32) -> u32 {
        let r = self.word(addr).swap(v, Ordering::AcqRel);
        self.mark_init(addr);
        r
    }

    /// Atomic add; returns the previous value.
    #[inline]
    pub fn fetch_add(&self, addr: Addr, v: u32) -> u32 {
        let r = self.word(addr).fetch_add(v, Ordering::AcqRel);
        self.mark_init(addr);
        r
    }

    /// Atomic sub; returns the previous value.
    #[inline]
    pub fn fetch_sub(&self, addr: Addr, v: u32) -> u32 {
        let r = self.word(addr).fetch_sub(v, Ordering::AcqRel);
        self.mark_init(addr);
        r
    }

    /// Atomic bitwise OR; returns the previous value.
    #[inline]
    pub fn fetch_or(&self, addr: Addr, v: u32) -> u32 {
        let r = self.word(addr).fetch_or(v, Ordering::AcqRel);
        self.mark_init(addr);
        r
    }

    /// Atomic bitwise AND; returns the previous value.
    #[inline]
    pub fn fetch_and(&self, addr: Addr, v: u32) -> u32 {
        let r = self.word(addr).fetch_and(v, Ordering::AcqRel);
        self.mark_init(addr);
        r
    }

    /// Read `SLAB_WORDS` consecutive words starting at the slab-aligned
    /// `base` into an array (one coalesced 128 B read).
    #[inline]
    pub fn load_slab(&self, base: Addr) -> [u32; SLAB_WORDS] {
        debug_assert_eq!(base as usize % SLAB_WORDS, 0, "slab base misaligned");
        std::array::from_fn(|i| self.load(base + i as u32))
    }

    /// Write `SLAB_WORDS` consecutive words (one coalesced 128 B write).
    #[inline]
    pub fn store_slab(&self, base: Addr, words: &[u32; SLAB_WORDS]) {
        debug_assert_eq!(base as usize % SLAB_WORDS, 0, "slab base misaligned");
        for (i, w) in words.iter().enumerate() {
            self.store(base + i as u32, *w);
        }
    }

    /// Zero-fill `n` words from `base` (host-side helper for initialising
    /// freshly allocated regions with a sentinel pattern).
    pub fn fill(&self, base: Addr, n: usize, v: u32) {
        for i in 0..n {
            self.word(base + i as u32).store(v, Ordering::Release);
        }
        if let Some(s) = &self.san {
            s.mark_init_range(base, n);
        }
    }

    /// Wipe the arena back to an empty state: rewind the bump cursor to 0
    /// (freeing the entire capacity budget) and zero every previously
    /// handed-out word. Models a device reset after a fatal fault.
    /// Deliberately bypasses the sanitizer's `mark_init` — a reset device
    /// has *uninitialized* memory, and the caller is expected to also reset
    /// the sanitizer's shadow (see `Sanitizer::reset_shadow`) so initcheck
    /// semantics start fresh. Committed segments stay committed; only the
    /// allocation state is discarded.
    pub fn reset(&self) {
        let _g = self.grow_lock.lock();
        let cur = self.cursor.swap(0, Ordering::SeqCst);
        for addr in 0..cur {
            self.word(addr as Addr).store(0, Ordering::Release);
        }
    }
}

impl Drop for DeviceArena {
    fn drop(&mut self) {
        for seg in self.segments.iter() {
            let ptr = seg.load(Ordering::Acquire);
            if !ptr.is_null() {
                // SAFETY: pointer came from Box::into_raw of a
                // Box<[AtomicU32; SEGMENT_WORDS]>-shaped slice in
                // ensure_committed; reconstitute and drop it. (A boxed
                // slice, unlike a forgotten Vec, carries no capacity
                // assumption to get wrong.)
                unsafe {
                    drop(Box::from_raw(std::ptr::slice_from_raw_parts_mut(
                        ptr,
                        SEGMENT_WORDS,
                    )));
                }
            }
        }
    }
}

// SAFETY: all interior state is atomic or lock-protected.
unsafe impl Send for DeviceArena {}
unsafe impl Sync for DeviceArena {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_is_aligned_and_disjoint() {
        let a = DeviceArena::new(1024);
        let p1 = a.alloc_words(100, 32);
        let p2 = a.alloc_words(100, 32);
        assert_eq!(p1 % 32, 0);
        assert_eq!(p2 % 32, 0);
        assert!(p2 >= p1 + 100);
    }

    #[test]
    fn load_store_roundtrip() {
        let a = DeviceArena::new(1024);
        let p = a.alloc_words(4, 1);
        a.store(p, 0xDEAD_BEEF);
        assert_eq!(a.load(p), 0xDEAD_BEEF);
        assert_eq!(a.load(p + 1), 0);
    }

    #[test]
    fn cas_semantics() {
        let a = DeviceArena::new(64);
        let p = a.alloc_words(1, 1);
        assert_eq!(a.cas(p, 0, 5), Ok(0));
        assert_eq!(a.cas(p, 0, 9), Err(5));
        assert_eq!(a.load(p), 5);
    }

    #[test]
    fn fetch_ops() {
        let a = DeviceArena::new(64);
        let p = a.alloc_words(1, 1);
        assert_eq!(a.fetch_add(p, 3), 0);
        assert_eq!(a.fetch_add(p, 4), 3);
        assert_eq!(a.fetch_sub(p, 2), 7);
        assert_eq!(a.load(p), 5);
        a.store(p, 0b0011);
        assert_eq!(a.fetch_or(p, 0b0100), 0b0011);
        assert_eq!(a.fetch_and(p, 0b0110), 0b0111);
        assert_eq!(a.load(p), 0b0110);
    }

    #[test]
    fn slab_roundtrip() {
        let a = DeviceArena::new(1024);
        let p = a.alloc_words(SLAB_WORDS, SLAB_WORDS);
        let words: [u32; SLAB_WORDS] = std::array::from_fn(|i| i as u32 * 7);
        a.store_slab(p, &words);
        assert_eq!(a.load_slab(p), words);
    }

    #[test]
    fn grows_past_one_segment() {
        let a = DeviceArena::new(64);
        // Allocate more than one 1M-word segment.
        let p = a.alloc_words(SEGMENT_WORDS + 128, 32);
        let last = p + SEGMENT_WORDS as u32 + 100;
        a.store(last, 42);
        assert_eq!(a.load(last), 42);
    }

    #[test]
    fn fill_sets_range() {
        let a = DeviceArena::new(256);
        let p = a.alloc_words(64, 32);
        a.fill(p, 64, u32::MAX);
        for i in 0..64 {
            assert_eq!(a.load(p + i), u32::MAX);
        }
    }

    #[test]
    fn concurrent_fetch_add_is_atomic() {
        let a = std::sync::Arc::new(DeviceArena::new(64));
        let p = a.alloc_words(1, 1);
        std::thread::scope(|s| {
            for _ in 0..4 {
                let a = a.clone();
                s.spawn(move || {
                    for _ in 0..10_000 {
                        a.fetch_add(p, 1);
                    }
                });
            }
        });
        assert_eq!(a.load(p), 40_000);
    }

    #[test]
    fn capacity_bounds_allocation_and_can_be_raised() {
        let a = DeviceArena::with_capacity(64, 100);
        let p = a.try_alloc_words(64, 32).unwrap();
        assert_eq!(p % 32, 0);
        let err = a.try_alloc_words(64, 32).unwrap_err();
        assert_eq!(
            err,
            OomError::Capacity {
                requested: 64,
                capacity: 100,
                allocated: 64
            }
        );
        // A smaller request that fits still succeeds...
        assert!(a.try_alloc_words(30, 1).is_ok());
        // ...and raising the budget unblocks the big one.
        a.set_capacity_words(200);
        assert!(a.try_alloc_words(64, 32).is_ok());
        assert!(a.allocated_words() <= 200);
    }

    #[test]
    fn failed_alloc_leaves_cursor_untouched() {
        let a = DeviceArena::with_capacity(64, 50);
        let before = a.allocated_words();
        assert!(a.try_alloc_words(64, 1).is_err());
        assert_eq!(a.allocated_words(), before);
    }

    #[test]
    #[should_panic(expected = "device memory budget exhausted")]
    fn infallible_alloc_panics_on_budget() {
        let a = DeviceArena::with_capacity(64, 16);
        a.alloc_words(64, 1);
    }

    #[test]
    fn reset_rewinds_cursor_and_zeroes_words() {
        let a = DeviceArena::with_capacity(256, 128);
        let p = a.try_alloc_words(100, 1).unwrap();
        a.fill(p, 100, 0xAB);
        assert!(a.try_alloc_words(100, 1).is_err(), "budget spent");
        a.reset();
        assert_eq!(a.allocated_words(), 0);
        // The full budget is available again and old contents are gone.
        let q = a.try_alloc_words(100, 1).unwrap();
        assert_eq!(a.load(q + 50), 0);
    }

    #[test]
    fn concurrent_alloc_never_overlaps() {
        let a = std::sync::Arc::new(DeviceArena::new(64));
        let mut all: Vec<u32> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let a = a.clone();
                    s.spawn(move || (0..1000).map(|_| a.alloc_words(32, 32)).collect::<Vec<_>>())
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().unwrap())
                .collect()
        });
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 4000);
    }
}
