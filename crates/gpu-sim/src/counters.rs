//! Performance counters: the observable cost of simulated kernels.
//!
//! Real GPU dynamic-graph performance is dominated by global-memory traffic.
//! Every warp-level memory operation in the simulator charges these counters;
//! [`crate::CostModel`] converts a [`CounterSnapshot`] into modeled time.

use std::sync::atomic::{AtomicU64, Ordering};

/// Shared, thread-safe tally of simulated hardware events.
///
/// One instance lives in each [`crate::Device`]; all warps (and all executor
/// threads) charge into it with relaxed atomics.
#[derive(Debug, Default)]
pub struct PerfCounters {
    /// 128-byte global-memory transactions (coalesced slab reads/writes,
    /// plus one per distinct 128 B segment for scattered lane accesses).
    pub transactions: AtomicU64,
    /// Word-level atomic operations (CAS, exchange, fetch-add).
    pub atomics: AtomicU64,
    /// Warp ballot instructions executed.
    pub ballots: AtomicU64,
    /// Warp shuffle instructions executed.
    pub shuffles: AtomicU64,
    /// Kernel launches.
    pub launches: AtomicU64,
    /// Warps executed across all launches.
    pub warps: AtomicU64,
    /// Words allocated from the device arena (bump + slab allocator).
    pub words_allocated: AtomicU64,
}

impl PerfCounters {
    /// Fresh, zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    pub fn add_transactions(&self, n: u64) {
        self.transactions.fetch_add(n, Ordering::Relaxed);
    }

    #[inline]
    pub fn add_atomics(&self, n: u64) {
        self.atomics.fetch_add(n, Ordering::Relaxed);
    }

    #[inline]
    pub fn add_ballots(&self, n: u64) {
        self.ballots.fetch_add(n, Ordering::Relaxed);
    }

    #[inline]
    pub fn add_shuffles(&self, n: u64) {
        self.shuffles.fetch_add(n, Ordering::Relaxed);
    }

    #[inline]
    pub fn add_launches(&self, n: u64) {
        self.launches.fetch_add(n, Ordering::Relaxed);
    }

    #[inline]
    pub fn add_warps(&self, n: u64) {
        self.warps.fetch_add(n, Ordering::Relaxed);
    }

    #[inline]
    pub fn add_words_allocated(&self, n: u64) {
        self.words_allocated.fetch_add(n, Ordering::Relaxed);
    }

    /// Capture the current totals.
    pub fn snapshot(&self) -> CounterSnapshot {
        CounterSnapshot {
            transactions: self.transactions.load(Ordering::Relaxed),
            atomics: self.atomics.load(Ordering::Relaxed),
            ballots: self.ballots.load(Ordering::Relaxed),
            shuffles: self.shuffles.load(Ordering::Relaxed),
            launches: self.launches.load(Ordering::Relaxed),
            warps: self.warps.load(Ordering::Relaxed),
            words_allocated: self.words_allocated.load(Ordering::Relaxed),
        }
    }

    /// Reset every counter to zero (used between benchmark phases).
    pub fn reset(&self) {
        self.transactions.store(0, Ordering::Relaxed);
        self.atomics.store(0, Ordering::Relaxed);
        self.ballots.store(0, Ordering::Relaxed);
        self.shuffles.store(0, Ordering::Relaxed);
        self.launches.store(0, Ordering::Relaxed);
        self.warps.store(0, Ordering::Relaxed);
        self.words_allocated.store(0, Ordering::Relaxed);
    }
}

/// An immutable point-in-time copy of [`PerfCounters`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CounterSnapshot {
    pub transactions: u64,
    pub atomics: u64,
    pub ballots: u64,
    pub shuffles: u64,
    pub launches: u64,
    pub warps: u64,
    pub words_allocated: u64,
}

impl CounterSnapshot {
    /// Event-wise difference `self - earlier`, saturating at zero.
    ///
    /// The usual pattern is `let before = dev.counters().snapshot(); …;
    /// let cost = dev.counters().snapshot().delta(&before)`.
    pub fn delta(&self, earlier: &CounterSnapshot) -> CounterSnapshot {
        CounterSnapshot {
            transactions: self.transactions.saturating_sub(earlier.transactions),
            atomics: self.atomics.saturating_sub(earlier.atomics),
            ballots: self.ballots.saturating_sub(earlier.ballots),
            shuffles: self.shuffles.saturating_sub(earlier.shuffles),
            launches: self.launches.saturating_sub(earlier.launches),
            warps: self.warps.saturating_sub(earlier.warps),
            words_allocated: self.words_allocated.saturating_sub(earlier.words_allocated),
        }
    }

    /// Total bytes moved through simulated global memory.
    pub fn bytes_moved(&self) -> u64 {
        self.transactions * crate::cost::TRANSACTION_BYTES as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let c = PerfCounters::new();
        c.add_transactions(3);
        c.add_transactions(4);
        c.add_atomics(2);
        c.add_ballots(1);
        let s = c.snapshot();
        assert_eq!(s.transactions, 7);
        assert_eq!(s.atomics, 2);
        assert_eq!(s.ballots, 1);
        assert_eq!(s.shuffles, 0);
    }

    #[test]
    fn reset_zeroes_everything() {
        let c = PerfCounters::new();
        c.add_transactions(10);
        c.add_launches(2);
        c.reset();
        assert_eq!(c.snapshot(), CounterSnapshot::default());
    }

    #[test]
    fn delta_subtracts() {
        let c = PerfCounters::new();
        c.add_transactions(5);
        let before = c.snapshot();
        c.add_transactions(7);
        c.add_atomics(1);
        let d = c.snapshot().delta(&before);
        assert_eq!(d.transactions, 7);
        assert_eq!(d.atomics, 1);
    }

    #[test]
    fn delta_saturates() {
        let a = CounterSnapshot {
            transactions: 1,
            ..Default::default()
        };
        let b = CounterSnapshot {
            transactions: 5,
            ..Default::default()
        };
        assert_eq!(a.delta(&b).transactions, 0);
    }

    #[test]
    fn bytes_moved_uses_transaction_size() {
        let s = CounterSnapshot {
            transactions: 4,
            ..Default::default()
        };
        assert_eq!(s.bytes_moved(), 4 * 128);
    }

    #[test]
    fn counters_are_thread_safe() {
        let c = std::sync::Arc::new(PerfCounters::new());
        std::thread::scope(|s| {
            for _ in 0..4 {
                let c = c.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        c.add_transactions(1);
                    }
                });
            }
        });
        assert_eq!(c.snapshot().transactions, 4000);
    }
}
