//! The simulated device: memory + counters + named kernel launch.
//!
//! Kernels are *warp-centric closures*: the executor hands each [`Warp`] a
//! context exposing warp intrinsics and memory operations, all of which
//! charge [`PerfCounters`]. Both a deterministic sequential executor and a
//! multi-threaded executor (std scoped threads) are provided; the paper's
//! operations are phase-concurrent, so either executor must produce the
//! same final data-structure state — property tests in the graph crates
//! assert exactly that.
//!
//! Every launch carries a [`KernelSpec`] naming the kernel, and every
//! charged event is tallied twice: into the device-wide counters and into
//! the named kernel's entry in the device's [`KernelRegistry`]. See
//! [`crate::trace`] for the attribution model and reporting.

use crate::counters::PerfCounters;
use crate::fault::{FaultInjector, FaultPlan, OomError};
use crate::lanes::{self, Lanes, FULL_MASK, WARP_SIZE};
use crate::memory::{Addr, DeviceArena, SLAB_WORDS};
use crate::profiler::{PhaseGuard, Profiler, ProfilerConfig, TraceCtx, TraceScope};
use crate::sanitizer::{AccessKind, Finding, Sanitizer, SanitizerConfig, WarpRace};
use crate::trace::{Charge, KernelRegistry, KernelSpec, LaunchShape, TraceSnapshot, HOST_KERNEL};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// How kernels are executed on the host.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecPolicy {
    /// Run warps one at a time in warp-id order. Deterministic; the default.
    Sequential,
    /// Run warps on `n` host threads. Non-deterministic interleaving;
    /// used to validate phase-concurrency.
    Threaded(usize),
}

/// Construction-time device parameters: committed memory, an optional
/// allocation budget, and the execution policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeviceConfig {
    /// Words of global memory to pre-commit.
    pub initial_words: usize,
    /// Total allocation budget in words; `None` means unbounded (the
    /// pre-existing behaviour). Models a card's fixed memory: allocations
    /// past the budget fail with [`OomError::Capacity`].
    pub capacity_words: Option<u64>,
    /// How launched kernels are executed.
    pub policy: ExecPolicy,
    /// Optional shadow-memory sanitizer (see [`crate::sanitizer`]).
    /// `None` (the default) costs one `Option` check per memory access
    /// and charges nothing either way. Building with the `sanitize`
    /// cargo feature flips the default to an escalating sanitizer, so an
    /// unmodified test suite runs fully sanitized.
    pub sanitize: Option<SanitizerConfig>,
    /// Optional timeline profiler + metrics registry (see
    /// [`crate::profiler`]). Same discipline as the sanitizer: `None`
    /// (the default) costs one `Option` check per hook, and counters are
    /// byte-identical whether it is attached or not. The default picks up
    /// the process-wide config, if any, installed via
    /// [`crate::profiler::set_default_profiler`].
    pub profile: Option<ProfilerConfig>,
}

impl Default for DeviceConfig {
    fn default() -> Self {
        DeviceConfig {
            initial_words: 1 << 20,
            capacity_words: None,
            policy: ExecPolicy::Sequential,
            sanitize: if cfg!(feature = "sanitize") {
                Some(SanitizerConfig::default().with_escalation(true))
            } else {
                None
            },
            profile: crate::profiler::default_profiler(),
        }
    }
}

impl DeviceConfig {
    /// Config with `initial_words` committed, unbounded, sequential.
    pub fn new(initial_words: usize) -> Self {
        DeviceConfig {
            initial_words,
            ..Default::default()
        }
    }

    /// Set the allocation budget in words.
    pub fn with_capacity_words(mut self, capacity_words: u64) -> Self {
        self.capacity_words = Some(capacity_words);
        self
    }

    /// Set the execution policy.
    pub fn with_exec_policy(mut self, policy: ExecPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Attach a shadow-memory sanitizer with the given configuration.
    pub fn with_sanitizer(mut self, sanitize: SanitizerConfig) -> Self {
        self.sanitize = Some(sanitize);
        self
    }

    /// Attach a timeline profiler with the given configuration.
    pub fn with_profiler(mut self, profile: ProfilerConfig) -> Self {
        self.profile = Some(profile);
        self
    }
}

/// A simulated GPU: global-memory arena, performance counters (global and
/// per-kernel), and an execution policy for launched kernels.
pub struct Device {
    arena: DeviceArena,
    counters: PerfCounters,
    policy: ExecPolicy,
    registry: KernelRegistry,
    /// Stack of active kernel/scope names. The *outermost* name owns all
    /// charges issued while the stack is non-empty, and only the outermost
    /// entry charges a launch: host-side helpers that are conceptually one
    /// fused kernel (e.g. a triangle-counting pass built from many small
    /// launches) wrap themselves in [`Device::fused_scope`]. Pushes and
    /// pops happen only on the host thread (launches are serial); worker
    /// threads never mutate it.
    scope: parking_lot::Mutex<Vec<&'static str>>,
    /// Deterministic fault-injection state, consulted by fallible
    /// allocation paths via [`Device::fault_check`].
    faults: FaultInjector,
    /// Optional shadow-memory sanitizer (also attached to the arena for
    /// initialization tracking).
    san: Option<Arc<Sanitizer>>,
    /// Optional timeline profiler + metrics registry. Every *top-level*
    /// attribution unit (launch / fused scope / memset / manual charge)
    /// deltas the global counters around itself and records one span; the
    /// scope stack guarantees units never overlap, so span durations
    /// partition the run's modeled time.
    prof: Option<Arc<Profiler>>,
    /// Global launch counter. Every launch fully joins its warps before
    /// returning, so each launch is a barrier and opens a new *era*: the
    /// sanitizer's racecheck only considers same-era accesses, and the
    /// slab allocator's quarantine holds freed slabs until the era
    /// advances.
    era: AtomicU64,
}

impl Device {
    /// Create a device with `initial_words` of committed global memory and
    /// the sequential execution policy.
    pub fn new(initial_words: usize) -> Self {
        Self::with_policy(initial_words, ExecPolicy::Sequential)
    }

    /// Create a device with an explicit execution policy.
    pub fn with_policy(initial_words: usize, policy: ExecPolicy) -> Self {
        Self::with_config(DeviceConfig::new(initial_words).with_exec_policy(policy))
    }

    /// Create a device from a full [`DeviceConfig`].
    pub fn with_config(config: DeviceConfig) -> Self {
        let san = config.sanitize.map(|cfg| Arc::new(Sanitizer::new(cfg)));
        let mut arena = DeviceArena::with_capacity(
            config.initial_words,
            config.capacity_words.unwrap_or(u64::MAX),
        );
        if let Some(s) = &san {
            arena.attach_sanitizer(s.clone());
        }
        Device {
            arena,
            counters: PerfCounters::new(),
            policy: config.policy,
            registry: KernelRegistry::new(),
            scope: parking_lot::Mutex::new(Vec::new()),
            faults: FaultInjector::default(),
            san,
            prof: config.profile.map(|cfg| Arc::new(Profiler::new(cfg))),
            era: AtomicU64::new(0),
        }
    }

    /// The attached shadow-memory sanitizer, if this device was built
    /// with one.
    pub fn sanitizer(&self) -> Option<&Arc<Sanitizer>> {
        self.san.as_ref()
    }

    /// The attached timeline profiler, if this device was built with one.
    pub fn profiler(&self) -> Option<&Arc<Profiler>> {
        self.prof.as_ref()
    }

    /// Open a named host-phase range on the profiler's modeled clock;
    /// the returned guard closes it on drop. Inert (one `Option` check)
    /// when no profiler is attached. Bind the guard — a discarded guard
    /// closes the phase immediately.
    pub fn phase(&self, name: &'static str) -> PhaseGuard {
        PhaseGuard {
            inner: self.prof.as_ref().map(|p| (p.clone(), name, p.now_s())),
        }
    }

    /// Install a causal [`TraceCtx`] for the returned scope's lifetime:
    /// every span and instant the profiler records while it is live is
    /// stamped with the context, so coalesced dispatch work can be walked
    /// back to the client op that caused it. Inert (one `Option` check)
    /// when no profiler is attached. Bind the scope — a discarded scope
    /// uninstalls immediately.
    pub fn trace_scope(&self, ctx: TraceCtx) -> TraceScope {
        TraceScope::new(self.prof.clone(), ctx)
    }

    /// Snapshot the global counters iff a span must be recorded when the
    /// unit completes: only top-level units on a profiled device record.
    #[inline]
    fn begin_unit(&self, top_level: bool) -> Option<crate::counters::CounterSnapshot> {
        if top_level && self.prof.is_some() {
            Some(self.counters.snapshot())
        } else {
            None
        }
    }

    /// Close a unit opened by [`Self::begin_unit`].
    #[inline]
    fn end_unit(&self, name: &'static str, before: Option<crate::counters::CounterSnapshot>) {
        if let (Some(before), Some(p)) = (before, &self.prof) {
            p.record_span(name, self.counters.snapshot().delta(&before));
        }
    }

    /// The sanitizer's findings (empty when no sanitizer is attached).
    pub fn sanitizer_findings(&self) -> Vec<Finding> {
        self.san.as_ref().map(|s| s.findings()).unwrap_or_default()
    }

    /// The global launch counter; each completed launch is a barrier.
    pub fn launch_era(&self) -> u64 {
        self.era.load(Ordering::Relaxed)
    }

    /// Explicitly advance the era without launching — the *release* edge
    /// of era publication. Batched mutation paths call this at batch
    /// boundaries so slabs freed during the batch become reclaimable as
    /// soon as every reader pinned before the bump drops its guard,
    /// without waiting for an unrelated launch to move the clock.
    /// Uncharged: era bookkeeping is not simulated device work.
    pub fn advance_era(&self) -> u64 {
        self.era.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Change the execution policy (between phases).
    pub fn set_policy(&mut self, policy: ExecPolicy) {
        self.policy = policy;
    }

    /// The global-memory arena (host-side, uncharged access — use for
    /// setup/teardown and verification, not inside measured phases).
    pub fn arena(&self) -> &DeviceArena {
        &self.arena
    }

    /// The device-wide performance counters.
    pub fn counters(&self) -> &PerfCounters {
        &self.counters
    }

    /// Snapshot the global tally plus every kernel's tally. Delta two of
    /// these around a phase and feed the result to
    /// [`crate::trace::TraceReport`] for a per-kernel breakdown.
    pub fn trace(&self) -> TraceSnapshot {
        TraceSnapshot {
            global: self.counters.snapshot(),
            kernels: self.registry.snapshot(),
        }
    }

    /// Resolve the attribution target for a charge issued under `fallback`:
    /// the outermost active scope name if any, else `fallback`. The bool is
    /// `true` when no scope is active (i.e. this charge is top-level and
    /// launch-like events should be counted).
    fn resolve(&self, fallback: &'static str) -> (&'static str, bool) {
        match self.scope.lock().first() {
            Some(outer) => (outer, false),
            None => (fallback, true),
        }
    }

    /// A dual-charging handle for manual charge sites (baseline cost
    /// models, resize bookkeeping): every `add_*` call lands in both the
    /// global tally and the named kernel's tally. If a fused scope is
    /// active its name wins over `name`. A *top-level* handle on a
    /// profiled device additionally tallies its own charges and records
    /// them as timeline spans on drop (charges issued inside a scope are
    /// already covered by the enclosing unit's span).
    pub fn charge(&self, name: &'static str) -> Charge<'_> {
        let (name, top_level) = self.resolve(name);
        Charge {
            global: &self.counters,
            kernel: self.registry.counters(name),
            prof: if top_level {
                self.prof.clone().map(|p| (p, name))
            } else {
                None
            },
            tally: std::cell::Cell::new(crate::counters::CounterSnapshot::default()),
        }
    }

    /// Launch a named kernel.
    ///
    /// The closure runs once per warp; `warp.global_ids()` gives the 32
    /// task ids and `warp.active_mask()` has a bit per in-range task.
    /// Charges one launch (unless inside a [`Device::fused_scope`], whose
    /// name then also owns the charges) plus one warp per warp, and makes
    /// the kernel's name the attribution target for everything charged
    /// during the launch — including host-side `memset`/`alloc_words`
    /// issued from inside the kernel closure.
    pub fn launch<F>(&self, spec: KernelSpec, kernel: F)
    where
        F: Fn(&mut Warp) + Sync,
    {
        let (n_warps, n_tasks) = match spec.shape {
            LaunchShape::Tasks(n) => (n.div_ceil(WARP_SIZE), n as u64),
            LaunchShape::Warps(n) => (n, u64::MAX),
        };
        let (name, top_level) = self.resolve(spec.name);
        let kcounters = self.registry.counters(name);
        let unit = self.begin_unit(top_level);
        if top_level {
            self.counters.add_launches(1);
            kcounters.add_launches(1);
        }
        self.counters.add_warps(n_warps as u64);
        kcounters.add_warps(n_warps as u64);
        let era = self.era.fetch_add(1, Ordering::Relaxed) + 1;
        if n_warps == 0 {
            // Still one charged launch — the span must exist for the
            // span-per-launch accounting to hold.
            self.end_unit(name, unit);
            return;
        }
        self.scope.lock().push(spec.name);
        let _scope = ScopeGuard { scope: &self.scope };
        let run_warp = |warp_id: usize| {
            let base = (warp_id * WARP_SIZE) as u64;
            let active_mask = if n_tasks == u64::MAX {
                FULL_MASK
            } else {
                let remaining = n_tasks.saturating_sub(base).min(WARP_SIZE as u64) as u32;
                if remaining == 0 {
                    0
                } else if remaining == 32 {
                    FULL_MASK
                } else {
                    (1u32 << remaining) - 1
                }
            };
            let mut warp = Warp {
                device: self,
                warp_id: warp_id as u32,
                active_mask,
                name: spec.name,
                kernel: kcounters.clone(),
                attempts: std::cell::RefCell::new(Vec::new()),
                race: self
                    .san
                    .as_ref()
                    .map(|_| std::cell::RefCell::new(WarpRace::new(era, warp_id as u32))),
            };
            kernel(&mut warp);
        };
        match self.policy {
            ExecPolicy::Sequential => {
                for w in 0..n_warps {
                    run_warp(w);
                }
            }
            ExecPolicy::Threaded(threads) => {
                let threads = threads.max(1);
                let next = std::sync::atomic::AtomicUsize::new(0);
                std::thread::scope(|s| {
                    for _ in 0..threads {
                        s.spawn(|| loop {
                            let w = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                            if w >= n_warps {
                                break;
                            }
                            run_warp(w);
                        });
                    }
                });
            }
        }
        if let Some(s) = &self.san {
            s.escalate_after_launch();
        }
        self.end_unit(name, unit);
    }

    /// Launch a named kernel with one *thread* (lane) per task, grouped
    /// into warps of 32 — the Warp Cooperative Work Sharing launch shape.
    pub fn launch_tasks<F>(&self, name: &'static str, n_tasks: usize, kernel: F)
    where
        F: Fn(&mut Warp) + Sync,
    {
        self.launch(KernelSpec::tasks(name, n_tasks), kernel);
    }

    /// Launch a named kernel with exactly `n_warps` warps, all 32 lanes
    /// active (warp-per-work-item kernels that pull work from a device
    /// queue, e.g. the paper's vertex-deletion Algorithm 2).
    pub fn launch_warps<F>(&self, name: &'static str, n_warps: usize, kernel: F)
    where
        F: Fn(&mut Warp) + Sync,
    {
        self.launch(KernelSpec::warps(name, n_warps), kernel);
    }

    /// Run `body` as a *fused section*: one logical kernel built from many
    /// helper launches. Charges a single launch under `name` (unless nested
    /// inside another scope, whose name then wins) and attributes every
    /// charge issued inside `body` — helper launches, memsets, allocations
    /// — to the outermost scope's name. Inner launches charge warps but no
    /// launches of their own.
    pub fn fused_scope<R>(&self, name: &'static str, body: impl FnOnce() -> R) -> R {
        let (eff, top_level) = self.resolve(name);
        let unit = self.begin_unit(top_level);
        if top_level {
            let kcounters = self.registry.counters(eff);
            self.counters.add_launches(1);
            kcounters.add_launches(1);
        }
        self.scope.lock().push(name);
        let _scope = ScopeGuard { scope: &self.scope };
        let r = body();
        self.end_unit(eff, unit);
        r
    }

    /// Like [`Self::fused_scope`] but charges **no** launch of its own:
    /// for charged helper walks that are logically part of whatever kernel
    /// or measurement the caller is running. Attribution still goes to
    /// `name` (or the enclosing scope's name, if any). On a profiled
    /// device a *top-level* unlaunched scope records its counter delta as
    /// a host span (launch-free cost must still advance the modeled
    /// clock); nested scopes are covered by the enclosing unit's span.
    pub fn unlaunched_scope<R>(&self, name: &'static str, body: impl FnOnce() -> R) -> R {
        let (eff, top_level) = self.resolve(name);
        let before = if top_level && self.prof.is_some() {
            Some(self.counters.snapshot())
        } else {
            None
        };
        self.scope.lock().push(name);
        let r = {
            let _scope = ScopeGuard { scope: &self.scope };
            body()
        };
        if let (Some(before), Some(p)) = (before, &self.prof) {
            let delta = self.counters.snapshot().delta(&before);
            if delta != crate::counters::CounterSnapshot::default() {
                p.record_host_span(eff, delta);
            }
        }
        r
    }

    /// Device-side memset: fills `n` words with `v`, charged as a
    /// coalesced kernel (`⌈n/32⌉` transactions + 1 launch) under `name`
    /// (or the active scope/launch name, if any). Used to initialise slab
    /// regions to the EMPTY sentinel inside measured build phases.
    pub fn memset(&self, name: &'static str, base: Addr, n: usize, v: u32) {
        let (name, top_level) = self.resolve(name);
        let kcounters = self.registry.counters(name);
        let unit = self.begin_unit(top_level);
        if top_level {
            self.counters.add_launches(1);
            kcounters.add_launches(1);
        }
        let tx = (n as u64).div_ceil(SLAB_WORDS as u64);
        self.counters.add_transactions(tx);
        kcounters.add_transactions(tx);
        self.arena.fill(base, n, v);
        self.end_unit(name, unit);
    }

    /// Allocate `n` words (aligned to `align`) from the arena, charging
    /// the allocation counter — to the active scope/launch if any, else to
    /// the reserved [`HOST_KERNEL`] bucket.
    ///
    /// Infallible: panics if the capacity budget or address space is
    /// exhausted. Host-side setup uses this; recoverable paths use
    /// [`Self::try_alloc_words`]. Never consults the fault plan.
    pub fn alloc_words(&self, n: usize, align: usize) -> Addr {
        self.try_alloc_words(n, align)
            .unwrap_or_else(|e| panic!("device allocation failed: {e}"))
    }

    /// Fallible arena allocation: returns a typed [`OomError`] when the
    /// capacity budget (or address space) is exhausted. Charges the
    /// allocation counter only on success; does *not* consult the fault
    /// plan (injection targets slab acquisition — see
    /// [`Self::fault_check`]).
    pub fn try_alloc_words(&self, n: usize, align: usize) -> Result<Addr, OomError> {
        let addr = match self.arena.try_alloc_words(n, align) {
            Ok(addr) => addr,
            Err(e) => {
                if let Some(p) = &self.prof {
                    p.instant("oom", format!("arena alloc of {n} words failed: {e}"));
                }
                return Err(e);
            }
        };
        let (name, _) = self.resolve(HOST_KERNEL);
        self.counters.add_words_allocated(n as u64);
        self.registry.counters(name).add_words_allocated(n as u64);
        Ok(addr)
    }

    /// The allocation budget in words (`u64::MAX` when unbounded).
    pub fn capacity_words(&self) -> u64 {
        self.arena.capacity_words()
    }

    /// Change the allocation budget at runtime (e.g. to model growing the
    /// pool after a recoverable OOM).
    pub fn set_capacity_words(&self, capacity_words: u64) {
        self.arena.set_capacity_words(capacity_words);
    }

    /// Install a deterministic [`FaultPlan`]; resets the plan's allocation
    /// index so schedules are reproducible from this point.
    pub fn set_fault_plan(&self, plan: FaultPlan) {
        self.faults.set_plan(plan);
    }

    /// Remove any installed fault plan.
    pub fn clear_fault_plan(&self) {
        self.faults.clear_plan();
    }

    /// The currently installed fault plan, if any.
    pub fn fault_plan(&self) -> Option<FaultPlan> {
        self.faults.plan()
    }

    /// Total allocation failures injected by fault plans on this device.
    pub fn injected_faults(&self) -> u64 {
        self.faults.injected()
    }

    /// Consult the installed fault plan at a fallible allocation site:
    /// consumes one allocation index and returns the injected failure if
    /// the plan schedules one. Uncharged (bookkeeping, not simulated
    /// work), so counter attribution is identical with and without a plan.
    pub fn fault_check(&self) -> Result<(), OomError> {
        if self.faults.plan().is_none() {
            return Ok(());
        }
        let kernel = self.scope.lock().first().copied();
        let r = self.faults.check(kernel);
        if let (Err(e), Some(p)) = (&r, &self.prof) {
            p.instant("fault_injected", e.to_string());
        }
        r
    }

    /// Admit a batch of launches against the device-level fault plan.
    /// Dispatchers call this *before* touching the device; a lost device
    /// fails every admission until [`Self::reset`], a transient plan fails
    /// a bounded run of admissions and then heals. Uncharged, like
    /// [`Self::fault_check`] — admission is bookkeeping, not device work.
    pub fn launch_check(&self) -> Result<(), crate::fault::DeviceFault> {
        let r = self.faults.check_launch();
        if let (Err(e), Some(p)) = (&r, &self.prof) {
            p.instant("device_fault", e.to_string());
        }
        r
    }

    /// Whether the device is currently lost (a terminal
    /// [`crate::fault::DeviceFault::Lost`] tripped and no reset has
    /// happened since).
    pub fn is_lost(&self) -> bool {
        self.faults.is_lost()
    }

    /// Total device faults surfaced at launch admission on this device.
    pub fn device_faults(&self) -> u64 {
        self.faults.device_faults()
    }

    /// Recover a lost device: wipe the arena back to an empty, zeroed
    /// state (freeing the whole capacity budget), reset the sanitizer's
    /// shadow state (accumulated findings survive — a reset must not erase
    /// evidence), and clear the lost latch plus any fault plans. Counters
    /// and the kernel registry are *cumulative* and keep their tallies, so
    /// rebuild work after a reset stays visible in traces. The caller is
    /// responsible for rebuilding whatever structures lived in the arena.
    pub fn reset(&self) {
        self.arena.reset();
        if let Some(s) = &self.san {
            s.reset_shadow();
        }
        self.faults.reset_device();
        if let Some(p) = &self.prof {
            p.instant("device_reset", String::new());
        }
    }
}

/// Pops the scope stack on exit, including panic unwinds (kernels panic in
/// invariant-violation tests; the stack must stay balanced).
struct ScopeGuard<'a> {
    scope: &'a parking_lot::Mutex<Vec<&'static str>>,
}

impl Drop for ScopeGuard<'_> {
    fn drop(&mut self) {
        self.scope.lock().pop();
    }
}

/// Per-warp execution context handed to kernels.
///
/// All memory operations and intrinsics on this type charge the device's
/// [`PerfCounters`] and the owning kernel's per-name counters; pure helpers
/// live in [`crate::lanes`].
pub struct Warp<'d> {
    device: &'d Device,
    warp_id: u32,
    active_mask: u32,
    /// The launched kernel's own name (innermost, not the fused-scope
    /// attribution target) — sanitizer findings carry it as provenance.
    name: &'static str,
    /// The counters of the kernel this warp belongs to (resolved at
    /// launch, so charging from worker threads never touches the registry).
    kernel: Arc<PerfCounters>,
    /// Stack of in-flight speculative attempts (see [`Self::begin_attempt`]).
    /// Charges land in the innermost open attempt instead of the counters;
    /// a `Warp` never crosses threads, so `RefCell` suffices.
    attempts: std::cell::RefCell<Vec<AttemptTally>>,
    /// Racecheck vector-clock state, present iff a sanitizer is attached.
    race: Option<std::cell::RefCell<WarpRace>>,
}

/// Charges buffered for one speculative attempt.
#[derive(Default, Clone, Copy)]
struct AttemptTally {
    transactions: u64,
    atomics: u64,
    ballots: u64,
    shuffles: u64,
}

impl<'d> Warp<'d> {
    /// This warp's id within the launch.
    #[inline]
    pub fn warp_id(&self) -> u32 {
        self.warp_id
    }

    /// Bit *i* set iff lane *i* has an in-range task.
    #[inline]
    pub fn active_mask(&self) -> u32 {
        self.active_mask
    }

    /// Whether `lane` is active in this launch.
    #[inline]
    pub fn is_active(&self, lane: usize) -> bool {
        self.active_mask & (1 << lane) != 0
    }

    /// Global thread (task) ids for each lane.
    #[inline]
    pub fn global_ids(&self) -> Lanes<u32> {
        let base = self.warp_id * WARP_SIZE as u32;
        Lanes::from_fn(|i| base + i as u32)
    }

    /// The owning device (for nested structures needing raw access).
    #[inline]
    pub fn device(&self) -> &'d Device {
        self.device
    }

    /// The name of the kernel this warp is executing (the launch's own
    /// name, even inside a fused scope).
    #[inline]
    pub fn kernel_name(&self) -> &'static str {
        self.name
    }

    /// Hand a contiguous access to the sanitizer, if one is attached.
    /// Never charges; a single `Option` check when sanitizing is off.
    #[inline]
    fn san_access(&self, base: Addr, len: u32, kind: AccessKind) {
        if let (Some(s), Some(r)) = (&self.device.san, &self.race) {
            s.on_warp_access(
                &mut r.borrow_mut(),
                self.warp_id,
                self.name,
                base,
                len,
                kind,
                self.device.arena.allocated_words(),
            );
        }
    }

    /// Sanitize a masked scattered access, word by word.
    fn san_lanes(&self, addrs: &Lanes<Addr>, mask: u32, kind: AccessKind) {
        if self.device.san.is_none() {
            return;
        }
        for i in 0..WARP_SIZE {
            if mask & (1 << i) != 0 {
                self.san_access(addrs.0[i], 1, kind);
            }
        }
    }

    #[inline]
    fn charge_transactions(&self, n: u64) {
        if let Some(t) = self.attempts.borrow_mut().last_mut() {
            t.transactions += n;
            return;
        }
        self.device.counters.add_transactions(n);
        self.kernel.add_transactions(n);
    }

    #[inline]
    fn charge_atomics(&self, n: u64) {
        if let Some(t) = self.attempts.borrow_mut().last_mut() {
            t.atomics += n;
            return;
        }
        self.device.counters.add_atomics(n);
        self.kernel.add_atomics(n);
    }

    #[inline]
    fn charge_ballots(&self, n: u64) {
        if let Some(t) = self.attempts.borrow_mut().last_mut() {
            t.ballots += n;
            return;
        }
        self.device.counters.add_ballots(n);
        self.kernel.add_ballots(n);
    }

    #[inline]
    fn charge_shuffles(&self, n: u64) {
        if let Some(t) = self.attempts.borrow_mut().last_mut() {
            t.shuffles += n;
            return;
        }
        self.device.counters.add_shuffles(n);
        self.kernel.add_shuffles(n);
    }

    // ---- speculative attempt charging ----
    //
    // Lock-free retry loops (slab claims, link CAS races, descriptor
    // installs) re-execute reads/ballots when a CAS loses a race. How
    // often that happens depends on the executor's interleaving, so
    // charging per *physical* retry makes per-kernel profiles
    // executor-dependent. Retry sites instead wrap each attempt in
    // `begin_attempt`/`commit_attempt` and call `abort_attempt` on the
    // contention-induced path, charging per *logical* probe step: the
    // committed charges are exactly what a sequential executor — where
    // losers simply run after winners — would have charged.

    /// Open a speculative attempt: subsequent charges on this warp are
    /// buffered until [`Self::commit_attempt`] or [`Self::abort_attempt`].
    /// Attempts nest; charges commit into the enclosing attempt first.
    pub fn begin_attempt(&self) {
        self.attempts.borrow_mut().push(AttemptTally::default());
    }

    /// Commit the innermost attempt: merge its buffered charges into the
    /// enclosing attempt, or into the real counters if none is open.
    pub fn commit_attempt(&self) {
        let t = {
            let mut stack = self.attempts.borrow_mut();
            let t = stack.pop().expect("commit_attempt without begin_attempt");
            if let Some(parent) = stack.last_mut() {
                parent.transactions += t.transactions;
                parent.atomics += t.atomics;
                parent.ballots += t.ballots;
                parent.shuffles += t.shuffles;
                return;
            }
            t
        };
        if t.transactions > 0 {
            self.device.counters.add_transactions(t.transactions);
            self.kernel.add_transactions(t.transactions);
        }
        if t.atomics > 0 {
            self.device.counters.add_atomics(t.atomics);
            self.kernel.add_atomics(t.atomics);
        }
        if t.ballots > 0 {
            self.device.counters.add_ballots(t.ballots);
            self.kernel.add_ballots(t.ballots);
        }
        if t.shuffles > 0 {
            self.device.counters.add_shuffles(t.shuffles);
            self.kernel.add_shuffles(t.shuffles);
        }
    }

    /// Discard the innermost attempt's buffered charges (the attempt was
    /// voided by a lost race and will be re-executed).
    pub fn abort_attempt(&self) {
        self.attempts
            .borrow_mut()
            .pop()
            .expect("abort_attempt without begin_attempt");
    }

    /// Run `f` with all charges discarded — for cleanup work (e.g. freeing
    /// a speculatively allocated slab) that a sequential executor would
    /// never perform.
    pub fn uncharged<R>(&self, f: impl FnOnce(&Self) -> R) -> R {
        self.begin_attempt();
        let r = f(self);
        self.abort_attempt();
        r
    }

    // ---- warp intrinsics (charged) ----

    /// `__ballot_sync(FULL_MASK, …)`: all 32 lanes participate.
    ///
    /// Warp-cooperative data-structure code requires the *whole* warp to
    /// execute the ballot even when fewer than 32 tasks are in range (the
    /// paper's WCWS strategy: "it requires all threads within a warp to be
    /// active"). Task validity must therefore be folded into the predicate
    /// itself (e.g. via [`Self::is_active`]), not into the ballot mask.
    #[inline]
    pub fn ballot(&self, preds: &Lanes<bool>) -> u32 {
        self.charge_ballots(1);
        lanes::ballot(FULL_MASK, preds)
    }

    /// `__ballot_sync` with an explicit mask (for sub-warp groups).
    #[inline]
    pub fn ballot_masked(&self, mask: u32, preds: &Lanes<bool>) -> u32 {
        self.charge_ballots(1);
        lanes::ballot(mask, preds)
    }

    /// `__shfl_sync` broadcast: every lane reads `src_lane`'s value.
    #[inline]
    pub fn shuffle<T: Copy>(&self, vals: &Lanes<T>, src_lane: u32) -> T {
        self.charge_shuffles(1);
        lanes::shuffle(vals, src_lane)
    }

    /// `__shfl_sync` indexed form.
    #[inline]
    pub fn shuffle_idx<T: Copy>(&self, vals: &Lanes<T>, idx: &Lanes<u32>) -> Lanes<T> {
        self.charge_shuffles(1);
        lanes::shuffle_idx(vals, idx)
    }

    // ---- memory operations (charged) ----

    /// Coalesced read of one 128 B slab: lane *i* receives word `base+i`.
    /// One transaction.
    #[inline]
    pub fn read_slab(&self, base: Addr) -> Lanes<u32> {
        self.charge_transactions(1);
        self.san_access(base, SLAB_WORDS as u32, AccessKind::PlainRead);
        Lanes(self.device.arena.load_slab(base))
    }

    /// Coalesced write of one 128 B slab. One transaction.
    #[inline]
    pub fn write_slab(&self, base: Addr, words: &Lanes<u32>) {
        self.charge_transactions(1);
        self.san_access(base, SLAB_WORDS as u32, AccessKind::PlainWrite);
        self.device.arena.store_slab(base, &words.0);
    }

    /// Scattered per-lane reads: lane *i* (if set in `mask`) loads
    /// `addrs[i]`. Charged one transaction per distinct 128 B segment
    /// touched, exactly like hardware coalescing.
    pub fn read_lanes(&self, addrs: &Lanes<Addr>, mask: u32) -> Lanes<u32> {
        self.charge_scattered(addrs, mask);
        self.san_lanes(addrs, mask, AccessKind::PlainRead);
        Lanes::from_fn(|i| {
            if mask & (1 << i) != 0 {
                self.device.arena.load(addrs.0[i])
            } else {
                0
            }
        })
    }

    /// Scattered per-lane writes with coalescing-aware charging.
    pub fn write_lanes(&self, addrs: &Lanes<Addr>, vals: &Lanes<u32>, mask: u32) {
        self.charge_scattered(addrs, mask);
        self.san_lanes(addrs, mask, AccessKind::PlainWrite);
        for i in 0..WARP_SIZE {
            if mask & (1 << i) != 0 {
                self.device.arena.store(addrs.0[i], vals.0[i]);
            }
        }
    }

    fn charge_scattered(&self, addrs: &Lanes<Addr>, mask: u32) {
        let mut segs: [u32; WARP_SIZE] = [u32::MAX; WARP_SIZE];
        let mut n = 0usize;
        for i in 0..WARP_SIZE {
            if mask & (1 << i) != 0 {
                let seg = addrs.0[i] / SLAB_WORDS as u32;
                if !segs[..n].contains(&seg) {
                    segs[n] = seg;
                    n += 1;
                }
            }
        }
        self.charge_transactions(n as u64);
    }

    /// Single-word read issued by one lane (uniform warp read). One
    /// transaction.
    #[inline]
    pub fn read_word(&self, addr: Addr) -> u32 {
        self.charge_transactions(1);
        self.san_access(addr, 1, AccessKind::PlainRead);
        self.device.arena.load(addr)
    }

    /// Single-word write issued by one lane. One transaction.
    #[inline]
    pub fn write_word(&self, addr: Addr, v: u32) {
        self.charge_transactions(1);
        self.san_access(addr, 1, AccessKind::PlainWrite);
        self.device.arena.store(addr, v);
    }

    /// `atomicCAS` issued by one lane.
    #[inline]
    pub fn atomic_cas(&self, addr: Addr, expected: u32, new: u32) -> Result<u32, u32> {
        self.charge_atomics(1);
        self.san_access(addr, 1, AccessKind::Atomic);
        self.device.arena.cas(addr, expected, new)
    }

    /// `atomicExch` issued by one lane.
    #[inline]
    pub fn atomic_exchange(&self, addr: Addr, v: u32) -> u32 {
        self.charge_atomics(1);
        self.san_access(addr, 1, AccessKind::Atomic);
        self.device.arena.exchange(addr, v)
    }

    /// `atomicAdd` issued by one lane.
    #[inline]
    pub fn atomic_add(&self, addr: Addr, v: u32) -> u32 {
        self.charge_atomics(1);
        self.san_access(addr, 1, AccessKind::Atomic);
        self.device.arena.fetch_add(addr, v)
    }

    /// `atomicSub` issued by one lane.
    #[inline]
    pub fn atomic_sub(&self, addr: Addr, v: u32) -> u32 {
        self.charge_atomics(1);
        self.san_access(addr, 1, AccessKind::Atomic);
        self.device.arena.fetch_sub(addr, v)
    }

    /// `atomicOr` issued by one lane.
    #[inline]
    pub fn atomic_or(&self, addr: Addr, v: u32) -> u32 {
        self.charge_atomics(1);
        self.san_access(addr, 1, AccessKind::Atomic);
        self.device.arena.fetch_or(addr, v)
    }

    /// `atomicAnd` issued by one lane.
    #[inline]
    pub fn atomic_and(&self, addr: Addr, v: u32) -> u32 {
        self.charge_atomics(1);
        self.san_access(addr, 1, AccessKind::Atomic);
        self.device.arena.fetch_and(addr, v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn launch_tasks_covers_all_tasks_once() {
        let dev = Device::new(1024);
        let out = dev.alloc_words(100, 1);
        dev.arena().fill(out, 100, 0);
        dev.launch_tasks("count", 100, |warp| {
            let ids = warp.global_ids();
            for (lane, id) in ids.iter() {
                if warp.is_active(lane) {
                    warp.atomic_add(out + id, 1);
                }
            }
        });
        for i in 0..100 {
            assert_eq!(dev.arena().load(out + i), 1, "task {i}");
        }
    }

    #[test]
    fn partial_warp_active_mask() {
        let dev = Device::new(64);
        let seen = std::sync::Mutex::new(vec![]);
        dev.launch_tasks("masks", 40, |warp| {
            seen.lock()
                .unwrap()
                .push((warp.warp_id(), warp.active_mask()));
        });
        let seen = seen.into_inner().unwrap();
        assert_eq!(seen.len(), 2);
        assert_eq!(seen[0], (0, FULL_MASK));
        assert_eq!(seen[1], (1, (1 << 8) - 1));
    }

    #[test]
    fn zero_tasks_launches_zero_warps() {
        let dev = Device::new(64);
        let ran = std::sync::atomic::AtomicUsize::new(0);
        dev.launch_tasks("empty", 0, |_| {
            ran.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        });
        assert_eq!(ran.load(std::sync::atomic::Ordering::Relaxed), 0);
        assert_eq!(dev.counters().snapshot().launches, 1);
    }

    #[test]
    fn slab_read_costs_one_transaction() {
        let dev = Device::new(1024);
        let slab = dev.alloc_words(SLAB_WORDS, SLAB_WORDS);
        dev.arena().fill(slab, SLAB_WORDS, 0);
        let before = dev.counters().snapshot();
        dev.launch_tasks("slab_read", 32, |warp| {
            let _ = warp.read_slab(slab);
        });
        let d = dev.counters().snapshot().delta(&before);
        assert_eq!(d.transactions, 1);
        assert_eq!(d.launches, 1);
        assert_eq!(d.warps, 1);
    }

    #[test]
    fn scattered_access_charges_by_segment() {
        let dev = Device::new(4096);
        let base = dev.alloc_words(32 * SLAB_WORDS, SLAB_WORDS);
        dev.arena().fill(base, 32 * SLAB_WORDS, 0);
        let before = dev.counters().snapshot();
        dev.launch_tasks("scatter", 32, |warp| {
            // All 32 lanes touch 32 different slabs: 32 transactions.
            let addrs = Lanes::from_fn(|i| base + (i * SLAB_WORDS) as u32);
            let _ = warp.read_lanes(&addrs, FULL_MASK);
            // All 32 lanes touch the same slab: 1 transaction.
            let same = Lanes::from_fn(|i| base + i as u32);
            let _ = warp.read_lanes(&same, FULL_MASK);
        });
        let d = dev.counters().snapshot().delta(&before);
        assert_eq!(d.transactions, 33);
    }

    #[test]
    fn ballots_and_shuffles_are_charged() {
        let dev = Device::new(64);
        let before = dev.counters().snapshot();
        dev.launch_tasks("intrinsics", 32, |warp| {
            let preds = Lanes::splat(true);
            let b = warp.ballot(&preds);
            assert_eq!(b, FULL_MASK);
            let vals = Lanes::from_fn(|i| i as u32);
            let v = warp.shuffle(&vals, 3);
            assert_eq!(v, 3);
        });
        let d = dev.counters().snapshot().delta(&before);
        assert_eq!(d.ballots, 1);
        assert_eq!(d.shuffles, 1);
    }

    #[test]
    fn threaded_and_sequential_agree_on_commutative_kernel() {
        let run = |policy| {
            let dev = Device::with_policy(4096, policy);
            let out = dev.alloc_words(1, 1);
            dev.arena().fill(out, 1, 0);
            dev.launch_tasks("sum", 10_000, |warp| {
                let mask = warp.active_mask();
                for lane in 0..WARP_SIZE {
                    if mask & (1 << lane) != 0 {
                        warp.atomic_add(out, 1);
                    }
                }
            });
            dev.arena().load(out)
        };
        assert_eq!(run(ExecPolicy::Sequential), 10_000);
        assert_eq!(run(ExecPolicy::Threaded(4)), 10_000);
    }

    #[test]
    fn memset_charges_coalesced_transactions() {
        let dev = Device::new(4096);
        let p = dev.alloc_words(320, 32);
        let before = dev.counters().snapshot();
        dev.memset("fill", p, 320, u32::MAX);
        let d = dev.counters().snapshot().delta(&before);
        assert_eq!(d.transactions, 10);
        assert_eq!(dev.arena().load(p + 319), u32::MAX);
    }

    #[test]
    fn launch_warps_runs_exact_warp_count() {
        let dev = Device::new(64);
        let count = std::sync::atomic::AtomicUsize::new(0);
        dev.launch_warps("exact", 7, |warp| {
            assert_eq!(warp.active_mask(), FULL_MASK);
            count.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        });
        assert_eq!(count.load(std::sync::atomic::Ordering::Relaxed), 7);
    }

    // ---- attribution ----

    fn kernel_counters(dev: &Device, name: &str) -> crate::counters::CounterSnapshot {
        dev.trace()
            .kernels
            .into_iter()
            .find(|k| k.name == name)
            .map(|k| k.counters)
            .unwrap_or_default()
    }

    #[test]
    fn launches_attribute_to_their_kernel_name() {
        let dev = Device::new(1024);
        let out = dev.alloc_words(1, 1);
        dev.arena().fill(out, 1, 0);
        dev.launch_tasks("alpha", 64, |warp| {
            warp.atomic_add(out, 1);
        });
        dev.launch_tasks("beta", 32, |warp| {
            let _ = warp.read_word(out);
        });
        let alpha = kernel_counters(&dev, "alpha");
        assert_eq!(alpha.launches, 1);
        assert_eq!(alpha.warps, 2);
        assert_eq!(alpha.atomics, 2);
        assert_eq!(alpha.transactions, 0);
        let beta = kernel_counters(&dev, "beta");
        assert_eq!(beta.launches, 1);
        assert_eq!(beta.warps, 1);
        assert_eq!(beta.transactions, 1);
        // Host-side alloc before any launch lands in the reserved bucket.
        assert_eq!(kernel_counters(&dev, HOST_KERNEL).words_allocated, 1);
    }

    #[test]
    fn per_kernel_counters_sum_to_global() {
        let dev = Device::new(4096);
        let p = dev.alloc_words(64, 32);
        dev.memset("init", p, 64, 0);
        dev.launch_tasks("work", 100, |warp| {
            let preds = Lanes::splat(true);
            let _ = warp.ballot(&preds);
            warp.atomic_add(p, 1);
        });
        dev.fused_scope("fused", || {
            dev.launch_warps("helper", 2, |warp| {
                let _ = warp.read_word(p);
            });
        });
        let trace = dev.trace();
        assert_eq!(trace.kernel_sum(), trace.global);
    }

    #[test]
    fn fused_scope_owns_inner_launches() {
        let dev = Device::new(1024);
        let p = dev.alloc_words(32, 32);
        dev.arena().fill(p, 32, 0);
        let before = dev.trace();
        dev.fused_scope("outer", || {
            dev.launch_warps("inner_a", 1, |warp| {
                let _ = warp.read_word(p);
            });
            dev.memset("inner_b", p, 32, 0);
        });
        let d = dev.trace().delta(&before);
        // One launch total, everything under the scope's name.
        assert_eq!(d.global.launches, 1);
        assert_eq!(d.kernels.len(), 1);
        assert_eq!(d.kernels[0].name, "outer");
        assert_eq!(d.kernels[0].counters.launches, 1);
        assert_eq!(d.kernels[0].counters.warps, 1);
        assert_eq!(d.kernels[0].counters.transactions, 2);
        assert_eq!(d.kernel_sum(), d.global);
    }

    #[test]
    fn memset_inside_kernel_attributes_to_launch() {
        let dev = Device::new(4096);
        let p = dev.alloc_words(64, 32);
        let before = dev.trace();
        dev.launch_warps("rehash_like", 1, |warp| {
            warp.device().memset("unused_name", p, 64, 0);
        });
        let d = dev.trace().delta(&before);
        assert_eq!(d.global.launches, 1, "inner memset is fused");
        assert_eq!(d.kernels.len(), 1);
        assert_eq!(d.kernels[0].name, "rehash_like");
        assert_eq!(d.kernels[0].counters.transactions, 2);
        assert_eq!(d.kernel_sum(), d.global);
    }

    #[test]
    fn sanitizer_detects_torn_counter_even_sequentially() {
        // Model-based racecheck: the sequential executor reports the same
        // logical race a threaded run could hit.
        let dev =
            Device::with_config(DeviceConfig::new(1024).with_sanitizer(SanitizerConfig::default()));
        let c = dev.alloc_words(1, 1);
        dev.arena().fill(c, 1, 0);
        dev.launch_tasks("torn", 64, |warp| {
            let v = warp.read_word(c);
            warp.write_word(c, v + 1);
        });
        let f = dev.sanitizer_findings();
        assert!(!f.is_empty());
        assert!(f.iter().all(|x| x.kernel == "torn" && x.addr == c), "{f:?}");
    }

    #[test]
    fn sanitizer_charges_nothing() {
        let run = |sanitize: bool| {
            let mut cfg = DeviceConfig::new(4096);
            cfg.sanitize = sanitize.then(SanitizerConfig::default);
            let dev = Device::with_config(cfg);
            let p = dev.alloc_words(64, 32);
            dev.memset("init", p, 64, 0);
            dev.launch_tasks("work", 200, |warp| {
                let v = warp.read_word(p);
                warp.atomic_add(p + 1, v + 1);
                let _ = warp.read_slab(p + 32);
            });
            dev.trace()
        };
        let (on, off) = (run(true), run(false));
        assert_eq!(on.global, off.global);
        assert_eq!(on.kernels.len(), off.kernels.len());
        for (a, b) in on.kernels.iter().zip(off.kernels.iter()) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.counters, b.counters);
        }
    }

    #[test]
    fn config_capacity_makes_device_alloc_fallible() {
        let dev = Device::with_config(DeviceConfig::new(64).with_capacity_words(100));
        assert_eq!(dev.capacity_words(), 100);
        assert!(dev.try_alloc_words(64, 1).is_ok());
        let before = dev.counters().snapshot().words_allocated;
        let err = dev.try_alloc_words(64, 1).unwrap_err();
        assert!(matches!(err, OomError::Capacity { .. }));
        // Failed allocations charge nothing.
        assert_eq!(dev.counters().snapshot().words_allocated, before);
        dev.set_capacity_words(u64::MAX);
        assert!(dev.try_alloc_words(64, 1).is_ok());
    }

    #[test]
    fn fault_check_reports_enclosing_kernel() {
        let dev = Device::new(64);
        dev.set_fault_plan(FaultPlan::fail_in_kernel("victim"));
        assert!(dev.fault_check().is_ok(), "outside any kernel");
        let seen = parking_lot::Mutex::new(None);
        dev.launch_warps("victim", 1, |_warp| {
            *seen.lock() = Some(dev.fault_check());
        });
        assert_eq!(
            seen.into_inner(),
            Some(Err(OomError::Injected {
                alloc_index: 2,
                kernel: Some("victim")
            }))
        );
        dev.launch_warps("bystander", 1, |_warp| {
            assert!(dev.fault_check().is_ok());
        });
        dev.clear_fault_plan();
        assert_eq!(dev.injected_faults(), 1);
        assert!(dev.fault_plan().is_none());
    }

    #[test]
    fn fault_plan_fails_nth_fallible_allocation() {
        let dev = Device::new(1024);
        dev.set_fault_plan(FaultPlan::fail_nth(2));
        assert!(dev.fault_check().is_ok());
        assert!(dev.fault_check().is_err());
        assert!(dev.fault_check().is_ok());
    }

    #[test]
    fn charge_handle_dual_charges() {
        let dev = Device::new(64);
        let before = dev.trace();
        let c = dev.charge("manual");
        c.add_launches(1);
        c.add_transactions(5);
        c.add_atomics(2);
        drop(c);
        let d = dev.trace().delta(&before);
        assert_eq!(d.global.launches, 1);
        assert_eq!(d.global.transactions, 5);
        assert_eq!(d.kernels.len(), 1);
        assert_eq!(d.kernels[0].name, "manual");
        assert_eq!(d.kernels[0].counters.atomics, 2);
        assert_eq!(d.kernel_sum(), d.global);
    }
}
