//! # gpu-sim — deterministic SIMT execution substrate
//!
//! This crate stands in for CUDA in the reproduction of *Dynamic Graphs on
//! the GPU* (Awad et al., 2020). The paper's data structures are
//! warp-synchronous: their correctness and performance follow from 32-lane
//! lockstep execution, warp ballots/shuffles, word-level atomics in global
//! memory, and coalesced 128-byte memory transactions. All four are modelled
//! here:
//!
//! - [`Lanes`] / [`lanes`] — 32-wide lane vectors and pure warp intrinsics
//!   (`ballot`, `shuffle`, `popc`, `ffs`).
//! - [`DeviceArena`] — global memory as a growable arena of atomic `u32`
//!   words addressed by plain `u32` device pointers.
//! - [`Device`] / [`Warp`] — kernel launch (sequential deterministic or
//!   multi-threaded) and the charged warp-level memory/intrinsic API.
//! - [`PerfCounters`] / [`CostModel`] — transaction-level accounting and a
//!   TITAN V-like analytic timing model used by the benchmark harness.
//! - [`KernelSpec`] / [`TraceReport`] — named kernel launches with
//!   per-kernel counter attribution and renderable/serializable breakdown
//!   reports (see [`trace`]).
//!
//! ## Example
//!
//! ```
//! use gpu_sim::{Device, Lanes};
//!
//! let dev = Device::new(1 << 10);
//! let out = dev.alloc_words(1, 1);
//! dev.arena().store(out, 0); // device memory is not implicitly initialized
//! // 1000 tasks, one per lane, warp-cooperatively summed.
//! dev.launch_tasks("warp_sum", 1000, |warp| {
//!     let preds = Lanes::from_fn(|lane| warp.is_active(lane));
//!     let active = warp.ballot(&preds);
//!     // Lane 0 adds the warp's active-task count in one atomic.
//!     warp.atomic_add(out, active.count_ones());
//! });
//! assert_eq!(dev.arena().load(out), 1000);
//! ```

pub mod cost;
pub mod counters;
pub mod device;
pub mod fault;
pub mod group;
pub mod json;
pub mod lanes;
pub mod memory;
pub mod metrics;
pub mod profiler;
pub mod sanitizer;
pub mod trace;

pub use cost::{CostModel, TRANSACTION_BYTES};
pub use counters::{CounterSnapshot, PerfCounters};
pub use device::{Device, DeviceConfig, ExecPolicy, Warp};
pub use fault::{DeviceFault, FaultPlan, OomError};
pub use group::DeviceGroup;
pub use json::Json;
pub use lanes::{
    ballot, ffs, lanemask_lt, popc, shuffle, shuffle_idx, Lanes, FULL_MASK, WARP_SIZE,
};
pub use memory::{Addr, DeviceArena, NULL_ADDR, SLAB_WORDS};
pub use metrics::{
    Gauge, Histogram, HistogramSnapshot, MetricKind, MetricSummary, MetricsRegistry,
};
pub use profiler::{
    assemble_lifecycles, chrome_trace_json, op_flow_events, parse_chrome_trace, ChromeEvent,
    OpLifecycle, PhaseGuard, Profiler, ProfilerConfig, Timeline, TraceCtx, TraceScope,
};
pub use sanitizer::{Finding, FindingKind, Sanitizer, SanitizerConfig};
pub use trace::{
    Charge, KernelSpec, KernelStats, LaunchShape, OpAttributionRow, ShardHealthRow,
    TailExemplarRow, TraceReport, TraceRow, TraceSnapshot, HOST_KERNEL,
};
