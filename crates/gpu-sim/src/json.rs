//! A small dependency-free JSON value type, writer, and parser.
//!
//! Used by [`crate::trace::TraceReport`] for serialization and by the bench
//! harness for experiment emission. Numbers keep their source text (`raw`),
//! so `u64` counters and `f64` times round-trip exactly: integers are
//! written as integers, floats via `{:?}` (Rust's shortest round-trippable
//! form).

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    /// A number, kept as its literal text.
    Num(String),
    Str(String),
    Arr(Vec<Json>),
    /// Key-value pairs in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Build a number from a `u64` (exact).
    pub fn u64(v: u64) -> Json {
        Json::Num(v.to_string())
    }

    /// Build a number from an `f64` (`{:?}` round-trips exactly).
    pub fn f64(v: f64) -> Json {
        Json::Num(format!("{v:?}"))
    }

    /// Build a string value.
    pub fn str(v: impl Into<String>) -> Json {
        Json::Str(v.into())
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is an integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The value as an `f64`, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serialize compactly (no whitespace).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Serialize with two-space indentation.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        let (nl, pad, pad_in) = match indent {
            Some(w) => ("\n", " ".repeat(w * depth), " ".repeat(w * (depth + 1))),
            None => ("", String::new(), String::new()),
        };
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(raw) => out.push_str(raw),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    item.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push('}');
            }
        }
    }

    /// Parse a JSON document (must contain exactly one value).
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing content at byte {pos}"));
        }
        Ok(value)
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {pos}", c as char))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(b'"') => Ok(Json::Str(parse_string(b, pos)?)),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                expect(b, pos, b':')?;
                fields.push((key, parse_value(b, pos)?));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        Some(_) => parse_number(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}"))
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b.get(*pos + 1..*pos + 5).ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                            16,
                        )
                        .map_err(|e| e.to_string())?;
                        out.push(char::from_u32(code).ok_or("invalid \\u escape")?);
                        *pos += 4;
                    }
                    _ => return Err(format!("invalid escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume the whole run of plain characters in one slice.
                // `"` and `\` are ASCII, so they never land inside a
                // multi-byte sequence and the cut is a char boundary; one
                // validation per run keeps parsing linear in input size.
                let start = *pos;
                while *pos < b.len() && b[*pos] != b'"' && b[*pos] != b'\\' {
                    *pos += 1;
                }
                out.push_str(std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?);
            }
        }
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-') {
        *pos += 1;
    }
    let raw = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
    raw.parse::<f64>()
        .map_err(|_| format!("invalid number '{raw}' at byte {start}"))?;
    Ok(Json::Num(raw.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_nested() {
        let v = Json::Obj(vec![
            ("name".into(), Json::str("edge_insert")),
            ("tx".into(), Json::u64(u64::MAX)),
            ("t".into(), Json::f64(1.25e-7)),
            (
                "rows".into(),
                Json::Arr(vec![Json::Null, Json::Bool(true), Json::str("a\"b\\c\nd")]),
            ),
            ("empty".into(), Json::Obj(vec![])),
        ]);
        for text in [v.render(), v.render_pretty()] {
            assert_eq!(Json::parse(&text).unwrap(), v);
        }
    }

    #[test]
    fn u64_and_f64_are_exact() {
        let n = Json::u64(18_446_744_073_709_551_615);
        let parsed = Json::parse(&n.render()).unwrap();
        assert_eq!(parsed.as_u64(), Some(u64::MAX));
        let f = Json::f64(0.1 + 0.2);
        let parsed = Json::parse(&f.render()).unwrap();
        assert_eq!(parsed.as_f64(), Some(0.1 + 0.2));
    }

    #[test]
    fn long_and_multibyte_strings_parse_in_one_pass() {
        // Regression: per-character string parsing revalidated the entire
        // remaining document per char (quadratic — a multi-MB Chrome trace
        // took hours). A megabyte-scale string now parses instantly, and
        // escapes/multi-byte runs still split correctly.
        let long = "a".repeat(1 << 20);
        let v = Json::parse(&Json::str(&long).render()).unwrap();
        assert_eq!(v.as_str(), Some(long.as_str()));
        let mixed = Json::str("héllo \"wörld\"\n→ λ\\end");
        let back = Json::parse(&mixed.render()).unwrap();
        assert_eq!(back, mixed);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("1 2").is_err());
        assert!(Json::parse("nope").is_err());
        assert!(Json::parse("\"unterminated").is_err());
    }

    #[test]
    fn accessors() {
        let v = Json::parse(r#"{"a": [1, 2.5], "s": "x"}"#).unwrap();
        assert_eq!(v.get("s").and_then(Json::as_str), Some("x"));
        let arr = v.get("a").and_then(Json::as_arr).unwrap();
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[1].as_f64(), Some(2.5));
        assert_eq!(arr[1].as_u64(), None);
        assert!(v.get("missing").is_none());
    }
}
