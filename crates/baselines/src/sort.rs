//! Transaction-charged sorting primitives.
//!
//! Two sorts matter to the evaluation (Table VIII):
//!
//! - **CUB-style segmented radix sort** over a CSR layout: cost is
//!   dominated by `passes × 2` coalesced sweeps over all elements *plus a
//!   fixed per-segment overhead*, which is why it is comparatively slow on
//!   road networks (millions of 2-element segments) and fast on graphs with
//!   few huge lists.
//! - **faimGraph's per-adjacency sort**: an in-place quadratic sort within
//!   each vertex's page list — extremely fast when the maximum degree is
//!   small, catastrophically slow when it is large (Σ deg² scaling), which
//!   reproduces Table VIII's crossover (0.07 ms on luxembourg_osm vs 41 s
//!   on soc-orkut).

use gpu_sim::Device;

/// Radix-sort digit passes for 32-bit keys (8-bit digits).
pub const RADIX_PASSES: u64 = 4;

/// Charge the transaction cost of a device radix sort over `n` 32-bit
/// keys (histogram + scatter per pass, each a coalesced sweep).
pub fn charge_radix_sort(dev: &Device, n: usize) {
    let sweeps = RADIX_PASSES * 2; // read + scattered write per pass
    let charge = dev.charge("radix_sort");
    charge.add_transactions(sweeps * (n as u64).div_ceil(32));
    charge.add_launches(RADIX_PASSES);
}

/// Charge only the *data movement* of sorting `n` keys, without per-call
/// kernel-launch overhead — for sort-shaped work fused inside a larger
/// kernel (e.g. Hornet's per-vertex duplicate checking, which one batch
/// kernel performs for all touched vertices at once).
pub fn charge_sort_traffic(dev: &Device, n: usize) {
    dev.charge("sort_traffic")
        .add_transactions(RADIX_PASSES * 2 * (n as u64).div_ceil(32).max(1));
}

/// Device-charged sort of a host-visible `u32` slice, standing in for a
/// single CUB `DeviceRadixSort::SortKeys` call.
pub fn radix_sort(dev: &Device, data: &mut [u32]) {
    charge_radix_sort(dev, data.len());
    data.sort_unstable();
}

/// Device-charged sort of key-value pairs (sort by key).
pub fn radix_sort_pairs(dev: &Device, data: &mut [(u32, u32)]) {
    charge_radix_sort(dev, data.len() * 2);
    data.sort_unstable();
}

/// CUB-style segmented sort over CSR-shaped data: `segments[i]` is the
/// slice range of segment *i* in `values`. Charges the coalesced sweeps
/// plus a per-segment overhead transaction (segment descriptor read), the
/// term that dominates on road networks.
pub fn segmented_sort(dev: &Device, segments: &[(usize, usize)], values: &mut [u32]) {
    let total: usize = segments.iter().map(|&(s, e)| e - s).sum();
    charge_radix_sort(dev, total);
    // Per-segment block overhead: CUB-era segmented sorts dispatch one
    // block per segment with a fixed startup cost (~0.5 µs), which is why
    // Table VIII shows CUB losing badly on road networks (millions of
    // 2-element segments). 0.5 µs ≈ 2500 transactions of HBM2 time.
    dev.charge("segmented_sort")
        .add_transactions(segments.len() as u64 * 2500);
    for &(s, e) in segments {
        values[s..e].sort_unstable();
    }
}

/// faimGraph's per-adjacency-list sort: each vertex's paged list is sorted
/// in place by repeated page traversals (selection-sort-like), costing
/// `⌈deg/31⌉ · deg` page reads for a vertex of degree `deg` — i.e. Σ deg²
/// scaling in the worst case. `degrees` drive the charge; `lists` are
/// sorted host-side.
pub fn faimgraph_adjacency_sort(dev: &Device, lists: &mut [Vec<u32>]) {
    let mut transactions = 0u64;
    for list in lists.iter_mut() {
        let deg = list.len() as u64;
        let pages = deg.div_ceil(31).max(1);
        // Selection-sort style: one *element-wise* (uncoalesced) scan of
        // the remaining chain per element placed — Σ deg² single-word
        // accesses plus the page writes. This is what makes faimGraph's
        // sort collapse on scale-free graphs (Table VIII: 41 s on
        // soc-orkut) while staying microscopic on road networks.
        transactions += deg * deg + pages;
        list.sort_unstable();
    }
    let charge = dev.charge("faim_sort");
    charge.add_transactions(transactions);
    charge.add_launches(1);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn radix_sort_sorts_and_charges() {
        let dev = Device::new(64);
        let mut v = vec![5u32, 3, 9, 1, 1, 0];
        let before = dev.counters().snapshot();
        radix_sort(&dev, &mut v);
        assert_eq!(v, vec![0, 1, 1, 3, 5, 9]);
        let d = dev.counters().snapshot().delta(&before);
        assert_eq!(d.transactions, RADIX_PASSES * 2); // ⌈6/32⌉=1 per sweep
        assert_eq!(d.launches, RADIX_PASSES);
    }

    #[test]
    fn sort_cost_scales_linearly() {
        let dev = Device::new(64);
        let before = dev.counters().snapshot();
        charge_radix_sort(&dev, 32_000);
        let small = dev.counters().snapshot().delta(&before);
        let before = dev.counters().snapshot();
        charge_radix_sort(&dev, 320_000);
        let large = dev.counters().snapshot().delta(&before);
        assert_eq!(large.transactions, small.transactions * 10);
    }

    #[test]
    fn segmented_sort_charges_per_segment_overhead() {
        let dev = Device::new(64);
        // 1000 two-element segments (road-network shape).
        let mut vals: Vec<u32> = (0..2000).rev().map(|x| x as u32).collect();
        let segs: Vec<(usize, usize)> = (0..1000).map(|i| (i * 2, i * 2 + 2)).collect();
        let before = dev.counters().snapshot();
        segmented_sort(&dev, &segs, &mut vals);
        let d = dev.counters().snapshot().delta(&before);
        // Sweeps: 8 × ⌈2000/32⌉ = 504; overhead: 1000 segments.
        assert!(d.transactions >= 1000, "per-segment overhead dominates");
        for s in segs {
            assert!(vals[s.0] <= vals[s.0 + 1]);
        }
    }

    #[test]
    fn faimgraph_sort_is_quadratic_in_degree() {
        let dev = Device::new(64);
        // Same total elements, different shapes.
        let mut flat: Vec<Vec<u32>> = (0..1000).map(|_| vec![2, 1]).collect();
        let before = dev.counters().snapshot();
        faimgraph_adjacency_sort(&dev, &mut flat);
        let flat_cost = dev.counters().snapshot().delta(&before).transactions;

        let mut skew: Vec<Vec<u32>> = vec![(0..2000u32).rev().collect()];
        let before = dev.counters().snapshot();
        faimgraph_adjacency_sort(&dev, &mut skew);
        let skew_cost = dev.counters().snapshot().delta(&before).transactions;

        assert!(
            skew_cost > 20 * flat_cost,
            "one huge list ({skew_cost}) must cost far more than many tiny ones ({flat_cost})"
        );
        assert!(skew[0].windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn radix_sort_pairs_orders_by_key() {
        let dev = Device::new(64);
        let mut v = vec![(3u32, 30u32), (1, 10), (2, 20), (1, 11)];
        radix_sort_pairs(&dev, &mut v);
        assert_eq!(v[0].0, 1);
        assert_eq!(v[3].0, 3);
    }
}
