//! # baselines — workalikes of the structures the paper compares against
//!
//! The paper evaluates its hash-table graph against **Hornet** (Busato et
//! al., HPEC 2018), **faimGraph** (Winter et al., SC 2018), static **CSR**,
//! and **CUB segmented sort**. None of these have Rust implementations, so
//! this crate provides workalikes exhibiting the same *memory behaviour*,
//! running over the same simulated device arena and charging the same
//! transaction counters as `slabgraph` — making every comparison in the
//! benchmark harness apples-to-apples:
//!
//! - [`hornet::Hornet`] — per-vertex power-of-two blocks, host-side block
//!   manager with free lists, **sort-based deduplication** on insertion
//!   (the cost the paper's §VI-B1 attributes 45% of Hornet's build time to)
//!   and block doubling + copy on overflow (the incremental-build cost of
//!   §VI-B2).
//! - [`faimgraph::FaimGraph`] — 128-byte page lists per vertex, device-side
//!   page queue for reuse, traversal-based duplicate checking, vertex-id
//!   recycling queue.
//! - [`csr::Csr`] — the static packed structure (build = sort + dedup +
//!   prefix sum; no updates without a rebuild).
//! - [`sort`] — transaction-charged radix/segmented sorts standing in for
//!   CUB, plus faimGraph's per-adjacency sort (Table VIII).

pub mod csr;
pub mod faimgraph;
pub mod hornet;
pub mod sort;

pub use csr::Csr;
pub use faimgraph::FaimGraph;
pub use hornet::Hornet;
