//! Hornet workalike (Busato et al., "Hornet: An efficient data structure
//! for dynamic sparse graphs and matrices on GPUs", HPEC 2018).
//!
//! Adjacency lists live in power-of-two *blocks*: a vertex's list occupies
//! the smallest block that fits it; when an insertion overflows the block,
//! the whole list is copied into the next power-of-two size. Freed blocks
//! are recycled through per-size free lists (the original tracks them with
//! B-trees; memory management is host-side, as in the original).
//!
//! Updates deduplicate by **sorting** — the batch is sorted, and every
//! touched vertex's (list + additions) is dedup-checked with a sort-shaped
//! pass. That cost is exactly what the paper measures against (§VI-B1:
//! "45% of Hornet's insertion time is spent in duplication checking").

use crate::sort::{charge_radix_sort, charge_sort_traffic, radix_sort_pairs};
use gpu_sim::{Addr, Device, SLAB_WORDS};
use std::collections::BTreeMap;

/// Per-vertex block record (host-side, like Hornet's CPU-managed blocks).
#[derive(Debug, Clone, Copy)]
struct VInfo {
    block: Addr,
    capacity: u32,
    used: u32,
}

/// The Hornet-style dynamic graph store.
pub struct Hornet {
    dev: Device,
    vertices: Vec<VInfo>,
    /// Free blocks per capacity class (B-tree keyed by block size).
    free_blocks: BTreeMap<u32, Vec<Addr>>,
    /// Whether every adjacency list is currently sorted (needed by the
    /// intersection-based triangle counting).
    sorted: bool,
}

impl Hornet {
    /// An empty graph over `n_vertices` (each with a minimal block).
    pub fn new(n_vertices: u32, device_words: usize) -> Self {
        let dev = Device::new(device_words);
        Hornet {
            dev,
            vertices: vec![
                VInfo {
                    block: gpu_sim::NULL_ADDR,
                    capacity: 0,
                    used: 0
                };
                n_vertices as usize
            ],
            free_blocks: BTreeMap::new(),
            sorted: true,
        }
    }

    /// Bulk build: sort + dedup the COO input, then write each vertex's
    /// list into its block (§VI-B1 / Table V).
    pub fn bulk_build(n_vertices: u32, edges: &[(u32, u32)], device_words: usize) -> Self {
        let mut g = Self::new(n_vertices, device_words);
        let _phase = g.dev.phase("bulk_build");
        let mut batch: Vec<(u32, u32)> = edges
            .iter()
            .copied()
            .filter(|&(u, v)| u != v && u < n_vertices && v < n_vertices)
            .collect();
        // Device-wide sort + dedup: the dominant bulk-build cost.
        radix_sort_pairs(&g.dev, &mut batch);
        charge_radix_sort(&g.dev, batch.len()); // duplicate-flagging pass
        batch.dedup();
        let mut i = 0;
        while i < batch.len() {
            let u = batch[i].0;
            let mut j = i;
            while j < batch.len() && batch[j].0 == u {
                j += 1;
            }
            let dsts: Vec<u32> = batch[i..j].iter().map(|&(_, v)| v).collect();
            // Bulk build runs through the same per-vertex duplicate-check
            // machinery as batch insertion (§VI-B1: 45% of hollywood's
            // build time is duplicate checking alone).
            charge_sort_traffic(&g.dev, dsts.len() * 4);
            g.write_new_list(u, &dsts);
            i = j;
        }
        g.sorted = true;
        g
    }

    /// The simulated device (counters, cost model).
    pub fn device(&self) -> &Device {
        &self.dev
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> u32 {
        self.vertices.len() as u32
    }

    /// Total stored (unique) edges.
    pub fn num_edges(&self) -> u64 {
        self.vertices.iter().map(|v| v.used as u64).sum()
    }

    /// Live degree of `u`.
    pub fn degree(&self, u: u32) -> u32 {
        self.vertices[u as usize].used
    }

    /// Whether adjacency lists are currently sorted.
    pub fn is_sorted(&self) -> bool {
        self.sorted
    }

    /// Amortized cost of one CPU-side block-manager operation (B-tree
    /// lookup/insert + pointer upload), expressed in 128 B transactions.
    /// Calibrated so the paper's Table V ratios reproduce: Hornet's bulk
    /// build over road networks (one block per vertex) pays heavily, while
    /// edge-heavy graphs amortize it (germany_osm: 330 ms over 11.5 M
    /// vertices ≈ 30 ns/block ≈ 150 transactions of HBM2 time).
    const BLOCK_MGMT_TX: u64 = 150;

    fn alloc_block(&mut self, capacity: u32) -> Addr {
        self.dev
            .charge("hornet_block_mgmt")
            .add_transactions(Self::BLOCK_MGMT_TX);
        if let Some(list) = self.free_blocks.get_mut(&capacity) {
            if let Some(a) = list.pop() {
                return a;
            }
        }
        self.dev
            .alloc_words(capacity as usize, SLAB_WORDS.min(capacity as usize).max(1))
    }

    fn free_block(&mut self, addr: Addr, capacity: u32) {
        if capacity > 0 {
            self.free_blocks.entry(capacity).or_default().push(addr);
        }
    }

    /// Write a brand-new adjacency list for `u` (charged coalesced write).
    fn write_new_list(&mut self, u: u32, dsts: &[u32]) {
        let capacity = (dsts.len() as u32).next_power_of_two().max(1);
        let block = self.alloc_block(capacity);
        self.dev
            .charge("hornet_write_list")
            .add_transactions((dsts.len() as u64).div_ceil(32).max(1));
        for (i, &d) in dsts.iter().enumerate() {
            self.dev.arena().store(block + i as u32, d);
        }
        let old = self.vertices[u as usize];
        self.free_block(old.block, old.capacity);
        self.vertices[u as usize] = VInfo {
            block,
            capacity,
            used: dsts.len() as u32,
        };
    }

    /// Read `u`'s adjacency list with charged coalesced reads.
    pub fn read_adjacency(&self, u: u32) -> Vec<u32> {
        let v = self.vertices[u as usize];
        self.dev
            .charge("hornet_read")
            .add_transactions((v.used as u64).div_ceil(32).max(1));
        (0..v.used)
            .map(|i| self.dev.arena().load(v.block + i))
            .collect()
    }

    /// Batched edge insertion. Hornet semantics: duplicates neither within
    /// the batch nor against the graph are stored. Returns new-edge count.
    pub fn insert_batch(&mut self, edges: &[(u32, u32)]) -> u64 {
        let mut batch: Vec<(u32, u32)> = edges
            .iter()
            .copied()
            .filter(|&(u, v)| u != v && u < self.num_vertices() && v < self.num_vertices())
            .collect();
        if batch.is_empty() {
            return 0;
        }
        // 1. Sort the batch and drop in-batch duplicates (charged).
        radix_sort_pairs(&self.dev, &mut batch);
        batch.dedup();
        let mut added = 0u64;
        // 2. Per touched vertex: read the list, dedup against it via a
        //    sort-shaped pass, append / grow block.
        let mut i = 0;
        while i < batch.len() {
            let u = batch[i].0;
            let mut j = i;
            while j < batch.len() && batch[j].0 == u {
                j += 1;
            }
            let existing = self.read_adjacency(u);
            // Duplicate check over (existing + new): Hornet stages the
            // list + additions through scratch, sorts them as key-value
            // pairs, flags duplicates, scans, and compacts — ~4 sort-shaped
            // passes over 2-word elements, fused into the batch kernel
            // (the cost §VI-B1 attributes 45% of build time to).
            charge_sort_traffic(&self.dev, (existing.len() + (j - i)) * 4);
            let have: std::collections::HashSet<u32> = existing.iter().copied().collect();
            let fresh: Vec<u32> = batch[i..j]
                .iter()
                .map(|&(_, v)| v)
                .filter(|d| !have.contains(d))
                .collect();
            if !fresh.is_empty() {
                added += fresh.len() as u64;
                let info = self.vertices[u as usize];
                if info.used + fresh.len() as u32 <= info.capacity {
                    // Append in place; the compaction pass rewrites the
                    // deduplicated list (charged as a full-list write).
                    self.dev.charge("hornet_edge_insert").add_transactions(
                        ((info.used as u64 + fresh.len() as u64).div_ceil(32)).max(1),
                    );
                    for (k, &d) in fresh.iter().enumerate() {
                        self.dev.arena().store(info.block + info.used + k as u32, d);
                    }
                    self.vertices[u as usize].used += fresh.len() as u32;
                } else {
                    // Grow: copy whole list into next power-of-two block
                    // (the §VI-B2 incremental-build cost).
                    let mut all = existing.clone();
                    all.extend_from_slice(&fresh);
                    self.write_new_list(u, &all);
                }
                self.sorted = false;
            }
            i = j;
        }
        added
    }

    /// Batched edge deletion: sort batch, then filter each touched list in
    /// one compaction pass. "Deletion is a simple process and does not
    /// require cross-duplicate checking" — hence Hornet's competitive
    /// deletion rates (Table III).
    pub fn delete_batch(&mut self, edges: &[(u32, u32)]) -> u64 {
        let mut batch: Vec<(u32, u32)> = edges
            .iter()
            .copied()
            .filter(|&(u, _)| u < self.num_vertices())
            .collect();
        if batch.is_empty() {
            return 0;
        }
        radix_sort_pairs(&self.dev, &mut batch);
        batch.dedup();
        let mut removed = 0u64;
        let mut i = 0;
        while i < batch.len() {
            let u = batch[i].0;
            let mut j = i;
            while j < batch.len() && batch[j].0 == u {
                j += 1;
            }
            let victims: std::collections::HashSet<u32> =
                batch[i..j].iter().map(|&(_, v)| v).collect();
            let existing = self.read_adjacency(u);
            let kept: Vec<u32> = existing
                .iter()
                .copied()
                .filter(|d| !victims.contains(d))
                .collect();
            if kept.len() != existing.len() {
                removed += (existing.len() - kept.len()) as u64;
                // Compacted write-back into the same block (charged).
                let info = self.vertices[u as usize];
                self.dev
                    .charge("hornet_edge_delete")
                    .add_transactions((kept.len() as u64).div_ceil(32).max(1));
                for (k, &d) in kept.iter().enumerate() {
                    self.dev.arena().store(info.block + k as u32, d);
                }
                self.vertices[u as usize].used = kept.len() as u32;
            }
            i = j;
        }
        removed
    }

    /// Sort every adjacency list with the CUB-style segmented sort
    /// (required before intersection-based triangle counting; charged
    /// separately, as in Table VIII).
    pub fn sort_adjacencies(&mut self) {
        let mut lists: Vec<Vec<u32>> = (0..self.num_vertices())
            .map(|u| self.read_adjacency(u))
            .collect();
        let mut flat = Vec::new();
        let mut segs = Vec::new();
        for l in &lists {
            let s = flat.len();
            flat.extend_from_slice(l);
            segs.push((s, flat.len()));
        }
        crate::sort::segmented_sort(&self.dev, &segs, &mut flat);
        for (u, seg) in segs.iter().enumerate() {
            lists[u].copy_from_slice(&flat[seg.0..seg.1]);
            let info = self.vertices[u];
            self.dev
                .charge("hornet_sort")
                .add_transactions((info.used as u64).div_ceil(32).max(1));
            for (k, &d) in lists[u].iter().enumerate() {
                self.dev.arena().store(info.block + k as u32, d);
            }
        }
        self.sorted = true;
    }

    /// Re-sort only the given (batch-touched) vertices: each list's sorted
    /// prefix is merged with its freshly-appended suffix — the incremental
    /// maintenance a dynamic application would use (Table IX) instead of a
    /// full segmented re-sort. Charged as suffix-sort + merge traffic.
    pub fn sort_touched(&mut self, vertices: &[u32]) {
        let mut seen = std::collections::HashSet::new();
        for &u in vertices {
            if u >= self.num_vertices() || !seen.insert(u) {
                continue;
            }
            let mut list = self.read_adjacency(u);
            charge_sort_traffic(&self.dev, list.len().min(64));
            self.dev
                .charge("hornet_sort")
                .add_transactions(2 * (list.len() as u64).div_ceil(32).max(1));
            list.sort_unstable();
            let info = self.vertices[u as usize];
            for (k, &d) in list.iter().enumerate() {
                self.dev.arena().store(info.block + k as u32, d);
            }
        }
        self.sorted = true;
    }

    /// Does `u` have `v` as a neighbour? (Binary search if sorted, linear
    /// scan otherwise — both read the block with charged transactions.)
    pub fn edge_exists(&self, u: u32, v: u32) -> bool {
        let adj = self.read_adjacency(u);
        if self.sorted {
            adj.binary_search(&v).is_ok()
        } else {
            adj.contains(&v)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bulk_build_dedups_and_stores() {
        let g = Hornet::bulk_build(8, &[(0, 1), (0, 2), (0, 1), (3, 3), (1, 0)], 1 << 16);
        assert_eq!(g.degree(0), 2, "duplicate (0,1) stored once");
        assert_eq!(g.degree(3), 0, "self-loop dropped");
        assert_eq!(g.num_edges(), 3);
        let mut a = g.read_adjacency(0);
        a.sort_unstable();
        assert_eq!(a, vec![1, 2]);
    }

    #[test]
    fn insert_appends_and_dedups() {
        let mut g = Hornet::bulk_build(8, &[(0, 1)], 1 << 16);
        let added = g.insert_batch(&[(0, 1), (0, 2), (0, 2), (0, 3)]);
        assert_eq!(added, 2);
        assert_eq!(g.degree(0), 3);
        assert!(g.edge_exists(0, 3));
        assert!(!g.edge_exists(0, 7));
    }

    #[test]
    fn block_grows_by_doubling() {
        let mut g = Hornet::new(256, 1 << 18);
        for k in 0..100u32 {
            g.insert_batch(&[(0, k + 1)]);
        }
        assert_eq!(g.degree(0), 100);
        assert_eq!(g.vertices[0].capacity, 128, "next power of two");
        let adj = g.read_adjacency(0);
        assert_eq!(adj.len(), 100);
    }

    #[test]
    fn freed_blocks_are_recycled() {
        let mut g = Hornet::new(16, 1 << 18);
        g.insert_batch(&[(0, 1), (0, 2), (0, 3)]); // capacity 4 block
        g.insert_batch(&[(0, 4), (0, 5)]); // grows to 8, frees the 4-block
        assert!(!g.free_blocks.get(&4).is_none_or(|l| l.is_empty()));
        g.insert_batch(&[(1, 2), (1, 3), (1, 4)]); // reuses the 4-block
        assert!(g.free_blocks.get(&4).is_none_or(|l| l.is_empty()));
    }

    #[test]
    fn delete_compacts() {
        let mut g = Hornet::bulk_build(16, &[(0, 1), (0, 2), (0, 3)], 1 << 16);
        let removed = g.delete_batch(&[(0, 2), (0, 9)]);
        assert_eq!(removed, 1);
        assert_eq!(g.degree(0), 2);
        assert!(!g.edge_exists(0, 2));
        assert!(g.edge_exists(0, 1));
        assert!(g.edge_exists(0, 3));
    }

    #[test]
    fn insertion_charges_more_than_deletion_per_edge() {
        // The paper's Table II vs III asymmetry: insertion carries the
        // dedup-sort cost, deletion does not.
        let base: Vec<(u32, u32)> = (0..64u32)
            .flat_map(|u| (0..16u32).map(move |i| (u, (u + i + 1) % 64)))
            .collect();
        let batch: Vec<(u32, u32)> = (0..64u32).map(|u| (u, (u + 40) % 64)).collect();

        let mut g = Hornet::bulk_build(64, &base, 1 << 18);
        let before = g.device().counters().snapshot();
        g.insert_batch(&batch);
        let ins = g.device().counters().snapshot().delta(&before);

        let mut g = Hornet::bulk_build(64, &base, 1 << 18);
        g.insert_batch(&batch);
        let before = g.device().counters().snapshot();
        g.delete_batch(&batch);
        let del = g.device().counters().snapshot().delta(&before);

        assert!(
            ins.transactions > del.transactions,
            "insert {} should out-cost delete {}",
            ins.transactions,
            del.transactions
        );
    }

    #[test]
    fn sort_adjacencies_enables_binary_search() {
        let mut g = Hornet::bulk_build(16, &[(0, 5), (0, 1), (0, 3)], 1 << 16);
        g.insert_batch(&[(0, 2)]);
        assert!(!g.is_sorted());
        g.sort_adjacencies();
        assert!(g.is_sorted());
        assert_eq!(g.read_adjacency(0), vec![1, 2, 3, 5]);
    }
}
