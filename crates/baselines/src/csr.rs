//! Static CSR (Compressed Sparse Row) — the packed representation used by
//! static GPU graph frameworks (Gunrock \[4\]); paper §II-A. Building it
//! requires a full sort + dedup of the COO input, and it cannot be updated
//! without rebuilding — which is precisely the motivation for the dynamic
//! structure.

use crate::sort::radix_sort_pairs;
use gpu_sim::{Addr, Device, SLAB_WORDS};

/// A device-resident CSR graph.
pub struct Csr {
    dev: Device,
    n_vertices: u32,
    n_edges: u32,
    /// Row-pointer array (`n_vertices + 1` words) in device memory.
    row_offsets: Addr,
    /// Column-index array (`n_edges` words) in device memory.
    col_indices: Addr,
}

impl Csr {
    /// Build from COO edges: charged sort + dedup + prefix-sum + scatter.
    /// Self-loops and duplicates are dropped; adjacency lists end sorted.
    pub fn build(n_vertices: u32, edges: &[(u32, u32)], device_words: usize) -> Self {
        let dev = Device::new(device_words);
        let _phase = dev.phase("bulk_build");
        let mut batch: Vec<(u32, u32)> = edges
            .iter()
            .copied()
            .filter(|&(u, v)| u != v && u < n_vertices && v < n_vertices)
            .collect();
        radix_sort_pairs(&dev, &mut batch);
        batch.dedup();
        let n_edges = batch.len() as u32;

        let row_offsets = dev.alloc_words(n_vertices as usize + 1, SLAB_WORDS);
        let col_indices = dev.alloc_words((n_edges as usize).max(1), SLAB_WORDS);
        // Prefix-sum + scatter, charged as coalesced sweeps.
        {
            let charge = dev.charge("csr_build");
            charge.add_launches(2);
            charge.add_transactions(
                (n_vertices as u64 + 1).div_ceil(32) + (n_edges as u64).div_ceil(32),
            );
        }
        let mut offsets = vec![0u32; n_vertices as usize + 1];
        for &(u, _) in &batch {
            offsets[u as usize + 1] += 1;
        }
        for i in 0..n_vertices as usize {
            offsets[i + 1] += offsets[i];
        }
        for (i, &off) in offsets.iter().enumerate() {
            dev.arena().store(row_offsets + i as u32, off);
        }
        for (i, &(_, v)) in batch.iter().enumerate() {
            dev.arena().store(col_indices + i as u32, v);
        }
        Csr {
            dev,
            n_vertices,
            n_edges,
            row_offsets,
            col_indices,
        }
    }

    pub fn device(&self) -> &Device {
        &self.dev
    }

    pub fn num_vertices(&self) -> u32 {
        self.n_vertices
    }

    pub fn num_edges(&self) -> u64 {
        self.n_edges as u64
    }

    /// Degree of `u` (two row-pointer reads, charged).
    pub fn degree(&self, u: u32) -> u32 {
        self.dev.charge("csr_read").add_transactions(1);
        let s = self.dev.arena().load(self.row_offsets + u);
        let e = self.dev.arena().load(self.row_offsets + u + 1);
        e - s
    }

    /// Read `u`'s (sorted) adjacency list with charged coalesced reads.
    pub fn read_adjacency(&self, u: u32) -> Vec<u32> {
        let s = self.dev.arena().load(self.row_offsets + u);
        let e = self.dev.arena().load(self.row_offsets + u + 1);
        self.dev
            .charge("csr_read")
            .add_transactions(1 + ((e - s) as u64).div_ceil(32));
        (s..e)
            .map(|i| self.dev.arena().load(self.col_indices + i))
            .collect()
    }

    /// Binary-search membership query over the sorted row.
    pub fn edge_exists(&self, u: u32, v: u32) -> bool {
        self.read_adjacency(u).binary_search(&v).is_ok()
    }

    /// The segment ranges of every adjacency list (for segmented sorts).
    pub fn segments(&self) -> Vec<(usize, usize)> {
        (0..self.n_vertices)
            .map(|u| {
                let s = self.dev.arena().load(self.row_offsets + u) as usize;
                let e = self.dev.arena().load(self.row_offsets + u + 1) as usize;
                (s, e)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_sorts_and_dedups() {
        let g = Csr::build(4, &[(0, 2), (0, 1), (0, 2), (2, 2), (1, 3)], 1 << 16);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.read_adjacency(0), vec![1, 2], "sorted, deduped");
        assert_eq!(g.read_adjacency(1), vec![3]);
        assert_eq!(g.read_adjacency(2), vec![], "self-loop dropped");
        assert_eq!(g.degree(3), 0);
    }

    #[test]
    fn edge_exists_via_binary_search() {
        let edges: Vec<(u32, u32)> = (1..100).map(|v| (0, v)).collect();
        let g = Csr::build(128, &edges, 1 << 18);
        assert!(g.edge_exists(0, 57));
        assert!(!g.edge_exists(0, 101));
        assert!(!g.edge_exists(5, 0));
    }

    #[test]
    fn segments_cover_all_edges() {
        let g = Csr::build(4, &[(0, 1), (1, 2), (1, 3), (3, 0)], 1 << 16);
        let segs = g.segments();
        assert_eq!(segs.len(), 4);
        let total: usize = segs.iter().map(|&(s, e)| e - s).sum();
        assert_eq!(total as u64, g.num_edges());
    }

    #[test]
    fn build_charges_sort_cost() {
        let edges: Vec<(u32, u32)> = (0..1000u32).map(|i| (i % 32, (i * 7) % 32)).collect();
        let g = Csr::build(32, &edges, 1 << 18);
        assert!(
            g.device().counters().snapshot().transactions > 100,
            "sort sweeps charged"
        );
    }
}
