//! faimGraph workalike (Winter et al., "faimGraph: High performance
//! management of fully-dynamic graphs under tight memory constraints on
//! the GPU", SC 2018).
//!
//! Adjacency lists are singly linked chains of fixed-size **pages** (128
//! bytes here, matching the paper's benchmark configuration), drawn from a
//! single device-side memory pool with a free-page queue. Deleted vertex
//! ids go into a reuse queue (the feature the paper notes our structure
//! lacks). Duplicate checking on insertion **traverses the page chain** —
//! an O(degree) scan per inserted edge, which is exactly the cost the
//! hash-based structure beats (Tables II–IV).

use gpu_sim::{Addr, Device, Lanes, Warp, NULL_ADDR, SLAB_WORDS};
use parking_lot::Mutex;

/// Destination slots per page (31 dsts + 1 next pointer = 32 words).
pub const PAGE_SLOTS: u32 = 31;
const NEXT_WORD: u32 = 31;
const EMPTY: u32 = u32::MAX;

/// Per-vertex metadata layout in device memory: [head_page, degree, lock].
const META_WORDS: u32 = 3;
/// Offset of the per-vertex spin-lock word inside the metadata record.
const LOCK_WORD: u32 = 2;

/// The faimGraph-style dynamic graph store.
pub struct FaimGraph {
    dev: Device,
    n_vertices: u32,
    /// Device address of the per-vertex metadata array.
    meta: Addr,
    /// Free-page queue. The list itself is host-side bookkeeping, but every
    /// push/pop performs a real atomic on [`Self::qsync`] — the device
    /// queue's ticket counter — so page recycling is release/acquire
    /// ordered on the device, not smuggled through the host mutex.
    page_queue: Mutex<Vec<Addr>>,
    /// Device word backing the free-page queue's ticket atomic.
    qsync: Addr,
    /// Reusable vertex ids from deleted vertices.
    free_ids: Mutex<Vec<u32>>,
}

impl FaimGraph {
    /// An empty graph over `n_vertices`, each with one pre-linked page
    /// (faimGraph gives every vertex an initial page in its memory pool).
    pub fn new(n_vertices: u32, device_words: usize) -> Self {
        let dev = Device::new(device_words);
        let meta = dev.alloc_words((n_vertices * META_WORDS) as usize, SLAB_WORDS);
        let qsync = dev.alloc_words(1, 1);
        dev.arena().store(qsync, 0);
        let g = FaimGraph {
            dev,
            n_vertices,
            meta,
            page_queue: Mutex::new(Vec::new()),
            qsync,
            free_ids: Mutex::new(Vec::new()),
        };
        for v in 0..n_vertices {
            let page = g.fresh_page_host();
            g.dev.arena().store(g.meta + v * META_WORDS, page);
            g.dev.arena().store(g.meta + v * META_WORDS + 1, 0);
            g.dev.arena().store(g.meta + v * META_WORDS + LOCK_WORD, 0);
        }
        g
    }

    /// Build from an edge list (host-side dedup, charged page writes) —
    /// initialisation path, not the measured update path.
    pub fn build(n_vertices: u32, edges: &[(u32, u32)], device_words: usize) -> Self {
        let g = Self::new(n_vertices, device_words);
        let _phase = g.dev.phase("bulk_build");
        let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n_vertices as usize];
        for &(u, v) in edges {
            if u != v && u < n_vertices && v < n_vertices && !adj[u as usize].contains(&v) {
                adj[u as usize].push(v);
            }
        }
        for (u, list) in adj.iter().enumerate() {
            g.write_list_host(u as u32, list);
        }
        g
    }

    fn fresh_page_host(&self) -> Addr {
        let page = self.dev.alloc_words(SLAB_WORDS, SLAB_WORDS);
        self.dev.arena().fill(page, SLAB_WORDS, EMPTY);
        self.dev.arena().store(page + NEXT_WORD, NULL_ADDR);
        page
    }

    /// Acquire `u`'s per-vertex spin lock — faimGraph's per-update mutual
    /// exclusion (one worker owns a vertex's list while updating it). The
    /// CAS is attempt-wrapped: the sequential executor never observes a
    /// held lock, so exactly one atomic is charged; the threaded executor
    /// really spins and really excludes.
    fn lock_vertex(&self, warp: &Warp, u: u32) {
        let lock = self.meta + u * META_WORDS + LOCK_WORD;
        loop {
            warp.begin_attempt();
            if warp.atomic_cas(lock, 0, 1).is_ok() {
                warp.commit_attempt();
                return;
            }
            warp.abort_attempt();
            std::hint::spin_loop();
        }
    }

    /// Release `u`'s spin lock (one atomic; release-publishes the list
    /// updates made under the lock).
    fn unlock_vertex(&self, warp: &Warp, u: u32) {
        warp.atomic_exchange(self.meta + u * META_WORDS + LOCK_WORD, 0);
    }

    /// Pop a page from the free queue or carve a new one. The queue ticket
    /// is a real device atomic on [`Self::qsync`] (1 atomic, like the
    /// device queue's ticket counter), which also acquire-orders this warp
    /// after whoever freed the recycled page.
    fn alloc_page(&self, warp: &Warp) -> Addr {
        warp.atomic_add(self.qsync, 1);
        if let Some(p) = self.page_queue.lock().pop() {
            // Re-initialise the recycled page (charged write).
            warp.write_slab(p, &{
                let mut init = Lanes::splat(EMPTY);
                init.set(NEXT_WORD as usize, NULL_ADDR);
                init
            });
            return p;
        }
        let p = self.fresh_page_host();
        self.dev.charge("faim_page").add_transactions(1); // init write
        p
    }

    fn free_page(&self, warp: &Warp, page: Addr) {
        warp.atomic_add(self.qsync, 1);
        self.page_queue.lock().push(page);
    }

    fn write_list_host(&self, u: u32, dsts: &[u32]) {
        let mut page = self.dev.arena().load(self.meta + u * META_WORDS);
        for (i, &d) in dsts.iter().enumerate() {
            let slot = (i as u32) % PAGE_SLOTS;
            if i > 0 && slot == 0 {
                let next = self.fresh_page_host();
                self.dev.arena().store(page + NEXT_WORD, next);
                page = next;
            }
            self.dev.arena().store(page + slot, d);
        }
        self.dev
            .arena()
            .store(self.meta + u * META_WORDS + 1, dsts.len() as u32);
        self.dev
            .charge("faim_build")
            .add_transactions((dsts.len() as u64).div_ceil(PAGE_SLOTS as u64).max(1));
    }

    /// The simulated device.
    pub fn device(&self) -> &Device {
        &self.dev
    }

    pub fn num_vertices(&self) -> u32 {
        self.n_vertices
    }

    pub fn degree(&self, u: u32) -> u32 {
        self.dev.arena().load(self.meta + u * META_WORDS + 1)
    }

    pub fn num_edges(&self) -> u64 {
        (0..self.n_vertices).map(|v| self.degree(v) as u64).sum()
    }

    /// Read `u`'s adjacency (charged page-chain walk). Part of whatever
    /// kernel the caller is running — no launch is charged here.
    pub fn read_adjacency(&self, u: u32) -> Vec<u32> {
        self.dev.unlaunched_scope("faim_read_adj", || {
            let out = Mutex::new(Vec::new());
            self.dev.launch_warps("faim_read_adj", 1, |warp| {
                let mut local = Vec::new();
                let deg = warp.read_word(self.meta + u * META_WORDS + 1);
                let mut page = warp.read_word(self.meta + u * META_WORDS);
                let mut remaining = deg;
                while page != NULL_ADDR && remaining > 0 {
                    let words = warp.read_slab(page);
                    for i in 0..PAGE_SLOTS.min(remaining) {
                        local.push(words.get(i as usize));
                    }
                    remaining = remaining.saturating_sub(PAGE_SLOTS);
                    page = words.get(NEXT_WORD as usize);
                }
                *out.lock() = local;
            });
            out.into_inner()
        })
    }

    /// Batched edge insertion. Each edge's duplicate check traverses the
    /// source's page chain (the O(degree) cost of list-based structures);
    /// the edge is appended at position `degree`, allocating a page when
    /// the tail fills. Returns the number of edges actually added.
    pub fn insert_batch(&self, edges: &[(u32, u32)]) -> u64 {
        let added = std::sync::atomic::AtomicU64::new(0);
        let work: Vec<(u32, u32)> = edges
            .iter()
            .copied()
            .filter(|&(u, v)| u != v && u < self.n_vertices && v < self.n_vertices)
            .collect();
        let srcs: Vec<u32> = work.iter().map(|e| e.0).collect();
        let dsts: Vec<u32> = work.iter().map(|e| e.1).collect();
        let src_buf = self.upload(&srcs);
        let dst_buf = self.upload(&dsts);
        self.dev
            .launch_tasks("faim_edge_insert", work.len(), |warp| {
                let base = warp.warp_id() * 32;
                let s = warp.read_slab(src_buf + base);
                let d = warp.read_slab(dst_buf + base);
                for lane in 0..32usize {
                    if !warp.is_active(lane) {
                        continue;
                    }
                    if self.insert_one(warp, s.get(lane), d.get(lane)) {
                        added.fetch_add(1, std::sync::atomic::Ordering::AcqRel);
                    }
                }
            });
        added.into_inner()
    }

    /// Traverse + append one edge. faimGraph processes each update with a
    /// single worker thread walking the page chain element by element, so
    /// the duplicate check is charged per *element* touched (uncoalesced
    /// 4-byte loads each occupy a transaction slot), plus the per-update
    /// lock acquire/release atomics.
    fn insert_one(&self, warp: &Warp, u: u32, v: u32) -> bool {
        self.lock_vertex(warp, u);
        let r = self.insert_one_locked(warp, u, v);
        self.unlock_vertex(warp, u);
        r
    }

    fn insert_one_locked(&self, warp: &Warp, u: u32, v: u32) -> bool {
        let deg = warp.read_word(self.meta + u * META_WORDS + 1);
        let head = warp.read_word(self.meta + u * META_WORDS);
        // Duplicate check: full chain traversal.
        let mut page = head;
        let mut tail = head;
        let mut remaining = deg;
        while page != NULL_ADDR {
            let words = warp.read_slab(page);
            let count = PAGE_SLOTS.min(remaining);
            // Thread-serial element scan over AoS ⟨dst, weight⟩ pairs:
            // each element is an uncoalesced load (2 words per element,
            // beyond the page fetch itself).
            self.dev
                .charge("faim_edge_insert")
                .add_transactions(2 * count.max(1) as u64 - 1);
            for i in 0..count {
                if words.get(i as usize) == v {
                    return false;
                }
            }
            remaining -= count;
            tail = page;
            page = words.get(NEXT_WORD as usize);
            if page == NULL_ADDR || remaining == 0 && !deg.is_multiple_of(PAGE_SLOTS) {
                break;
            }
        }
        // Append at position `deg`.
        let slot = deg % PAGE_SLOTS;
        if deg > 0 && slot == 0 {
            let fresh = self.alloc_page(warp);
            warp.write_word(tail + NEXT_WORD, fresh);
            tail = fresh;
        }
        warp.write_word(tail + slot, v);
        // AoS edge data: the weight word is written alongside the dst.
        self.dev.charge("faim_edge_insert").add_transactions(1);
        warp.write_word(self.meta + u * META_WORDS + 1, deg + 1);
        true
    }

    /// Batched edge deletion: traverse to find the edge, fill the hole
    /// with the last element, shrink. Returns edges removed.
    pub fn delete_batch(&self, edges: &[(u32, u32)]) -> u64 {
        let removed = std::sync::atomic::AtomicU64::new(0);
        let work: Vec<(u32, u32)> = edges
            .iter()
            .copied()
            .filter(|&(u, _)| u < self.n_vertices)
            .collect();
        self.dev
            .launch_tasks("faim_edge_delete", work.len(), |warp| {
                let base = (warp.warp_id() * 32) as usize;
                for lane in 0..32usize {
                    if !warp.is_active(lane) {
                        continue;
                    }
                    let (u, v) = work[base + lane];
                    if self.delete_one(warp, u, v) {
                        removed.fetch_add(1, std::sync::atomic::Ordering::AcqRel);
                    }
                }
            });
        removed.into_inner()
    }

    fn delete_one(&self, warp: &Warp, u: u32, v: u32) -> bool {
        self.lock_vertex(warp, u);
        let r = self.delete_one_locked(warp, u, v);
        self.unlock_vertex(warp, u);
        r
    }

    fn delete_one_locked(&self, warp: &Warp, u: u32, v: u32) -> bool {
        let deg = warp.read_word(self.meta + u * META_WORDS + 1);
        if deg == 0 {
            return false;
        }
        let head = warp.read_word(self.meta + u * META_WORDS);
        // Locate v and the last element's page in one traversal.
        let mut page = head;
        let mut found: Option<Addr> = None;
        let mut idx = 0u32;
        let mut last_page = head;
        while page != NULL_ADDR && idx < deg {
            let words = warp.read_slab(page);
            let count = PAGE_SLOTS.min(deg - idx);
            self.dev
                .charge("faim_edge_delete")
                .add_transactions(count.max(1) as u64 - 1);
            for i in 0..count {
                if words.get(i as usize) == v && found.is_none() {
                    found = Some(page + i);
                }
            }
            idx += count;
            last_page = page;
            page = words.get(NEXT_WORD as usize);
        }
        let Some(hole) = found else {
            return false;
        };
        // Move the last element into the hole, shrink the list.
        let last_slot = (deg - 1) % PAGE_SLOTS;
        let last_addr = last_page + last_slot;
        if last_addr != hole {
            let moved = warp.read_word(last_addr);
            warp.write_word(hole, moved);
        }
        warp.write_word(last_addr, EMPTY);
        // Free the tail page if it emptied (and it is not the head page).
        if last_slot == 0 && deg > 1 && last_page != head {
            // Find the new tail's predecessor to cut the link.
            let mut p = head;
            loop {
                let words = warp.read_slab(p);
                let next = words.get(NEXT_WORD as usize);
                if next == last_page {
                    warp.write_word(p + NEXT_WORD, NULL_ADDR);
                    break;
                }
                p = next;
            }
            self.free_page(warp, last_page);
        }
        warp.write_word(self.meta + u * META_WORDS + 1, deg - 1);
        true
    }

    /// Batched vertex deletion: remove each victim from every neighbour's
    /// list (O(degree) traversal per neighbour — the cost Table IV
    /// measures), free its pages to the queue, and recycle its id.
    pub fn delete_vertices(&self, vertices: &[u32]) {
        self.dev
            .launch_warps("faim_vertex_delete", vertices.len().min(128), |warp| {
                // Work queue like Algorithm 2 (shared across warps via the
                // host-side iteration order under the sequential executor).
                for (i, &victim) in vertices.iter().enumerate() {
                    if i % 128 != warp.warp_id() as usize % 128 && vertices.len().min(128) > 1 {
                        continue;
                    }
                    // Snapshot the victim's neighbours under its own lock
                    // — another warp may concurrently be editing this list
                    // (e.g. removing *its* victim from it).
                    self.lock_vertex(warp, victim);
                    let neighbors = {
                        let deg = warp.read_word(self.meta + victim * META_WORDS + 1);
                        let mut page = warp.read_word(self.meta + victim * META_WORDS);
                        let mut out = Vec::new();
                        let mut remaining = deg;
                        while page != NULL_ADDR && remaining > 0 {
                            let words = warp.read_slab(page);
                            for k in 0..PAGE_SLOTS.min(remaining) {
                                out.push(words.get(k as usize));
                            }
                            remaining = remaining.saturating_sub(PAGE_SLOTS);
                            page = words.get(NEXT_WORD as usize);
                        }
                        out
                    };
                    self.unlock_vertex(warp, victim);
                    // Each neighbour edit takes that neighbour's lock; no
                    // lock is ever held across another acquisition, so the
                    // discipline is deadlock-free.
                    for n in neighbors {
                        if n != victim && n < self.n_vertices {
                            self.delete_one(warp, n, victim);
                        }
                    }
                    // Re-acquire the victim to tear down its chain: free
                    // all pages except the head (which stays, emptied).
                    self.lock_vertex(warp, victim);
                    let head = warp.read_word(self.meta + victim * META_WORDS);
                    let mut page = warp.read_slab(head).get(NEXT_WORD as usize);
                    while page != NULL_ADDR {
                        let next = warp.read_slab(page).get(NEXT_WORD as usize);
                        self.free_page(warp, page);
                        page = next;
                    }
                    warp.write_slab(head, &{
                        let mut init = Lanes::splat(EMPTY);
                        init.set(NEXT_WORD as usize, NULL_ADDR);
                        init
                    });
                    warp.write_word(self.meta + victim * META_WORDS + 1, 0);
                    self.unlock_vertex(warp, victim);
                    self.free_ids.lock().push(victim);
                }
            });
    }

    /// Ids available for reuse after vertex deletion (the memory-
    /// efficiency feature the paper credits faimGraph with).
    pub fn reusable_ids(&self) -> Vec<u32> {
        self.free_ids.lock().clone()
    }

    /// Sort every adjacency list with faimGraph's own per-list sort
    /// (Table VIII's right column; Σ deg² cost).
    pub fn sort_adjacencies(&self) {
        self.dev.fused_scope("faim_sort", || {
            let mut lists: Vec<Vec<u32>> = (0..self.n_vertices)
                .map(|u| self.read_adjacency(u))
                .collect();
            crate::sort::faimgraph_adjacency_sort(&self.dev, &mut lists);
            for (u, list) in lists.iter().enumerate() {
                self.write_list_host(u as u32, list);
            }
        });
    }

    fn upload(&self, data: &[u32]) -> Addr {
        let padded = (data.len().div_ceil(SLAB_WORDS) * SLAB_WORDS).max(SLAB_WORDS);
        let buf = self.dev.alloc_words(padded, SLAB_WORDS);
        // Write the pad words too: kernels fetch whole slabs, and a
        // partially-written staging buffer would be an uninitialised read.
        self.dev.arena().fill(buf, padded, 0);
        for (i, &w) in data.iter().enumerate() {
            self.dev.arena().store(buf + i as u32, w);
        }
        buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_read() {
        let g = FaimGraph::new(8, 1 << 18);
        assert_eq!(g.insert_batch(&[(0, 1), (0, 2), (0, 1), (3, 3)]), 2);
        assert_eq!(g.degree(0), 2);
        let mut a = g.read_adjacency(0);
        a.sort_unstable();
        assert_eq!(a, vec![1, 2]);
        assert_eq!(g.degree(3), 0, "self-loop rejected");
    }

    #[test]
    fn chains_pages_past_31_edges() {
        let g = FaimGraph::new(128, 1 << 18);
        let batch: Vec<(u32, u32)> = (1..100).map(|v| (0, v)).collect();
        assert_eq!(g.insert_batch(&batch), 99);
        assert_eq!(g.degree(0), 99);
        let mut a = g.read_adjacency(0);
        a.sort_unstable();
        assert_eq!(a, (1..100).collect::<Vec<u32>>());
    }

    #[test]
    fn delete_swaps_last_into_hole() {
        let g = FaimGraph::new(8, 1 << 18);
        g.insert_batch(&[(0, 1), (0, 2), (0, 3)]);
        assert_eq!(g.delete_batch(&[(0, 2)]), 1);
        let mut a = g.read_adjacency(0);
        a.sort_unstable();
        assert_eq!(a, vec![1, 3]);
        assert_eq!(g.delete_batch(&[(0, 9)]), 0, "miss");
    }

    #[test]
    fn delete_frees_emptied_tail_pages() {
        let g = FaimGraph::new(128, 1 << 18);
        let batch: Vec<(u32, u32)> = (1..=62).map(|v| (0, v)).collect();
        g.insert_batch(&batch); // exactly 2 pages
        let del: Vec<(u32, u32)> = (32..=62).map(|v| (0, v)).collect();
        g.delete_batch(&del);
        assert_eq!(g.degree(0), 31);
        assert!(
            !g.page_queue.lock().is_empty(),
            "tail page returned to queue"
        );
    }

    #[test]
    fn vertex_deletion_cleans_neighbors_and_recycles_id() {
        let g = FaimGraph::new(8, 1 << 18);
        // Undirected-style symmetric edges.
        g.insert_batch(&[(0, 1), (1, 0), (0, 2), (2, 0), (1, 2), (2, 1)]);
        g.delete_vertices(&[0]);
        assert_eq!(g.degree(0), 0);
        assert_eq!(g.read_adjacency(1), vec![2]);
        assert_eq!(g.read_adjacency(2), vec![1]);
        assert_eq!(g.reusable_ids(), vec![0]);
    }

    #[test]
    fn insertion_cost_grows_with_degree() {
        // The O(degree) duplicate check: inserting into a high-degree
        // vertex costs far more transactions than into a low-degree one.
        let g = FaimGraph::new(4096, 1 << 20);
        let warmup: Vec<(u32, u32)> = (1..1000).map(|v| (0, v)).collect();
        g.insert_batch(&warmup);
        let before = g.device().counters().snapshot();
        g.insert_batch(&[(0, 2000)]);
        let high = g.device().counters().snapshot().delta(&before);
        let before = g.device().counters().snapshot();
        g.insert_batch(&[(1, 2000)]);
        let low = g.device().counters().snapshot().delta(&before);
        assert!(
            high.transactions > 4 * low.transactions,
            "deg-1000 insert ({}) must dwarf deg-0 insert ({})",
            high.transactions,
            low.transactions
        );
    }

    #[test]
    fn build_then_sort_adjacencies() {
        let g = FaimGraph::build(16, &[(0, 5), (0, 1), (0, 3), (1, 7)], 1 << 18);
        g.sort_adjacencies();
        assert_eq!(g.read_adjacency(0), vec![1, 3, 5]);
        assert_eq!(g.read_adjacency(1), vec![7]);
    }
}
