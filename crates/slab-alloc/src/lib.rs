//! # slab-alloc — warp-cooperative slab allocator (SlabAlloc workalike)
//!
//! The paper's hash tables resolve collisions by chaining 128-byte *slabs*,
//! allocated on demand by SlabAlloc (Ashkiani et al., IPDPS 2018). This
//! crate reproduces that allocator on the simulated device:
//!
//! - The pool grows in **super-blocks** of 32 **memory blocks**; each memory
//!   block holds 32 slabs tracked by one 32-bit occupancy bitmap word that
//!   lives in device memory.
//! - **Allocation** is warp-cooperative: a warp hashes to a memory block,
//!   reads its bitmap, picks a free bit, and claims it with `atomicOr`;
//!   on conflict or a full block it rehashes to another block.
//! - **Freeing** clears the bit with `atomicAnd`. The paper frees collision
//!   slabs only during vertex deletion.
//!
//! Returned handles are raw device word addresses ([`gpu_sim::Addr`]), so a
//! slab pointer fits in a single `u32` lane register exactly as in CUDA.
//! Fresh slabs are initialised to the `EMPTY` sentinel pattern expected by
//! the slab hash.
//!
//! ## Epoch-based reclamation
//!
//! The quarantine ring doubles as a full epoch-based-reclamation scheme so
//! queries can run *concurrently* with mutation. A reader pins the current
//! launch era with [`SlabAllocator::pin`] and holds the returned
//! [`ReadGuard`] for the duration of its traversal; a quarantined slab is
//! recycled only once it is older than the current era **and** older than
//! every pinned era (see [`SlabAllocator::min_pinned_era`]). A reader that
//! pinned era *P* can therefore chase any pointer it observed into a slab
//! freed at era *F ≥ P* — the slab's bytes are guaranteed intact until the
//! guard drops.

use gpu_sim::{Addr, Device, OomError, Profiler, Sanitizer, Warp, SLAB_WORDS};
use parking_lot::{Mutex, RwLock};
use std::collections::{BTreeMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Sentinel filled into newly allocated slabs (matches slab-hash `EMPTY`).
pub const SLAB_INIT_WORD: u32 = u32::MAX;

/// A typed slab-allocator failure.
///
/// Out-of-memory is recoverable (free slabs or raise the device budget and
/// retry); the misuse variants report what the old code paths panicked on,
/// so callers tearing down shared structures can surface corruption as an
/// error instead of aborting the process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocError {
    /// The device could not provide backing memory for pool growth, or a
    /// fault plan injected a failure.
    Oom(OomError),
    /// The freed address does not belong to the pool (e.g. a statically
    /// allocated base slab).
    NotPoolAddress {
        /// The offending address.
        addr: Addr,
    },
    /// The freed slab was not currently allocated.
    DoubleFree {
        /// The offending address.
        addr: Addr,
    },
}

impl std::fmt::Display for AllocError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            AllocError::Oom(e) => write!(f, "slab pool out of memory: {e}"),
            AllocError::NotPoolAddress { addr } => {
                write!(f, "free of non-pool slab address {addr:#x}")
            }
            AllocError::DoubleFree { addr } => {
                write!(f, "double free of slab address {addr:#x}")
            }
        }
    }
}

impl std::error::Error for AllocError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AllocError::Oom(e) => Some(e),
            _ => None,
        }
    }
}

impl From<OomError> for AllocError {
    fn from(e: OomError) -> Self {
        AllocError::Oom(e)
    }
}

/// Upper bound on quarantined slabs before the oldest are force-drained.
const QUARANTINE_SLABS: usize = 1024;

/// Source of unique allocator identities. The sanitizer keys its pin
/// model per allocator (see [`Sanitizer::on_pin`]) so a guard on one
/// graph cannot certify quarantined-slab reads of another graph sharing
/// the device.
static NEXT_ALLOC_ID: AtomicU64 = AtomicU64::new(1);

/// Freed slabs whose occupancy bit is deliberately left claimed until it is
/// safe to recycle them.
///
/// Recycling a slab while a concurrent warp still traverses a stale pointer
/// into it is a classic GPU allocator hazard: the traverser reads another
/// structure's bytes and misparses them. The quarantine delays reuse until
/// the freeing *launch* has retired — a later launch is a device-wide
/// barrier, after which no stale pointer from the freeing launch can still
/// be in flight — or until the ring outgrows [`QUARANTINE_SLABS`]. In both
/// cases reuse additionally waits for every [`ReadGuard`] pinning an era ≤
/// the slab's free era to drop (epoch-based reclamation): pinned readers
/// may still be traversing pointers into the slab.
#[derive(Debug, Default)]
struct Quarantine {
    /// `(launch era at free time, slab base)` in free order.
    ring: VecDeque<(u64, Addr)>,
    /// Same addresses, for O(1) double-free membership checks.
    members: HashSet<Addr>,
}

/// Multiset of reader-pinned launch eras, shared between the allocator and
/// the [`ReadGuard`]s it hands out (guards are fully owned — no lifetime —
/// so callers can stash one across lock scopes and thread boundaries).
#[derive(Debug, Default)]
pub struct PinRegistry {
    /// era → live guard count.
    pins: Mutex<BTreeMap<u64, usize>>,
}

impl PinRegistry {
    fn register(&self, era: u64) {
        *self.pins.lock().entry(era).or_insert(0) += 1;
    }

    fn unregister(&self, era: u64) {
        let mut pins = self.pins.lock();
        if let Some(n) = pins.get_mut(&era) {
            *n -= 1;
            if *n == 0 {
                pins.remove(&era);
            }
        }
    }

    /// Smallest pinned era, if any guard is live.
    pub fn min_pinned(&self) -> Option<u64> {
        self.pins.lock().keys().next().copied()
    }

    /// Number of live guards across all eras.
    pub fn depth(&self) -> usize {
        self.pins.lock().values().sum()
    }

    /// Run `f` under the pin-table lock with the current minimum pinned
    /// era. The registry cannot change while `f` runs — `register` and
    /// `unregister` take the same lock — so a decision `f` makes (e.g.
    /// recycling a quarantined slab) cannot be invalidated by a
    /// concurrently registering pin.
    fn locked_min_pinned<R>(&self, f: impl FnOnce(Option<u64>) -> R) -> R {
        let pins = self.pins.lock();
        f(pins.keys().next().copied())
    }
}

/// An era pin: while this guard lives, no slab freed at or after the pinned
/// era can be recycled, so chain walks started under the guard stay valid
/// even while concurrent batches insert and delete.
///
/// Obtained from [`SlabAllocator::pin`]; dropping it releases the era (and
/// unregisters from the sanitizer's pin model when one is attached).
#[must_use = "queries are only snapshot-safe while the guard is held"]
pub struct ReadGuard {
    reg: Arc<PinRegistry>,
    era: u64,
    /// Id of the issuing allocator, for the sanitizer's per-allocator
    /// pin model.
    owner: u64,
    prof: Option<Arc<Profiler>>,
    san: Option<Arc<Sanitizer>>,
}

impl ReadGuard {
    /// The launch era this guard pins.
    pub fn era(&self) -> u64 {
        self.era
    }
}

impl Drop for ReadGuard {
    fn drop(&mut self) {
        self.reg.unregister(self.era);
        if let Some(san) = &self.san {
            san.on_unpin(self.owner, self.era);
        }
        if let Some(p) = &self.prof {
            p.metrics().gauge("read.pin_depth").sub(1);
        }
    }
}

impl std::fmt::Debug for ReadGuard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReadGuard").field("era", &self.era).finish()
    }
}

/// Memory blocks per super-block.
const BLOCKS_PER_SUPER: usize = 32;
/// Slabs per memory block (one bit each in the block's bitmap word).
const SLABS_PER_BLOCK: usize = 32;
/// Slabs per super-block.
const SLABS_PER_SUPER: usize = BLOCKS_PER_SUPER * SLABS_PER_BLOCK;

/// Host-side record of one device-resident super-block.
#[derive(Debug, Clone, Copy)]
struct SuperBlock {
    /// Address of the 32 bitmap words (one per memory block).
    bitmaps: Addr,
    /// Address of the first slab's first word.
    slabs: Addr,
}

/// Warp-cooperative slab allocator over a [`Device`] arena.
///
/// Thread-safe: kernels running on the threaded executor may allocate and
/// free concurrently. Growth (adding super-blocks) takes a host-side write
/// lock; the hot path takes a read lock only.
pub struct SlabAllocator {
    supers: RwLock<Vec<SuperBlock>>,
    allocated: AtomicU64,
    freed: AtomicU64,
    quarantine: Mutex<Quarantine>,
    pins: Arc<PinRegistry>,
    /// Process-unique identity keying the sanitizer's pin model.
    id: u64,
}

impl SlabAllocator {
    /// Create an allocator with capacity for `initial_slabs` (rounded up to
    /// whole super-blocks, minimum one).
    pub fn new(dev: &Device, initial_slabs: usize) -> Self {
        let alloc = SlabAllocator {
            supers: RwLock::new(Vec::new()),
            allocated: AtomicU64::new(0),
            freed: AtomicU64::new(0),
            quarantine: Mutex::new(Quarantine::default()),
            pins: Arc::new(PinRegistry::default()),
            id: NEXT_ALLOC_ID.fetch_add(1, Ordering::Relaxed),
        };
        let supers_needed = initial_slabs.div_ceil(SLABS_PER_SUPER).max(1);
        for _ in 0..supers_needed {
            alloc
                .try_grow(dev)
                .unwrap_or_else(|e| panic!("initial slab pool allocation failed: {e}"));
        }
        alloc
    }

    /// Add one super-block to the pool. The bitmaps and slab storage come
    /// from a *single* arena allocation so a capacity failure can never
    /// strand a half-built super-block (the bump arena cannot free).
    fn try_grow(&self, dev: &Device) -> Result<(), OomError> {
        let mut supers = self.supers.write();
        // Layout: 32 bitmap words, then the 1024 slabs. BLOCKS_PER_SUPER is
        // a multiple of SLAB_WORDS' alignment, so both regions stay
        // slab-aligned.
        let bitmaps =
            dev.try_alloc_words(BLOCKS_PER_SUPER + SLABS_PER_SUPER * SLAB_WORDS, SLAB_WORDS)?;
        let slabs = bitmaps + BLOCKS_PER_SUPER as u32;
        // Bitmaps start all-free. cudaMalloc'd memory is garbage, so write
        // the zeros explicitly (the equivalent of the cudaMemset SlabAlloc
        // issues at pool setup) instead of leaning on the arena's Rust-side
        // zero-init — initcheck treats unwritten words as uninitialised.
        dev.arena().fill(bitmaps, BLOCKS_PER_SUPER, 0);
        supers.push(SuperBlock { bitmaps, slabs });
        if let Some(p) = dev.profiler() {
            let words = (supers.len() * (SLABS_PER_SUPER * SLAB_WORDS + BLOCKS_PER_SUPER)) as u64;
            p.metrics().gauge("slab_alloc.pool_words").set(words);
            p.instant(
                "slab_pool_grow",
                format!("super-blocks: {}, pool words: {words}", supers.len()),
            );
        }
        Ok(())
    }

    /// Number of slabs currently live (allocated − freed).
    pub fn live_slabs(&self) -> u64 {
        self.allocated.load(Ordering::Relaxed) - self.freed.load(Ordering::Relaxed)
    }

    /// Total slabs ever allocated.
    pub fn total_allocated(&self) -> u64 {
        self.allocated.load(Ordering::Relaxed)
    }

    /// Total pool capacity in slabs.
    pub fn capacity_slabs(&self) -> usize {
        self.supers.read().len() * SLABS_PER_SUPER
    }

    /// Device words consumed by the pool (slabs + bitmaps).
    pub fn pool_words(&self) -> u64 {
        (self.supers.read().len() * (SLABS_PER_SUPER * SLAB_WORDS + BLOCKS_PER_SUPER)) as u64
    }

    /// Warp-cooperative allocation of one slab; panics on out-of-memory.
    ///
    /// Thin wrapper over [`Self::try_allocate`] for paths where exhaustion
    /// is a programming error (tests, setup).
    pub fn allocate(&self, warp: &Warp) -> Addr {
        self.try_allocate(warp)
            .unwrap_or_else(|e| panic!("slab allocation failed: {e}"))
    }

    /// Warp-cooperative allocation of one slab.
    ///
    /// The returned address is slab-aligned and its 32 words are initialised
    /// to [`SLAB_INIT_WORD`]. Charges: one transaction per bitmap probe, one
    /// atomic per claim attempt, one transaction for the init write.
    ///
    /// This is the fallible allocation site of the whole stack: it consults
    /// the device's fault plan (once per call) and propagates capacity
    /// failures from pool growth. On `Err` nothing was claimed — the pool
    /// and every table built on it are untouched.
    pub fn try_allocate(&self, warp: &Warp) -> Result<Addr, AllocError> {
        warp.device().fault_check()?;
        self.drain_quarantine(warp.device());
        loop {
            let n_supers = self.supers.read().len();
            // Probe sequence seeded by warp id and a per-call nonce derived
            // from the allocation counter, mimicking SlabAlloc's hashed
            // resident-block strategy.
            let nonce = self.allocated.load(Ordering::Relaxed) as u32;
            let total_blocks = n_supers * BLOCKS_PER_SUPER;
            for attempt in 0..total_blocks.max(1) {
                let h = hash_block(warp.warp_id(), nonce, attempt as u32);
                let block_idx = (h as usize) % total_blocks;
                let (sb, block_in_super) = {
                    let supers = self.supers.read();
                    (
                        supers[block_idx / BLOCKS_PER_SUPER],
                        block_idx % BLOCKS_PER_SUPER,
                    )
                };
                let bitmap_addr = sb.bitmaps + block_in_super as u32;
                let mut bitmap = warp.read_word(bitmap_addr);
                while bitmap != u32::MAX {
                    let slot = (!bitmap).trailing_zeros();
                    // The claim is speculative: a sequential executor never
                    // issues a failing atomicOr (it always sees the current
                    // bitmap), so a lost race must not be charged.
                    warp.begin_attempt();
                    let prev = warp.atomic_or(bitmap_addr, 1 << slot);
                    if prev & (1 << slot) == 0 {
                        warp.commit_attempt();
                        // Claimed. Initialise the slab to the EMPTY pattern.
                        self.allocated.fetch_add(1, Ordering::Relaxed);
                        let slab_idx = block_in_super * SLABS_PER_BLOCK + slot as usize;
                        let addr = sb.slabs + (slab_idx * SLAB_WORDS) as u32;
                        if let Some(san) = warp.device().sanitizer() {
                            san.on_slab_alloc(addr, warp.kernel_name(), self.id);
                        }
                        if let Some(p) = warp.device().profiler() {
                            p.metrics().gauge("slab_alloc.live_slabs").add(1);
                            p.instant(
                                "slab_alloc",
                                format!("slab {addr:#x} by {}", warp.kernel_name()),
                            );
                        }
                        let init = gpu_sim::Lanes::splat(SLAB_INIT_WORD);
                        warp.write_slab(addr, &init);
                        return Ok(addr);
                    }
                    // Raced: another warp took the bit; retry on updated map.
                    warp.abort_attempt();
                    bitmap = prev | (1 << slot);
                }
            }
            // Every probed block was full: grow the pool and retry.
            self.try_grow(warp.device())?;
        }
    }

    /// Warp-cooperative free of a slab previously returned by
    /// [`Self::allocate`] (one atomic on the occupancy word).
    ///
    /// The slab enters *quarantine* rather than becoming immediately
    /// reusable: its occupancy bit stays claimed until the freeing launch
    /// has retired (see `Quarantine`), so a concurrent warp chasing a
    /// stale pointer into the slab can never observe it recycled as
    /// different data mid-launch. The charged atomic is a mask-preserving
    /// no-op RMW on the bitmap word — same cost as a direct clear, and it
    /// release-publishes the free for the eventual re-claimer to acquire.
    ///
    /// Returns [`AllocError::NotPoolAddress`] if `addr` does not belong to
    /// the pool (e.g. a statically allocated base slab) and
    /// [`AllocError::DoubleFree`] if the slab is not currently allocated —
    /// both indicate data-structure corruption, matching a debug assertion
    /// in SlabAlloc. Neither touches the free counter; double-frees are
    /// also recorded by the device sanitizer when one is attached.
    pub fn free(&self, warp: &Warp, addr: Addr) -> Result<(), AllocError> {
        let Some((bitmap_addr, slot)) = self.locate(addr) else {
            return Err(AllocError::NotPoolAddress { addr });
        };
        let dev = warp.device();
        let prev = warp.atomic_and(bitmap_addr, u32::MAX);
        let mut q = self.quarantine.lock();
        if prev & (1 << slot) == 0 || q.members.contains(&addr) {
            drop(q);
            if let Some(san) = dev.sanitizer() {
                san.report_double_free(addr, warp.kernel_name(), warp.warp_id(), dev.launch_era());
            }
            return Err(AllocError::DoubleFree { addr });
        }
        q.ring.push_back((dev.launch_era(), addr));
        q.members.insert(addr);
        drop(q);
        if let Some(san) = dev.sanitizer() {
            san.on_slab_free(addr, warp.kernel_name(), dev.launch_era(), self.id);
        }
        if let Some(p) = dev.profiler() {
            p.metrics().gauge("slab_alloc.live_slabs").sub(1);
            p.instant(
                "slab_free",
                format!("slab {addr:#x} quarantined by {}", warp.kernel_name()),
            );
        }
        self.freed.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Number of freed slabs currently held in quarantine.
    pub fn quarantined_slabs(&self) -> usize {
        self.quarantine.lock().ring.len()
    }

    /// Pin the current launch era for reading. While the returned
    /// [`ReadGuard`] lives, no slab freed at or after the pinned era is
    /// recycled, so concurrent chain walks stay snapshot-valid. Uncharged:
    /// pinning is host-side epoch bookkeeping, not simulated device work.
    pub fn pin(&self, dev: &Device) -> ReadGuard {
        // Register-then-validate, the classic EBR entry dance: if the era
        // advanced between the read and the registration, a concurrent
        // drain may have missed this pin — re-pin at the newer era (the
        // reader has observed nothing yet, so the newer snapshot is fine).
        // Once the re-read matches, any later drain that justifies itself
        // by an era advance must also observe this registration.
        let mut era = dev.launch_era();
        loop {
            self.pins.register(era);
            let now = dev.launch_era();
            if now == era {
                break;
            }
            self.pins.unregister(era);
            era = now;
        }
        if let Some(san) = dev.sanitizer() {
            san.on_pin(self.id, era);
        }
        if let Some(p) = dev.profiler() {
            p.metrics().gauge("read.pin_depth").add(1);
        }
        ReadGuard {
            reg: self.pins.clone(),
            era,
            owner: self.id,
            prof: dev.profiler().cloned(),
            san: dev.sanitizer().cloned(),
        }
    }

    /// Number of live [`ReadGuard`]s.
    pub fn pinned_readers(&self) -> usize {
        self.pins.depth()
    }

    /// True when `guard` was issued by this allocator's pin registry —
    /// a cheap identity check letting query layers reject guards pinned
    /// against a *different* graph (whose reclamation they don't block).
    pub fn owns_guard(&self, guard: &ReadGuard) -> bool {
        Arc::ptr_eq(&self.pins, &guard.reg)
    }

    /// Smallest era currently pinned by a live [`ReadGuard`], if any.
    pub fn min_pinned_era(&self) -> Option<u64> {
        self.pins.min_pinned()
    }

    /// Audit the epoch-reclamation invariants; returns a description of
    /// the first violation found. Checked: the quarantine ring is
    /// era-monotonic (free order), every ring entry is present in the
    /// member set, and every quarantined slab's occupancy bit is still
    /// claimed (it cannot have been handed out again). The pin-coverage
    /// guarantee — no entry leaves quarantine while a reader era ≤ its
    /// free era is pinned — is enforced structurally rather than audited
    /// post-hoc: the drain decides coverage and pops under the pin-table
    /// lock (see `drain_quarantine`), so there is no window in which a
    /// registering pin can be missed.
    pub fn audit_quarantine(&self, dev: &Device) -> Result<(), String> {
        let q = self.quarantine.lock();
        let mut prev_era = 0u64;
        for &(freed_era, addr) in &q.ring {
            if freed_era < prev_era {
                return Err(format!(
                    "quarantine ring out of era order: {freed_era} after {prev_era}"
                ));
            }
            prev_era = freed_era;
            if !q.members.contains(&addr) {
                return Err(format!("ring entry {addr:#x} missing from member set"));
            }
            let Some((bitmap_addr, slot)) = self.locate(addr) else {
                return Err(format!("quarantined slab {addr:#x} is not a pool address"));
            };
            if dev.arena().load(bitmap_addr) & (1 << slot) == 0 {
                return Err(format!(
                    "quarantined slab {addr:#x} occupancy bit released while still ringed"
                ));
            }
        }
        Ok(())
    }

    /// Release quarantined slabs whose freeing launch has retired (a later
    /// launch began — a device-wide barrier, or the era was advanced
    /// explicitly at a batch boundary), plus the oldest entries whenever
    /// the ring overflows [`QUARANTINE_SLABS`]. In every case a slab is
    /// held while any live [`ReadGuard`] pins an era ≤ its free era — the
    /// epoch-reclamation guarantee — so even a force-drain cannot pull a
    /// slab out from under a reader; the ring simply grows past its soft
    /// cap until the guard drops. Uncharged: this is host-side reclamation
    /// bookkeeping off the allocation hot path.
    fn drain_quarantine(&self, dev: &Device) {
        let era = dev.launch_era();
        let mut q = self.quarantine.lock();
        let mut drained = 0u64;
        loop {
            let force = q.ring.len() > QUARANTINE_SLABS;
            let Some(&(freed_era, addr)) = q.ring.front() else {
                break;
            };
            if !force && freed_era >= era {
                break;
            }
            // Coverage is decided and the entry popped under the pin-table
            // lock, so a pin racing this drain cannot register between the
            // check and the pop: it either lands before the check (the
            // entry is held and the ring simply grows past its soft cap
            // until the guard drops) or after the pop, at an era from
            // which the already-unlinked slab is unreachable. Re-checked
            // per entry so a pin taken mid-drain stops the drain at its
            // first covered slab.
            let popped = self.pins.locked_min_pinned(|min| {
                if min.is_some_and(|p| p <= freed_era) {
                    return false;
                }
                q.ring.pop_front();
                true
            });
            if !popped {
                break;
            }
            q.members.remove(&addr);
            if let Some((bitmap_addr, slot)) = self.locate(addr) {
                dev.arena().fetch_and(bitmap_addr, !(1 << slot));
            }
            if let Some(san) = dev.sanitizer() {
                san.on_slab_drain(addr);
            }
            drained += 1;
        }
        if drained > 0 {
            if let Some(p) = dev.profiler() {
                p.instant(
                    "slab_quarantine_drain",
                    format!("{drained} slabs released, {} still held", q.ring.len()),
                );
            }
        }
    }

    /// Whether `addr` lies inside the dynamic pool (vs. a static base slab).
    pub fn owns(&self, addr: Addr) -> bool {
        self.locate(addr).is_some()
    }

    /// Map a slab address to its (bitmap word address, bit index).
    fn locate(&self, addr: Addr) -> Option<(Addr, u32)> {
        let supers = self.supers.read();
        for sb in supers.iter() {
            let start = sb.slabs;
            let end = start + (SLABS_PER_SUPER * SLAB_WORDS) as u32;
            if addr >= start && addr < end {
                let slab_idx = ((addr - start) as usize) / SLAB_WORDS;
                debug_assert_eq!((addr - start) as usize % SLAB_WORDS, 0);
                let block = slab_idx / SLABS_PER_BLOCK;
                let slot = (slab_idx % SLABS_PER_BLOCK) as u32;
                return Some((sb.bitmaps + block as u32, slot));
            }
        }
        None
    }
}

/// Mixing hash for the probe sequence (xorshift-multiply).
#[inline]
fn hash_block(warp_id: u32, nonce: u32, attempt: u32) -> u32 {
    let mut x = warp_id
        .wrapping_mul(0x9E37_79B9)
        .wrapping_add(nonce.wrapping_mul(0x85EB_CA6B))
        .wrapping_add(attempt.wrapping_mul(0xC2B2_AE35));
    x ^= x >> 16;
    x = x.wrapping_mul(0x7FEB_352D);
    x ^= x >> 15;
    x
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::{Device, ExecPolicy};

    fn with_warp(dev: &Device, f: impl Fn(&Warp) + Sync) {
        dev.launch_warps("alloc_test", 1, |warp| f(warp));
    }

    #[test]
    fn allocate_returns_aligned_initialised_slab() {
        let dev = Device::new(1 << 16);
        let alloc = SlabAllocator::new(&dev, 64);
        with_warp(&dev, |warp| {
            let a = alloc.allocate(warp);
            assert_eq!(a as usize % SLAB_WORDS, 0);
            for i in 0..SLAB_WORDS as u32 {
                assert_eq!(dev.arena().load(a + i), SLAB_INIT_WORD);
            }
        });
        assert_eq!(alloc.live_slabs(), 1);
    }

    #[test]
    fn allocations_are_distinct() {
        let dev = Device::new(1 << 16);
        let alloc = SlabAllocator::new(&dev, 1024);
        let seen = std::sync::Mutex::new(std::collections::HashSet::new());
        with_warp(&dev, |warp| {
            for _ in 0..500 {
                let a = alloc.allocate(warp);
                assert!(seen.lock().unwrap().insert(a), "duplicate slab {a:#x}");
            }
        });
        assert_eq!(alloc.live_slabs(), 500);
    }

    #[test]
    fn free_allows_reuse() {
        let dev = Device::new(1 << 16);
        let alloc = SlabAllocator::new(&dev, 32);
        with_warp(&dev, |warp| {
            let first: Vec<Addr> = (0..100).map(|_| alloc.allocate(warp)).collect();
            for &a in &first {
                // Dirty the slab, then free it.
                dev.arena().store(a, 123);
                alloc.free(warp, a).unwrap();
            }
            assert_eq!(alloc.live_slabs(), 0);
            // Reallocated slabs must be re-initialised.
            for _ in 0..100 {
                let a = alloc.allocate(warp);
                assert_eq!(dev.arena().load(a), SLAB_INIT_WORD);
            }
        });
    }

    #[test]
    fn pool_grows_when_exhausted() {
        let dev = Device::new(1 << 16);
        let alloc = SlabAllocator::new(&dev, 1); // one super-block = 1024 slabs
        let initial_capacity = alloc.capacity_slabs();
        with_warp(&dev, |warp| {
            for _ in 0..initial_capacity + 10 {
                alloc.allocate(warp);
            }
        });
        assert!(alloc.capacity_slabs() > initial_capacity);
        assert_eq!(alloc.live_slabs() as usize, initial_capacity + 10);
    }

    #[test]
    fn freed_slab_is_quarantined_until_next_launch() {
        let dev = Device::new(1 << 17);
        let alloc = SlabAllocator::new(&dev, 32);
        let cap = alloc.capacity_slabs();
        let freed = parking_lot::Mutex::new(0);
        dev.launch_warps("alloc_test", 1, |warp| {
            let a = alloc.allocate(warp);
            alloc.free(warp, a).unwrap();
            // Within the freeing launch the slab must NOT be recycled: a
            // concurrent warp could still hold a stale pointer into it.
            for _ in 0..8 {
                assert_ne!(alloc.allocate(warp), a, "slab recycled mid-launch");
            }
            *freed.lock() = a;
        });
        let a = freed.into_inner();
        assert_eq!(alloc.quarantined_slabs(), 1);
        // A later launch is a device-wide barrier; the quarantine drains
        // and the freed slab becomes claimable again.
        let reused = parking_lot::Mutex::new(false);
        dev.launch_warps("alloc_test", 1, |warp| {
            for _ in 0..cap {
                if alloc.allocate(warp) == a {
                    *reused.lock() = true;
                    break;
                }
            }
        });
        assert_eq!(alloc.quarantined_slabs(), 0);
        assert!(reused.into_inner(), "drained slab was never recycled");
    }

    #[test]
    fn pinned_reader_blocks_reclamation_until_guard_drops() {
        let dev = Device::new(1 << 17);
        let alloc = SlabAllocator::new(&dev, 32);
        let cap = alloc.capacity_slabs();
        // Pin the era *before* the free: the guard covers the slab.
        let guard = alloc.pin(&dev);
        assert_eq!(alloc.pinned_readers(), 1);
        let freed = parking_lot::Mutex::new(0);
        dev.launch_warps("alloc_test", 1, |warp| {
            let a = alloc.allocate(warp);
            alloc.free(warp, a).unwrap();
            *freed.lock() = a;
        });
        let a = freed.into_inner();
        assert!(guard.era() <= dev.launch_era());
        // Later launches retire the freeing launch, but the pinned era
        // must still hold the slab in quarantine.
        dev.launch_warps("alloc_test", 1, |warp| {
            for _ in 0..8 {
                assert_ne!(alloc.allocate(warp), a, "slab recycled under a pin");
            }
        });
        assert_eq!(alloc.quarantined_slabs(), 1);
        alloc.audit_quarantine(&dev).unwrap();
        drop(guard);
        assert_eq!(alloc.pinned_readers(), 0);
        // With the guard gone the slab drains and is claimable again.
        let reused = parking_lot::Mutex::new(false);
        dev.launch_warps("alloc_test", 1, |warp| {
            for _ in 0..2 * cap {
                if alloc.allocate(warp) == a {
                    *reused.lock() = true;
                    break;
                }
            }
        });
        assert!(reused.into_inner(), "slab never recycled after unpin");
        alloc.audit_quarantine(&dev).unwrap();
    }

    #[test]
    fn force_drain_respects_pins() {
        let dev = Device::new(1 << 22);
        let alloc = SlabAllocator::new(&dev, 4 * QUARANTINE_SLABS);
        let guard = alloc.pin(&dev);
        // Overflow the quarantine soft cap while the guard is live: the
        // force path must hold every covered slab rather than recycle it.
        dev.launch_warps("alloc_test", 1, |warp| {
            let slabs: Vec<Addr> = (0..QUARANTINE_SLABS + 100)
                .map(|_| alloc.allocate(warp))
                .collect();
            for &a in &slabs {
                alloc.free(warp, a).unwrap();
            }
        });
        dev.launch_warps("alloc_test", 1, |warp| {
            // Allocation triggers drain attempts; nothing may leave.
            alloc.allocate(warp);
        });
        assert_eq!(alloc.quarantined_slabs(), QUARANTINE_SLABS + 100);
        alloc.audit_quarantine(&dev).unwrap();
        drop(guard);
        dev.launch_warps("alloc_test", 1, |warp| {
            alloc.allocate(warp);
        });
        assert_eq!(alloc.quarantined_slabs(), 0, "unpinned ring drains");
        alloc.audit_quarantine(&dev).unwrap();
    }

    #[test]
    fn pin_after_free_does_not_block_reclamation() {
        let dev = Device::new(1 << 17);
        let alloc = SlabAllocator::new(&dev, 32);
        let cap = alloc.capacity_slabs();
        let freed = parking_lot::Mutex::new(0);
        dev.launch_warps("alloc_test", 1, |warp| {
            let a = alloc.allocate(warp);
            alloc.free(warp, a).unwrap();
            *freed.lock() = a;
        });
        let a = freed.into_inner();
        // The batch boundary bumps the era, *then* the reader pins: its
        // era strictly postdates the free, so it cannot hold a stale
        // pointer into the slab and must not delay its reuse. (A pin in
        // the *same* era as the free would conservatively cover it.)
        dev.advance_era();
        let _guard = alloc.pin(&dev);
        let reused = parking_lot::Mutex::new(false);
        dev.launch_warps("alloc_test", 1, |warp| {
            for _ in 0..cap {
                if alloc.allocate(warp) == a {
                    *reused.lock() = true;
                    break;
                }
            }
        });
        assert!(reused.into_inner(), "late pin wrongly blocked reclamation");
    }

    #[test]
    fn double_free_returns_error() {
        let dev = Device::new(1 << 16);
        let alloc = SlabAllocator::new(&dev, 32);
        dev.launch_warps("alloc_test", 1, |warp| {
            let a = alloc.allocate(warp);
            alloc.free(warp, a).unwrap();
            assert_eq!(alloc.free(warp, a), Err(AllocError::DoubleFree { addr: a }));
        });
        // The failed free did not disturb the live-slab accounting.
        assert_eq!(alloc.live_slabs(), 0);
    }

    #[test]
    fn freeing_foreign_address_returns_error() {
        let dev = Device::new(1 << 16);
        let alloc = SlabAllocator::new(&dev, 32);
        let foreign = dev.alloc_words(SLAB_WORDS, SLAB_WORDS);
        dev.launch_warps("alloc_test", 1, |warp| {
            assert_eq!(
                alloc.free(warp, foreign),
                Err(AllocError::NotPoolAddress { addr: foreign })
            );
        });
        // The pool is still usable after the misuse report.
        dev.launch_warps("alloc_test", 1, |warp| {
            let a = alloc.allocate(warp);
            alloc.free(warp, a).unwrap();
        });
    }

    #[test]
    fn bounded_device_fails_growth_with_typed_error() {
        use gpu_sim::DeviceConfig;
        // Budget fits the initial super-block (32 + 1024*32 = 32800 words)
        // plus a little, but not a second one.
        let dev = Device::with_config(DeviceConfig::new(1 << 16).with_capacity_words(40_000));
        let alloc = SlabAllocator::new(&dev, 1);
        let capacity = alloc.capacity_slabs();
        let failed = parking_lot::Mutex::new(None);
        dev.launch_warps("alloc_test", 1, |warp| {
            for _ in 0..capacity {
                alloc.allocate(warp);
            }
            *failed.lock() = Some(alloc.try_allocate(warp));
        });
        let failed = failed.into_inner().unwrap();
        assert!(
            matches!(failed, Err(AllocError::Oom(OomError::Capacity { .. }))),
            "expected capacity OOM, got {failed:?}"
        );
        assert_eq!(alloc.live_slabs() as usize, capacity, "no slab leaked");
        // Raising the budget makes the same allocation succeed.
        dev.set_capacity_words(80_000);
        dev.launch_warps("alloc_test", 1, |warp| {
            alloc.try_allocate(warp).unwrap();
        });
    }

    #[test]
    fn fault_plan_injects_failure_without_corrupting_pool() {
        use gpu_sim::FaultPlan;
        let dev = Device::new(1 << 16);
        let alloc = SlabAllocator::new(&dev, 32);
        dev.set_fault_plan(FaultPlan::fail_nth(2));
        dev.launch_warps("alloc_test", 1, |warp| {
            let a = alloc.try_allocate(warp).unwrap();
            let err = alloc.try_allocate(warp).unwrap_err();
            assert!(matches!(err, AllocError::Oom(OomError::Injected { .. })));
            // The pool still works after the injected failure.
            let b = alloc.try_allocate(warp).unwrap();
            assert_ne!(a, b);
        });
        dev.clear_fault_plan();
        assert_eq!(alloc.live_slabs(), 2);
        assert_eq!(dev.injected_faults(), 1);
    }

    #[test]
    fn owns_distinguishes_pool_from_static() {
        let dev = Device::new(1 << 16);
        let alloc = SlabAllocator::new(&dev, 32);
        let foreign = dev.alloc_words(SLAB_WORDS, SLAB_WORDS);
        with_warp(&dev, |warp| {
            let a = alloc.allocate(warp);
            assert!(alloc.owns(a));
            assert!(!alloc.owns(foreign));
        });
    }

    #[test]
    fn concurrent_allocation_is_disjoint() {
        let dev = Device::with_policy(1 << 20, ExecPolicy::Threaded(4));
        let alloc = SlabAllocator::new(&dev, 4096);
        let seen = parking_lot::Mutex::new(std::collections::HashSet::new());
        dev.launch_warps("alloc_test", 64, |warp| {
            for _ in 0..16 {
                let a = alloc.allocate(warp);
                assert!(seen.lock().insert(a), "duplicate slab under threads");
            }
        });
        assert_eq!(alloc.live_slabs(), 64 * 16);
    }

    #[test]
    fn profiler_observes_allocator_events() {
        use gpu_sim::{DeviceConfig, ProfilerConfig};
        let dev = Device::with_config(
            DeviceConfig::new(1 << 16).with_profiler(ProfilerConfig::default()),
        );
        let alloc = SlabAllocator::new(&dev, 32);
        with_warp(&dev, |warp| {
            let a = alloc.allocate(warp);
            alloc.free(warp, a).unwrap();
        });
        let p = dev.profiler().unwrap();
        let instants = p.timeline().instants;
        let has = |n: &str| instants.iter().any(|i| i.name == n);
        assert!(has("slab_pool_grow"), "pool growth not recorded");
        assert!(has("slab_alloc"), "allocation not recorded");
        assert!(has("slab_free"), "free not recorded");
        let sums = p.metric_summaries();
        let live = sums
            .iter()
            .find(|s| s.name == "slab_alloc.live_slabs")
            .expect("live-slab gauge missing");
        assert_eq!(live.max, 1, "high-water of one live slab");
        assert_eq!(live.sum, 0, "current value back to zero after free");
        let pool = sums
            .iter()
            .find(|s| s.name == "slab_alloc.pool_words")
            .expect("pool-words gauge missing");
        assert!(pool.max >= (SLABS_PER_SUPER * SLAB_WORDS) as u64);
    }

    #[test]
    fn allocation_charges_counters() {
        let dev = Device::new(1 << 16);
        let alloc = SlabAllocator::new(&dev, 64);
        let before = dev.counters().snapshot();
        with_warp(&dev, |warp| {
            alloc.allocate(warp);
        });
        let d = dev.counters().snapshot().delta(&before);
        assert!(d.transactions >= 2, "bitmap probe + slab init");
        assert!(d.atomics >= 1, "bitmap claim");
    }
}
